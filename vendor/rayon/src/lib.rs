//! Offline stand-in for the `rayon` crate.
//!
//! Implements the subset of rayon this workspace uses with genuinely
//! parallel execution:
//!
//! * [`join`] — run two closures concurrently;
//! * [`prelude`] — `par_iter()` on slices/`Vec` and `into_par_iter()` on
//!   `Range<usize>`, with `map(..).collect()`, `for_each`, and `sum`.
//!
//! Scheduling: parallel calls submit their items to a shared,
//! lazily-initialized [`WorkerPool`] (like real rayon's global pool).
//! Workers claim items off a per-call atomic counter (dynamic load
//! balancing — important here because SND work items vary wildly in cost
//! with `n∆`), and the submitting thread participates in its own call, so
//! nested parallelism cannot deadlock: every call makes progress on its own
//! items even if all pool workers are busy elsewhere. Results are written
//! back by item index, so `collect` preserves input order and is
//! deterministic regardless of interleaving.
//!
//! The pool replaces the previous per-call scoped threads: fine-grained
//! callers (the transportation simplex prices *every pivot* through here)
//! pay one queue push + wakeup per call instead of a thread spawn per
//! worker per call. Pool size is `current_num_threads() − 1` background
//! workers (the caller is the final "thread"); set `RAYON_NUM_THREADS` to
//! override, as with real rayon.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};

// The pool's sync primitives, cfg-gated behind type aliases: ordinary
// builds use `std::sync` directly; `--features model` routes them through
// the vendored `interleave` schedule-exploration harness so model tests
// can shake thousands of interleavings of the claim/pending protocol.
#[cfg(not(feature = "model"))]
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
#[cfg(not(feature = "model"))]
use std::sync::{Condvar, Mutex};

#[cfg(feature = "model")]
use interleave::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
#[cfg(feature = "model")]
use interleave::sync::{Condvar, Mutex};

/// Number of worker threads a parallel call may use (pool workers plus the
/// calling thread). Reads `RAYON_NUM_THREADS` once, then falls back to the
/// machine's available parallelism.
pub fn current_num_threads() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Runs both closures, potentially in parallel, and returns both results.
///
/// Like the indexed fan-out, `join` goes through the shared [`WorkerPool`]
/// (a two-item task; each `FnOnce` is claimed exactly once): the caller
/// participates, a free pool worker picks up the other side, and no thread
/// is spawned per call. Panics in either closure are resumed on the
/// calling thread with their original payload, as in real rayon.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    let a = Mutex::new(Some(a));
    let b = Mutex::new(Some(b));
    let ra: Mutex<Option<RA>> = Mutex::new(None);
    let rb: Mutex<Option<RB>> = Mutex::new(None);
    global_pool().run(2, |i| {
        // Each index is claimed exactly once (see `Task::work`), so the
        // take() always finds the closure.
        if i == 0 {
            let f = a.lock().expect("join slot poisoned").take();
            *ra.lock().expect("join result poisoned") = Some(f.expect("item 0 claimed once")());
        } else {
            let f = b.lock().expect("join slot poisoned").take();
            *rb.lock().expect("join result poisoned") = Some(f.expect("item 1 claimed once")());
        }
    });
    let ra = ra.into_inner().expect("join result poisoned");
    let rb = rb.into_inner().expect("join result poisoned");
    (
        ra.expect("join ran item 0 to completion"),
        rb.expect("join ran item 1 to completion"),
    )
}

/// A borrow of a parallel call's item closure with the borrow lifetime
/// erased, so it can sit in a [`Task`] on the shared queue (whose type
/// cannot name the caller's stack lifetime).
///
/// Contract, upheld by [`WorkerPool::run`]: the wrapper must not outlive
/// the closure it was built from. `run` keeps the closure alive on the
/// submitting thread's stack until the task's `pending` count reaches
/// zero, and every [`call`](Self::call) happens inside a claimed item call
/// that finishes before the matching `pending` decrement — so no access
/// can see a dead referent.
struct ErasedItemFn {
    /// The closure, as a type- and lifetime-less data pointer.
    data: *const (),
    /// Monomorphized stub that casts `data` back to the concrete closure
    /// type and calls it — a hand-rolled one-entry vtable. Same cost as
    /// the `dyn Fn` it replaces: one indirect call per item.
    call: unsafe fn(*const (), usize),
}

impl ErasedItemFn {
    /// Erases `f`'s type and borrow lifetime. Safe on its own — only
    /// [`call`](Self::call) can touch the referent.
    fn erase<F: Fn(usize) + Sync>(f: &F) -> Self {
        /// # Safety
        ///
        /// `data` must point to a live `F` (the one `erase` borrowed).
        unsafe fn call_impl<F: Fn(usize)>(data: *const (), i: usize) {
            // SAFETY: `data` came from `&F` in `erase` and the referent is
            // still alive per the contract documented on the type.
            unsafe { (*data.cast::<F>())(i) }
        }
        ErasedItemFn {
            data: (f as *const F).cast::<()>(),
            call: call_impl::<F>,
        }
    }

    /// Calls the erased closure with item index `i`.
    ///
    /// # Safety
    ///
    /// The closure passed to [`erase`](Self::erase) must still be alive
    /// for the whole call. Follows from the claim/pending protocol
    /// documented on the type.
    unsafe fn call(&self, i: usize) {
        // SAFETY: forwarded to the caller — the referent is alive per the
        // protocol above.
        unsafe { (self.call)(self.data, i) }
    }
}

/// One submitted parallel call: a lifetime-erased item closure plus the
/// claim/completion counters workers coordinate through.
struct Task {
    /// Next unclaimed item index (claimed by `fetch_add`).
    next: AtomicUsize,
    /// Items not yet finished; the submitter blocks until this hits zero.
    pending: AtomicUsize,
    len: usize,
    /// Lifetime-erased borrow of the item closure. Only reborrowed for a
    /// successfully claimed index, and the submitting caller keeps the
    /// referent alive until `pending` reaches zero — which cannot happen
    /// before every claimed item's closure call has returned.
    func: ErasedItemFn,
    /// First caught item-panic payload, resumed on the submitting thread so
    /// assertion messages survive the pool hop (as with real rayon).
    panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: `func` is only dereferenced under the claim/pending protocol
// documented on the field; all other state is atomics or locks.
unsafe impl Send for Task {}
unsafe impl Sync for Task {}

impl Task {
    /// Claims and runs items until none remain.
    fn work(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.len {
                return;
            }
            // SAFETY: `i < len` is claimed exactly once; the submitter keeps
            // the closure alive until `pending` reaches zero, and this
            // item's decrement below happens only after the call returns.
            let call = || unsafe { self.func.call(i) };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(call)) {
                let mut slot = self.panic_payload.lock().expect("panic slot poisoned");
                slot.get_or_insert(payload);
            }
            if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                *self.done.lock().expect("task done flag poisoned") = true;
                self.done_cv.notify_all();
            }
        }
    }

    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.len
    }
}

struct PoolShared {
    queue: Mutex<VecDeque<Arc<Task>>>,
    available: Condvar,
    shutdown: AtomicBool,
}

/// A persistent pool of worker threads serving indexed parallel calls.
///
/// The global instance behind `par_iter` is created on first use and lives
/// for the process ([`global_pool`]); independent instances can be created
/// for tests. Submitters always participate in their own call, so a pool is
/// an accelerator, never a serialization point.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
}

fn worker_loop(shared: Arc<PoolShared>) {
    loop {
        let task = {
            let mut queue = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                // Drop finished tasks, then pick up the oldest live one.
                while queue.front().is_some_and(|t| t.exhausted()) {
                    queue.pop_front();
                }
                if let Some(t) = queue.front() {
                    break Arc::clone(t);
                }
                queue = shared.available.wait(queue).expect("pool queue poisoned");
            }
        };
        task.work();
    }
}

impl WorkerPool {
    /// Spawns a pool with `workers` background threads (at least one).
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        for _ in 0..workers.max(1) {
            let s = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("snd-rayon-worker".into())
                .spawn(move || worker_loop(s))
                .expect("failed to spawn rayon pool worker");
        }
        WorkerPool { shared }
    }

    /// Applies `f` to every index in `0..len` across the pool (the calling
    /// thread included) and returns the results in index order.
    pub fn run<R, F>(&self, len: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if len == 0 {
            return Vec::new();
        }
        let slots: Vec<Mutex<Option<R>>> = (0..len).map(|_| Mutex::new(None)).collect();
        let fill = |i: usize| {
            let r = f(i);
            *slots[i].lock().expect("result slot poisoned") = Some(r);
        };
        // Erasing the borrow is safe on its own; `run_erased` below is what
        // upholds the wrapper's contract: it returns only after every item
        // finished (`pending == 0`) and the task left the queue, so no
        // reborrow outlives `fill` (see `ErasedItemFn` and `Task::func`).
        let func = ErasedItemFn::erase(&fill);
        let task = Arc::new(Task {
            next: AtomicUsize::new(0),
            pending: AtomicUsize::new(len),
            len,
            func,
            panic_payload: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        self.run_erased(&task);
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker skipped an item")
            })
            .collect()
    }

    fn run_erased(&self, task: &Arc<Task>) {
        {
            let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
            queue.push_back(Arc::clone(task));
        }
        self.shared.available.notify_all();
        // The caller is a full participant: even with every pool worker busy
        // (or a pool of zero idle workers during nested calls), the call
        // completes on this thread alone.
        task.work();
        let mut done = task.done.lock().expect("task done flag poisoned");
        while !*done {
            done = task.done_cv.wait(done).expect("task done flag poisoned");
        }
        drop(done);
        // A worker usually pops the exhausted task; make sure it is gone
        // before the item closure's borrow expires.
        let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
        queue.retain(|t| !Arc::ptr_eq(t, task));
        drop(queue);
        let payload = task
            .panic_payload
            .lock()
            .expect("panic slot poisoned")
            .take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.available.notify_all();
    }
}

/// The process-wide pool behind `par_iter`/`into_par_iter`.
fn global_pool() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| WorkerPool::new(current_num_threads().saturating_sub(1).max(1)))
}

/// Model-checking access to the pool's claim/pending protocol (only with
/// `--features model`; see `tests/model.rs`). The production `Task` and
/// its instrumented primitives run under the `interleave` scheduler, with
/// model threads standing in for the long-lived pool workers.
#[cfg(feature = "model")]
pub mod model_support {
    use super::*;

    /// Runs `f` over `len` items exactly as [`WorkerPool::run`] does —
    /// same [`Task`], same claim/pending/done protocol — but with
    /// `workers` model threads plus the calling thread participating.
    /// Returns the first captured item-panic payload, which `run_erased`
    /// would resume on the submitter.
    pub fn run_task<F: Fn(usize) + Sync>(
        len: usize,
        workers: usize,
        f: F,
    ) -> Option<Box<dyn std::any::Any + Send>> {
        if len == 0 {
            return None;
        }
        // The erasure contract (see `ErasedItemFn`) holds as in `run`:
        // `f` outlives every access because each worker is joined below,
        // and the submitter's own `work` call finishes before `f` drops.
        let func = ErasedItemFn::erase(&f);
        let task = Arc::new(Task {
            next: AtomicUsize::new(0),
            pending: AtomicUsize::new(len),
            len,
            func,
            panic_payload: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let t = Arc::clone(&task);
                interleave::thread::spawn(move || t.work())
            })
            .collect();
        // The submitter is a full participant, exactly like `run_erased`.
        task.work();
        let mut done = task.done.lock().expect("task done flag poisoned");
        while !*done {
            done = task.done_cv.wait(done).expect("task done flag poisoned");
        }
        drop(done);
        for h in handles {
            h.join().expect("pool worker survived the task");
        }
        let payload = task
            .panic_payload
            .lock()
            .expect("panic slot poisoned")
            .take();
        drop(task);
        payload
    }
}

/// Core executor: applies `f` to every index in `0..len` on the shared
/// worker pool and returns the results in index order.
fn run_indexed<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    if current_num_threads() <= 1 || len == 1 {
        return (0..len).map(f).collect();
    }
    global_pool().run(len, f)
}

/// Parallel view of a slice (from `par_iter()`).
pub struct ParSlice<'a, T> {
    items: &'a [T],
}

/// `par_iter().map(f)` over a slice.
pub struct ParSliceMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync> ParSlice<'a, T> {
    /// Maps every element (lazily; executed by a consuming method).
    pub fn map<R, F>(self, f: F) -> ParSliceMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParSliceMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        run_indexed(self.items.len(), |i| f(&self.items[i]));
    }
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParSliceMap<'a, T, F> {
    /// Executes the map in parallel and collects in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        run_indexed(self.items.len(), |i| (self.f)(&self.items[i]))
            .into_iter()
            .collect()
    }

    /// Executes the map in parallel and sums the results.
    pub fn sum<S: std::iter::Sum<R>>(self) -> S {
        run_indexed(self.items.len(), |i| (self.f)(&self.items[i]))
            .into_iter()
            .sum()
    }
}

/// Parallel iterator over an index range (from `into_par_iter()`).
pub struct ParRange {
    range: std::ops::Range<usize>,
}

/// `into_par_iter().map(f)` over an index range.
pub struct ParRangeMap<F> {
    range: std::ops::Range<usize>,
    f: F,
}

impl ParRange {
    /// Maps every index (lazily; executed by a consuming method).
    pub fn map<R, F>(self, f: F) -> ParRangeMap<F>
    where
        F: Fn(usize) -> R + Sync,
        R: Send,
    {
        ParRangeMap {
            range: self.range,
            f,
        }
    }

    /// Runs `f` on every index in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let base = self.range.start;
        run_indexed(self.range.len(), |i| f(base + i));
    }
}

impl<R: Send, F: Fn(usize) -> R + Sync> ParRangeMap<F> {
    /// Executes the map in parallel and collects in index order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let base = self.range.start;
        run_indexed(self.range.len(), |i| (self.f)(base + i))
            .into_iter()
            .collect()
    }

    /// Executes the map in parallel and sums the results.
    pub fn sum<S: std::iter::Sum<R>>(self) -> S {
        let base = self.range.start;
        run_indexed(self.range.len(), |i| (self.f)(base + i))
            .into_iter()
            .sum()
    }
}

pub mod prelude {
    //! Traits providing `par_iter` / `into_par_iter`, as in real rayon.

    use super::{ParRange, ParSlice};

    /// `par_iter()` for by-reference parallel iteration.
    pub trait IntoParallelRefIterator<'a> {
        /// Element type.
        type Item: 'a;
        /// Parallel view of `self`.
        fn par_iter(&'a self) -> ParSlice<'a, Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;
        fn par_iter(&'a self) -> ParSlice<'a, T> {
            ParSlice { items: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter(&'a self) -> ParSlice<'a, T> {
            ParSlice { items: self }
        }
    }

    /// `into_par_iter()` for by-value parallel iteration.
    pub trait IntoParallelIterator {
        /// The parallel iterator type.
        type Iter;
        /// Converts `self` into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = ParRange;
        fn into_par_iter(self) -> ParRange {
            ParRange { range: self }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::collections::HashSet;
    use std::thread::ThreadId;
    use std::time::Duration;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn join_uses_resident_pool_threads_not_fresh_spawns() {
        if current_num_threads() < 2 {
            return; // single-core runner: join degenerates to sequential
        }
        let caller = std::thread::current().id();
        // With a scoped thread per call, 64 joins could touch 64 distinct
        // worker ids; through the pool, non-caller ids stay within the
        // resident worker set.
        let mut seen: HashSet<ThreadId> = HashSet::new();
        for _ in 0..64 {
            let (_, id) = join(
                || std::thread::sleep(Duration::from_micros(200)),
                || std::thread::current().id(),
            );
            if id != caller {
                seen.insert(id);
            }
        }
        assert!(
            seen.len() <= current_num_threads(),
            "join leaked {} worker threads",
            seen.len()
        );
    }

    #[test]
    fn join_nests_without_deadlock() {
        let (a, sum) = join(|| join(|| 1, || 2), || join(|| 3, || 4).0 + 10);
        assert_eq!((a, sum), ((1, 2), 13));
    }

    #[test]
    fn join_propagates_panics_with_payload() {
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            join(|| 1, || -> i32 { panic!("join boom") })
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "join boom");
        // join still works after a panicked call.
        assert_eq!(join(|| 1, || 2), (1, 2));
    }

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1_000usize).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1_000).map(|x| x * 2).collect::<Vec<_>>());
        let squares: Vec<usize> = (0..257usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, (0..257).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_visits_everything() {
        let sum = AtomicUsize::new(0);
        (0..100usize).into_par_iter().for_each(|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn parallel_sum_matches_sequential() {
        let v: Vec<u64> = (1..=100).collect();
        let s: u64 = v.par_iter().map(|&x| x).sum();
        assert_eq!(s, 5050);
    }

    #[test]
    fn pool_computes_in_index_order() {
        let pool = WorkerPool::new(3);
        let out = pool.run(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        // Second call on the same pool (thread reuse, no respawn).
        let out = pool.run(5, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn pool_reuses_worker_threads_across_calls() {
        let pool = WorkerPool::new(3);
        let caller = std::thread::current().id();
        let run_ids = |pool: &WorkerPool| -> HashSet<ThreadId> {
            let ids: Vec<ThreadId> = pool.run(32, |_| {
                std::thread::sleep(Duration::from_millis(2));
                std::thread::current().id()
            });
            ids.into_iter().filter(|&id| id != caller).collect()
        };
        let mut seen = run_ids(&pool);
        seen.extend(run_ids(&pool));
        // With per-call thread spawning two calls could use up to 6 distinct
        // worker ids; a real pool never exceeds its 3 resident workers.
        assert!(
            seen.len() <= 3,
            "expected at most 3 resident workers, saw {}",
            seen.len()
        );
    }

    #[test]
    fn pool_supports_nested_calls() {
        let pool = WorkerPool::new(2);
        // Every outer item submits its own inner call; caller participation
        // guarantees progress even with all pool workers occupied.
        let out = pool.run(4, |i| pool.run(8, |j| i * 8 + j).iter().sum::<usize>());
        let expect: Vec<usize> = (0..4).map(|i| (0..8).map(|j| i * 8 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn pool_propagates_item_panics() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(16, |i| {
                if i == 7 {
                    panic!("boom");
                }
                i
            })
        }));
        let payload = result.expect_err("panic in an item must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "boom", "original payload must survive the pool hop");
        // The pool stays usable after a panicked call.
        assert_eq!(pool.run(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn work_actually_spreads_across_threads() {
        if current_num_threads() < 2 {
            return; // single-core runner: nothing to check
        }
        let ids: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        (0..64usize).into_par_iter().for_each(|_| {
            std::thread::sleep(Duration::from_millis(2));
            ids.lock().unwrap().insert(std::thread::current().id());
        });
        assert!(ids.lock().unwrap().len() > 1, "expected multiple workers");
    }
}
