//! Offline stand-in for the `rayon` crate.
//!
//! Implements the subset of rayon this workspace uses with genuinely
//! parallel execution:
//!
//! * [`join`] — run two closures concurrently;
//! * [`prelude`] — `par_iter()` on slices/`Vec` and `into_par_iter()` on
//!   `Range<usize>`, with `map(..).collect()`, `for_each`, and `sum`.
//!
//! Scheduling: each parallel call spawns up to [`current_num_threads`]
//! scoped workers that claim items off a shared atomic counter (dynamic
//! load balancing — important here because SND work items vary wildly in
//! cost with `n∆`). Results are written back by item index, so `collect`
//! preserves input order and is deterministic regardless of interleaving.
//!
//! Unlike real rayon there is no global pool: workers are plain scoped
//! threads created per call. The workspace only uses coarse-grained items
//! (an SSSP run or a transportation solve at minimum), so per-call thread
//! setup is noise.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads a parallel call may use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs both closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join closure panicked"))
    })
}

/// Core executor: applies `f` to every index in `0..len` on a dynamic
/// worker pool and returns the results in index order.
fn run_indexed<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let workers = current_num_threads().min(len);
    if workers <= 1 {
        return (0..len).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..len).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= len {
                    break;
                }
                let r = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker skipped an item")
        })
        .collect()
}

/// Parallel view of a slice (from `par_iter()`).
pub struct ParSlice<'a, T> {
    items: &'a [T],
}

/// `par_iter().map(f)` over a slice.
pub struct ParSliceMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync> ParSlice<'a, T> {
    /// Maps every element (lazily; executed by a consuming method).
    pub fn map<R, F>(self, f: F) -> ParSliceMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParSliceMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        run_indexed(self.items.len(), |i| f(&self.items[i]));
    }
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParSliceMap<'a, T, F> {
    /// Executes the map in parallel and collects in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        run_indexed(self.items.len(), |i| (self.f)(&self.items[i]))
            .into_iter()
            .collect()
    }

    /// Executes the map in parallel and sums the results.
    pub fn sum<S: std::iter::Sum<R>>(self) -> S {
        run_indexed(self.items.len(), |i| (self.f)(&self.items[i]))
            .into_iter()
            .sum()
    }
}

/// Parallel iterator over an index range (from `into_par_iter()`).
pub struct ParRange {
    range: std::ops::Range<usize>,
}

/// `into_par_iter().map(f)` over an index range.
pub struct ParRangeMap<F> {
    range: std::ops::Range<usize>,
    f: F,
}

impl ParRange {
    /// Maps every index (lazily; executed by a consuming method).
    pub fn map<R, F>(self, f: F) -> ParRangeMap<F>
    where
        F: Fn(usize) -> R + Sync,
        R: Send,
    {
        ParRangeMap {
            range: self.range,
            f,
        }
    }

    /// Runs `f` on every index in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let base = self.range.start;
        run_indexed(self.range.len(), |i| f(base + i));
    }
}

impl<R: Send, F: Fn(usize) -> R + Sync> ParRangeMap<F> {
    /// Executes the map in parallel and collects in index order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let base = self.range.start;
        run_indexed(self.range.len(), |i| (self.f)(base + i))
            .into_iter()
            .collect()
    }

    /// Executes the map in parallel and sums the results.
    pub fn sum<S: std::iter::Sum<R>>(self) -> S {
        let base = self.range.start;
        run_indexed(self.range.len(), |i| (self.f)(base + i))
            .into_iter()
            .sum()
    }
}

pub mod prelude {
    //! Traits providing `par_iter` / `into_par_iter`, as in real rayon.

    use super::{ParRange, ParSlice};

    /// `par_iter()` for by-reference parallel iteration.
    pub trait IntoParallelRefIterator<'a> {
        /// Element type.
        type Item: 'a;
        /// Parallel view of `self`.
        fn par_iter(&'a self) -> ParSlice<'a, Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;
        fn par_iter(&'a self) -> ParSlice<'a, T> {
            ParSlice { items: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter(&'a self) -> ParSlice<'a, T> {
            ParSlice { items: self }
        }
    }

    /// `into_par_iter()` for by-value parallel iteration.
    pub trait IntoParallelIterator {
        /// The parallel iterator type.
        type Iter;
        /// Converts `self` into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = ParRange;
        fn into_par_iter(self) -> ParRange {
            ParRange { range: self }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1_000usize).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1_000).map(|x| x * 2).collect::<Vec<_>>());
        let squares: Vec<usize> = (0..257usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, (0..257).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sum = AtomicUsize::new(0);
        (0..100usize).into_par_iter().for_each(|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn parallel_sum_matches_sequential() {
        let v: Vec<u64> = (1..=100).collect();
        let s: u64 = v.par_iter().map(|&x| x).sum();
        assert_eq!(s, 5050);
    }

    #[test]
    fn work_actually_spreads_across_threads() {
        if current_num_threads() < 2 {
            return; // single-core runner: nothing to check
        }
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        (0..64usize).into_par_iter().for_each(|_| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            ids.lock().unwrap().insert(std::thread::current().id());
        });
        assert!(ids.lock().unwrap().len() > 1, "expected multiple workers");
    }
}
