//! Schedule-exploration tests of the pool's claim/pending protocol.
//!
//! Run with `cargo test -p rayon --features model`; set
//! `SND_MODEL_CHECK=1` to raise every model to 10 000 seeded
//! interleavings. The production `Task::work` runs unmodified — its
//! Mutex/Condvar/atomics are the instrumented `interleave` ones under
//! this feature, so the scheduler controls every visible step.
#![cfg(feature = "model")]

use rayon::model_support::run_task;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn join_shape_claims_each_item_exactly_once() {
    // rayon::join in miniature: two items, one extra worker racing the
    // submitter for them. Every interleaving must run each item exactly
    // once and complete (no lost `done` notification).
    interleave::explore("pool-join", 0xA11CE, interleave::iterations(300), || {
        let counts: Vec<AtomicUsize> = (0..2).map(|_| AtomicUsize::new(0)).collect();
        let payload = run_task(2, 1, |i| {
            counts[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(payload.is_none(), "no item panicked");
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "item {i} claim count");
        }
    });
}

#[test]
fn nested_tasks_complete_without_deadlock() {
    // Nested fan-out (join inside join): the submitter of the inner task
    // is a pool-side participant of the outer one. The claim protocol
    // must stay live — the inner task always completes on its submitting
    // thread even if no worker picks it up.
    interleave::explore("pool-nested", 0xBEE5, interleave::iterations(200), || {
        let total = Arc::new(AtomicUsize::new(0));
        let t2 = Arc::clone(&total);
        let payload = run_task(2, 1, move |_| {
            let t3 = Arc::clone(&t2);
            let inner = run_task(2, 1, move |_| {
                t3.fetch_add(1, Ordering::SeqCst);
            });
            assert!(inner.is_none());
        });
        assert!(payload.is_none());
        assert_eq!(total.load(Ordering::SeqCst), 4, "2 outer items x 2 inner");
    });
}

#[test]
fn item_panic_is_captured_and_remaining_items_still_run() {
    // The panic-safety guard (`catch_unwind` in `Task::work`): a
    // panicking item must surface as a captured payload while `pending`
    // still drains — otherwise the submitter waits on `done_cv` forever.
    // Mutation check: deleting that guard turns this into a model
    // deadlock (worker dies, `pending` never reaches zero), which the
    // scheduler reports and the test fails.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // silence the expected panics
    let result = std::panic::catch_unwind(|| {
        interleave::explore("pool-panic", 0xDEAD, interleave::iterations(200), || {
            let survivors = AtomicUsize::new(0);
            let payload = run_task(2, 1, |i| {
                if i == 0 {
                    panic!("item 0 exploded");
                }
                survivors.fetch_add(1, Ordering::SeqCst);
            });
            let payload = payload.expect("the item panic must be captured");
            assert_eq!(
                payload.downcast_ref::<&str>(),
                Some(&"item 0 exploded"),
                "original payload survives the pool hop"
            );
            assert_eq!(survivors.load(Ordering::SeqCst), 1, "item 1 still ran");
        });
    });
    std::panic::set_hook(prev_hook);
    if let Err(p) = result {
        std::panic::resume_unwind(p);
    }
}
