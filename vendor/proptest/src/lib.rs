//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`, range strategies,
//! [`collection::vec`], the `proptest!` test-definition macro with
//! `#![proptest_config(...)]`, and `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from the real crate: case generation is a fixed
//! deterministic stream (no persisted failure seeds) and failing cases are
//! reported without shrinking. Both are acceptable trade-offs for an
//! offline CI environment; test semantics (N random cases through the same
//! assertions) are unchanged.

use rand::Rng;

pub mod test_runner {
    //! The deterministic generator behind `proptest!` cases.

    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic RNG driving strategy generation.
    pub struct TestRng(SmallRng);

    impl TestRng {
        /// A fixed-seed generator: every run explores the same cases.
        pub fn deterministic() -> Self {
            TestRng(SmallRng::seed_from_u64(0x70726f70_74657374))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Run-time configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut test_runner::TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields clones of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut test_runner::TestRng) -> T {
        self.0.clone()
    }
}

impl<T: rand::SampleUniform + Copy> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: rand::SampleUniform + Copy> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{test_runner::TestRng, Strategy};
    use rand::Rng;

    /// Accepted vector lengths: a fixed size or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(!r.is_empty(), "empty vec length range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    /// Strategy for vectors of `element` draws with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The [`vec`] strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a `proptest!` test file needs.

    pub use crate::{prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy};
}

/// Defines property tests: N deterministic random cases per test, each
/// binding `name in strategy` arguments before running the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic();
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| -> ::std::result::Result<(), ::std::string::String> {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        ::std::panic!("proptest case {} failed: {}", __case, __msg);
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports the failing case instead of unwinding directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if __a != __b {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {:?} != {:?}", __a, __b),
            );
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if __a != __b {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {:?} != {:?}: {}",
                __a,
                __b,
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, u32)> {
        (0u32..50).prop_map(|a| (a, a + 1))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u64..10, y in -1i8..=1) {
            prop_assert!(x < 10);
            prop_assert!((-1..=1).contains(&y), "y = {y}");
        }

        #[test]
        fn vec_strategy_has_requested_length(v in crate::collection::vec(0u32..5, 7)) {
            prop_assert_eq!(v.len(), 7);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn prop_map_applies(p in arb_pair()) {
            prop_assert_eq!(p.0 + 1, p.1);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case 0 failed")]
    fn failing_case_reports() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            #[allow(unused)]
            fn inner(x in 0u32..5) {
                prop_assert!(x > 100, "x = {x}");
            }
        }
        inner();
    }
}
