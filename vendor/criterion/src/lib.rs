//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion 0.5 API this workspace's benches
//! use — `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, `black_box` —
//! with a straightforward measurement loop: a warmup phase sizes the
//! per-sample iteration count, then `sample_size` samples are timed and
//! min/mean/max per-iteration times are printed.
//!
//! Results additionally accumulate into a process-global list so a bench
//! binary can post-process its own measurements (see
//! [`take_measurements`]) — the hook the repo uses to write bench-history
//! JSON artifacts.

use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// True when the bench binary was invoked with `--test` (as with real
/// criterion via `cargo bench -- --test`): every routine runs exactly once
/// as a smoke check and nothing is measured or recorded.
pub fn is_test_mode() -> bool {
    static MODE: OnceLock<bool> = OnceLock::new();
    *MODE.get_or_init(|| std::env::args().any(|a| a == "--test"))
}

/// One recorded measurement, exposed via [`take_measurements`].
#[derive(Clone, Debug)]
pub struct Measurement {
    /// `group/function/param` identifier.
    pub id: String,
    /// Mean seconds per iteration.
    pub mean_s: f64,
    /// Fastest sample, seconds per iteration.
    pub min_s: f64,
    /// Slowest sample, seconds per iteration.
    pub max_s: f64,
    /// Samples taken.
    pub samples: usize,
}

static MEASUREMENTS: Mutex<Vec<Measurement>> = Mutex::new(Vec::new());

/// Drains every measurement recorded so far in this process.
pub fn take_measurements() -> Vec<Measurement> {
    std::mem::take(&mut MEASUREMENTS.lock().expect("measurement log poisoned"))
}

/// Parameterized benchmark identifier (`name/param`).
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds `name/param`.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), param),
        }
    }

    /// A bare-parameter id (criterion's `from_parameter`).
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: param.to_string(),
        }
    }
}

/// Anything usable as a benchmark id: a string or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The `group/...` suffix for this id.
    fn into_id_string(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id_string(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_id_string(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id_string(self) -> String {
        self
    }
}

/// The timing loop driver passed to benchmark closures.
pub struct Bencher<'a> {
    cfg: &'a GroupConfig,
    id: String,
}

impl Bencher<'_> {
    /// Times `routine`, printing and recording per-iteration statistics.
    /// In `--test` mode ([`is_test_mode`]) the routine runs once, unmeasured.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        if is_test_mode() {
            black_box(routine());
            println!("{:<48} (smoke: 1 iteration, --test mode)", self.id);
            return;
        }
        // Warmup: run until the warmup budget is spent, counting runs to
        // size each measured sample at roughly sample_budget time.
        let warmup_budget = self.cfg.warmup_time;
        let start = Instant::now();
        let mut warmup_runs = 0u64;
        while start.elapsed() < warmup_budget || warmup_runs == 0 {
            black_box(routine());
            warmup_runs += 1;
            if warmup_runs >= 1_000_000 {
                break;
            }
        }
        let per_run = start.elapsed().as_secs_f64() / warmup_runs as f64;
        let samples = self.cfg.sample_size.max(2);
        let sample_budget = self.cfg.measurement_time.as_secs_f64() / samples as f64;
        let iters_per_sample = ((sample_budget / per_run.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            times.push(t0.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let min = times.iter().copied().fold(f64::INFINITY, f64::min);
        let max = times.iter().copied().fold(0.0f64, f64::max);
        println!(
            "{:<48} time: [{} {} {}]  ({} samples x {} iters)",
            self.id,
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max),
            samples,
            iters_per_sample
        );
        MEASUREMENTS
            .lock()
            .expect("measurement log poisoned")
            .push(Measurement {
                id: self.id.clone(),
                mean_s: mean,
                min_s: min,
                max_s: max,
                samples,
            });
    }
}

fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

#[derive(Clone)]
struct GroupConfig {
    sample_size: usize,
    measurement_time: Duration,
    warmup_time: Duration,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warmup_time: Duration::from_millis(500),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    cfg: GroupConfig,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Sets the warmup budget per benchmark.
    pub fn warmup_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.warmup_time = d;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            cfg: &self.cfg,
            id: format!("{}/{}", self.name, id.into_id_string()),
        };
        f(&mut b);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            cfg: &self.cfg,
            id: format!("{}/{}", self.name, id.into_id_string()),
        };
        f(&mut b, input);
        self
    }

    /// Ends the group (reporting is immediate, so this is a marker).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            cfg: GroupConfig::default(),
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let cfg = GroupConfig::default();
        let mut b = Bencher {
            cfg: &cfg,
            id: id.into_id_string(),
        };
        f(&mut b);
        self
    }
}

/// Declares a group of benchmark functions (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main` (criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_loop_records_measurements() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("unit");
            g.sample_size(3)
                .measurement_time(Duration::from_millis(30))
                .warmup_time(Duration::from_millis(5));
            g.bench_with_input(BenchmarkId::new("add", 1), &1u64, |b, &x| {
                b.iter(|| black_box(x) + 1)
            });
            g.finish();
        }
        let ms = take_measurements();
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].id, "unit/add/1");
        assert!(ms[0].mean_s >= 0.0 && ms[0].min_s <= ms[0].max_s);
        assert!(take_measurements().is_empty(), "drained");
    }
}
