//! Loom-style schedule exploration for the workspace's hand-rolled
//! concurrency (the vendored rayon pool, the `RowCache` plane protocol,
//! the delta generation-counter reuse path).
//!
//! A *model run* executes a closure on real OS threads, but with every
//! synchronization operation routed through a cooperative scheduler that
//! lets exactly one thread run at a time and picks the next runnable
//! thread with a seeded RNG at every instrumented step. Re-running the
//! same closure under thousands of seeds explores thousands of distinct
//! interleavings; any assertion failure, deadlock, or livelock is
//! reported with the seed that produced it, so failures replay
//! deterministically.
//!
//! Instrumented primitives ([`sync::Mutex`], [`sync::Condvar`],
//! [`sync::OnceCell`], [`sync::atomic`]) are drop-in shaped like their
//! `std::sync` counterparts. Outside a model run they pass straight
//! through to `std`, which is what lets production code (the rayon pool)
//! alias them behind a `model` cfg feature without behavior change for
//! ordinary builds.
//!
//! Scale the exploration with `SND_MODEL_CHECK=1` (10 000 iterations per
//! model — see [`iterations`]); the default is a CI-friendly bound.

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, OnceLock};

/// Iterations run when `SND_MODEL_CHECK` is set (the "full shake").
pub const FULL_ITERATIONS: usize = 10_000;

/// Per-iteration scheduling-step bound; exceeding it means a livelock
/// (threads keep running without the model terminating).
const STEP_LIMIT: u64 = 1_000_000;

/// Number of iterations a model test should run: [`FULL_ITERATIONS`] when
/// the `SND_MODEL_CHECK` environment variable is set to anything
/// non-empty other than `0`, else `default_iters`.
pub fn iterations(default_iters: usize) -> usize {
    match std::env::var("SND_MODEL_CHECK") {
        Ok(v) if !v.is_empty() && v != "0" => FULL_ITERATIONS,
        _ => default_iters,
    }
}

/// What a model thread is currently allowed to do.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Run {
    /// Eligible to be scheduled.
    Runnable,
    /// Blocked acquiring the mutex with this resource id.
    Mutex(usize),
    /// Waiting on the condvar with this id.
    Cv(usize),
    /// Waiting for the thread with this index to finish.
    Join(usize),
    /// Done; never scheduled again.
    Finished,
}

struct Sched {
    rng: u64,
    threads: Vec<Run>,
    /// Mutex owners by resource id (`None` = free).
    owners: Vec<Option<usize>>,
    /// Next condvar id to hand out (waiters live in `threads`).
    next_cv: usize,
    /// The one thread allowed to run right now.
    current: usize,
    steps: u64,
    /// First failure (deadlock, livelock, panic); fails the whole run.
    failure: Option<String>,
}

impl Sched {
    /// xorshift64* step — deterministic per seed, cheap, stateless.
    fn next_rand(&mut self, n: usize) -> usize {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        ((x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) as usize) % n
    }

    /// Picks the next thread to run uniformly among runnable ones. If
    /// nothing is runnable but threads remain, the model has deadlocked.
    fn pick(&mut self) {
        self.steps += 1;
        if self.steps > STEP_LIMIT && self.failure.is_none() {
            self.failure = Some(format!(
                "livelock: model exceeded {STEP_LIMIT} scheduling steps"
            ));
            return;
        }
        let runnable: Vec<usize> = self
            .threads
            .iter()
            .enumerate()
            .filter(|&(_, r)| *r == Run::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if self.failure.is_none() && self.threads.iter().any(|r| *r != Run::Finished) {
                self.failure = Some(format!(
                    "deadlock: no runnable thread (states: {:?})",
                    self.threads
                ));
            }
            return;
        }
        let k = self.next_rand(runnable.len());
        self.current = runnable[k];
    }
}

/// Shared scheduler state of one model run.
struct Inner {
    state: StdMutex<Sched>,
    cv: StdCondvar,
}

thread_local! {
    /// The model run this OS thread belongs to, if any. `None` means all
    /// instrumented primitives pass through to `std`.
    static CURRENT: RefCell<Option<(Arc<Inner>, usize)>> = const { RefCell::new(None) };
}

fn current_model() -> Option<(Arc<Inner>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

impl Inner {
    fn locked(&self) -> std::sync::MutexGuard<'_, Sched> {
        self.state.lock().expect("model scheduler poisoned")
    }

    /// Blocks the calling model thread until the scheduler hands it the
    /// token again (`current == me` and `Runnable`). Propagates a model
    /// failure by panicking on every thread so the run unwinds.
    fn park<'a>(
        &'a self,
        me: usize,
        mut s: std::sync::MutexGuard<'a, Sched>,
    ) -> std::sync::MutexGuard<'a, Sched> {
        self.cv.notify_all();
        loop {
            if let Some(msg) = &s.failure {
                let msg = msg.clone();
                drop(s);
                self.cv.notify_all();
                panic!("{msg}");
            }
            if s.current == me && s.threads[me] == Run::Runnable {
                return s;
            }
            s = self.cv.wait(s).expect("model scheduler poisoned");
        }
    }

    /// A plain scheduling point: give every other runnable thread a
    /// chance to be picked before the caller's next step.
    fn yield_point(&self, me: usize) {
        let mut s = self.locked();
        s.pick();
        drop(self.park(me, s));
    }

    fn alloc_mutex(&self) -> usize {
        let mut s = self.locked();
        s.owners.push(None);
        s.owners.len() - 1
    }

    fn alloc_cv(&self) -> usize {
        let mut s = self.locked();
        s.next_cv += 1;
        s.next_cv - 1
    }

    /// Acquires logical ownership of mutex `res`, blocking through the
    /// scheduler (never through the OS) so a held lock only suspends the
    /// model thread, not the whole model.
    fn acquire(&self, me: usize, res: usize) {
        let mut s = self.locked();
        loop {
            if s.owners[res].is_none() {
                s.owners[res] = Some(me);
                return;
            }
            s.threads[me] = Run::Mutex(res);
            s.pick();
            s = self.park(me, s);
        }
    }

    /// Releases mutex `res` and wakes its waiters; also a scheduling
    /// point (unlock is where races become visible).
    fn release(&self, me: usize, res: usize) {
        let mut s = self.locked();
        debug_assert_eq!(s.owners[res], Some(me), "release by non-owner");
        s.owners[res] = None;
        for r in s.threads.iter_mut() {
            if *r == Run::Mutex(res) {
                *r = Run::Runnable;
            }
        }
        s.pick();
        drop(self.park(me, s));
    }

    /// Condvar wait: atomically release `res`, sleep on `cv` until
    /// notified, then reacquire `res`.
    fn cv_wait(&self, me: usize, cv: usize, res: usize) {
        let mut s = self.locked();
        debug_assert_eq!(s.owners[res], Some(me), "wait without the lock");
        s.owners[res] = None;
        for r in s.threads.iter_mut() {
            if *r == Run::Mutex(res) {
                *r = Run::Runnable;
            }
        }
        s.threads[me] = Run::Cv(cv);
        s.pick();
        s = self.park(me, s);
        // Notified: reacquire the mutex before returning, as std does.
        loop {
            if s.owners[res].is_none() {
                s.owners[res] = Some(me);
                return;
            }
            s.threads[me] = Run::Mutex(res);
            s.pick();
            s = self.park(me, s);
        }
    }

    /// Wakes waiters of `cv` (`all` = notify_all vs notify_one) — a
    /// scheduling point like any other visible effect.
    fn cv_notify(&self, me: usize, cv: usize, all: bool) {
        let mut s = self.locked();
        for r in s.threads.iter_mut() {
            if *r == Run::Cv(cv) {
                *r = Run::Runnable;
                if !all {
                    break;
                }
            }
        }
        s.pick();
        drop(self.park(me, s));
    }

    /// Registers a new model thread, initially runnable.
    fn register(&self) -> usize {
        let mut s = self.locked();
        s.threads.push(Run::Runnable);
        s.threads.len() - 1
    }

    /// First schedule-in of a freshly spawned thread.
    fn wait_first(&self, me: usize) {
        let s = self.locked();
        drop(self.park(me, s));
    }

    /// Marks `me` finished, wakes joiners, and hands the token on.
    fn finish(&self, me: usize, panic_msg: Option<String>) {
        let mut s = self.locked();
        s.threads[me] = Run::Finished;
        if let Some(msg) = panic_msg {
            if s.failure.is_none() {
                s.failure = Some(msg);
            }
        }
        for r in s.threads.iter_mut() {
            if *r == Run::Join(me) {
                *r = Run::Runnable;
            }
        }
        s.pick();
        drop(s);
        self.cv.notify_all();
    }

    /// Model-side join: block until `target` finishes.
    fn join_thread(&self, me: usize, target: usize) {
        let mut s = self.locked();
        while s.threads[target] != Run::Finished {
            s.threads[me] = Run::Join(target);
            s.pick();
            s = self.park(me, s);
        }
    }
}

/// Model-aware threads. Outside a model run these are plain
/// `std::thread` spawns.
pub mod thread {
    use super::*;

    /// Handle to a model (or plain) thread.
    pub struct JoinHandle<T> {
        inner: std::thread::JoinHandle<T>,
        /// `(model, target thread index)` when spawned inside a model.
        model: Option<(Arc<Inner>, usize)>,
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread. In a model run the wait is a scheduler
        /// blocking state, so other threads keep interleaving.
        pub fn join(self) -> std::thread::Result<T> {
            if let Some((inner, target)) = &self.model {
                let (_, me) = current_model().expect("model join from non-model thread");
                inner.join_thread(me, *target);
            }
            self.inner.join()
        }
    }

    /// Spawns a thread. Inside a model run the new thread participates in
    /// the schedule (it runs only when the scheduler picks it); outside,
    /// this is `std::thread::spawn`.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match current_model() {
            Some((inner, _me)) => {
                let tid = inner.register();
                let inner2 = Arc::clone(&inner);
                let handle = std::thread::spawn(move || {
                    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&inner2), tid)));
                    inner2.wait_first(tid);
                    let result = catch_unwind(AssertUnwindSafe(f));
                    let panic_msg = result.as_ref().err().map(|p| {
                        let what = p
                            .downcast_ref::<String>()
                            .map(String::as_str)
                            .or_else(|| p.downcast_ref::<&str>().copied())
                            .unwrap_or("opaque panic payload");
                        format!("model thread {tid} panicked: {what}")
                    });
                    inner2.finish(tid, panic_msg);
                    CURRENT.with(|c| *c.borrow_mut() = None);
                    match result {
                        Ok(v) => v,
                        Err(p) => resume_unwind(p),
                    }
                });
                JoinHandle {
                    inner: handle,
                    model: Some((inner, tid)),
                }
            }
            None => JoinHandle {
                inner: std::thread::spawn(f),
                model: None,
            },
        }
    }

    /// An explicit scheduling point — useful in spin-style loops so the
    /// scheduler can interleave other threads.
    pub fn yield_now() {
        if let Some((inner, me)) = current_model() {
            inner.yield_point(me);
        } else {
            std::thread::yield_now();
        }
    }
}

/// Runs `f` once under the model scheduler with the given seed. `f` runs
/// on the calling thread (registered as model thread 0) and may spawn
/// further model threads via [`thread::spawn`]; it must join them all
/// before returning. Panics (with the failure message) on deadlock,
/// livelock, or any thread panic.
pub fn check_with_seed<F: FnOnce()>(seed: u64, f: F) {
    let inner = Arc::new(Inner {
        state: StdMutex::new(Sched {
            // xorshift must never be seeded with 0.
            rng: seed | 1,
            threads: vec![Run::Runnable],
            owners: Vec::new(),
            next_cv: 0,
            current: 0,
            steps: 0,
            failure: None,
        }),
        cv: StdCondvar::new(),
    });
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&inner), 0)));
    let result = catch_unwind(AssertUnwindSafe(f));
    CURRENT.with(|c| *c.borrow_mut() = None);
    {
        // Unblock any stragglers (they will observe the failure and
        // unwind) so their OS threads do not hang around.
        let mut s = inner.locked();
        if result.is_err() && s.failure.is_none() {
            s.failure = Some("model main thread panicked".to_string());
        }
        s.threads[0] = Run::Finished;
        drop(s);
        inner.cv.notify_all();
    }
    let failure = inner.locked().failure.clone();
    match result {
        Err(p) => {
            if let Some(msg) = failure {
                panic!("{msg}");
            }
            resume_unwind(p);
        }
        Ok(()) => {
            if let Some(msg) = failure {
                panic!("{msg}");
            }
            let leaked = inner
                .locked()
                .threads
                .iter()
                .skip(1)
                .any(|r| *r != Run::Finished);
            assert!(!leaked, "model closure returned with live model threads");
        }
    }
}

/// Explores `iters` seeded interleavings of `f`. On failure, re-panics
/// with the failing iteration and seed so the schedule replays exactly.
pub fn explore<F: Fn() + Sync>(name: &str, base_seed: u64, iters: usize, f: F) {
    for i in 0..iters {
        let seed = base_seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        if let Err(p) = catch_unwind(AssertUnwindSafe(|| check_with_seed(seed, &f))) {
            eprintln!("model '{name}' failed at iteration {i}/{iters} (seed {seed:#x})");
            resume_unwind(p);
        }
    }
}

/// Drop-in shaped instrumented `std::sync` primitives.
pub mod sync {
    use super::*;

    /// Error type kept for `.lock().expect(...)` call-site compatibility;
    /// the model never poisons.
    #[derive(Debug)]
    pub struct PoisonError;

    /// A mutex whose blocking goes through the model scheduler when the
    /// calling thread is part of a model run, and through `std` otherwise.
    pub struct Mutex<T> {
        inner: StdMutex<T>,
        id: OnceLock<usize>,
    }

    /// RAII guard; logical release (and a scheduling point) on drop.
    pub struct MutexGuard<'a, T> {
        mx: &'a Mutex<T>,
        g: Option<std::sync::MutexGuard<'a, T>>,
        model: Option<(Arc<Inner>, usize, usize)>,
    }

    impl<T> Mutex<T> {
        pub const fn new(value: T) -> Self {
            Mutex {
                inner: StdMutex::new(value),
                id: OnceLock::new(),
            }
        }

        fn model_id(&self, inner: &Arc<Inner>) -> usize {
            *self.id.get_or_init(|| inner.alloc_mutex())
        }

        pub fn lock(&self) -> Result<MutexGuard<'_, T>, PoisonError> {
            match current_model() {
                Some((inner, me)) => {
                    let id = self.model_id(&inner);
                    inner.yield_point(me);
                    inner.acquire(me, id);
                    // The model serializes threads, so with logical
                    // ownership held the std lock is always free.
                    let g = self
                        .inner
                        .try_lock()
                        .expect("model owns the logical lock but std lock is held");
                    Ok(MutexGuard {
                        mx: self,
                        g: Some(g),
                        model: Some((inner, me, id)),
                    })
                }
                None => match self.inner.lock() {
                    Ok(g) => Ok(MutexGuard {
                        mx: self,
                        g: Some(g),
                        model: None,
                    }),
                    Err(_) => Err(PoisonError),
                },
            }
        }

        pub fn into_inner(self) -> Result<T, PoisonError> {
            self.inner.into_inner().map_err(|_| PoisonError)
        }
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.g.as_ref().expect("guard holds the lock")
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.g.as_mut().expect("guard holds the lock")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            // Order matters: free the std lock before the logical release
            // hands the token to a thread that will try_lock it.
            self.g = None;
            if let Some((inner, me, id)) = self.model.take() {
                if std::thread::panicking() {
                    // Release without a scheduling point: a panicking
                    // thread must not park itself.
                    let mut s = inner.locked();
                    s.owners[id] = None;
                    for r in s.threads.iter_mut() {
                        if *r == Run::Mutex(id) {
                            *r = Run::Runnable;
                        }
                    }
                    drop(s);
                    inner.cv.notify_all();
                } else {
                    inner.release(me, id);
                }
            }
        }
    }

    /// Condvar counterpart to [`Mutex`]; same pass-through rule.
    pub struct Condvar {
        inner: StdCondvar,
        id: OnceLock<usize>,
    }

    impl Condvar {
        pub const fn new() -> Self {
            Condvar {
                inner: StdCondvar::new(),
                id: OnceLock::new(),
            }
        }

        pub fn wait<'a, T>(
            &self,
            mut guard: MutexGuard<'a, T>,
        ) -> Result<MutexGuard<'a, T>, PoisonError> {
            match guard.model.take() {
                Some((inner, me, res)) => {
                    let cv = *self.id.get_or_init(|| inner.alloc_cv());
                    guard.g = None;
                    inner.cv_wait(me, cv, res);
                    let g = guard
                        .mx
                        .inner
                        .try_lock()
                        .expect("model owns the logical lock but std lock is held");
                    guard.g = Some(g);
                    guard.model = Some((inner, me, res));
                    Ok(guard)
                }
                None => {
                    let g = guard.g.take().expect("guard holds the lock");
                    match self.inner.wait(g) {
                        Ok(g) => {
                            guard.g = Some(g);
                            Ok(guard)
                        }
                        Err(_) => Err(PoisonError),
                    }
                }
            }
        }

        pub fn notify_all(&self) {
            if let Some((inner, me)) = current_model() {
                let cv = *self.id.get_or_init(|| inner.alloc_cv());
                inner.cv_notify(me, cv, true);
            } else {
                self.inner.notify_all();
            }
        }

        pub fn notify_one(&self) {
            if let Some((inner, me)) = current_model() {
                let cv = *self.id.get_or_init(|| inner.alloc_cv());
                inner.cv_notify(me, cv, false);
            } else {
                self.inner.notify_one();
            }
        }
    }

    impl Default for Condvar {
        fn default() -> Self {
            Self::new()
        }
    }

    /// `OnceLock`-shaped once-cell over the instrumented [`Mutex`], for
    /// modeling lazy-init protocols (the `RowCache` planes).
    pub struct OnceCell<T> {
        slot: Mutex<Option<T>>,
    }

    impl<T> OnceCell<T> {
        pub const fn new() -> Self {
            OnceCell {
                slot: Mutex::new(None),
            }
        }

        /// First caller's `init` runs (under the cell's lock, like
        /// `std::sync::OnceLock`); everyone else gets the stored value.
        pub fn get_or_init_with<R>(&self, init: impl FnOnce() -> T, read: impl Fn(&T) -> R) -> R {
            let mut slot = self.slot.lock().expect("once cell poisoned");
            if slot.is_none() {
                *slot = Some(init());
            }
            read(slot.as_ref().expect("just initialized"))
        }
    }

    impl<T> Default for OnceCell<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    /// Instrumented atomics: every operation is a scheduling point, then
    /// delegates to the real atomic (the model serializes threads, so the
    /// delegation is trivially linearizable).
    pub mod atomic {
        use super::super::current_model;
        pub use std::sync::atomic::Ordering;
        use std::sync::atomic::{
            AtomicBool as StdAtomicBool, AtomicU64 as StdAtomicU64, AtomicUsize as StdAtomicUsize,
        };

        fn point() {
            if let Some((inner, me)) = current_model() {
                inner.yield_point(me);
            }
        }

        macro_rules! instrumented_atomic {
            ($name:ident, $std:ident, $ty:ty) => {
                pub struct $name {
                    v: $std,
                }

                impl $name {
                    pub const fn new(v: $ty) -> Self {
                        $name { v: $std::new(v) }
                    }
                    pub fn load(&self, o: Ordering) -> $ty {
                        point();
                        self.v.load(o)
                    }
                    pub fn store(&self, val: $ty, o: Ordering) {
                        point();
                        self.v.store(val, o)
                    }
                }
            };
        }

        instrumented_atomic!(AtomicUsize, StdAtomicUsize, usize);
        instrumented_atomic!(AtomicU64, StdAtomicU64, u64);
        instrumented_atomic!(AtomicBool, StdAtomicBool, bool);

        impl AtomicUsize {
            pub fn fetch_add(&self, val: usize, o: Ordering) -> usize {
                point();
                self.v.fetch_add(val, o)
            }
            pub fn fetch_sub(&self, val: usize, o: Ordering) -> usize {
                point();
                self.v.fetch_sub(val, o)
            }
        }

        impl AtomicU64 {
            pub fn fetch_add(&self, val: u64, o: Ordering) -> u64 {
                point();
                self.v.fetch_add(val, o)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Condvar, Mutex};
    use super::*;
    use std::sync::Arc;

    #[test]
    fn passthrough_outside_model() {
        let m = Mutex::new(1);
        *m.lock().expect("lock") += 1;
        assert_eq!(*m.lock().expect("lock"), 2);
        let a = AtomicUsize::new(0);
        a.fetch_add(3, Ordering::SeqCst);
        assert_eq!(a.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn counter_increments_are_serialized() {
        explore("counter", 7, 50, || {
            let n = Arc::new(AtomicUsize::new(0));
            let hs: Vec<_> = (0..3)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        n.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in hs {
                h.join().expect("worker");
            }
            assert_eq!(n.load(Ordering::SeqCst), 3);
        });
    }

    #[test]
    fn mutex_protects_nonatomic_rmw() {
        explore("mutex-rmw", 11, 50, || {
            let m = Arc::new(Mutex::new(0u32));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let m = Arc::clone(&m);
                    thread::spawn(move || {
                        let mut g = m.lock().expect("lock");
                        let v = *g;
                        *g = v + 1;
                    })
                })
                .collect();
            for h in hs {
                h.join().expect("worker");
            }
            assert_eq!(*m.lock().expect("lock"), 2);
        });
    }

    #[test]
    fn condvar_handoff_completes() {
        explore("cv-handoff", 13, 50, || {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = Arc::clone(&pair);
            let h = thread::spawn(move || {
                let (m, cv) = &*p2;
                *m.lock().expect("lock") = true;
                cv.notify_all();
            });
            let (m, cv) = &*pair;
            let mut done = m.lock().expect("lock");
            while !*done {
                done = cv.wait(done).expect("wait");
            }
            drop(done);
            h.join().expect("setter");
        });
    }

    #[test]
    fn deadlock_is_detected() {
        // Waiting on a condvar nobody ever notifies must be reported as a
        // deadlock, not hang the test suite.
        let r = std::panic::catch_unwind(|| {
            check_with_seed(3, || {
                let pair = Arc::new((Mutex::new(false), Condvar::new()));
                let p2 = Arc::clone(&pair);
                let h = thread::spawn(move || {
                    let (m, cv) = &*p2;
                    let mut flagged = m.lock().expect("lock");
                    while !*flagged {
                        flagged = cv.wait(flagged).expect("wait");
                    }
                });
                h.join().expect("waiter");
            });
        });
        let msg = *r.expect_err("must fail").downcast::<String>().expect("msg");
        assert!(msg.contains("deadlock"), "got: {msg}");
    }

    #[test]
    fn lost_update_race_is_found() {
        // The canonical bug the scheduler must be able to expose: an
        // unsynchronized read-modify-write losing an increment under at
        // least one interleaving.
        let mut lost = false;
        for seed in 0..200u64 {
            let r = std::panic::catch_unwind(|| {
                check_with_seed(seed, || {
                    let n = Arc::new(AtomicUsize::new(0));
                    let hs: Vec<_> = (0..2)
                        .map(|_| {
                            let n = Arc::clone(&n);
                            thread::spawn(move || {
                                let v = n.load(Ordering::SeqCst);
                                n.store(v + 1, Ordering::SeqCst);
                            })
                        })
                        .collect();
                    for h in hs {
                        h.join().expect("worker");
                    }
                    assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
                });
            });
            if r.is_err() {
                lost = true;
                break;
            }
        }
        assert!(lost, "scheduler never exposed the lost-update interleaving");
    }
}
