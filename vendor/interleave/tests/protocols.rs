//! Schedule-exploration models of the workspace's two lazy-reuse
//! protocols, mirrored step for step from the production sources:
//!
//! * `crates/core/src/sparse.rs` — `RowCache::get_or_compute`: a lazily
//!   allocated once-plane of once-slots plus a `computed` counter;
//! * `crates/core/src/delta.rs` — `OpGeometry::advanced`: Arc'd cluster
//!   rows carried across bundles, tagged with generations from an atomic
//!   counter (`ROW_GEN`), where equal generations must mean the same Arc.
//!
//! `SND_MODEL_CHECK=1` raises each model to 10 000 seeded interleavings.

use interleave::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use interleave::sync::OnceCell;
use interleave::{explore, iterations, thread};
use std::sync::Arc;

/// `RowCache` in miniature: one plane (`OnceLock<Box<[RowSlot]>>` in
/// production) of per-row once-slots, plus the `computed` statistics
/// counter. Values stand in for clamped SSSP rows.
struct MiniRowCache {
    plane: OnceCell<Vec<Arc<OnceCell<u32>>>>,
    plane_allocs: AtomicUsize,
    computed: AtomicUsize,
}

impl MiniRowCache {
    fn new() -> Self {
        MiniRowCache {
            plane: OnceCell::new(),
            plane_allocs: AtomicUsize::new(0),
            computed: AtomicUsize::new(0),
        }
    }

    /// Mirrors `RowCache::get_or_compute`: init the plane on first touch,
    /// then init the row slot on first touch, bumping `computed` inside
    /// the slot init exactly as production does.
    fn get_or_compute(&self, rows: usize, row: usize, row_computes: &AtomicUsize) -> u32 {
        let slot = self.plane.get_or_init_with(
            || {
                self.plane_allocs.fetch_add(1, Ordering::SeqCst);
                (0..rows).map(|_| Arc::new(OnceCell::new())).collect()
            },
            |v| Arc::clone(&v[row]),
        );
        slot.get_or_init_with(
            || {
                self.computed.fetch_add(1, Ordering::SeqCst);
                row_computes.fetch_add(1, Ordering::SeqCst);
                row as u32 * 10 + 7 // stands in for the SSSP row
            },
            |&v| v,
        )
    }
}

#[test]
fn row_cache_plane_and_rows_initialize_exactly_once() {
    explore("rowcache-planes", 0x5EED, iterations(300), || {
        let cache = Arc::new(MiniRowCache::new());
        let row_computes: Arc<Vec<AtomicUsize>> =
            Arc::new((0..2).map(|_| AtomicUsize::new(0)).collect());
        // Three threads race the same plane; two also race the same row.
        let handles: Vec<_> = [0usize, 0, 1]
            .into_iter()
            .map(|row| {
                let cache = Arc::clone(&cache);
                let counts = Arc::clone(&row_computes);
                thread::spawn(move || cache.get_or_compute(2, row, &counts[row]))
            })
            .collect();
        let values: Vec<u32> = handles
            .into_iter()
            .map(|h| h.join().expect("reader"))
            .collect();
        // No double-init anywhere: one plane allocation, one compute per
        // distinct row, and every racer observed the computed value.
        assert_eq!(cache.plane_allocs.load(Ordering::SeqCst), 1);
        assert_eq!(row_computes[0].load(Ordering::SeqCst), 1);
        assert_eq!(row_computes[1].load(Ordering::SeqCst), 1);
        assert_eq!(cache.computed.load(Ordering::SeqCst), 2);
        assert_eq!(values, vec![7, 7, 17]);
    });
}

/// One cluster's step in `OpGeometry::advanced`: either the change batch
/// fires (repair: clone the row, mutate, take a *fresh* generation from
/// the shared counter) or it provably cannot (reuse: carry the `Arc` and
/// its generation forward untouched).
fn advance_cluster(
    prev: &(Arc<Vec<u32>>, u64),
    fires: bool,
    gen_counter: &AtomicU64,
) -> (Arc<Vec<u32>>, u64) {
    if fires {
        let mut row = (*prev.0).clone();
        for d in row.iter_mut() {
            *d += 1; // stands in for repair_row
        }
        // The load-bearing bump: `next_row_gen()` in production. Mutation
        // check — replacing `fetch_add(1) + 1` with a plain `load` (a
        // lost bump) hands two repaired clusters the same generation for
        // different rows, and the aliasing assertion below goes red.
        (
            Arc::new(row),
            gen_counter.fetch_add(1, Ordering::SeqCst) + 1,
        )
    } else {
        (Arc::clone(&prev.0), prev.1)
    }
}

#[test]
fn generation_reuse_never_aliases_distinct_rows() {
    explore("delta-gens", 0xD117A, iterations(300), || {
        // Previous bundle: three clusters tagged 1..=3, counter beyond
        // every issued tag — as after `OpGeometry::fresh`.
        let gen_counter = Arc::new(AtomicU64::new(3));
        let prev: Arc<Vec<(Arc<Vec<u32>>, u64)>> = Arc::new(
            (0..3u64)
                .map(|c| (Arc::new(vec![c as u32 * 100]), c + 1))
                .collect(),
        );
        // Clusters 0 and 2 fire, cluster 1 reuses — one model thread per
        // cluster, like the `into_par_iter` fan-out in `advanced`.
        let handles: Vec<_> = [true, false, true]
            .into_iter()
            .enumerate()
            .map(|(c, fires)| {
                let prev = Arc::clone(&prev);
                let ctr = Arc::clone(&gen_counter);
                thread::spawn(move || advance_cluster(&prev[c], fires, &ctr))
            })
            .collect();
        let next: Vec<(Arc<Vec<u32>>, u64)> = handles
            .into_iter()
            .map(|h| h.join().expect("cluster worker"))
            .collect();

        // The reuse invariant (the `debug_assert` in `advanced`): equal
        // generations always mean the same Arc — across the new bundle
        // and against the previous one.
        let all: Vec<&(Arc<Vec<u32>>, u64)> = next.iter().chain(prev.iter()).collect();
        for (i, a) in all.iter().enumerate() {
            for b in all.iter().skip(i + 1) {
                assert!(
                    a.1 != b.1 || Arc::ptr_eq(&a.0, &b.0),
                    "generation {} aliases two distinct rows — stale-row hazard",
                    a.1
                );
            }
        }
        // Reused cluster carried Arc and tag; repaired ones got fresh
        // tags beyond everything previously issued.
        assert!(Arc::ptr_eq(&next[1].0, &prev[1].0));
        assert_eq!(next[1].1, prev[1].1);
        assert!(next[0].1 > 3 && next[2].1 > 3);
        assert_ne!(next[0].1, next[2].1, "atomic bump under the fan-out");
    });
}
