//! Offline stand-in for the `rand` 0.8 crate.
//!
//! The build environment has no access to a crate registry, so this crate
//! re-implements the (small) subset of `rand` the workspace uses:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] with the 0.8 method names
//!   (`gen`, `gen_range`, `gen_bool`);
//! * [`rngs::SmallRng`] — a small, fast, deterministic generator
//!   (xoshiro256++, seeded via SplitMix64 exactly like the real
//!   `seed_from_u64`).
//!
//! Streams are deterministic per seed but are **not** bit-compatible with
//! the real crate; nothing in the workspace depends on the exact stream,
//! only on per-seed reproducibility.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, matching `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the "whole domain" (the `rand`
/// `Standard` distribution): `rng.gen::<f64>()` yields a value in `[0, 1)`.
pub trait StandardSample {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// A range argument accepted by [`Rng::gen_range`] (half-open or
/// inclusive), mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types sampleable by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`. `low < high` must hold.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[low, high]`. `low <= high` must hold.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let r = uniform_u128(span, rng);
                (low as i128 + r as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let r = uniform_u128(span, rng);
                (low as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Uniform integer in `[0, span)` by rejection sampling (unbiased).
fn uniform_u128<R: RngCore + ?Sized>(span: u128, rng: &mut R) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        let span64 = span as u64;
        // Rejection zone keeps the draw exactly uniform.
        let zone = u64::MAX - (u64::MAX - span64 + 1) % span64;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return (v % span64) as u128;
            }
        }
    } else {
        // Spans above 2^64 never occur in this workspace; fall back to a
        // wide draw with negligible bias.
        let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        v % span
    }
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                low + (high - low) * u
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                Self::sample_half_open(low, high + <$t>::EPSILON * high.abs().max(1.0), rng).min(high)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`] (as in the real crate).
pub trait Rng: RngCore {
    /// Uniform draw from a range (`0..n`, `-1..=1`, `0.0..x`, …).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (`0.0 <= p <= 1.0`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample_standard(self) < p
    }

    /// Draws from the whole domain (`Standard` distribution).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Small, fast generator — xoshiro256++ seeded via SplitMix64.
    /// Deterministic per seed; not cryptographic (as in the real crate).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard seeding recipe.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let same = (0..32).all(|_| a.gen_range(0..100u32) == c.gen_range(0..100u32));
        assert!(!same, "different seeds should diverge");
    }

    #[test]
    fn ranges_hit_their_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v: i8 = rng.gen_range(-1..=1);
            seen[(v + 1) as usize] = true;
            assert!((-1..=1).contains(&v));
        }
        assert!(seen.iter().all(|&s| s), "all of -1, 0, 1 reachable");
        for _ in 0..200 {
            let v: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let f: f64 = rng.gen_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_probability_roughly_respected() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "~25%, got {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn standard_f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
