//! Opinion prediction (the §6.3 workflow at example scale): hide the
//! opinions of a few active users in the current snapshot and recover them
//! by matching the extrapolated SND trend.
//!
//! Run with `cargo run --release --example opinion_prediction`.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use snd::analysis::{
    accuracy, distance_based_prediction_batch, extrapolate_linear, select_targets,
};
use snd::baselines::predict::{community_lp, detect_communities, nhood_voting};
use snd::core::{CandidateEvaluator, SndConfig, SndEngine};
use snd::data::{generate_series, SyntheticSeriesConfig};
use snd::graph::NodeId;
use snd::models::dynamics::VotingConfig;
use snd::models::{flips_between, Opinion};

fn main() {
    let mut rng = SmallRng::seed_from_u64(23);
    let config = SyntheticSeriesConfig {
        nodes: 1500,
        exponent: -2.5,
        initial_adopters: 120,
        steps: 5,
        normal: VotingConfig::new(0.10, 0.02).expect("valid voting parameters"),
        anomalous: VotingConfig::new(0.10, 0.02).expect("valid voting parameters"),
        anomalous_steps: vec![],
        chance_fraction: 0.12,
        burn_in: 4,
        seed: 5,
    };
    let series = generate_series(&config);
    let states = &series.states;
    let truth = states.last().unwrap().clone();

    // Hide 20 target opinions in the current state.
    let targets = select_targets(&truth, 20, &mut rng);
    let mut known = truth.clone();
    for &t in &targets {
        known.set(t, Opinion::Neutral);
    }

    let engine = SndEngine::new(&series.graph, SndConfig::default());

    // Extrapolate the recent SND trend (3 most recent complete states).
    let t = states.len() - 1;
    let d1 = engine.distance(&states[t - 3], &states[t - 2]);
    let d2 = engine.distance(&states[t - 2], &states[t - 1]);
    let d_star = extrapolate_linear(&[d1, d2]).expect("two-point series");
    println!("recent SND distances: {d1:.2}, {d2:.2}  ->  d* = {d_star:.2}");

    // Randomized assignment search: every candidate is a flip-list priced
    // in parallel against the anchor's delta geometry — no candidate state
    // is ever materialized.
    let evaluator = CandidateEvaluator::new(&engine, states[t - 1].clone());
    let base = flips_between(&states[t - 1], &known);
    let predicted = distance_based_prediction_batch(
        |cands| {
            let full: Vec<Vec<(NodeId, Opinion)>> = cands
                .iter()
                .map(|c| base.iter().copied().chain(c.iter().copied()).collect())
                .collect();
            evaluator.price_candidates(&full)
        },
        d_star,
        &targets,
        100,
        &mut rng,
    )
    .expect("candidates > 0");
    let snd_acc = accuracy(&predicted, &truth, &targets).expect("one prediction per target");
    println!(
        "SND-based prediction accuracy:      {:.1}%",
        100.0 * snd_acc
    );
    println!("(cached SSSP rows: {})", evaluator.cached_rows());

    // Baselines.
    let nv = nhood_voting(&series.graph, &known, &targets, &mut rng);
    println!(
        "nhood-voting accuracy:              {:.1}%",
        100.0 * accuracy(&nv, &truth, &targets).expect("one prediction per target")
    );
    let communities = detect_communities(&series.graph, &mut rng);
    let lp = community_lp(&communities, &known, &targets, &mut rng);
    println!(
        "community-lp accuracy:              {:.1}%",
        100.0 * accuracy(&lp, &truth, &targets).expect("one prediction per target")
    );
}
