//! A tour of the scenario registry: run every built-in scenario at small
//! scale, score its series with SND, and report detection quality.
//!
//! This is the `generate → simulate → distance/anomaly` workflow end to
//! end, once per model family — the demonstration that any
//! [`OpinionDynamics`](snd::models::OpinionDynamics) model plugs into the
//! same evaluation pipeline.
//!
//! Run with `cargo run --release --example scenario_tour`.

use snd::analysis::series::processed_series;
use snd::analysis::{anomaly_scores, evaluate_detection};
use snd::core::{SndConfig, SndEngine};
use snd::data::registry;

fn main() {
    println!(
        "{:<22} {:<20} {:>7} {:>8} {:>10} {:>12}",
        "scenario", "model", "states", "active%", "mean SND", "detection"
    );
    for mut scenario in registry() {
        scenario.nodes = 600;
        scenario.steps = 12;
        let series = scenario.run(17).expect("registry parameters are valid");
        let engine = SndEngine::new(&series.graph, SndConfig::default());
        let raw = engine.series_distances(&series.states);
        let mean_snd = raw.iter().sum::<f64>() / raw.len() as f64;
        let last = series.states.last().expect("non-empty series");
        let active_pct = 100.0 * last.active_count() as f64 / last.len() as f64;

        let detection = if series.labels.iter().any(|&l| l) {
            let processed = processed_series(&raw, &series.states);
            let scores = anomaly_scores(&processed);
            let k = series.labels.iter().filter(|&&l| l).count();
            let report = evaluate_detection(&scores, &series.labels, k);
            format!("{}/{} top-{k}", report.hits, report.k)
        } else {
            "unlabelled".to_string()
        };
        println!(
            "{:<22} {:<20} {:>7} {:>7.1}% {:>10.2} {:>12}",
            scenario.name,
            scenario.model.family(),
            series.states.len(),
            active_pct,
            mean_snd,
            detection
        );
    }
    println!("\nEach row is one OpinionDynamics model driven through the same pipeline;");
    println!("reproduce any of them with `snd simulate --scenario NAME --out data.json`.");
}
