//! Anomaly detection on a synthetic network-state series (the §6.2
//! workflow at example scale).
//!
//! Generates a series whose anomalous steps change only the activation
//! *mechanism* (neighbor-driven vs external), runs four distance measures
//! over adjacent states, and reports which transitions each measure flags.
//!
//! Run with `cargo run --release --example anomaly_detection`.

use snd::analysis::series::processed_series;
use snd::analysis::{anomaly_scores, top_k_anomalies};
use snd::baselines::{Hamming, QuadForm, StateDistance, WalkDist};
use snd::core::{SndConfig, SndEngine};
use snd::data::{generate_series, SyntheticSeriesConfig};
use snd::models::dynamics::VotingConfig;

fn main() {
    let config = SyntheticSeriesConfig {
        nodes: 5000,
        exponent: -2.3,
        initial_adopters: 100,
        steps: 24,
        normal: VotingConfig::new(0.12, 0.01),
        anomalous: VotingConfig::new(0.08, 0.05),
        anomalous_steps: vec![8, 16],
        chance_fraction: 1.0,
        burn_in: 0,
        seed: 11,
    };
    let series = generate_series(&config);
    println!(
        "series: {} states over {} users; planted anomalies at transitions {:?}",
        series.states.len(),
        config.nodes,
        config.anomalous_steps
    );

    let engine = SndEngine::new(&series.graph, SndConfig::default());
    let snd_raw = engine.series_distances(&series.states);
    let snd_series = processed_series(&snd_raw, &series.states);

    let measures: Vec<(&str, Vec<f64>)> = vec![
        ("SND", snd_series),
        ("hamming", baseline_series(&Hamming, &series)),
        (
            "quad-form",
            baseline_series(&QuadForm::new(&series.graph), &series),
        ),
        (
            "walk-dist",
            baseline_series(&WalkDist::new(&series.graph), &series),
        ),
    ];

    println!(
        "\n{:>4} {:>8} {:>8} {:>8} {:>8}  planted",
        "t", "SND", "hamming", "quad", "walk"
    );
    for t in 0..series.labels.len() {
        println!(
            "{:>4} {:>8.3} {:>8.3} {:>8.3} {:>8.3}  {}",
            t,
            measures[0].1[t],
            measures[1].1[t],
            measures[2].1[t],
            measures[3].1[t],
            if series.labels[t] {
                "  <== anomaly"
            } else {
                ""
            }
        );
    }

    let k = config.anomalous_steps.len();
    println!("\ntop-{k} flagged transitions per measure:");
    for (name, processed) in &measures {
        let scores = anomaly_scores(processed);
        let top = top_k_anomalies(&scores, k);
        let hits = top.iter().filter(|&&t| series.labels[t]).count();
        println!("  {name:<10} flags {top:?}  ({hits}/{k} correct)");
    }
}

fn baseline_series<D: StateDistance>(dist: &D, series: &snd::data::SyntheticSeries) -> Vec<f64> {
    processed_series(&dist.series(&series.states), &series.states)
}
