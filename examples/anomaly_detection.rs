//! Anomaly detection on a simulated network-state series (the §6.2
//! workflow at example scale), driven by the scenario registry.
//!
//! Runs the `voting-mech-shift` scenario — probabilistic voting whose
//! anomalous steps change only the activation *mechanism* (neighbor-driven
//! vs external) — then scores adjacent transitions with four distance
//! measures and reports which transitions each one flags.
//!
//! Run with `cargo run --release --example anomaly_detection`.

use snd::analysis::series::processed_series;
use snd::analysis::{anomaly_scores, evaluate_detection};
use snd::baselines::{Hamming, QuadForm, StateDistance, WalkDist};
use snd::core::{SndConfig, SndEngine};
use snd::data::find_scenario;

fn main() {
    let mut scenario = find_scenario("voting-mech-shift").expect("registered scenario");
    scenario.nodes = 5000;
    scenario.steps = 24;
    let series = scenario.run(11).expect("registry parameters are valid");
    let planted: Vec<usize> = (0..series.labels.len())
        .filter(|&t| series.labels[t])
        .collect();
    println!(
        "scenario '{}': {} states over {} users; planted anomalies at transitions {:?}",
        scenario.name,
        series.states.len(),
        series.graph.node_count(),
        planted
    );

    let engine = SndEngine::new(&series.graph, SndConfig::default());
    let snd_raw = engine.series_distances(&series.states);
    let snd_series = processed_series(&snd_raw, &series.states);

    let measures: Vec<(&str, Vec<f64>)> = vec![
        ("SND", snd_series),
        ("hamming", baseline_series(&Hamming, &series)),
        (
            "quad-form",
            baseline_series(&QuadForm::new(&series.graph), &series),
        ),
        (
            "walk-dist",
            baseline_series(&WalkDist::new(&series.graph), &series),
        ),
    ];

    println!(
        "\n{:>4} {:>8} {:>8} {:>8} {:>8}  planted",
        "t", "SND", "hamming", "quad", "walk"
    );
    for t in 0..series.labels.len() {
        println!(
            "{:>4} {:>8.3} {:>8.3} {:>8.3} {:>8.3}  {}",
            t,
            measures[0].1[t],
            measures[1].1[t],
            measures[2].1[t],
            measures[3].1[t],
            if series.labels[t] {
                "  <== anomaly"
            } else {
                ""
            }
        );
    }

    let k = planted.len();
    println!("\ntop-{k} flagged transitions per measure:");
    for (name, processed) in &measures {
        let scores = anomaly_scores(processed);
        let report = evaluate_detection(&scores, &series.labels, k);
        let auc = report.auc.map_or("n/a".to_string(), |a| format!("{a:.2}"));
        println!(
            "  {name:<10} flags {:?}  ({}/{k} correct, AUC {auc})",
            report.flagged, report.hits
        );
    }
}

fn baseline_series<D: StateDistance>(dist: &D, series: &snd::data::SyntheticSeries) -> Vec<f64> {
    processed_series(&dist.series(&series.states), &series.states)
}
