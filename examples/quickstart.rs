//! Quickstart: compute SND between two snapshots of a small social network.
//!
//! Run with `cargo run --release --example quickstart`.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use snd::core::{SndConfig, SndEngine};
use snd::graph::generators::barabasi_albert;
use snd::models::{NetworkState, Opinion};

fn main() {
    let mut rng = SmallRng::seed_from_u64(42);
    // A 200-user social network with preferential-attachment structure.
    let graph = barabasi_albert(200, 3, &mut rng);
    println!(
        "network: {} users, {} directed ties",
        graph.node_count(),
        graph.edge_count()
    );

    // Yesterday: a handful of + users around the hub, a few − users.
    let mut before = NetworkState::new_neutral(200);
    for u in [0u32, 1, 2, 5] {
        before.set(u, Opinion::Positive);
    }
    for u in [100u32, 101] {
        before.set(u, Opinion::Negative);
    }

    // Today (scenario A): the + camp grew through the hub's followers —
    // plausible propagation.
    let mut propagated = before.clone();
    for u in [3u32, 4, 7] {
        propagated.set(u, Opinion::Positive);
    }

    // Today (scenario B): the same *number* of new + users, but scattered
    // in regions with no nearby + users.
    let mut scattered = before.clone();
    for u in [150u32, 170, 190] {
        scattered.set(u, Opinion::Positive);
    }

    let engine = SndEngine::new(&graph, SndConfig::default());
    let d_prop = engine.distance(&before, &propagated);
    let d_scat = engine.distance(&before, &scattered);

    println!("SND(before, propagated) = {d_prop:.3}");
    println!("SND(before, scattered)  = {d_scat:.3}");
    println!(
        "-> propagation-aware: the scattered activation is {:.2}x farther,\n\
         while Hamming sees both at distance 3.",
        d_scat / d_prop
    );

    // The four Eq. 3 terms are available individually.
    let breakdown = engine.breakdown(&before, &propagated);
    println!("breakdown: {breakdown:?}");
}
