//! Metric-space applications of SND (§9 future work): cluster a mixed bag
//! of network states into "evolution regimes" with k-medoids, and classify
//! an unseen state by nearest neighbor.
//!
//! Run with `cargo run --release --example state_clustering`.

use snd::analysis::cluster::{classify_1nn, k_medoids, pairwise_distances};
use snd::analysis::SndDistance;
use snd::core::{SndConfig, SndEngine};
use snd::data::{generate_series, SyntheticSeriesConfig};
use snd::models::dynamics::VotingConfig;

fn main() {
    // One organically grown series; a second "regime" is built from the
    // same states with structure-oblivious activations layered on top.
    let organic = generate_series(&SyntheticSeriesConfig {
        nodes: 800,
        exponent: -2.3,
        initial_adopters: 24,
        steps: 5,
        normal: VotingConfig::new(0.12, 0.01).expect("valid voting parameters"),
        anomalous: VotingConfig::new(0.12, 0.01).expect("valid voting parameters"),
        anomalous_steps: vec![],
        chance_fraction: 1.0,
        burn_in: 0,
        seed: 41,
    });
    let engine = SndEngine::new(&organic.graph, SndConfig::default());
    let dist = SndDistance::new(&engine);

    // Regime A: the organic states. Regime B: each organic state with 30
    // extra activations scattered at random (structure-breaking).
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use snd::models::dynamics::random_activation_step;
    let mut rng = SmallRng::seed_from_u64(7);
    let mut states = organic.states.clone();
    let regime_a = states.len();
    for s in &organic.states {
        let scrambled = random_activation_step(&organic.graph, s, 30, &mut rng);
        states.push(scrambled);
    }

    println!(
        "clustering {} states ({} organic + {} scrambled twins) with SND k-medoids ...",
        states.len(),
        regime_a,
        states.len() - regime_a
    );
    let matrix = pairwise_distances(&dist, &states);
    let clustering = k_medoids(&matrix, 2, 30);
    println!("medoids: {:?}", clustering.medoids);
    println!("assignment: {:?}", clustering.assignment);
    println!("total within-cluster distance: {:.1}", clustering.cost);
    println!(
        "-> k-medoids separates evolution epochs (early vs late states):\n\
         temporal drift dominates the 30-user scrambling, and each\n\
         scrambled twin lands in its original state's cluster."
    );

    // Classify a fresh state by 1-NN against labelled exemplars.
    let exemplars: Vec<(snd::models::NetworkState, &str)> = states
        .iter()
        .enumerate()
        .map(|(i, s)| {
            (
                s.clone(),
                if i < regime_a { "organic" } else { "scrambled" },
            )
        })
        .collect();
    let fresh = random_activation_step(&organic.graph, &organic.states[2], 30, &mut rng);
    let label = classify_1nn(&dist, &exemplars, &fresh).unwrap();
    println!("fresh scrambled state classified as: {label}");
}
