//! The Fig. 9 case study on the simulated Twitter dataset: a quarterly
//! timeline with consensus events (election, bin-Laden) and polarized
//! events (stimulus bill, "Obama-Care"), where SND disagrees with
//! coordinate-wise measures exactly on the polarized quarters.
//!
//! Run with `cargo run --release --example twitter_case_study`.

use snd::analysis::series::processed_series;
use snd::baselines::{Hamming, QuadForm, StateDistance, WalkDist};
use snd::core::{SndConfig, SndEngine};
use snd::data::{simulate_twitter, EventKind, TwitterSimConfig};

fn main() {
    // Example scale: 2500 users instead of the full 10k (see the fig9
    // bench binary for paper scale).
    let config = TwitterSimConfig {
        users: 2500,
        avg_degree: 40,
        ..Default::default()
    };
    let sim = simulate_twitter(&config);
    println!(
        "simulated Twitter: {} users, {} ties, {} quarterly states",
        sim.graph.node_count(),
        sim.graph.edge_count(),
        sim.states.len()
    );

    let engine = SndEngine::new(&sim.graph, SndConfig::default());
    let snd = processed_series(&engine.series_distances(&sim.states), &sim.states);
    let ham = baseline(&Hamming, &sim);
    let quad = baseline(&QuadForm::new(&sim.graph), &sim);
    let walk = baseline(&WalkDist::new(&sim.graph), &sim);

    println!(
        "\n{:>3} {:>7} {:>7} {:>7} {:>7}  event",
        "t", "SND", "hamming", "quad", "walk"
    );
    for t in 0..sim.labels.len() {
        let event = sim
            .events
            .iter()
            .find(|e| e.quarter == t + 1)
            .map(|e| {
                let kind = match e.kind {
                    EventKind::Consensus { .. } => "consensus",
                    EventKind::Polarized { .. } => "POLARIZED",
                };
                format!("{} ({kind})", e.name)
            })
            .unwrap_or_default();
        println!(
            "{:>3} {:>7.3} {:>7.3} {:>7.3} {:>7.3}  {event}",
            t, snd[t], ham[t], quad[t], walk[t]
        );
    }

    // Where does SND disagree with Hamming the most? Those are the
    // polarized quarters.
    let mut disagreement: Vec<(usize, f64)> = snd
        .iter()
        .zip(&ham)
        .map(|(s, h)| s - h)
        .enumerate()
        .collect();
    disagreement.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntransitions where SND most exceeds Hamming (expect polarized events):");
    for (t, gap) in disagreement.iter().take(3) {
        println!(
            "  t={t}: gap {gap:+.3}  (labelled anomalous: {})",
            sim.labels[*t]
        );
    }
}

fn baseline<D: StateDistance>(dist: &D, sim: &snd::data::TwitterSim) -> Vec<f64> {
    processed_series(&dist.series(&sim.states), &sim.states)
}
