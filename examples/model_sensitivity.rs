//! Model sensitivity (the §6.4 workflow at example scale): SND computed
//! under the Independent Cascade with Competition ground distance separates
//! ICC-driven transitions from random-activation transitions with the same
//! number of changed users, while ℓ1 cannot.
//!
//! Both transition kinds step through the same [`OpinionDynamics`]
//! interface — the normal mechanism and the anomalous one are just two
//! models, which is exactly how the scenario registry injects anomalies.
//!
//! Run with `cargo run --release --example model_sensitivity`.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use snd::baselines::{StateDistance, L1};
use snd::core::{SndConfig, SndEngine};
use snd::graph::generators::barabasi_albert;
use snd::models::dynamics::seed_initial_adopters;
use snd::models::process::{IndependentCascade, RandomActivation};
use snd::models::{GroundCostConfig, OpinionDynamics, SpreadingModel};

fn main() {
    let mut rng = SmallRng::seed_from_u64(99);
    let graph = barabasi_albert(1200, 4, &mut rng);
    let icc = IndependentCascade::default();

    // Ground distance follows the ICC model itself.
    let config = SndConfig::with_ground(GroundCostConfig::with_model(SpreadingModel::Icc(
        icc.params.clone(),
    )));
    let engine = SndEngine::new(&graph, config);

    println!("{:>6} {:>10} {:>8}   kind", "n_delta", "SND", "l1");
    for trial in 0..6 {
        let start = seed_initial_adopters(1200, 80 + 20 * trial, &mut rng)
            .expect("seed count within population");
        // Normal transition: one ICC round.
        let mut normal = start.clone();
        icc.step(&graph, &mut normal, &mut rng);
        report(&engine, &start, &normal, "ICC (normal)");
        // Anomalous transition: same activation volume, random placement.
        let anomalous_model = RandomActivation {
            count: start.diff_count(&normal),
        };
        let mut anomalous = start.clone();
        anomalous_model.step(&graph, &mut anomalous, &mut rng);
        report(&engine, &start, &anomalous, "random (anomalous)");
    }
    println!("\nSND under the ICC ground distance separates the two transition kinds;");
    println!("l1 only tracks the (equal) number of changed users.");
}

fn report(
    engine: &SndEngine,
    from: &snd::models::NetworkState,
    to: &snd::models::NetworkState,
    kind: &str,
) {
    let snd = engine.distance(from, to);
    let l1 = L1.distance(from, to);
    println!(
        "{:>6} {:>10.1} {:>8.0}   {kind}",
        from.diff_count(to),
        snd,
        l1
    );
}
