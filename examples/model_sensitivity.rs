//! Model sensitivity (the §6.4 workflow at example scale): SND computed
//! under the Independent Cascade with Competition ground distance separates
//! ICC-driven transitions from random-activation transitions with the same
//! number of changed users, while ℓ1 cannot.
//!
//! Run with `cargo run --release --example model_sensitivity`.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use snd::baselines::{StateDistance, L1};
use snd::core::{SndConfig, SndEngine};
use snd::graph::generators::barabasi_albert;
use snd::models::dynamics::{icc_step, random_activation_step, seed_initial_adopters};
use snd::models::{GroundCostConfig, IccParams, SpreadingModel};

fn main() {
    let mut rng = SmallRng::seed_from_u64(99);
    let graph = barabasi_albert(1200, 4, &mut rng);
    let params = IccParams::default();

    // Ground distance follows the ICC model itself.
    let config = SndConfig::with_ground(GroundCostConfig::with_model(SpreadingModel::Icc(
        params.clone(),
    )));
    let engine = SndEngine::new(&graph, config);

    println!("{:>6} {:>10} {:>8}   kind", "n_delta", "SND", "l1");
    for trial in 0..6 {
        let start = seed_initial_adopters(1200, 80 + 20 * trial, &mut rng);
        // Normal transition: one ICC round.
        let normal = icc_step(&graph, &start, &params, &mut rng);
        report(&engine, &start, &normal, "ICC (normal)");
        // Anomalous transition: same activation volume, random placement.
        let n_delta = start.diff_count(&normal);
        let anomalous = random_activation_step(&graph, &start, n_delta, &mut rng);
        report(&engine, &start, &anomalous, "random (anomalous)");
    }
    println!("\nSND under the ICC ground distance separates the two transition kinds;");
    println!("l1 only tracks the (equal) number of changed users.");
}

fn report(
    engine: &SndEngine,
    from: &snd::models::NetworkState,
    to: &snd::models::NetworkState,
    kind: &str,
) {
    let snd = engine.distance(from, to);
    let l1 = L1.distance(from, to);
    println!(
        "{:>6} {:>10.1} {:>8.0}   {kind}",
        from.diff_count(to),
        snd,
        l1
    );
}
