//! Property-based tests of SND's core guarantees, spanning crates.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use snd::core::{ClusterSpec, SndConfig, SndEngine};
use snd::graph::generators::erdos_renyi_gnp;
use snd::models::NetworkState;

fn arb_state(n: usize) -> impl Strategy<Value = NetworkState> {
    proptest::collection::vec(-1i8..=1, n).prop_map(|v| NetworkState::from_values(&v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The Theorem 4 sparse path must equal the dense reference exactly
    /// (up to fixed-point rounding) in per-bin bank mode.
    #[test]
    fn sparse_equals_dense_per_bin(
        seed in 0u64..500,
        a in arb_state(14),
        b in arb_state(14),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = erdos_renyi_gnp(14, 0.3, true, &mut rng);
        let engine = SndEngine::new(&g, SndConfig::default());
        let sparse = engine.distance(&a, &b);
        let dense = engine.distance_dense(&a, &b);
        prop_assert!((sparse - dense).abs() < 1e-6,
            "sparse {sparse} vs dense {dense}");
    }

    /// Cluster-bank mode: the coarse extended ground distance is not a true
    /// semimetric (min-pair inter-cluster distances need not compose), so
    /// the Lemma 2 reduction may over-constrain slightly. The contract is:
    /// never below the dense optimum, and within a small factor of it.
    #[test]
    fn sparse_bounds_dense_cluster_mode(
        seed in 0u64..500,
        a in arb_state(12),
        b in arb_state(12),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = erdos_renyi_gnp(12, 0.35, true, &mut rng);
        let config = SndConfig {
            clusters: ClusterSpec::BfsPartition { clusters: 3 },
            ..Default::default()
        };
        let engine = SndEngine::new(&g, config);
        let sparse = engine.distance(&a, &b);
        let dense = engine.distance_dense(&a, &b);
        prop_assert!(sparse >= dense - 1e-6,
            "reduction cannot beat the full problem: sparse {sparse} vs dense {dense}");
        prop_assert!(sparse <= dense * 1.2 + 1e-6,
            "reduction should stay close: sparse {sparse} vs dense {dense}");
    }

    /// SND axioms: non-negativity, identity, symmetry.
    #[test]
    fn snd_axioms(
        seed in 0u64..500,
        a in arb_state(12),
        b in arb_state(12),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = erdos_renyi_gnp(12, 0.3, true, &mut rng);
        let engine = SndEngine::new(&g, SndConfig::default());
        let ab = engine.distance(&a, &b);
        let ba = engine.distance(&b, &a);
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - ba).abs() < 1e-9, "symmetry: {ab} vs {ba}");
        prop_assert_eq!(engine.distance(&a, &a), 0.0);
        if a != b {
            prop_assert!(ab > 0.0, "distinct states at distance zero");
        }
    }

    /// All three transportation solvers must produce the same SND value.
    #[test]
    fn solver_independence(
        seed in 0u64..200,
        a in arb_state(10),
        b in arb_state(10),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = erdos_renyi_gnp(10, 0.4, true, &mut rng);
        use snd::transport::Solver;
        let values: Vec<f64> = [Solver::Simplex, Solver::Ssp, Solver::CostScaling]
            .into_iter()
            .map(|solver| {
                let config = SndConfig { solver, ..Default::default() };
                SndEngine::new(&g, config).distance(&a, &b)
            })
            .collect();
        prop_assert!((values[0] - values[1]).abs() < 1e-9, "simplex vs ssp: {values:?}");
        prop_assert!((values[0] - values[2]).abs() < 1e-9, "simplex vs cost-scaling: {values:?}");
    }
}
