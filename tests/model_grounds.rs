//! Integration tests: SND under each of the three ground-distance models
//! (§3) behaves according to that model's semantics.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use snd::core::{SndConfig, SndEngine};
use snd::graph::generators::barabasi_albert;
use snd::models::dynamics::{lt_step, random_activation_step, seed_initial_adopters};
use snd::models::{
    AgnosticPenalties, GroundCostConfig, IccParams, LtcParams, NetworkState, Opinion,
    SpreadingModel,
};

fn engine_for(graph: &snd::graph::CsrGraph, model: SpreadingModel) -> SndEngine<'_> {
    SndEngine::new(
        graph,
        SndConfig::with_ground(GroundCostConfig::with_model(model)),
    )
}

#[test]
fn agnostic_ground_prefers_friendly_paths() {
    // A + activation reachable through friendly spreaders must be cheaper
    // than one reachable only through the adverse camp.
    let g = snd::graph::generators::path_graph(7);
    // 0(+) - 1(+) - 2(0) - 3(0) - 4(-) - 5(-) - 6(0)
    let base = NetworkState::from_values(&[1, 1, 0, 0, -1, -1, 0]);
    let engine = engine_for(&g, SpreadingModel::Agnostic(AgnosticPenalties::default()));
    let mut near_friendly = base.clone();
    near_friendly.set(2, Opinion::Positive); // next to the + camp
    let mut behind_adverse = base.clone();
    behind_adverse.set(6, Opinion::Positive); // behind the − camp
    let d_friendly = engine.distance(&base, &near_friendly);
    let d_adverse = engine.distance(&base, &behind_adverse);
    assert!(
        d_adverse > 1.5 * d_friendly,
        "adverse-path activation should cost much more: {d_adverse} vs {d_friendly}"
    );
}

#[test]
fn ltc_ground_separates_threshold_driven_from_random_transitions() {
    let mut rng = SmallRng::seed_from_u64(5);
    let g = barabasi_albert(600, 4, &mut rng);
    let params = LtcParams {
        thresholds: Some(vec![0.3; 600]),
        ..Default::default()
    };
    let engine = engine_for(&g, SpreadingModel::Ltc(params.clone()));

    let mut seps = 0;
    let trials = 4;
    for t in 0..trials {
        let start = seed_initial_adopters(600, 60 + 10 * t, &mut rng)
            .expect("seed count within population");
        let normal = lt_step(&g, &start, &params, &mut rng);
        let nd = start.diff_count(&normal);
        if nd == 0 {
            continue;
        }
        let anomalous = random_activation_step(&g, &start, nd, &mut rng);
        let d_normal = engine.distance(&start, &normal);
        let d_anomalous = engine.distance(&start, &anomalous);
        if d_anomalous > d_normal {
            seps += 1;
        }
    }
    assert!(
        seps >= trials - 1,
        "LTC-ground SND should rank random transitions farther in ≥{}/{trials} trials, got {seps}",
        trials - 1
    );
}

#[test]
fn icc_ground_distance_is_model_specific() {
    // The same pair of states gets different distances under different
    // ground models — SND is explicitly model-parametric.
    let mut rng = SmallRng::seed_from_u64(9);
    let g = barabasi_albert(300, 3, &mut rng);
    let a = seed_initial_adopters(300, 30, &mut rng).expect("seed count within population");
    let b = random_activation_step(&g, &a, 25, &mut rng);
    let d_agnostic =
        engine_for(&g, SpreadingModel::Agnostic(AgnosticPenalties::default())).distance(&a, &b);
    let d_icc = engine_for(&g, SpreadingModel::Icc(IccParams::default())).distance(&a, &b);
    let d_ltc = engine_for(&g, SpreadingModel::Ltc(LtcParams::default())).distance(&a, &b);
    assert!(d_agnostic > 0.0 && d_icc > 0.0 && d_ltc > 0.0);
    assert!(
        (d_agnostic - d_icc).abs() > 1e-6 || (d_agnostic - d_ltc).abs() > 1e-6,
        "models should induce distinct distances: {d_agnostic} / {d_icc} / {d_ltc}"
    );
}

#[test]
fn quantization_bound_is_respected_for_every_model() {
    let mut rng = SmallRng::seed_from_u64(11);
    let g = barabasi_albert(200, 3, &mut rng);
    let state = seed_initial_adopters(200, 20, &mut rng).expect("seed count within population");
    for model in [
        SpreadingModel::Agnostic(AgnosticPenalties::default()),
        SpreadingModel::Icc(IccParams::default()),
        SpreadingModel::Ltc(LtcParams::default()),
    ] {
        let config = GroundCostConfig::with_model(model);
        let u = config.max_edge_cost();
        for op in [Opinion::Positive, Opinion::Negative] {
            let costs = snd::models::edge_costs(&g, &state, op, &config);
            assert!(
                costs.iter().all(|&c| c >= 1 && c <= u),
                "Assumption 2 violated: costs outside [1, {u}]"
            );
        }
    }
}
