//! Cross-solver fuzz harness: every solver (and `Solver::Auto`) must agree
//! on the optimal cost of randomized instances spanning the shapes the SND
//! pipeline produces — zero-heavy supplies, `u32::MAX` costs, single-cell
//! and single-line instances — and every returned plan must be feasible.
//!
//! The seed is fixed, so CI explores the same instance stream on every run;
//! bump `FUZZ_ROUNDS` locally for a deeper sweep.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use snd::transport::{
    solve_balanced, solve_unbalanced, verify_feasible, DenseCost, Mass, Solver, TransportPlan,
};

const FUZZ_SEED: u64 = 0x5eed_2026;
const FUZZ_ROUNDS: usize = 150;

const ALL_SOLVERS: [Solver; 4] = [
    Solver::Simplex,
    Solver::Ssp,
    Solver::CostScaling,
    Solver::Auto,
];

/// One random instance family per round: shape, cost magnitude, and the
/// probability that a supply/demand entry is zero.
struct Family {
    m: usize,
    n: usize,
    cost_lo: u32,
    cost_hi: u32,
    mass_hi: u64,
    zero_p: f64,
}

fn random_family(rng: &mut SmallRng) -> Family {
    let (cost_lo, cost_hi) = match rng.gen_range(0..4) {
        0 => (0u32, 8),                 // heavy ties
        1 => (0, 1_000),                // typical SSSP-row magnitudes
        2 => (u32::MAX - 16, u32::MAX), // extreme costs
        _ => (0, u32::MAX),             // full range
    };
    Family {
        m: rng.gen_range(1..12),
        n: rng.gen_range(1..12),
        cost_lo,
        cost_hi,
        mass_hi: [5u64, 50, 1 << 40][rng.gen_range(0..3)],
        zero_p: [0.0, 0.3, 0.7][rng.gen_range(0..3)],
    }
}

fn random_masses(rng: &mut SmallRng, len: usize, fam: &Family) -> Vec<Mass> {
    (0..len)
        .map(|_| {
            if rng.gen_bool(fam.zero_p) {
                0
            } else {
                rng.gen_range(0..=fam.mass_hi)
            }
        })
        .collect()
}

fn random_instance(rng: &mut SmallRng, fam: &Family) -> (Vec<Mass>, Vec<Mass>, DenseCost) {
    let data: Vec<u32> = (0..fam.m * fam.n)
        .map(|_| rng.gen_range(fam.cost_lo..=fam.cost_hi))
        .collect();
    let cost = DenseCost::from_vec(fam.m, fam.n, data);
    let supplies = random_masses(rng, fam.m, fam);
    let demands = random_masses(rng, fam.n, fam);
    (supplies, demands, cost)
}

/// Balances by topping up the lighter side's last entry.
fn balance(supplies: &mut [Mass], demands: &mut [Mass]) {
    let ts: u128 = supplies.iter().map(|&s| s as u128).sum();
    let td: u128 = demands.iter().map(|&d| d as u128).sum();
    if ts > td {
        *demands.last_mut().unwrap() += (ts - td) as u64;
    } else {
        *supplies.last_mut().unwrap() += (td - ts) as u64;
    }
}

/// Feasibility for `solve_unbalanced` results: per-line flows within
/// capacity, exactly `min(ΣP, ΣQ)` mass moved, totals consistent.
fn verify_unbalanced(
    plan: &TransportPlan,
    supplies: &[Mass],
    demands: &[Mass],
    cost: &DenseCost,
) -> Result<(), String> {
    let mut shipped = vec![0u128; supplies.len()];
    let mut received = vec![0u128; demands.len()];
    let mut total_cost: i128 = 0;
    let mut total_flow: u128 = 0;
    for f in &plan.flows {
        let (i, j) = (f.row as usize, f.col as usize);
        if i >= supplies.len() || j >= demands.len() {
            return Err(format!("flow cell ({i},{j}) out of bounds"));
        }
        shipped[i] += f.flow as u128;
        received[j] += f.flow as u128;
        total_cost += f.flow as i128 * cost.at(i, j) as i128;
        total_flow += f.flow as u128;
    }
    for (i, (&s, &got)) in supplies.iter().zip(&shipped).enumerate() {
        if got > s as u128 {
            return Err(format!("supplier {i} over capacity: {got} > {s}"));
        }
    }
    for (j, (&d, &got)) in demands.iter().zip(&received).enumerate() {
        if got > d as u128 {
            return Err(format!("consumer {j} over demand: {got} > {d}"));
        }
    }
    let ts: u128 = supplies.iter().map(|&s| s as u128).sum();
    let td: u128 = demands.iter().map(|&d| d as u128).sum();
    if total_flow != ts.min(td) {
        return Err(format!("moved {total_flow}, expected {}", ts.min(td)));
    }
    if total_cost != plan.total_cost || total_flow != plan.total_flow as u128 {
        return Err("recorded totals inconsistent".into());
    }
    Ok(())
}

#[test]
fn balanced_solvers_agree_across_instance_families() {
    let mut rng = SmallRng::seed_from_u64(FUZZ_SEED);
    for round in 0..FUZZ_ROUNDS {
        let fam = random_family(&mut rng);
        let (mut supplies, mut demands, cost) = random_instance(&mut rng, &fam);
        balance(&mut supplies, &mut demands);
        let reference = solve_balanced(&supplies, &demands, &cost, Solver::Ssp);
        verify_feasible(&reference, &supplies, &demands, &cost)
            .unwrap_or_else(|e| panic!("round {round}: reference infeasible: {e}"));
        for solver in ALL_SOLVERS {
            let plan = solve_balanced(&supplies, &demands, &cost, solver);
            verify_feasible(&plan, &supplies, &demands, &cost)
                .unwrap_or_else(|e| panic!("round {round} {solver:?}: {e}"));
            assert_eq!(
                plan.total_cost, reference.total_cost,
                "round {round}: {solver:?} disagrees with SSP on {}×{} \
                 (costs {}..={}, zero_p {})",
                fam.m, fam.n, fam.cost_lo, fam.cost_hi, fam.zero_p
            );
        }
    }
}

#[test]
fn unbalanced_solvers_agree_in_both_directions() {
    let mut rng = SmallRng::seed_from_u64(FUZZ_SEED ^ 0xdead_beef);
    let mut deficit_rounds = 0usize;
    for round in 0..FUZZ_ROUNDS {
        let fam = random_family(&mut rng);
        let (supplies, demands, cost) = random_instance(&mut rng, &fam);
        let ts: u128 = supplies.iter().map(|&s| s as u128).sum();
        let td: u128 = demands.iter().map(|&d| d as u128).sum();
        if td > ts {
            // The dummy-supplier (`with_extra_row` + retain) path.
            deficit_rounds += 1;
        }
        let reference = solve_unbalanced(&supplies, &demands, &cost, Solver::Ssp);
        verify_unbalanced(&reference, &supplies, &demands, &cost)
            .unwrap_or_else(|e| panic!("round {round}: reference: {e}"));
        for solver in ALL_SOLVERS {
            let plan = solve_unbalanced(&supplies, &demands, &cost, solver);
            verify_unbalanced(&plan, &supplies, &demands, &cost)
                .unwrap_or_else(|e| panic!("round {round} {solver:?}: {e}"));
            assert_eq!(
                plan.total_cost, reference.total_cost,
                "round {round}: {solver:?} disagrees on unbalanced {}×{}",
                fam.m, fam.n
            );
            assert_eq!(plan.total_flow as u128, ts.min(td), "round {round}");
        }
    }
    assert!(
        deficit_rounds >= FUZZ_ROUNDS / 5,
        "instance stream must exercise the demand-heavy deficit path \
         (got {deficit_rounds} of {FUZZ_ROUNDS})"
    );
}

#[test]
fn single_cell_and_line_shapes() {
    let mut rng = SmallRng::seed_from_u64(FUZZ_SEED ^ 0x11);
    for _ in 0..60 {
        let c = rng.gen_range(0..=u32::MAX);
        let mass = rng.gen_range(1..=1u64 << 40);
        let cost = DenseCost::from_vec(1, 1, vec![c]);
        for solver in ALL_SOLVERS {
            let plan = solve_balanced(&[mass], &[mass], &cost, solver);
            assert_eq!(plan.total_cost, mass as i128 * c as i128, "{solver:?}");
            assert_eq!(plan.total_flow, mass);
        }
        // 1×n and m×1 lines with random splits.
        let n = rng.gen_range(2..7);
        let parts: Vec<Mass> = (0..n).map(|_| rng.gen_range(1..100)).collect();
        let total: Mass = parts.iter().sum();
        let line = DenseCost::from_vec(1, n, (0..n).map(|_| rng.gen_range(0..50)).collect());
        let reference = solve_balanced(&[total], &parts, &line, Solver::Ssp);
        for solver in ALL_SOLVERS {
            let plan = solve_balanced(&[total], &parts, &line, solver);
            verify_feasible(&plan, &[total], &parts, &line).unwrap();
            assert_eq!(plan.total_cost, reference.total_cost, "{solver:?}");
        }
    }
}

#[test]
fn all_zero_and_fully_degenerate_instances() {
    let cost = DenseCost::filled(3, 3, 7);
    for solver in ALL_SOLVERS {
        // Everything zero: the empty plan.
        let plan = solve_balanced(&[0, 0, 0], &[0, 0, 0], &cost, solver);
        assert_eq!(plan.total_flow, 0);
        assert_eq!(plan.total_cost, 0);
        assert!(plan.flows.is_empty());
        // Unbalanced with one empty side: nothing can move.
        let plan = solve_unbalanced(&[5, 5, 5], &[0, 0, 0], &cost, solver);
        assert_eq!(plan.total_flow, 0);
    }
}
