//! End-to-end integration tests: the full pipelines of §6 at test scale.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use snd::analysis::series::processed_series;
use snd::analysis::{
    accuracy, anomaly_scores, auc, distance_based_prediction, extrapolate_linear, roc_curve,
    select_targets, top_k_anomalies,
};
use snd::baselines::{Hamming, StateDistance};
use snd::core::{CandidateEvaluator, OrderedSnd, SndConfig, SndEngine};
use snd::data::{generate_series, simulate_twitter, SyntheticSeriesConfig, TwitterSimConfig};
use snd::graph::NodeId;
use snd::models::dynamics::VotingConfig;
use snd::models::{flips_between, Opinion};

fn anomaly_series() -> snd::data::SyntheticSeries {
    generate_series(&SyntheticSeriesConfig {
        nodes: 1200,
        exponent: -2.3,
        initial_adopters: 30,
        steps: 16,
        normal: VotingConfig::new(0.12, 0.01).expect("valid voting parameters"),
        anomalous: VotingConfig::new(0.08, 0.05).expect("valid voting parameters"),
        anomalous_steps: vec![6, 11],
        chance_fraction: 1.0,
        burn_in: 0,
        seed: 3,
    })
}

#[test]
fn anomaly_detection_pipeline_ranks_planted_anomalies_highly() {
    let series = anomaly_series();
    let engine = SndEngine::new(&series.graph, SndConfig::default());
    let processed = processed_series(&engine.series_distances(&series.states), &series.states);
    let scores = anomaly_scores(&processed);
    let curve = roc_curve(&scores, &series.labels);
    let snd_auc = auc(&curve);
    assert!(
        snd_auc > 0.6,
        "SND should rank planted anomalies above chance: AUC {snd_auc}"
    );

    // Hamming is blind to mechanism anomalies under per-change
    // normalization (its processed series is constant).
    let ham_raw: Vec<f64> = series
        .states
        .windows(2)
        .map(|w| Hamming.distance(&w[0], &w[1]))
        .collect();
    let ham = processed_series(&ham_raw, &series.states);
    let spread = ham
        .iter()
        .fold(0.0f64, |acc, &x| acc.max((x - ham[0]).abs()));
    assert!(spread < 1e-9, "hamming per-change series must be flat");
}

#[test]
fn twitter_pipeline_flags_polarized_quarters() {
    let sim = simulate_twitter(&TwitterSimConfig {
        users: 900,
        avg_degree: 24,
        quarters: 9,
        ..Default::default()
    });
    let engine = SndEngine::new(&sim.graph, SndConfig::default());
    let processed = processed_series(&engine.series_distances(&sim.states), &sim.states);
    let scores = anomaly_scores(&processed);
    let k = sim.labels.iter().filter(|&&l| l).count();
    assert!(
        k >= 1,
        "default timeline has polarized events in 9 quarters"
    );
    let top = top_k_anomalies(&scores, k + 1);
    let hits = top.iter().filter(|&&t| sim.labels[t]).count();
    assert!(
        hits >= 1,
        "SND should flag at least one polarized quarter: top {top:?}, labels {:?}",
        sim.labels
    );
}

#[test]
fn prediction_pipeline_beats_coin_flipping() {
    // Same regime as the Table 1 harness: moderate per-step activation with
    // a short burn-in, so the last states have a settled active population
    // and the extrapolated d* is meaningful.
    let series = generate_series(&SyntheticSeriesConfig {
        nodes: 900,
        exponent: -2.5,
        initial_adopters: 75,
        steps: 5,
        normal: VotingConfig::new(0.10, 0.02).expect("valid voting parameters"),
        anomalous: VotingConfig::new(0.10, 0.02).expect("valid voting parameters"),
        anomalous_steps: vec![],
        chance_fraction: 0.10,
        burn_in: 4,
        seed: 17,
    });
    let states = &series.states;
    let t = states.len() - 1;
    let truth = states[t].clone();
    let mut rng = SmallRng::seed_from_u64(99);

    let engine = SndEngine::new(&series.graph, SndConfig::default());
    let d1 = OrderedSnd::new(&engine, states[t - 3].clone()).distance_to(&states[t - 2]);
    let d2 = OrderedSnd::new(&engine, states[t - 2].clone()).distance_to(&states[t - 1]);
    let d_star = extrapolate_linear(&[d1, d2]).expect("two-point series");
    let anchored = CandidateEvaluator::new(&engine, states[t - 1].clone());

    // Average accuracy over a few repetitions to avoid single-draw flukes.
    let mut total = 0.0;
    let reps = 4;
    for _ in 0..reps {
        let targets = select_targets(&truth, 16, &mut rng);
        let mut known = truth.clone();
        for &u in &targets {
            known.set(u, Opinion::Neutral);
        }
        // Delta-priced search: anchor→known base flips + the drawn
        // assignment, last-wins normalized.
        let base = flips_between(anchored.anchor(), &known);
        let predicted = distance_based_prediction(
            |flips: &[(NodeId, Opinion)]| {
                let full: Vec<(NodeId, Opinion)> =
                    base.iter().copied().chain(flips.iter().copied()).collect();
                anchored.price(&full)
            },
            d_star,
            &targets,
            60,
            &mut rng,
        )
        .expect("candidates > 0");
        total += accuracy(&predicted, &truth, &targets).expect("one prediction per target");
    }
    let mean = total / reps as f64;
    assert!(
        mean > 0.55,
        "SND prediction should beat the 50% coin flip: {mean}"
    );
}

#[test]
fn ordered_snd_scales_with_divergence() {
    // The farther a candidate state drifts from the anchor, the larger the
    // ordered distance — monotonicity the prediction search relies on.
    let series = anomaly_series();
    let engine = SndEngine::new(&series.graph, SndConfig::default());
    let anchored = OrderedSnd::new(&engine, series.states[4].clone());
    let d_near = anchored.distance_to(&series.states[5]);
    let d_far = anchored.distance_to(&series.states[10]);
    assert!(
        d_far > d_near,
        "10-step drift ({d_far}) should exceed 1-step drift ({d_near})"
    );
}

#[test]
fn snd_is_stable_across_solvers_at_pipeline_scale() {
    let series = anomaly_series();
    let a = &series.states[3];
    let b = &series.states[4];
    use snd::transport::Solver;
    let mut values = Vec::new();
    for solver in [Solver::Simplex, Solver::CostScaling] {
        let config = SndConfig {
            solver,
            ..Default::default()
        };
        let engine = SndEngine::new(&series.graph, config);
        values.push(engine.distance(a, b));
    }
    assert!(
        (values[0] - values[1]).abs() < 1e-6,
        "solver disagreement at scale: {values:?}"
    );
}
