//! Guarantees of the tile-based shard subsystem: merging the tiles of any
//! `ShardPlan` partition — including a run interrupted and resumed from a
//! half-written checkpoint — is **bit-identical** to the naive sequential
//! all-pairs loop; and the per-cluster geometry fan-out matches the
//! sequential geometry path exactly.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use snd::core::shard::{ShardPlan, TileGrid, TileSet};
use snd::core::{ClusterSpec, GammaPolicy, SndConfig, SndEngine};
use snd::graph::generators::barabasi_albert;
use snd::models::{NetworkState, Opinion};

fn random_states(n: usize, count: usize, rng: &mut SmallRng) -> Vec<NetworkState> {
    (0..count)
        .map(|_| {
            let vals: Vec<i8> = (0..n).map(|_| rng.gen_range(-1..=1)).collect();
            NetworkState::from_values(&vals)
        })
        .collect()
}

fn temp_path(name: &str, seed: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("snd_shard_{}_{seed}_{name}", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any round-robin partition of the tile grid, computed shard by shard
    /// and merged, reproduces the naive sequential matrix bit for bit — in
    /// both bank modes.
    #[test]
    fn sharded_partition_merges_to_the_sequential_matrix(
        seed in 0u64..1_000,
        t in 2usize..7,
        tile in 1usize..4,
        shards in 2usize..5,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = barabasi_albert(16, 2, &mut rng);
        let states = random_states(16, t, &mut rng);
        let grid = TileGrid::new(t, tile);
        for clusters in [ClusterSpec::PerBin, ClusterSpec::BfsPartition { clusters: 3 }] {
            let config = SndConfig { clusters: clusters.clone(), ..Default::default() };
            let engine = SndEngine::new(&g, config);
            let parts: Vec<TileSet> = (0..shards)
                .map(|s| {
                    let plan = ShardPlan::round_robin(grid, s, shards).unwrap();
                    engine.pairwise_tiles(&states, &plan)
                })
                .collect();
            let merged = TileSet::merge(parts).unwrap().to_matrix().unwrap();
            let seq = engine.pairwise_distances_seq(&states);
            prop_assert_eq!(&merged, &seq, "mode {:?}", clusters);
        }
    }

    /// A run that checkpoints, is "killed" (checkpoint truncated mid-line,
    /// as an interrupted append would leave it), and resumes, reproduces
    /// the same matrix bit for bit.
    #[test]
    fn resumed_checkpoint_reproduces_the_sequential_matrix(
        seed in 0u64..1_000,
        t in 3usize..7,
        tile in 1usize..4,
        chop in 1usize..40,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = barabasi_albert(14, 2, &mut rng);
        let states = random_states(14, t, &mut rng);
        let grid = TileGrid::new(t, tile);
        let plan = ShardPlan::full(grid);
        let engine = SndEngine::new(&g, SndConfig::default());
        let path = temp_path("resume.ckpt", seed.wrapping_mul(31).wrapping_add(t as u64));
        let _ = std::fs::remove_file(&path);

        // First (interrupted) run: compute everything, then chop trailing
        // bytes off the checkpoint — simulating a kill mid-append.
        engine.pairwise_tiles_checkpointed(&states, &plan, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Chop within the tile-line region (header corruption is a hard
        // error by design, not a resume case).
        let header_end = bytes
            .iter()
            .enumerate()
            .filter(|(_, &b)| b == b'\n')
            .nth(1)
            .map(|(i, _)| i + 1)
            .unwrap();
        let keep = bytes.len().saturating_sub(chop).max(header_end);
        std::fs::write(&path, &bytes[..keep]).unwrap();

        // Resume: the valid prefix is reused, the damaged tail recomputed.
        let run = engine.pairwise_tiles_checkpointed(&states, &plan, &path).unwrap();
        prop_assert_eq!(run.resumed + run.computed, grid.tile_count());
        let matrix = run.tiles.to_matrix().unwrap();
        prop_assert_eq!(&matrix, &engine.pairwise_distances_seq(&states));

        // And the checkpoint on disk is now a complete, loadable artifact.
        let reloaded = TileSet::load(&path).unwrap();
        prop_assert_eq!(&reloaded.to_matrix().unwrap(), &matrix);
        std::fs::remove_file(&path).unwrap();
    }

    /// The per-cluster geometry fan-out (`SndEngine::geometry`) is
    /// bit-identical to the sequential reference (`geometry_seq`) across
    /// clusterings and γ policies.
    #[test]
    fn parallel_cluster_geometry_is_bit_identical_to_sequential(
        seed in 0u64..1_000,
        state in proptest::collection::vec(-1i8..=1, 18),
        clusters in 1usize..5,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = barabasi_albert(18, 2, &mut rng);
        let state = NetworkState::from_values(&state);
        for gamma in [GammaPolicy::Constant(3), GammaPolicy::Eccentricity, GammaPolicy::HalfExactDiameter] {
            let config = SndConfig {
                clusters: ClusterSpec::BfsPartition { clusters },
                gamma,
                ..Default::default()
            };
            let engine = SndEngine::new(&g, config);
            for op in [Opinion::Positive, Opinion::Negative] {
                let par = engine.geometry(&state, op);
                let seq = engine.geometry_seq(&state, op);
                prop_assert_eq!(&par, &seq, "policy {:?}, opinion {:?}", gamma, op);
            }
        }
    }
}

#[test]
fn partial_checkpoints_from_different_shards_merge_like_one_run() {
    // Two "machines" each write their own checkpoint artifact; merging the
    // artifact files reproduces the single-machine matrix.
    let mut rng = SmallRng::seed_from_u64(77);
    let g = barabasi_albert(20, 2, &mut rng);
    let states = random_states(20, 6, &mut rng);
    let engine = SndEngine::new(&g, SndConfig::default());
    let grid = TileGrid::new(6, 2);

    let mut parts = Vec::new();
    for s in 0..2 {
        let path = temp_path(&format!("machine{s}.ckpt"), 77);
        let _ = std::fs::remove_file(&path);
        let plan = ShardPlan::round_robin(grid, s, 2).unwrap();
        engine
            .pairwise_tiles_checkpointed(&states, &plan, &path)
            .unwrap();
        parts.push(TileSet::load(&path).unwrap());
        std::fs::remove_file(&path).unwrap();
    }
    let merged = TileSet::merge(parts).unwrap().to_matrix().unwrap();
    assert_eq!(merged, engine.pairwise_distances_seq(&states));
}

#[test]
fn superdiagonal_plan_reproduces_the_series() {
    let mut rng = SmallRng::seed_from_u64(5);
    let g = barabasi_albert(16, 2, &mut rng);
    let states = random_states(16, 7, &mut rng);
    let engine = SndEngine::new(&g, SndConfig::default());
    let grid = TileGrid::new(7, 3);
    let set = engine.pairwise_tiles(&states, &ShardPlan::superdiagonal(grid));
    let series: Vec<f64> = (1..states.len())
        .map(|t| set.pair(t - 1, t).expect("superdiagonal tile present"))
        .collect();
    assert_eq!(series, engine.series_distances_seq(&states));
}
