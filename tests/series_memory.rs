//! Series evaluation memory contract: `SndEngine::series_distances` holds
//! at most **two** `StateGeometry` bundles alive at any instant — each
//! bundle carries O(n) geometry per opinion plus its SSSP row cache, so a
//! long series on a large graph must never hold T of them (mirroring the
//! PR 3 tile behavior of dropping bundles at last use).
//!
//! This test lives alone in its own integration binary: the live/peak
//! accounting is process-wide, and concurrent tests creating bundles
//! would inflate the high-water mark.

use snd::core::{ClusterSpec, GammaPolicy, SndConfig, SndEngine, StateGeometry};
use snd::data::registry;

#[test]
fn series_evaluation_keeps_at_most_two_bundles_alive() {
    let mut scenario = registry().into_iter().next().expect("non-empty registry");
    scenario.nodes = 150;
    scenario.steps = 9;
    let series = scenario.run(8).expect("registry scenario runs");

    for config in [
        SndConfig::default(),
        SndConfig {
            clusters: ClusterSpec::BfsPartition { clusters: 3 },
            gamma: GammaPolicy::Eccentricity,
            ..Default::default()
        },
    ] {
        let engine = SndEngine::new(&series.graph, config);
        assert_eq!(StateGeometry::live_count(), 0, "no bundles before the run");
        StateGeometry::reset_peak_live();
        let distances = engine.series_distances(&series.states);
        assert_eq!(distances.len(), series.states.len() - 1);
        // The delta path borrows its two repairable bundles into the term
        // evaluation and materializes no batch `StateGeometry` at all —
        // the bound catches any regression back to per-state (O(T))
        // bundle materialization.
        assert!(
            StateGeometry::peak_live() <= 2,
            "series evaluation must keep at most 2 bundles alive, saw {}",
            StateGeometry::peak_live()
        );
        assert_eq!(StateGeometry::live_count(), 0, "all bundles dropped");
    }

    // Sanity-check the instrumentation itself: the all-pairs batch path
    // legitimately holds one bundle per state at once.
    let engine = SndEngine::new(&series.graph, SndConfig::default());
    StateGeometry::reset_peak_live();
    let _ = engine.pairwise_distances(&series.states[..4]);
    assert!(
        StateGeometry::peak_live() >= 4,
        "batch path holds all bundles"
    );
    assert_eq!(StateGeometry::live_count(), 0);
}
