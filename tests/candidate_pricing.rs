//! Guarantees of the delta-priced candidate path: for every registry
//! scenario and every bank mode, `CandidateEvaluator::price_candidates`
//! (flip-list classification against precomputed anchor stats) is
//! **bit-identical** to the scratch `OrderedSnd` reference and to its own
//! sequential variant — across single- and multi-flip candidates, both
//! opinions, patch→unpatch→repatch round trips, and edge-edit
//! interventions checked against a fresh-engine rebuild.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use snd::analysis::{search_interventions, Intervention, InterventionConfig};
use snd::core::{CandidateEvaluator, ClusterSpec, GammaPolicy, OrderedSnd, SndConfig, SndEngine};
use snd::data::registry;
use snd::graph::{CsrGraph, NodeId};
use snd::models::process::Voting;
use snd::models::{apply_flips, NetworkState, Opinion};

/// The two bank modes the evaluator specializes: per-bin (active-list
/// bank bins) and cluster-bank (per-cluster count bins).
fn bank_modes() -> Vec<SndConfig> {
    vec![
        SndConfig::default(),
        SndConfig {
            clusters: ClusterSpec::BfsPartition { clusters: 4 },
            gamma: GammaPolicy::Eccentricity,
            ..Default::default()
        },
    ]
}

/// Random candidate flip-lists exercising both opinions, deactivation,
/// multi-flip candidates, and messy inputs (duplicates, no-ops).
fn random_candidates(n: usize, count: usize, rng: &mut SmallRng) -> Vec<Vec<(NodeId, Opinion)>> {
    (0..count)
        .map(|i| {
            let flips = 1 + i % 5;
            (0..flips)
                .map(|_| {
                    (
                        rng.gen_range(0..n as NodeId),
                        Opinion::from_value(rng.gen_range(-1..=1)),
                    )
                })
                .collect()
        })
        .collect()
}

#[test]
fn flip_pricing_is_bit_identical_on_every_registry_scenario() {
    for mut scenario in registry() {
        scenario.nodes = 200;
        scenario.steps = 3;
        let series = scenario
            .run(13)
            .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
        let anchor = series.states[series.states.len() - 1].clone();
        let n = series.graph.node_count();
        let mut rng = SmallRng::seed_from_u64(29);
        for config in bank_modes() {
            let engine = SndEngine::new(&series.graph, config);
            let ordered = OrderedSnd::new(&engine, anchor.clone());
            let evaluator = CandidateEvaluator::new(&engine, anchor.clone());
            let candidates = random_candidates(n, 10, &mut rng);
            let states: Vec<NetworkState> =
                candidates.iter().map(|f| apply_flips(&anchor, f)).collect();
            let scratch = ordered.distances_to(&states);
            let par = evaluator.price_candidates(&candidates);
            let seq = evaluator.price_candidates_seq(&candidates);
            for i in 0..candidates.len() {
                assert_eq!(
                    par[i].to_bits(),
                    scratch[i].to_bits(),
                    "{}: candidate {i} delta vs scratch",
                    scenario.name
                );
                assert_eq!(
                    par[i].to_bits(),
                    seq[i].to_bits(),
                    "{}: candidate {i} par vs seq",
                    scenario.name
                );
            }
        }
    }
}

#[test]
fn patch_round_trip_is_bit_identical_on_every_registry_scenario() {
    for mut scenario in registry() {
        scenario.nodes = 150;
        scenario.steps = 2;
        let series = scenario
            .run(19)
            .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
        let anchor = series.states[series.states.len() - 1].clone();
        let n = series.graph.node_count();
        let mut rng = SmallRng::seed_from_u64(31);
        for config in bank_modes() {
            let engine = SndEngine::new(&series.graph, config);
            let mut evaluator = CandidateEvaluator::new(&engine, anchor.clone());
            let probes = random_candidates(n, 5, &mut rng);
            let before = evaluator.price_candidates_seq(&probes);

            // Patch to a flipped anchor: prices now match a *fresh*
            // evaluator (and the scratch reference) at the new anchor.
            let move_flips: Vec<(NodeId, Opinion)> = (0..4)
                .map(|_| {
                    (
                        rng.gen_range(0..n as NodeId),
                        Opinion::from_value(rng.gen_range(-1..=1)),
                    )
                })
                .collect();
            evaluator.patch(&move_flips);
            let patched_anchor = evaluator.anchor().clone();
            assert_eq!(patched_anchor, apply_flips(&anchor, &move_flips));
            let patched = evaluator.price_candidates_seq(&probes);
            let reference = OrderedSnd::new(&engine, patched_anchor.clone());
            for (i, probe) in probes.iter().enumerate() {
                let scratch = reference.distance_to(&apply_flips(&patched_anchor, probe));
                assert_eq!(
                    patched[i].to_bits(),
                    scratch.to_bits(),
                    "{}: patched probe {i}",
                    scenario.name
                );
            }

            // Unpatch restores the original prices bit for bit; repatch
            // reproduces the patched ones.
            assert!(evaluator.unpatch());
            let restored = evaluator.price_candidates_seq(&probes);
            for i in 0..probes.len() {
                assert_eq!(
                    restored[i].to_bits(),
                    before[i].to_bits(),
                    "{}: restored probe {i}",
                    scenario.name
                );
            }
            evaluator.patch(&move_flips);
            let repatched = evaluator.price_candidates_seq(&probes);
            for i in 0..probes.len() {
                assert_eq!(
                    repatched[i].to_bits(),
                    patched[i].to_bits(),
                    "{}: repatched probe {i}",
                    scenario.name
                );
            }
        }
    }
}

/// Edge-edit interventions take the documented rebuild fallback: applying
/// a planned edge action by hand and rebuilding graph + engine from
/// scratch must price candidates identically to a second independent
/// rebuild — and the planner itself must be deterministic per seed.
#[test]
fn edge_edit_interventions_match_a_fresh_engine_rebuild() {
    let mut rng = SmallRng::seed_from_u64(41);
    let g = snd::graph::generators::barabasi_albert(60, 2, &mut rng);
    let vals: Vec<i8> = (0..60).map(|i| [1, 0, -1, 0, 0, 1][i % 6]).collect();
    let state = NetworkState::from_values(&vals);
    let model = Voting::new(0.3, 0.05).expect("valid probabilities");
    let cfg = InterventionConfig {
        budget: 1,
        stubborn_pool: 0,
        stubborn_keep: 0,
        edge_pool: 4,
        ..Default::default()
    };
    let plan = search_interventions(&g, &model, &state, &SndConfig::default(), &cfg)
        .expect("edge pool is non-empty");
    let plan2 = search_interventions(&g, &model, &state, &SndConfig::default(), &cfg)
        .expect("edge pool is non-empty");
    let acts: Vec<Intervention> = plan.actions.iter().map(|p| p.action).collect();
    let acts2: Vec<Intervention> = plan2.actions.iter().map(|p| p.action).collect();
    assert_eq!(acts, acts2, "plans are deterministic per seed");

    // Apply every planned edge action to the edge list and rebuild.
    let mut edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    for p in &plan.actions {
        match p.action {
            Intervention::AddEdge { from, to } => edges.push((from, to)),
            Intervention::RemoveEdge { from, to } => edges.retain(|&e| e != (from, to)),
            Intervention::Stubborn { .. } => panic!("edge-only search planned a pin"),
        }
    }
    let g_a = CsrGraph::from_edges(60, &edges);
    let g_b = CsrGraph::from_edges(60, &edges);
    let engine_a = SndEngine::new(&g_a, SndConfig::default());
    let engine_b = SndEngine::new(&g_b, SndConfig::default());
    let eval_a = CandidateEvaluator::new(&engine_a, state.clone());
    let eval_b = CandidateEvaluator::new(&engine_b, state.clone());
    let ordered_b = OrderedSnd::new(&engine_b, state.clone());
    let candidates = random_candidates(60, 8, &mut rng);
    let a = eval_a.price_candidates(&candidates);
    let b = eval_b.price_candidates_seq(&candidates);
    for (i, c) in candidates.iter().enumerate() {
        assert_eq!(a[i].to_bits(), b[i].to_bits(), "rebuild A vs B {i}");
        let scratch = ordered_b.distance_to(&apply_flips(&state, c));
        assert_eq!(a[i].to_bits(), scratch.to_bits(), "rebuild vs scratch {i}");
    }
}
