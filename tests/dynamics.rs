//! Fixed-seed determinism of every [`OpinionDynamics`] implementation.
//!
//! Three layers of guarantees:
//!
//! 1. **Run-to-run**: the same seed produces bit-identical series within a
//!    process (every model, via [`simulate_series`]).
//! 2. **Profile-to-profile**: series fingerprints are pinned as constants,
//!    so a debug `cargo test` and a `--release` run (CI does both) must
//!    produce the *same* bits — catching any accidental dependence on
//!    floating-point contraction, HashMap iteration, or build flags.
//! 3. **Port regression**: the trait-based ports consume the RNG stream
//!    exactly like the pre-trait free functions (unit-tested per model in
//!    `snd-models`; re-checked here through the public facade).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use snd::data::{find_scenario, registry};
use snd::graph::generators::barabasi_albert;
use snd::graph::CsrGraph;
use snd::models::dynamics::{seed_initial_adopters, voting_step, VotingConfig};
use snd::models::process::{
    BoundedConfidence, IndependentCascade, LinearThreshold, MajorityRule, RandomActivation,
    StubbornVoter, ThresholdedDeGroot, Voting,
};
use snd::models::{simulate_series, NetworkState, OpinionDynamics};

/// FNV-1a over the ±1/0 encoding of a whole series: any single opinion
/// flip anywhere changes the fingerprint.
fn fingerprint(series: &[NetworkState]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for state in series {
        for v in state.values() {
            h ^= v as u8 as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// The shared test fixture: a 400-node BA graph with 60 seeded adopters.
fn fixture() -> (CsrGraph, NetworkState) {
    let mut rng = SmallRng::seed_from_u64(2017);
    let g = barabasi_albert(400, 3, &mut rng);
    let s0 = seed_initial_adopters(400, 60, &mut rng).expect("60 of 400");
    (g, s0)
}

/// Every model at fixed parameters, with its pinned series fingerprint
/// (8 steps from the fixture, step RNG seeded with 5).
fn models_with_fingerprints() -> Vec<(Box<dyn OpinionDynamics>, u64)> {
    vec![
        (
            Box::new(Voting::new(0.2, 0.05).expect("valid")),
            0x8af84c0bf1e873a0,
        ),
        (
            Box::new(Voting::sampled(
                VotingConfig::new(0.3, 0.1).expect("valid"),
                80,
            )),
            0xbc5efd868d4d9b4f,
        ),
        (Box::new(IndependentCascade::default()), 0xa65eed5e3f93d290),
        (Box::new(LinearThreshold::default()), 0x8e8e9b78808b7ce1),
        (Box::new(RandomActivation { count: 15 }), 0x7817e113fadd3309),
        (
            Box::new(MajorityRule::new(0.5).expect("valid")),
            0xe7cb792fbcd8c296,
        ),
        (
            Box::new(StubbornVoter::new(0.4, 0.15, 99).expect("valid")),
            0x38aca52fece6645c,
        ),
        (
            Box::new(ThresholdedDeGroot::new(0.6, 0.3).expect("valid")),
            0x56057a2d4fc5e246,
        ),
        (
            Box::new(BoundedConfidence::new(1, 0.5, 0.3).expect("valid")),
            0x701012fc1be2b3c2,
        ),
    ]
}

#[test]
#[ignore = "regeneration helper: run with --ignored --nocapture to re-pin fingerprints"]
fn print_fingerprints_helper() {
    let (g, s0) = fixture();
    for (model, _) in models_with_fingerprints() {
        let mut rng = SmallRng::seed_from_u64(5);
        let series = simulate_series(&g, model.as_ref(), s0.clone(), 8, &mut rng);
        println!("(\"{}\", {:#018x}),", model.name(), fingerprint(&series));
    }
}

#[test]
fn every_model_is_deterministic_per_seed() {
    let (g, s0) = fixture();
    for (model, _) in models_with_fingerprints() {
        let mut rng_a = SmallRng::seed_from_u64(5);
        let mut rng_b = SmallRng::seed_from_u64(5);
        let a = simulate_series(&g, model.as_ref(), s0.clone(), 8, &mut rng_a);
        let b = simulate_series(&g, model.as_ref(), s0.clone(), 8, &mut rng_b);
        assert_eq!(a, b, "{} differs across identical-seed runs", model.name());
    }
}

#[test]
fn series_fingerprints_match_pinned_constants() {
    let (g, s0) = fixture();
    for (model, expected) in models_with_fingerprints() {
        let mut rng = SmallRng::seed_from_u64(5);
        let series = simulate_series(&g, model.as_ref(), s0.clone(), 8, &mut rng);
        assert_eq!(
            fingerprint(&series),
            expected,
            "{} fingerprint drifted (run-to-run or profile-to-profile)",
            model.name()
        );
    }
}

#[test]
fn ported_voting_reproduces_free_function_through_facade() {
    let (g, s0) = fixture();
    let config = VotingConfig::new(0.2, 0.05).expect("valid");
    let model = Voting {
        config,
        chances: None,
    };
    let mut rng_trait = SmallRng::seed_from_u64(41);
    let mut rng_free = SmallRng::seed_from_u64(41);
    let series = simulate_series(&g, &model, s0.clone(), 6, &mut rng_trait);
    let mut free = s0;
    for (t, trait_state) in series.iter().enumerate().skip(1) {
        free = voting_step(&g, &free, &config, &mut rng_free);
        assert_eq!(*trait_state, free, "divergence at step {t}");
    }
}

#[test]
fn registry_scenarios_are_deterministic_through_facade() {
    for mut sc in registry() {
        sc.nodes = 200;
        sc.steps = 5;
        let a = sc.run(9).expect("registry parameters are valid");
        let b = sc.run(9).expect("registry parameters are valid");
        assert_eq!(
            fingerprint(&a.states),
            fingerprint(&b.states),
            "{} not reproducible",
            sc.name
        );
    }
}

#[test]
fn scenario_rescaling_respects_overrides() {
    let mut sc = find_scenario("stubborn-voter").expect("registered");
    sc.nodes = 150;
    sc.steps = 4;
    let series = sc.run(2).expect("valid");
    assert_eq!(series.states.len(), 5);
    assert_eq!(series.graph.node_count(), 150);
}
