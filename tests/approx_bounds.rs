//! Certified-interval guarantees of the approximate tier: for every
//! registry scenario (all eight model families, every graph generator)
//! the `[lower, upper]` interval returned by the landmark-sketch +
//! coarsening path must bracket the exact Theorem 4 value, the interval
//! width must respect the requested relative ε, and refinement at ε = 0
//! must converge to the exact value. Random graphs and parameters are
//! covered by proptest below; the in-crate tests in
//! `snd_core::approx` pin the per-term machinery.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use snd::core::{ApproxConfig, SndConfig, SndEngine};
use snd::data::registry;
use snd::graph::generators::erdos_renyi_gnp;
use snd::models::NetworkState;

/// An approximate-tier config that actually exercises the sketch on tiny
/// graphs: no minimum node count, few landmarks so envelopes are loose
/// and refinement has real work to do.
fn approx(epsilon: f64, landmarks: usize) -> SndConfig {
    SndConfig {
        approx: Some(ApproxConfig {
            epsilon,
            max_landmarks: landmarks,
            min_nodes: 0,
            ..Default::default()
        }),
        ..SndConfig::default()
    }
}

#[test]
fn intervals_bracket_exact_on_every_registry_scenario() {
    for mut sc in registry() {
        sc.nodes = 60;
        sc.steps = 4;
        let series = sc.run(11).expect(sc.name);
        let exact_engine = SndEngine::new(&series.graph, SndConfig::default());
        let approx_engine = SndEngine::new(&series.graph, approx(0.25, 2));
        for (t, w) in series.states.windows(2).enumerate() {
            let exact = exact_engine.distance(&w[0], &w[1]);
            let iv = approx_engine
                .distance_interval(&w[0], &w[1])
                .expect("per-bin banks support the approximate tier");
            assert!(
                iv.contains(exact),
                "{} t={t}: exact {exact} outside [{}, {}]",
                sc.name,
                iv.lower,
                iv.upper
            );
            // The certificate honors the requested relative gap. Each of
            // the four EMD* terms meets ε individually, so their weighted
            // sum does too.
            assert!(
                iv.width() <= 0.25 * iv.upper + 1e-9,
                "{} t={t}: width {} over ε·upper {}",
                sc.name,
                iv.width(),
                0.25 * iv.upper
            );
        }
        // The series path returns one certified interval per transition,
        // each bracketing the exact series value at that step.
        let exact_series = exact_engine.series_distances(&series.states);
        let intervals = approx_engine.series_intervals(&series.states).unwrap();
        assert_eq!(intervals.len(), exact_series.len());
        for (t, (iv, exact)) in intervals.iter().zip(&exact_series).enumerate() {
            assert!(
                iv.contains(*exact),
                "{} series t={t}: exact {exact} outside [{}, {}]",
                sc.name,
                iv.lower,
                iv.upper
            );
        }
    }
}

#[test]
fn epsilon_zero_refines_to_exact_on_every_registry_scenario() {
    for mut sc in registry() {
        sc.nodes = 40;
        sc.steps = 3;
        let series = sc.run(5).expect(sc.name);
        let exact_engine = SndEngine::new(&series.graph, SndConfig::default());
        let approx_engine = SndEngine::new(&series.graph, approx(0.0, 2));
        for (t, w) in series.states.windows(2).enumerate() {
            let exact = exact_engine.distance(&w[0], &w[1]);
            let iv = approx_engine.distance_interval(&w[0], &w[1]).unwrap();
            let tol = 1e-9 * (1.0 + exact.abs());
            assert!(
                iv.width() <= tol,
                "{} t={t}: ε = 0 must collapse the interval, width {}",
                sc.name,
                iv.width()
            );
            assert!(
                (iv.midpoint() - exact).abs() <= tol,
                "{} t={t}: ε = 0 midpoint {} vs exact {exact}",
                sc.name,
                iv.midpoint()
            );
        }
    }
}

fn arb_state(n: usize) -> impl Strategy<Value = NetworkState> {
    proptest::collection::vec(-1i8..=1, n).prop_map(|v| NetworkState::from_values(&v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Bracketing holds for arbitrary state pairs on random graphs, for
    /// any ε and any landmark budget — not just the scenario dynamics.
    #[test]
    fn intervals_bracket_exact_on_random_graphs(
        seed in 0u64..500,
        epsilon in 0.0f64..0.6,
        landmarks in 1usize..5,
        a in arb_state(36),
        b in arb_state(36),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = erdos_renyi_gnp(36, 0.12, true, &mut rng);
        let exact = SndEngine::new(&g, SndConfig::default()).distance(&a, &b);
        let iv = SndEngine::new(&g, approx(epsilon, landmarks))
            .distance_interval(&a, &b)
            .unwrap();
        prop_assert!(iv.lower <= iv.upper);
        prop_assert!(iv.contains(exact),
            "exact {exact} outside [{}, {}] (ε {epsilon}, L {landmarks})",
            iv.lower, iv.upper);
    }
}
