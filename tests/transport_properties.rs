//! Property-based cross-validation of the transportation solvers.

use proptest::prelude::*;
use snd::transport::{
    simplex, solve_balanced, solve_unbalanced, verify_feasible, DenseCost, Solver,
};

fn balanced_instance(
    m: usize,
    n: usize,
    raw_s: &[u64],
    raw_d: &[u64],
    raw_c: &[u32],
) -> (Vec<u64>, Vec<u64>, DenseCost) {
    let mut supplies: Vec<u64> = raw_s[..m].to_vec();
    let mut demands: Vec<u64> = raw_d[..n].to_vec();
    let (ts, td): (u64, u64) = (supplies.iter().sum(), demands.iter().sum());
    if ts > td {
        demands[n - 1] += ts - td;
    } else {
        supplies[m - 1] += td - ts;
    }
    let cost = DenseCost::from_vec(m, n, raw_c[..m * n].to_vec());
    (supplies, demands, cost)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// All three solvers find plans with the same optimal cost, and every
    /// plan is feasible.
    #[test]
    fn solvers_agree_and_are_feasible(
        m in 1usize..7,
        n in 1usize..7,
        raw_s in proptest::collection::vec(0u64..40, 7),
        raw_d in proptest::collection::vec(0u64..40, 7),
        raw_c in proptest::collection::vec(0u32..100, 49),
    ) {
        let (supplies, demands, cost) = balanced_instance(m, n, &raw_s, &raw_d, &raw_c);
        let reference = solve_balanced(&supplies, &demands, &cost, Solver::Ssp);
        verify_feasible(&reference, &supplies, &demands, &cost).unwrap();
        for solver in [Solver::Simplex, Solver::CostScaling, Solver::Auto] {
            let plan = solve_balanced(&supplies, &demands, &cost, solver);
            verify_feasible(&plan, &supplies, &demands, &cost).unwrap();
            prop_assert_eq!(plan.total_cost, reference.total_cost, "{:?}", solver);
        }
    }

    /// The parallel pricing path returns the *bit-identical* plan of the
    /// sequential reference path — same entering cells, same basis walk,
    /// same flow list — on shapes spanning both sides of the block size.
    #[test]
    fn parallel_simplex_pricing_is_bit_identical(
        m in 1usize..24,
        n in 1usize..24,
        raw_s in proptest::collection::vec(0u64..60, 24),
        raw_d in proptest::collection::vec(0u64..60, 24),
        raw_c in proptest::collection::vec(0u32..80, 576),
    ) {
        let (mut supplies, mut demands, cost) = balanced_instance(m, n, &raw_s, &raw_d, &raw_c);
        // The simplex entry points require all-positive lines; bump every
        // entry then rebalance exactly.
        for s in supplies.iter_mut() { *s += 1; }
        for d in demands.iter_mut() { *d += 1; }
        let (ts, td): (u64, u64) = (supplies.iter().sum(), demands.iter().sum());
        if ts > td { demands[n - 1] += ts - td; } else { supplies[m - 1] += td - ts; }
        let seq = simplex::solve_seq(&supplies, &demands, &cost);
        let par = simplex::solve_par(&supplies, &demands, &cost);
        prop_assert_eq!(seq, par);
    }

    /// Unbalanced solves move exactly min(ΣP, ΣQ) mass and never exceed the
    /// balanced-equivalent cost structure.
    #[test]
    fn unbalanced_moves_min_mass(
        m in 1usize..6,
        n in 1usize..6,
        raw_s in proptest::collection::vec(1u64..30, 6),
        raw_d in proptest::collection::vec(1u64..30, 6),
        raw_c in proptest::collection::vec(0u32..50, 36),
    ) {
        let supplies: Vec<u64> = raw_s[..m].to_vec();
        let demands: Vec<u64> = raw_d[..n].to_vec();
        let cost = DenseCost::from_vec(m, n, raw_c[..m * n].to_vec());
        let plan = solve_unbalanced(&supplies, &demands, &cost, Solver::Simplex);
        let expect = supplies.iter().sum::<u64>().min(demands.iter().sum::<u64>());
        prop_assert_eq!(plan.total_flow, expect);
        prop_assert!(plan.total_cost >= 0);
    }

    /// Optimality sanity: the optimum never exceeds the cost of the
    /// proportional (outer-product) feasible plan.
    #[test]
    fn optimum_beats_proportional_plan(
        m in 1usize..6,
        n in 1usize..6,
        raw_s in proptest::collection::vec(1u64..20, 6),
        raw_d in proptest::collection::vec(1u64..20, 6),
        raw_c in proptest::collection::vec(0u32..50, 36),
    ) {
        let (supplies, demands, cost) = balanced_instance(m, n, &raw_s, &raw_d, &raw_c);
        let total: u128 = supplies.iter().map(|&s| s as u128).sum();
        // Proportional plan cost (fractional, so compare in f64).
        let mut proportional = 0.0f64;
        for (i, &supply) in supplies.iter().enumerate() {
            for (j, &demand) in demands.iter().enumerate() {
                let f = supply as f64 * demand as f64 / total as f64;
                proportional += f * cost.at(i, j) as f64;
            }
        }
        let plan = solve_balanced(&supplies, &demands, &cost, Solver::Simplex);
        prop_assert!(plan.total_cost as f64 <= proportional + 1e-6,
            "optimum {} exceeds proportional {proportional}", plan.total_cost);
    }
}
