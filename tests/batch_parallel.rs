//! Determinism and cache-reuse guarantees of the parallel evaluation
//! pipeline: parallel results must be **bit-identical** to the sequential
//! reference, and re-evaluating against a shared ground state must perform
//! zero new SSSP runs.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use snd::core::{ClusterSpec, SndConfig, SndEngine, StateGeometry};
use snd::graph::generators::barabasi_albert;
use snd::models::NetworkState;

fn arb_state(n: usize) -> impl Strategy<Value = NetworkState> {
    proptest::collection::vec(-1i8..=1, n).prop_map(|v| NetworkState::from_values(&v))
}

fn random_states(n: usize, count: usize, rng: &mut SmallRng) -> Vec<NetworkState> {
    (0..count)
        .map(|_| {
            let vals: Vec<i8> = (0..n).map(|_| rng.gen_range(-1..=1)).collect();
            NetworkState::from_values(&vals)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Parallel breakdown (concurrent geometries + concurrent terms) is
    /// bit-identical to the fully sequential path on random
    /// Barabási–Albert instances.
    #[test]
    fn parallel_breakdown_is_bit_identical_to_sequential(
        seed in 0u64..1_000,
        a in arb_state(20),
        b in arb_state(20),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = barabasi_albert(20, 2, &mut rng);
        let engine = SndEngine::new(&g, SndConfig::default());
        let par = engine.breakdown(&a, &b);
        let seq = engine.breakdown_seq(&a, &b);
        prop_assert_eq!(par, seq);
        prop_assert!(engine.distance(&a, &b) == engine.distance_seq(&a, &b));
    }

    /// The cached, parallel all-pairs matrix equals the naive sequential
    /// loop exactly, in both bank modes.
    #[test]
    fn parallel_pairwise_matrix_is_bit_identical_to_naive_loop(
        seed in 0u64..1_000,
        t in 3usize..6,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = barabasi_albert(18, 2, &mut rng);
        let states = random_states(18, t, &mut rng);
        for clusters in [ClusterSpec::PerBin, ClusterSpec::BfsPartition { clusters: 3 }] {
            let config = SndConfig { clusters: clusters.clone(), ..Default::default() };
            let engine = SndEngine::new(&g, config);
            let par = engine.pairwise_distances(&states);
            let seq = engine.pairwise_distances_seq(&states);
            prop_assert_eq!(&par, &seq, "mode {:?}", clusters);
        }
    }

    /// Parallel series evaluation is bit-identical to the sequential
    /// adjacent-pair loop.
    #[test]
    fn parallel_series_is_bit_identical_to_sequential(
        seed in 0u64..1_000,
        t in 2usize..7,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = barabasi_albert(16, 2, &mut rng);
        let states = random_states(16, t, &mut rng);
        let engine = SndEngine::new(&g, SndConfig::default());
        prop_assert_eq!(engine.series_distances(&states), engine.series_distances_seq(&states));
    }
}

#[test]
fn second_evaluation_of_a_shared_ground_state_runs_zero_sssp() {
    let mut rng = SmallRng::seed_from_u64(7);
    let g = barabasi_albert(40, 3, &mut rng);
    let engine = SndEngine::new(&g, SndConfig::default());
    let states = random_states(40, 5, &mut rng);

    let geoms: Vec<StateGeometry> = states.iter().map(|s| engine.state_geometry(s)).collect();
    let first = engine.pairwise_distances_with(&states, &geoms);
    let rows_per_state: Vec<usize> = geoms.iter().map(|b| b.cached_rows()).collect();
    assert!(
        rows_per_state.iter().sum::<usize>() > 0,
        "the matrix requires SSSP rows"
    );

    // Re-pricing the whole matrix against the same ground states must be a
    // pure cache read: the row-computation counters do not move.
    let second = engine.pairwise_distances_with(&states, &geoms);
    let rows_after: Vec<usize> = geoms.iter().map(|b| b.cached_rows()).collect();
    assert_eq!(rows_per_state, rows_after, "zero new SSSP runs");
    assert_eq!(first, second);

    // A single extra comparison against an existing ground state also hits
    // the cache for every row it needs.
    let before = geoms[0].cached_rows();
    let _ = engine.breakdown_with(&states[0], &states[1], &geoms[0], &geoms[1]);
    assert_eq!(geoms[0].cached_rows(), before, "rows already cached");
}

#[test]
fn matrix_agrees_with_individual_distance_calls() {
    let mut rng = SmallRng::seed_from_u64(23);
    let g = barabasi_albert(24, 2, &mut rng);
    let engine = SndEngine::new(&g, SndConfig::default());
    let states = random_states(24, 4, &mut rng);
    let m = engine.pairwise_distances(&states);
    for i in 0..states.len() {
        for j in 0..states.len() {
            let d = engine.distance(&states[i], &states[j]);
            assert_eq!(m.at(i, j), d, "entry ({i}, {j})");
        }
    }
}
