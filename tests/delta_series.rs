//! Guarantees of the delta-aware series path: for every registry
//! scenario and every bank mode, `SndEngine::series_distances` (the
//! incremental path — touched-edge cost rederivation, SSSP row repair,
//! empty-delta short-circuit, high-churn fallback) is **bit-identical**
//! to the sequential reference `series_distances_seq` and to the batch
//! path — including runs killed and resumed through
//! `analysis::resume::series_distances_checkpointed`.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use snd::analysis::resume::series_distances_checkpointed;
use snd::core::{ClusterSpec, GammaPolicy, SndConfig, SndEngine};
use snd::data::registry;
use snd::graph::generators::barabasi_albert;
use snd::models::{NetworkState, Opinion, StateDelta};

fn temp_path(name: &str, seed: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("snd_delta_{}_{seed}_{name}", std::process::id()))
}

/// The two bank modes the delta path specializes: per-bin (default; no
/// cluster SSSPs, delta wins on the cost sweep) and cluster-bank
/// (repairable per-cluster rows, the big win).
fn bank_modes() -> Vec<SndConfig> {
    vec![
        SndConfig::default(),
        SndConfig {
            clusters: ClusterSpec::BfsPartition { clusters: 4 },
            gamma: GammaPolicy::Eccentricity,
            ..Default::default()
        },
    ]
}

/// Every registry scenario, downscaled: real dynamics (voting, cascades,
/// majority bursts, bounded confidence) exercise low- and high-churn
/// transitions, anomaly injections, and every spreading model.
#[test]
fn delta_series_matches_seq_on_every_registry_scenario() {
    for mut scenario in registry() {
        scenario.nodes = 240;
        scenario.steps = 6;
        let series = scenario
            .run(11)
            .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
        for config in bank_modes() {
            let engine = SndEngine::new(&series.graph, config);
            let delta = engine.series_distances(&series.states);
            let seq = engine.series_distances_seq(&series.states);
            assert_eq!(delta, seq, "{}: delta vs seq", scenario.name);
            let batch = engine.series_distances_batch(&series.states);
            assert_eq!(batch, seq, "{}: batch vs seq", scenario.name);
        }
    }
}

/// The checkpointed series path — which routes through the delta-advanced
/// tile computation — reproduces the reference after a simulated kill
/// (checkpoint truncated mid-line) and resume, and its tiles feed a later
/// full-matrix run.
#[test]
fn killed_and_resumed_checkpoint_series_is_bit_identical() {
    let mut scenario = registry().into_iter().next().expect("non-empty registry");
    scenario.nodes = 120;
    scenario.steps = 7;
    let series = scenario.run(5).expect("registry scenario runs");
    let engine = SndEngine::new(&series.graph, SndConfig::default());
    let expect = engine.series_distances_seq(&series.states);

    let path = temp_path("series_resume.ckpt", 5);
    let _ = std::fs::remove_file(&path);
    let first = series_distances_checkpointed(&engine, &series.states, 3, &path).unwrap();
    assert_eq!(first, expect, "fresh checkpointed run");

    // Kill: chop trailing bytes (never into the 2-line header).
    let bytes = std::fs::read(&path).unwrap();
    let header_end = bytes
        .iter()
        .enumerate()
        .filter(|(_, &b)| b == b'\n')
        .nth(1)
        .map(|(i, _)| i + 1)
        .unwrap();
    std::fs::write(
        &path,
        &bytes[..bytes.len().saturating_sub(9).max(header_end)],
    )
    .unwrap();

    // Resume reproduces the same values bit for bit.
    let resumed = series_distances_checkpointed(&engine, &series.states, 3, &path).unwrap();
    assert_eq!(resumed, expect, "resumed run");

    // The series checkpoint seeds the full-matrix run over the same file.
    let matrix =
        snd::analysis::resume::pairwise_distances_checkpointed(&engine, &series.states, 3, &path)
            .unwrap();
    assert_eq!(matrix, engine.pairwise_distances_seq(&series.states));
    std::fs::remove_file(&path).unwrap();
}

/// Identical consecutive states short-circuit to exactly zero in every
/// series path, and the geometry carried across the static stretch stays
/// exact for the transitions after it.
#[test]
fn empty_delta_short_circuit_is_exact_in_every_path() {
    let mut rng = SmallRng::seed_from_u64(3);
    let g = barabasi_albert(60, 2, &mut rng);
    let a = NetworkState::from_values(&(0..60).map(|i| (i % 3) as i8 - 1).collect::<Vec<_>>());
    let mut b = a.clone();
    b.set(7, Opinion::Neutral);
    b.set(31, Opinion::Positive);
    // Static stretches on both sides of real transitions.
    let states = vec![a.clone(), a.clone(), a.clone(), b.clone(), b.clone(), a];
    for config in bank_modes() {
        let engine = SndEngine::new(&g, config);
        let seq = engine.series_distances_seq(&states);
        assert_eq!(seq[0], 0.0);
        assert_eq!(seq[1], 0.0);
        assert_eq!(seq[3], 0.0);
        assert!(seq[2] > 0.0 && seq[4] > 0.0);
        assert_eq!(engine.series_distances(&states), seq);
        assert_eq!(engine.series_distances_batch(&states), seq);

        let path = temp_path("empty_delta.ckpt", 3);
        let _ = std::fs::remove_file(&path);
        let ckpt = series_distances_checkpointed(&engine, &states, 2, &path).unwrap();
        assert_eq!(ckpt, seq);
        std::fs::remove_file(&path).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random walks of random churn — from single flips to full rewrites
    /// (past the repair threshold, forcing the fallback) — stay
    /// bit-identical to the sequential reference in both bank modes.
    #[test]
    fn random_churn_series_match_seq(seed in 0u64..1_000, churn in 1usize..40) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = barabasi_albert(40, 2, &mut rng);
        let mut states = Vec::new();
        let first: Vec<i8> = (0..40).map(|_| rng.gen_range(-1..=1)).collect();
        states.push(NetworkState::from_values(&first));
        for _ in 0..5 {
            let mut next = states.last().unwrap().clone();
            for _ in 0..churn {
                let u = rng.gen_range(0..40u32);
                next.set(u, Opinion::from_value(rng.gen_range(-1..=1)));
            }
            states.push(next);
        }
        for config in bank_modes() {
            let engine = SndEngine::new(&g, config);
            let delta = engine.series_distances(&states);
            let seq = engine.series_distances_seq(&states);
            prop_assert_eq!(&delta, &seq, "churn {}", churn);
        }
    }

    /// The delta's touched-edge contract holds along simulated series:
    /// costs updated on touched edges only equal the full recompute for
    /// both opinions (the foundation the repair path builds on).
    #[test]
    fn touched_edges_cover_every_cost_change(seed in 0u64..1_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = barabasi_albert(30, 2, &mut rng);
        let mut a = NetworkState::from_values(
            &(0..30).map(|_| rng.gen_range(-1..=1)).collect::<Vec<i8>>(),
        );
        let config = snd::models::GroundCostConfig::default();
        for _ in 0..4 {
            let mut b = a.clone();
            for _ in 0..1 + (seed as usize % 4) {
                let u = rng.gen_range(0..30u32);
                b.set(u, Opinion::from_value(rng.gen_range(-1..=1)));
            }
            let delta = StateDelta::between(&g, &a, &b);
            for op in [Opinion::Positive, Opinion::Negative] {
                let mut costs = snd::models::edge_costs(&g, &a, op, &config);
                snd::models::update_edge_costs(&g, &b, op, &config, delta.touched_edges(), &mut costs);
                prop_assert_eq!(costs, snd::models::edge_costs(&g, &b, op, &config));
            }
            a = b;
        }
    }
}
