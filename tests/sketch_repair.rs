//! Delta-repaired landmark sketches are bit-identical to fresh builds.
//!
//! The certified series path carries one sketch bundle along the series,
//! repairing the `2·L` landmark SSSP rows through each transition's
//! touched edges instead of resketching every snapshot. Shortest-path
//! distances are the unique relaxation fixpoint, so a repaired row must
//! equal a from-scratch row **bit for bit** — these tests pin that for
//! every registry scenario (all model families and graph generators),
//! both opinion planes, both row directions (to- and from-landmark), and
//! across the high-churn boundary where the repair path gives way to the
//! fresh-rebuild fallback.

use snd::core::{ApproxConfig, DeltaStateGeometry, SndConfig, SndEngine};
use snd::data::registry;
use snd::models::{NetworkState, Opinion, StateDelta};

/// Approximate-tier config that builds sketches on tiny test graphs.
fn approx(epsilon: f64, landmarks: usize) -> SndConfig {
    SndConfig {
        approx: Some(ApproxConfig {
            epsilon,
            max_landmarks: landmarks,
            min_nodes: 0,
            ..Default::default()
        }),
        ..SndConfig::default()
    }
}

/// Every landmark row of the stepped bundle's sketches must equal the
/// corresponding row of a bundle built from scratch at the same state.
fn assert_sketches_match(
    name: &str,
    t: usize,
    stepped: &DeltaStateGeometry,
    fresh: &DeltaStateGeometry,
) {
    for op in [Opinion::Positive, Opinion::Negative] {
        let (s, f) = match (stepped.sketch(op), fresh.sketch(op)) {
            (Some(s), Some(f)) => (s, f),
            (None, None) => continue,
            (s, f) => panic!(
                "{name} t={t} {op:?}: sketch presence diverged (stepped {}, fresh {})",
                s.is_some(),
                f.is_some()
            ),
        };
        assert_eq!(
            s.landmarks(),
            f.landmarks(),
            "{name} t={t} {op:?}: landmark sets"
        );
        for idx in 0..s.landmark_count() {
            for reverse in [false, true] {
                assert_eq!(
                    s.row(idx, reverse),
                    f.row(idx, reverse),
                    "{name} t={t} {op:?} landmark {idx} reverse={reverse}: repaired row diverged"
                );
            }
        }
    }
}

#[test]
fn stepped_sketches_equal_fresh_builds_on_every_registry_scenario() {
    for mut sc in registry() {
        sc.nodes = 60;
        sc.steps = 4;
        let series = sc.run(11).expect(sc.name);
        let engine = SndEngine::new(&series.graph, approx(0.25, 3));
        let mut cur = DeltaStateGeometry::fresh(&engine, &series.states[0]);
        assert!(
            cur.sketch(Opinion::Positive).is_some() && cur.sketch(Opinion::Negative).is_some(),
            "{}: per-bin banks on a lossless domain must carry sketches",
            sc.name
        );
        for t in 1..series.states.len() {
            let delta =
                StateDelta::between(&series.graph, &series.states[t - 1], &series.states[t]);
            if !delta.is_empty() {
                cur = cur.step(&engine, &series.states[t], &delta);
            }
            let fresh = DeltaStateGeometry::fresh(&engine, &series.states[t]);
            assert_sketches_match(sc.name, t, &cur, &fresh);
        }
    }
}

#[test]
fn sketch_repair_survives_the_high_churn_fallback_boundary() {
    // A hand-built series that straddles `REPAIR_EDGE_FRACTION`: single
    // flips touch a handful of path edges (repair path), a global flip
    // touches every edge (fresh-rebuild fallback), then a single flip
    // repairs on top of the rebuilt sketch again.
    let n = 48usize;
    let g = snd::graph::generators::path_graph(n);
    let engine = SndEngine::new(&g, approx(0.25, 3));

    let base: Vec<i8> = (0..n).map(|u| (u % 3) as i8 - 1).collect();
    let mut one_flip = base.clone();
    one_flip[0] = 1;
    let all_flip: Vec<i8> = one_flip.iter().map(|v| -v).collect();
    let mut settle = all_flip.clone();
    settle[n - 1] = 0;
    let states: Vec<NetworkState> = [base, one_flip, all_flip, settle]
        .iter()
        .map(|v| NetworkState::from_values(v))
        .collect();

    let mut cur = DeltaStateGeometry::fresh(&engine, &states[0]);
    for t in 1..states.len() {
        let delta = StateDelta::between(&g, &states[t - 1], &states[t]);
        assert!(!delta.is_empty());
        cur = cur.step(&engine, &states[t], &delta);
        let fresh = DeltaStateGeometry::fresh(&engine, &states[t]);
        assert_sketches_match("high-churn boundary", t, &cur, &fresh);
    }
}

#[test]
fn epsilon_zero_series_midpoints_match_the_exact_series() {
    for mut sc in registry() {
        sc.nodes = 40;
        sc.steps = 4;
        let series = sc.run(7).expect(sc.name);
        let exact =
            SndEngine::new(&series.graph, SndConfig::default()).series_distances(&series.states);
        let intervals = SndEngine::new(&series.graph, approx(0.0, 2))
            .series_intervals(&series.states)
            .expect("per-bin banks support the approximate tier");
        assert_eq!(intervals.len(), exact.len());
        for (t, (iv, exact)) in intervals.iter().zip(&exact).enumerate() {
            let tol = 1e-9 * (1.0 + exact.abs());
            assert!(
                iv.width() <= tol,
                "{} t={t}: ε = 0 must collapse the interval, width {}",
                sc.name,
                iv.width()
            );
            assert!(
                (iv.midpoint() - exact).abs() <= tol,
                "{} t={t}: ε = 0 midpoint {} vs exact {exact}",
                sc.name,
                iv.midpoint()
            );
        }
    }
}
