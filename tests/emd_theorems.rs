//! Property-based verification of the paper's EMD theorems (§2, §4).

use proptest::prelude::*;
use snd::emd::{
    emd, emd_alpha, emd_hat, emd_star, emd_star_reduced, emd_total_cost, DenseCost, Histogram,
    Solver, StarGeometry,
};

/// Random metric: pairwise distances of points on a line.
fn line_points_metric(points: &[u32]) -> DenseCost {
    let n = points.len();
    let mut d = DenseCost::filled(n, n, 0);
    for i in 0..n {
        for j in 0..n {
            *d.at_mut(i, j) = points[i].abs_diff(points[j]);
        }
    }
    d
}

fn arb_masses(n: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..25, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 2: EMDα(P, Q, D) == ÊMD(P, Q, D) whenever both are metric
    /// (metric ground distance, γ = α·max(D) with α ≥ 0.5).
    #[test]
    fn theorem_2_alpha_equals_hat(
        points in proptest::collection::vec(0u32..60, 2..8),
        masses_p in arb_masses(8),
        masses_q in arb_masses(8),
    ) {
        let n = points.len();
        let d = line_points_metric(&points);
        let p = Histogram::from_masses(masses_p[..n].to_vec(), 1);
        let q = Histogram::from_masses(masses_q[..n].to_vec(), 1);
        let gamma = d.max_entry(); // α = 1 ≥ 0.5
        let alpha = emd_alpha(&p, &q, &d, gamma, Solver::Simplex);
        let hat = emd_hat(&p, &q, &d, gamma, Solver::Simplex);
        prop_assert!((alpha - hat).abs() < 1e-9, "EMDα {alpha} vs ÊMD {hat}");
    }

    /// Corollary 1: with equal total masses, adding a bank bin (at any
    /// admissible ω) does not change EMD — here via EMDα reducing to the
    /// plain transport cost.
    #[test]
    fn corollary_1_banks_are_free_on_balanced_histograms(
        points in proptest::collection::vec(0u32..60, 2..8),
        masses in arb_masses(8),
        perm_seed in 0usize..100,
    ) {
        let n = points.len();
        let d = line_points_metric(&points);
        let p_masses = masses[..n].to_vec();
        // Q is a rotation of P: same total mass, different placement.
        let shift = perm_seed % n;
        let q_masses: Vec<u64> = (0..n).map(|i| p_masses[(i + shift) % n]).collect();
        let p = Histogram::from_masses(p_masses, 1);
        let q = Histogram::from_masses(q_masses, 1);
        let gamma = d.max_entry();
        let with_bank = emd_alpha(&p, &q, &d, gamma, Solver::Simplex);
        let plain = emd_total_cost(&p, &q, &d, Solver::Simplex);
        prop_assert!((with_bank - plain).abs() < 1e-9);
    }

    /// Lemma 2: subtracting min(P_i, Q_i) bin-wise leaves EMD* unchanged
    /// (semimetric ground distance).
    #[test]
    fn lemma_2_common_mass_reduction(
        points in proptest::collection::vec(0u32..60, 2..8),
        masses_p in arb_masses(8),
        masses_q in arb_masses(8),
    ) {
        let n = points.len();
        let d = line_points_metric(&points);
        let p = Histogram::from_masses(masses_p[..n].to_vec(), 1);
        let q = Histogram::from_masses(masses_q[..n].to_vec(), 1);
        let geom = StarGeometry::single_cluster(n, vec![d.max_entry().max(1)]);
        let full = emd_star(&p, &q, &d, &geom, Solver::Simplex);
        let (rp, rq) = Histogram::reduce_common(&p, &q);
        let reduced = emd_star(&rp, &rq, &d, &geom, Solver::Simplex);
        prop_assert!((full - reduced).abs() < 1e-9, "full {full} vs reduced {reduced}");
    }

    /// Classic EMD is a metric on equal-mass histograms (Theorem 1):
    /// triangle inequality on random equal-mass triples.
    #[test]
    fn theorem_1_triangle_inequality(
        points in proptest::collection::vec(0u32..60, 2..7),
        masses_a in arb_masses(7),
        masses_b in arb_masses(7),
        masses_c in arb_masses(7),
    ) {
        let n = points.len();
        let d = line_points_metric(&points);
        // Equalize totals by padding the first bin.
        let total = |m: &[u64]| m.iter().sum::<u64>();
        let max_total = total(&masses_a[..n]).max(total(&masses_b[..n])).max(total(&masses_c[..n])).max(1);
        let pad = |m: &[u64]| {
            let mut v = m[..n].to_vec();
            v[0] += max_total - total(&m[..n]);
            Histogram::from_masses(v, 1)
        };
        let (a, b, c) = (pad(&masses_a), pad(&masses_b), pad(&masses_c));
        let dab = emd(&a, &b, &d, Solver::Simplex);
        let dbc = emd(&b, &c, &d, Solver::Simplex);
        let dac = emd(&a, &c, &d, Solver::Simplex);
        prop_assert!(dac <= dab + dbc + 1e-9, "triangle: {dac} > {dab} + {dbc}");
    }

    /// EMD* with valid γ is symmetric and zero exactly on identical
    /// histograms.
    #[test]
    fn emd_star_identity_and_symmetry(
        points in proptest::collection::vec(0u32..60, 2..8),
        masses_p in arb_masses(8),
        masses_q in arb_masses(8),
    ) {
        let n = points.len();
        let d = line_points_metric(&points);
        let p = Histogram::from_masses(masses_p[..n].to_vec(), 1);
        let q = Histogram::from_masses(masses_q[..n].to_vec(), 1);
        let geom = StarGeometry::single_cluster(n, vec![d.max_entry().max(1)]);
        prop_assert_eq!(emd_star(&p, &p, &d, &geom, Solver::Simplex), 0.0);
        let pq = emd_star(&p, &q, &d, &geom, Solver::Simplex);
        let qp = emd_star(&q, &p, &d, &geom, Solver::Simplex);
        prop_assert!((pq - qp).abs() < 1e-9, "symmetry {pq} vs {qp}");
        if p != q {
            prop_assert!(pq > 0.0, "distinct histograms at distance 0");
        }
    }

    /// The net-mass-reduced EMD* equals the full extended problem exactly
    /// on triangle-satisfying extended grounds (per-bin and
    /// single-cluster geometries over a metric ground) — the churned-mass
    /// instance the delta series regime prices.
    #[test]
    fn emd_star_reduced_equals_full_on_triangle_grounds(
        points in proptest::collection::vec(0u32..60, 2..8),
        masses_p in arb_masses(8),
        masses_q in arb_masses(8),
        gamma in 1u32..10,
        per_bin_sel in 0u8..2,
    ) {
        let per_bin = per_bin_sel == 1;
        let n = points.len();
        let d = line_points_metric(&points);
        let p = Histogram::from_masses(masses_p[..n].to_vec(), 1);
        let q = Histogram::from_masses(masses_q[..n].to_vec(), 1);
        let geom = if per_bin {
            StarGeometry {
                labels: (0..n as u32).collect(),
                cluster_count: n,
                gammas: vec![vec![gamma]; n],
                inter_cluster: d.clone(),
            }
        } else {
            StarGeometry::single_cluster(n, vec![d.max_entry().max(gamma)])
        };
        let full = emd_star(&p, &q, &d, &geom, Solver::Simplex);
        let reduced = emd_star_reduced(&p, &q, &d, &geom, Solver::Simplex);
        prop_assert_eq!(full, reduced, "exact equality (per_bin = {})", per_bin);
    }
}
