//! `cargo xtask` — workspace automation, no external deps.
//!
//! Subcommands:
//!
//! * `lint` — run the [`snd_lint`] workspace rules; non-zero exit on any
//!   unsuppressed finding. `--unsafe-report` additionally prints the
//!   markdown inventory of every `unsafe` site with its `SAFETY:`
//!   argument.

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // xtask/ → workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask lives directly under the workspace root")
        .to_path_buf()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(args.iter().any(|a| a == "--unsafe-report")),
        _ => {
            eprintln!("usage: cargo xtask lint [--unsafe-report]");
            ExitCode::from(2)
        }
    }
}

fn lint(unsafe_report: bool) -> ExitCode {
    let root = workspace_root();
    let ws = match snd_lint::Workspace::from_dir(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("xtask lint: cannot read workspace: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = ws.check();
    if unsafe_report {
        print!("{}", report.unsafe_inventory());
        println!();
    }
    for f in &report.allowed {
        println!("allowed: {f}");
    }
    for f in &report.findings {
        println!("{f}");
    }
    println!(
        "xtask lint: {} file(s), {} finding(s), {} allowed, {} unsafe site(s)",
        report.files_scanned,
        report.findings.len(),
        report.allowed.len(),
        report.unsafe_sites.len()
    );
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
