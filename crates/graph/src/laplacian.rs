//! Graph Laplacian quadratic forms.
//!
//! The quadratic-form baseline distance of the paper (§6.1) is
//! `sqrt((P−Q)ᵀ L (P−Q))` with `L` the Laplacian of the (symmetrized)
//! network. For a symmetrized graph, `xᵀ L x = Σ_{ties {u,v}} (x_u − x_v)²`,
//! which we evaluate edge-wise without materializing `L`.

use crate::csr::CsrGraph;

/// Evaluates `xᵀ L x` where `L` is the Laplacian of the undirected
/// (symmetrized) view of `g`. Each directed arc contributes half of
/// `(x_u − x_v)²`, so ties represented by both arcs count exactly once.
pub fn laplacian_quadratic_form(g: &CsrGraph, x: &[f64]) -> f64 {
    assert_eq!(x.len(), g.node_count());
    let mut acc = 0.0;
    for (u, v) in g.edges() {
        let d = x[u as usize] - x[v as usize];
        acc += 0.5 * d * d;
    }
    acc
}

/// Dense Laplacian matrix of the symmetrized graph; test oracle for
/// [`laplacian_quadratic_form`]. Entry `(u,v)` of the adjacency is 1 if
/// either arc exists.
pub fn dense_laplacian(g: &CsrGraph) -> Vec<Vec<f64>> {
    let n = g.node_count();
    let mut a = vec![vec![0.0; n]; n];
    for (u, v) in g.edges() {
        a[u as usize][v as usize] = 1.0;
        a[v as usize][u as usize] = 1.0;
    }
    let mut l = vec![vec![0.0; n]; n];
    for u in 0..n {
        let deg: f64 = a[u].iter().sum();
        for v in 0..n {
            l[u][v] = if u == v { deg } else { -a[u][v] };
        }
    }
    l
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::path_graph;

    fn quad_via_dense(g: &CsrGraph, x: &[f64]) -> f64 {
        let l = dense_laplacian(g);
        let n = x.len();
        let mut acc = 0.0;
        for i in 0..n {
            for j in 0..n {
                acc += x[i] * l[i][j] * x[j];
            }
        }
        acc
    }

    #[test]
    fn matches_dense_oracle() {
        let g = path_graph(6);
        let x = [1.0, -1.0, 0.0, 2.0, 0.5, -0.5];
        let fast = laplacian_quadratic_form(&g, &x);
        let slow = quad_via_dense(&g, &x);
        assert!((fast - slow).abs() < 1e-9, "{fast} vs {slow}");
    }

    #[test]
    fn constant_vector_is_in_kernel() {
        let g = path_graph(5);
        let x = [3.0; 5];
        assert!(laplacian_quadratic_form(&g, &x).abs() < 1e-12);
    }

    #[test]
    fn single_disagreement_counts_once() {
        let g = path_graph(2); // one undirected tie => two arcs
        let x = [1.0, 0.0];
        assert!((laplacian_quadratic_form(&g, &x) - 1.0).abs() < 1e-12);
    }
}
