//! Union-find and weakly connected components.

use crate::csr::{CsrGraph, NodeId};

/// Disjoint-set forest with union by rank and path halving.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns true if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.sets -= 1;
        true
    }

    /// Number of disjoint sets remaining.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// True if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

/// Weakly connected components of a directed graph.
#[derive(Clone, Debug)]
pub struct Components {
    /// Component id per node, contiguous from 0.
    pub labels: Vec<u32>,
    /// Nodes of each component.
    pub members: Vec<Vec<NodeId>>,
}

impl Components {
    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.members.len()
    }

    /// Index of the largest component.
    pub fn largest(&self) -> usize {
        self.members
            .iter()
            .enumerate()
            .max_by_key(|(_, m)| m.len())
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Computes weakly connected components (edge directions ignored).
pub fn weak_components(g: &CsrGraph) -> Components {
    let n = g.node_count();
    let mut uf = UnionFind::new(n);
    for (u, v) in g.edges() {
        uf.union(u, v);
    }
    let mut remap = vec![u32::MAX; n];
    let mut labels = vec![0u32; n];
    let mut members: Vec<Vec<NodeId>> = Vec::new();
    for v in 0..n as u32 {
        let root = uf.find(v);
        let id = if remap[root as usize] == u32::MAX {
            let id = members.len() as u32;
            remap[root as usize] = id;
            members.push(Vec::new());
            id
        } else {
            remap[root as usize]
        };
        labels[v as usize] = id;
        members[id as usize].push(v);
    }
    Components { labels, members }
}

/// Extracts the largest weakly connected component as a new graph, returning
/// it together with the mapping `new node id -> original node id`.
pub fn largest_weak_component(g: &CsrGraph) -> (CsrGraph, Vec<NodeId>) {
    let comps = weak_components(g);
    let keep = comps.largest();
    let members = &comps.members[keep];
    let mut to_new = vec![u32::MAX; g.node_count()];
    for (new_id, &old) in members.iter().enumerate() {
        to_new[old as usize] = new_id as u32;
    }
    let mut edges = Vec::new();
    for (u, v) in g.edges() {
        let (nu, nv) = (to_new[u as usize], to_new[v as usize]);
        if nu != u32::MAX && nv != u32::MAX {
            edges.push((nu, nv));
        }
    }
    (CsrGraph::from_edges(members.len(), &edges), members.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.set_count(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.set_count(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn components_of_disconnected_graph() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let comps = weak_components(&g);
        assert_eq!(comps.component_count(), 3); // {0,1,2}, {3,4}, {5}
        assert_eq!(comps.members[comps.largest()].len(), 3);
    }

    #[test]
    fn largest_component_extraction_preserves_edges() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4)]);
        let (sub, map) = largest_weak_component(&g);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 3);
        assert_eq!(map.len(), 3);
        // Every extracted edge corresponds to an original edge.
        for (u, v) in sub.edges() {
            assert!(g.has_edge(map[u as usize], map[v as usize]));
        }
    }

    #[test]
    fn weak_components_ignore_direction() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (2, 1)]);
        assert_eq!(weak_components(&g).component_count(), 1);
    }
}
