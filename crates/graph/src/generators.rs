//! Random and deterministic graph generators.
//!
//! The paper's synthetic experiments run on scale-free networks with
//! exponents between −2.9 and −2.1 and sizes up to 200k nodes; social ties
//! are treated as bidirectional conduits for opinions, so generators default
//! to emitting both edge directions.

use rand::Rng;

use crate::csr::{CsrGraph, NodeId};

/// Samples a degree from a discrete power law `P(k) ∝ k^exponent` over
/// `k ∈ [k_min, k_max]` by inversion on the (unnormalized) CDF.
fn sample_power_law<R: Rng>(cdf: &[f64], k_min: usize, rng: &mut R) -> usize {
    // lint:allow(no-unwrap) the caller builds the cdf over k_min..=k_max, which is never empty
    let total = *cdf.last().expect("non-empty cdf");
    let x = rng.gen_range(0.0..total);
    let idx = cdf.partition_point(|&c| c < x);
    k_min + idx.min(cdf.len() - 1)
}

fn power_law_cdf(exponent: f64, k_min: usize, k_max: usize) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(k_max - k_min + 1);
    let mut acc = 0.0;
    for k in k_min..=k_max {
        acc += (k as f64).powf(exponent);
        cdf.push(acc);
    }
    cdf
}

/// Configuration-model scale-free graph.
///
/// Node degrees are drawn from `P(k) ∝ k^exponent` (the paper uses exponents
/// in `[-2.9, -2.1]`), stubs are shuffled and paired, and each generated tie
/// is emitted in both directions. Self-loops and duplicates are dropped by
/// CSR construction. The result is connected "in the large" but not
/// guaranteed connected; use [`crate::components::largest_weak_component`]
/// when a connected graph is required.
pub fn scale_free_configuration<R: Rng>(
    n: usize,
    exponent: f64,
    k_min: usize,
    k_max: usize,
    rng: &mut R,
) -> CsrGraph {
    assert!(exponent < 0.0, "scale-free exponent must be negative");
    if n <= 1 {
        // Degenerate sizes admit no ties at all (previously this tripped
        // the `k_max < n` assertion): return the edgeless graph.
        return CsrGraph::from_edges(n, &[]);
    }
    assert!(k_min >= 1 && k_max >= k_min && k_max < n);
    let cdf = power_law_cdf(exponent, k_min, k_max);
    let mut stubs: Vec<NodeId> = Vec::new();
    for u in 0..n as NodeId {
        let deg = sample_power_law(&cdf, k_min, rng);
        stubs.extend(std::iter::repeat_n(u, deg));
    }
    if stubs.len() % 2 == 1 {
        stubs.pop();
    }
    // Fisher–Yates shuffle, then pair consecutive stubs.
    for i in (1..stubs.len()).rev() {
        let j = rng.gen_range(0..=i);
        stubs.swap(i, j);
    }
    let mut edges = Vec::with_capacity(stubs.len());
    for pair in stubs.chunks_exact(2) {
        let (u, v) = (pair[0], pair[1]);
        edges.push((u, v));
        edges.push((v, u));
    }
    CsrGraph::from_edges(n, &edges)
}

/// Barabási–Albert preferential attachment: each new node attaches to
/// `m_attach` existing nodes with probability proportional to degree. Ties
/// are bidirectional. Produces a connected graph with a power-law tail
/// (exponent ≈ −3).
pub fn barabasi_albert<R: Rng>(n: usize, m_attach: usize, rng: &mut R) -> CsrGraph {
    assert!(m_attach >= 1 && n > m_attach);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(2 * n * m_attach);
    // Repeated-endpoints trick: sampling a uniform element of `endpoints`
    // samples a node with probability proportional to its degree.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m_attach);
    // Seed clique over the first m_attach + 1 nodes.
    for u in 0..=(m_attach as NodeId) {
        for v in 0..u {
            edges.push((u, v));
            edges.push((v, u));
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for u in (m_attach as NodeId + 1)..n as NodeId {
        let mut chosen: Vec<NodeId> = Vec::with_capacity(m_attach);
        let mut guard = 0;
        while chosen.len() < m_attach && guard < 50 * m_attach {
            let v = endpoints[rng.gen_range(0..endpoints.len())];
            if v != u && !chosen.contains(&v) {
                chosen.push(v);
            }
            guard += 1;
        }
        // Fallback for pathological rejection streaks: attach to arbitrary
        // distinct predecessors.
        let mut next = 0 as NodeId;
        while chosen.len() < m_attach {
            if next != u && !chosen.contains(&next) {
                chosen.push(next);
            }
            next += 1;
        }
        for &v in &chosen {
            edges.push((u, v));
            edges.push((v, u));
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Erdős–Rényi `G(n, p)`. When `bidirectional` is set, each sampled pair
/// produces both arcs.
pub fn erdos_renyi_gnp<R: Rng>(n: usize, p: f64, bidirectional: bool, rng: &mut R) -> CsrGraph {
    let mut edges = Vec::new();
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            if rng.gen_bool(p) {
                edges.push((u, v));
                if bidirectional {
                    edges.push((v, u));
                }
            } else if !bidirectional && rng.gen_bool(p) {
                edges.push((v, u));
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct undirected ties, both arcs
/// emitted.
pub fn erdos_renyi_gnm<R: Rng>(n: usize, m: usize, rng: &mut R) -> CsrGraph {
    let mut edges = Vec::with_capacity(2 * m);
    let mut seen = std::collections::HashSet::with_capacity(m);
    let mut guard = 0usize;
    while seen.len() < m && guard < 100 * m + 1000 {
        let u = rng.gen_range(0..n as NodeId);
        let v = rng.gen_range(0..n as NodeId);
        if u != v {
            let key = if u < v { (u, v) } else { (v, u) };
            if seen.insert(key) {
                edges.push((u, v));
                edges.push((v, u));
            }
        }
        guard += 1;
    }
    CsrGraph::from_edges(n, &edges)
}

/// Two dense clusters joined by a few bridge ties — the topology of the
/// paper's Fig. 5 example that motivates EMD\*.
pub fn two_cluster_bridge<R: Rng>(
    cluster_size: usize,
    intra_p: f64,
    bridges: usize,
    rng: &mut R,
) -> CsrGraph {
    let n = 2 * cluster_size;
    let mut edges = Vec::new();
    for offset in [0usize, cluster_size] {
        for i in 0..cluster_size {
            for j in (i + 1)..cluster_size {
                if rng.gen_bool(intra_p) {
                    let (u, v) = ((offset + i) as NodeId, (offset + j) as NodeId);
                    edges.push((u, v));
                    edges.push((v, u));
                }
            }
        }
        // Ring backbone keeps each cluster connected regardless of intra_p.
        for i in 0..cluster_size {
            let u = (offset + i) as NodeId;
            let v = (offset + (i + 1) % cluster_size) as NodeId;
            edges.push((u, v));
            edges.push((v, u));
        }
    }
    for b in 0..bridges {
        let u = (b % cluster_size) as NodeId;
        let v = (cluster_size + (b * 7) % cluster_size) as NodeId;
        edges.push((u, v));
        edges.push((v, u));
    }
    CsrGraph::from_edges(n, &edges)
}

/// Undirected path 0—1—…—(n−1), both arcs per tie.
pub fn path_graph(n: usize) -> CsrGraph {
    let mut edges = Vec::with_capacity(2 * n.saturating_sub(1));
    for i in 1..n as NodeId {
        edges.push((i - 1, i));
        edges.push((i, i - 1));
    }
    CsrGraph::from_edges(n, &edges)
}

/// Undirected cycle over `n` nodes.
pub fn cycle_graph(n: usize) -> CsrGraph {
    assert!(n >= 3);
    let mut edges = Vec::with_capacity(2 * n);
    for i in 0..n as NodeId {
        let j = (i + 1) % n as NodeId;
        edges.push((i, j));
        edges.push((j, i));
    }
    CsrGraph::from_edges(n, &edges)
}

/// Complete graph on `n` nodes (both arcs per pair).
pub fn complete_graph(n: usize) -> CsrGraph {
    let mut edges = Vec::with_capacity(n * n.saturating_sub(1));
    for u in 0..n as NodeId {
        for v in 0..n as NodeId {
            if u != v {
                edges.push((u, v));
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Undirected `rows × cols` grid, useful for spatially intuitive tests.
pub fn grid_graph(rows: usize, cols: usize) -> CsrGraph {
    let n = rows * cols;
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1)));
                edges.push((id(r, c + 1), id(r, c)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c)));
                edges.push((id(r + 1, c), id(r, c)));
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::weak_components;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn scale_free_degree_distribution_is_heavy_tailed() {
        let mut rng = SmallRng::seed_from_u64(11);
        let g = scale_free_configuration(5000, -2.3, 1, 400, &mut rng);
        let degs: Vec<usize> = g.nodes().map(|u| g.out_degree(u)).collect();
        let max = *degs.iter().max().unwrap();
        let mean = degs.iter().sum::<usize>() as f64 / degs.len() as f64;
        assert!(max as f64 > 8.0 * mean, "max {max} vs mean {mean}");
        // Bidirectional: out-degree equals in-degree.
        for u in g.nodes() {
            assert_eq!(g.out_degree(u), g.in_degree(u));
        }
    }

    #[test]
    fn scale_free_degenerate_sizes_yield_edgeless_graphs() {
        // Regression: n = 0 and n = 1 used to panic the `k_max < n`
        // assertion; they must produce empty graphs instead.
        let mut rng = SmallRng::seed_from_u64(2);
        for n in [0, 1] {
            let g = scale_free_configuration(n, -2.5, 1, 40, &mut rng);
            assert_eq!(g.node_count(), n);
            assert_eq!(g.edge_count(), 0);
        }
        // Other size-reducing generators accept the degenerate sizes too.
        for n in [0, 1] {
            assert_eq!(complete_graph(n).edge_count(), 0);
            assert_eq!(path_graph(n).edge_count(), 0);
            assert_eq!(grid_graph(n, n).edge_count(), 0);
            assert_eq!(erdos_renyi_gnp(n, 0.5, true, &mut rng).edge_count(), 0);
            assert_eq!(erdos_renyi_gnm(n, 0, &mut rng).edge_count(), 0);
        }
    }

    #[test]
    fn barabasi_albert_is_connected() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = barabasi_albert(500, 3, &mut rng);
        let comps = weak_components(&g);
        assert_eq!(comps.component_count(), 1);
    }

    #[test]
    fn gnm_edge_count() {
        let mut rng = SmallRng::seed_from_u64(9);
        let g = erdos_renyi_gnm(100, 300, &mut rng);
        assert_eq!(g.edge_count(), 600);
    }

    #[test]
    fn grid_has_expected_structure() {
        let g = grid_graph(3, 4);
        assert_eq!(g.node_count(), 12);
        // Corner degree 2, interior degree 4.
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(5), 4);
    }

    #[test]
    fn complete_graph_edges() {
        let g = complete_graph(5);
        assert_eq!(g.edge_count(), 20);
    }

    #[test]
    fn two_cluster_bridge_is_connected_with_bridges() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = two_cluster_bridge(20, 0.2, 3, &mut rng);
        assert_eq!(weak_components(&g).component_count(), 1);
    }
}
