//! Graph substrate for the SND (Social Network Distance) library.
//!
//! This crate provides everything SND needs from a graph library, implemented
//! from scratch:
//!
//! * [`CsrGraph`] — a compact directed graph in compressed-sparse-row form
//!   with an embedded reverse index, so both out- and in-adjacency scans are
//!   cache-friendly. Edge weights are stored *outside* the graph (as slices
//!   aligned with edge ids) because SND derives several different weight
//!   functions from the same topology (one per network state and opinion).
//! * Generators for the graph families used in the paper's evaluation:
//!   configuration-model scale-free graphs with a prescribed exponent,
//!   Barabási–Albert preferential attachment, Erdős–Rényi, and small
//!   deterministic topologies for tests.
//! * Single-source shortest paths: binary-heap Dijkstra, Dial's bucket queue
//!   and a radix-heap Dijkstra (both exploiting the paper's Assumption 2 that
//!   edge costs are integers bounded by a constant `U`), plus Bellman–Ford
//!   and Floyd–Warshall used as test oracles.
//! * Clustering (label propagation and BFS partitioning) used by EMD\* to
//!   place local bank bins.
//! * Graph Laplacian quadratic forms for the quadratic-form baseline.

pub mod bfs;
pub mod clustering;
pub mod components;
pub mod csr;
pub mod generators;
pub mod laplacian;
pub mod shortest_paths;

pub use bfs::{bfs_levels, double_sweep_diameter};
pub use clustering::{
    bfs_partition, label_propagation, quotient_graph, whole_graph_cluster, Clustering,
};
pub use components::{largest_weak_component, weak_components, UnionFind};
pub use csr::{CsrGraph, EdgeId, GraphBuilder, NodeId};
pub use laplacian::{dense_laplacian, laplacian_quadratic_form};
pub use shortest_paths::{
    bellman_ford, dial, dial_bounded_scratch, dial_reverse, dial_reverse_scratch, dial_scratch,
    dijkstra, dijkstra_reverse, dijkstra_scratch, floyd_warshall, radix_dijkstra, repair_row,
    select_landmarks, CostChange, Dist, GroupAggregate, LandmarkSketch, RepairScratch, SsspScratch,
    UNREACHABLE,
};
