//! Incremental SSSP repair: patch a distance row after a batch of edge
//! cost changes instead of recomputing it.
//!
//! The delta-aware SND series path (`snd-core`) keeps SSSP rows — cluster
//! geometry rows, eccentricity rows — alive across consecutive snapshots
//! of an evolving network. A simulation step changes a handful of edge
//! costs; the shortest-path tree is intact almost everywhere, so
//! recomputing the row from scratch (`O(m + n·U)` per Dial run) wastes
//! nearly all of its work. [`repair_row`] updates the row in time
//! proportional to the *affected region*, following the Ramalingam–Reps
//! two-phase scheme for batch updates:
//!
//! 1. **Raise phase** — for every cost *increase* on an edge that
//!    supported its head's distance (`dist[tail] + old == dist[head]`),
//!    the head may have lost its shortest path. The affected set grows by
//!    a support test: a candidate is affected unless some edge from a
//!    non-affected predecessor still yields exactly its old distance
//!    under the new costs. When a node is marked, every head it could
//!    have supported (under old *or* new costs — decreased edges can
//!    carry support too) becomes a candidate in turn. Nodes that never
//!    fail the test keep provably-correct distances.
//! 2. **Settle phase** — every affected node is re-seeded with its best
//!    distance through the non-affected boundary, every *decreased* edge
//!    re-relaxes its head from the current tail distance, and a plain
//!    Dijkstra (binary heap — seeds are not monotone, so a bucket ring
//!    does not apply) runs everything to fixpoint. Relaxation is
//!    unrestricted: improvements are free to propagate beyond the
//!    affected set, which is exactly what cost decreases require.
//!
//! Correctness: shortest-path distances are the *unique* fixpoint of the
//! Bellman relaxation given the pinned sources. Phase 1 marks (a superset
//! of) every node whose distance can rise and phase 2 re-derives the
//! marked region from its boundary while propagating every possible
//! decrease, so the repaired row is **bit-identical** to a from-scratch
//! recomputation — the property tests below assert equality against
//! [`dial`](super::dial) across random graphs, random change batches,
//! and the tricky transitions (tree-edge increases, unreachable →
//! reachable and back).
//!
//! The row lives in the clamped `u32` domain used by `snd-core`'s
//! geometry caches: values `< inf` are exact distances, `inf` is the
//! caller's finite "unreachable" sentinel. The caller must guarantee the
//! domain is lossless — every true finite distance under either weight
//! vector is `< inf`. (SND's sentinel `U·n + 1` satisfies this whenever
//! it is not capped by the `u32` range; the delta path falls back to full
//! recomputation otherwise.)

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::csr::{CsrGraph, EdgeId, NodeId};

/// One edge whose cost changed: `(edge, old_cost)`. The new cost is read
/// from the caller's current weight slice. Entries whose cost did not
/// actually change are skipped.
pub type CostChange = (EdgeId, u32);

/// Reusable buffers for [`repair_row`]: construction is cheap, buffers
/// grow on first use and persist across calls (one scratch per worker
/// thread, like [`SsspScratch`](super::SsspScratch)).
#[derive(Default)]
pub struct RepairScratch {
    /// Epoch-stamped membership in the affected set.
    stamp: Vec<u32>,
    epoch: u32,
    affected: Vec<(NodeId, u32)>, // node + its pre-repair distance
    queue: Vec<NodeId>,
    dec_edges: Vec<EdgeId>,
    improved: Vec<NodeId>,
    heap: BinaryHeap<Reverse<(u32, NodeId)>>,
    /// Old cost per changed edge, rebuilt (allocation-free after warmup)
    /// each call.
    old_costs: HashMap<EdgeId, u32>,
}

impl RepairScratch {
    /// An empty scratch; buffers are sized lazily by the first run.
    pub fn new() -> Self {
        RepairScratch::default()
    }

    fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, self.epoch);
        }
        self.affected.clear();
        self.queue.clear();
        self.dec_edges.clear();
        self.improved.clear();
        self.heap.clear();
        self.old_costs.clear();
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    #[inline]
    fn is_affected(&self, v: NodeId) -> bool {
        self.stamp[v as usize] == self.epoch
    }
}

/// Repairs `dist` — a clamped SSSP row for `sources` under the *old*
/// weights — into the row the *new* weights produce, given the changed
/// edges. Direction matches the row being repaired: `reverse = false`
/// for [`dial_scratch`](super::dial_scratch) rows (distance *from* the
/// sources), `reverse = true` for
/// [`dial_reverse_scratch`](super::dial_reverse_scratch) rows (distance
/// *to* the sources along forward edges).
///
/// `inf` is the finite unreachable sentinel (see the module docs for the
/// lossless-domain requirement). `changes` must include every edge whose
/// cost differs between the two weight vectors; extra no-op entries are
/// fine.
///
/// Returns the number of nodes whose distance changed — `0` means the
/// row was already exact and is untouched, letting callers reuse
/// unchanged derived quantities (cluster minima, eccentricities)
/// verbatim.
#[allow(clippy::too_many_arguments)] // mirrors the SSSP signature plus the change batch
pub fn repair_row(
    g: &CsrGraph,
    new_weights: &[u32],
    changes: &[CostChange],
    sources: &[NodeId],
    reverse: bool,
    inf: u32,
    dist: &mut [u32],
    scratch: &mut RepairScratch,
) -> usize {
    debug_assert_eq!(new_weights.len(), g.edge_count());
    debug_assert_eq!(dist.len(), g.node_count());
    scratch.begin(g.node_count());

    // Edge orientation in relaxation terms: edge e relaxes dist[head]
    // through dist[tail] + w[e]. Forward rows: (tail, head) = (src, tgt);
    // reverse rows (distance *to* the sources): roles swap.
    let endpoints = |e: EdgeId| {
        let (a, b) = (g.edge_source(e), g.edge_target(e));
        if reverse {
            (b, a)
        } else {
            (a, b)
        }
    };
    // Old cost of an edge: the change batch's record, or the (unchanged)
    // current weight. The map lives in the scratch so repeated calls on
    // the hot series path reuse its allocation.
    scratch.old_costs.extend(changes.iter().copied());
    let old_costs = std::mem::take(&mut scratch.old_costs);
    let old_cost = |e: EdgeId| {
        old_costs
            .get(&e)
            .copied()
            .unwrap_or(new_weights[e as usize])
    };

    // Phase 0: split the batch. Decreased edges re-relax their heads in
    // the settle phase (evaluated *then*, against up-to-date tail
    // distances — a tail may itself be raised first); increases whose
    // edge could have supported its head seed the raise phase.
    for &(e, old) in changes {
        let new = new_weights[e as usize];
        if new == old {
            continue;
        }
        if new < old {
            scratch.dec_edges.push(e);
            continue;
        }
        let (tail, head) = endpoints(e);
        let dt = dist[tail as usize];
        if dt != inf && dist[head as usize] != inf && dt.saturating_add(old) == dist[head as usize]
        {
            scratch.queue.push(head);
        }
    }

    // Phase 1: grow the affected set. A candidate stays unaffected only
    // if some non-affected predecessor still supports *exactly* its old
    // distance under the new costs; any deviation (risen support, or a
    // strictly better path through a decreased edge) sends it to the
    // settle phase, which re-derives it from the boundary — marking a
    // node that did not strictly need it costs time, never correctness.
    let mut qi = 0;
    while qi < scratch.queue.len() {
        let v = scratch.queue[qi];
        qi += 1;
        if scratch.is_affected(v) || dist[v as usize] == inf {
            continue;
        }
        if dist[v as usize] == 0 && sources.contains(&v) {
            continue; // sources are pinned at zero
        }
        let mut best = inf;
        {
            let support = |e: EdgeId, u: NodeId, best: &mut u32| {
                if !scratch.is_affected(u) && dist[u as usize] != inf {
                    *best = (*best).min(dist[u as usize].saturating_add(new_weights[e as usize]));
                }
            };
            if reverse {
                for (e, u) in g.out_edges(v) {
                    support(e, u, &mut best);
                }
            } else {
                for (e, u) in g.in_edges(v) {
                    support(e, u, &mut best);
                }
            }
        }
        if best == dist[v as usize] {
            continue; // still supported at exactly the old distance
        }
        scratch.stamp[v as usize] = scratch.epoch;
        scratch.affected.push((v, dist[v as usize]));
        // Heads this node could have supported — under the old costs
        // (classic tree children) or the new ones (a decreased edge can
        // carry the support the test above found) — become candidates.
        let dv = dist[v as usize];
        let child = |e: EdgeId, h: NodeId, queue: &mut Vec<NodeId>| {
            let dh = dist[h as usize];
            if dh != inf
                && (dv.saturating_add(old_cost(e)) == dh
                    || dv.saturating_add(new_weights[e as usize]) == dh)
            {
                queue.push(h);
            }
        };
        let mut queue = std::mem::take(&mut scratch.queue);
        if reverse {
            for (e, h) in g.in_edges(v) {
                child(e, h, &mut queue);
            }
        } else {
            for (e, h) in g.out_edges(v) {
                child(e, h, &mut queue);
            }
        }
        scratch.queue = queue;
    }

    // Phase 1 is done with old costs; hand the map back for reuse.
    scratch.old_costs = old_costs;

    // Phase 2 (settle): re-seed affected nodes from their non-affected
    // boundary, re-relax decreased edges, run Dijkstra to fixpoint.
    let mut heap = std::mem::take(&mut scratch.heap);
    for i in 0..scratch.affected.len() {
        let (v, _) = scratch.affected[i];
        let mut best = inf;
        let support = |e: EdgeId, u: NodeId, best: &mut u32| {
            if !scratch.is_affected(u) && dist[u as usize] != inf {
                *best = (*best).min(dist[u as usize].saturating_add(new_weights[e as usize]));
            }
        };
        if reverse {
            for (e, u) in g.out_edges(v) {
                support(e, u, &mut best);
            }
        } else {
            for (e, u) in g.in_edges(v) {
                support(e, u, &mut best);
            }
        }
        dist[v as usize] = best;
        if best < inf {
            heap.push(Reverse((best, v)));
        }
    }
    for i in 0..scratch.dec_edges.len() {
        let e = scratch.dec_edges[i];
        let (tail, head) = endpoints(e);
        let dt = dist[tail as usize];
        if dt == inf {
            continue;
        }
        let nd = dt.saturating_add(new_weights[e as usize]);
        if nd < dist[head as usize] {
            dist[head as usize] = nd;
            if !scratch.is_affected(head) {
                scratch.improved.push(head);
            }
            heap.push(Reverse((nd, head)));
        }
    }
    while let Some(Reverse((d, x))) = heap.pop() {
        if d > dist[x as usize] {
            continue; // stale entry
        }
        // x settles: relax the heads it can improve. (Reverse rows hold
        // distances *to* the sources, so x improves its in-neighbors.)
        macro_rules! relax_all {
            ($iter:expr) => {
                for (e, y) in $iter {
                    let nd = d.saturating_add(new_weights[e as usize]);
                    if nd < dist[y as usize] {
                        dist[y as usize] = nd;
                        if !scratch.is_affected(y) {
                            scratch.improved.push(y);
                        }
                        heap.push(Reverse((nd, y)));
                    }
                }
            };
        }
        if reverse {
            relax_all!(g.in_edges(x));
        } else {
            relax_all!(g.out_edges(x));
        }
    }
    scratch.heap = heap;

    // Exact changed-node count: affected nodes compare against their
    // snapshot (some settle back to their old value), improved
    // non-affected nodes strictly decreased.
    scratch.improved.sort_unstable();
    scratch.improved.dedup();
    let moved_affected = scratch
        .affected
        .iter()
        .filter(|&&(v, old)| dist[v as usize] != old)
        .count();
    moved_affected + scratch.improved.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::shortest_paths::{dial, dial_reverse, UNREACHABLE};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn full_row(
        g: &CsrGraph,
        w: &[u32],
        sources: &[NodeId],
        max_w: u32,
        reverse: bool,
        inf: u32,
    ) -> Vec<u32> {
        let raw = if reverse {
            dial_reverse(g, w, sources, max_w)
        } else {
            dial(g, w, sources, max_w)
        };
        raw.iter()
            .map(|&d| {
                if d == UNREACHABLE || d >= inf as u64 {
                    inf
                } else {
                    d as u32
                }
            })
            .collect()
    }

    #[test]
    fn random_batches_repair_bit_identical_to_recompute() {
        let mut rng = SmallRng::seed_from_u64(2026);
        let mut scratch = RepairScratch::new();
        const MAX_W: u32 = 9;
        for trial in 0..300 {
            let n = 4 + trial % 24;
            let g = generators::erdos_renyi_gnp(n, 0.25, true, &mut rng);
            if g.edge_count() == 0 {
                continue;
            }
            let inf = MAX_W * n as u32 + 1;
            let mut w: Vec<u32> = (0..g.edge_count())
                .map(|_| rng.gen_range(1..=MAX_W))
                .collect();
            let mut sources: Vec<NodeId> = (0..1 + trial % 3)
                .map(|_| rng.gen_range(0..n as NodeId))
                .collect();
            sources.sort_unstable();
            sources.dedup();
            let reverse = trial % 2 == 1;

            let mut row = full_row(&g, &w, &sources, MAX_W, reverse, inf);

            // A batch of mixed increases/decreases.
            let mut changes: Vec<CostChange> = Vec::new();
            for _ in 0..1 + trial % 5 {
                let e = rng.gen_range(0..g.edge_count() as EdgeId);
                let old = w[e as usize];
                w[e as usize] = rng.gen_range(1..=MAX_W);
                changes.push((e, old));
            }

            let moved = repair_row(
                &g,
                &w,
                &changes,
                &sources,
                reverse,
                inf,
                &mut row,
                &mut scratch,
            );
            let expect = full_row(&g, &w, &sources, MAX_W, reverse, inf);
            assert_eq!(row, expect, "trial {trial} (reverse={reverse})");
            let before = {
                // Recompute the pre-change row to validate the count.
                let mut old_w = w.clone();
                for &(e, old) in changes.iter().rev() {
                    old_w[e as usize] = old;
                }
                full_row(&g, &old_w, &sources, MAX_W, reverse, inf)
            };
            let truly_moved = before.iter().zip(&expect).filter(|(a, b)| a != b).count();
            assert_eq!(moved, truly_moved, "trial {trial}: exact changed count");
        }
    }

    #[test]
    fn tree_edge_cost_increase_raises_the_subtree() {
        // 0 -1-> 1 -1-> 2 -1-> 3, alternative 0 -5-> 2. Raising the tree
        // edge (1,2) re-routes 2 and 3 through the alternative.
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (2, 3)]);
        let mut w = vec![0u32; g.edge_count()];
        w[g.find_edge(0, 1).unwrap() as usize] = 1;
        w[g.find_edge(0, 2).unwrap() as usize] = 5;
        w[g.find_edge(1, 2).unwrap() as usize] = 1;
        w[g.find_edge(2, 3).unwrap() as usize] = 1;
        let inf = 9 * 4 + 1;
        let mut row = full_row(&g, &w, &[0], 9, false, inf);
        assert_eq!(row, vec![0, 1, 2, 3]);

        let e = g.find_edge(1, 2).unwrap();
        let old = std::mem::replace(&mut w[e as usize], 9);
        let mut scratch = RepairScratch::new();
        let moved = repair_row(
            &g,
            &w,
            &[(e, old)],
            &[0],
            false,
            inf,
            &mut row,
            &mut scratch,
        );
        assert_eq!(row, vec![0, 1, 5, 6]);
        assert_eq!(moved, 2, "exactly nodes 2 and 3 moved");
    }

    #[test]
    fn unreachable_to_reachable_and_back() {
        // 0 -> 1 -> 2 where (1,2) is effectively severed by a cost at or
        // beyond the sentinel (the clamped domain's "no path").
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let inf = 10;
        let mut scratch = RepairScratch::new();

        let mut w = vec![1u32, 20];
        let mut row = vec![0, 1, inf];
        // Decrease below inf: 2 becomes reachable.
        let old = std::mem::replace(&mut w[1], 2);
        let moved = repair_row(
            &g,
            &w,
            &[(1, old)],
            &[0],
            false,
            inf,
            &mut row,
            &mut scratch,
        );
        assert_eq!(row, vec![0, 1, 3]);
        assert_eq!(moved, 1);

        // Increase back beyond the sentinel: 2 is unreachable again.
        let old = std::mem::replace(&mut w[1], 30);
        let moved = repair_row(
            &g,
            &w,
            &[(1, old)],
            &[0],
            false,
            inf,
            &mut row,
            &mut scratch,
        );
        assert_eq!(row, vec![0, 1, inf]);
        assert_eq!(moved, 1);
    }

    #[test]
    fn no_op_batches_report_zero_changed_nodes() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = generators::erdos_renyi_gnp(12, 0.3, true, &mut rng);
        let w: Vec<u32> = (0..g.edge_count()).map(|_| rng.gen_range(1..=5)).collect();
        let inf = 5 * 12 + 1;
        let mut row = full_row(&g, &w, &[3], 5, false, inf);
        let before = row.clone();
        let mut scratch = RepairScratch::new();
        // Every "change" reports the cost the edge already has.
        let changes: Vec<CostChange> = (0..g.edge_count() as EdgeId)
            .map(|e| (e, w[e as usize]))
            .collect();
        let moved = repair_row(&g, &w, &changes, &[3], false, inf, &mut row, &mut scratch);
        assert_eq!(moved, 0);
        assert_eq!(row, before);
    }

    #[test]
    fn multi_source_rows_repair_like_cluster_geometry_uses_them() {
        // The snd-core geometry cache repairs multi-source rows (one per
        // cluster, sources = the cluster's members).
        let mut rng = SmallRng::seed_from_u64(17);
        let mut scratch = RepairScratch::new();
        for trial in 0..60 {
            let n = 8 + trial % 12;
            let g = generators::erdos_renyi_gnp(n, 0.3, true, &mut rng);
            if g.edge_count() == 0 {
                continue;
            }
            let inf = 7 * n as u32 + 1;
            let mut w: Vec<u32> = (0..g.edge_count()).map(|_| rng.gen_range(1..=7)).collect();
            let sources: Vec<NodeId> = (0..n as NodeId).filter(|v| v % 3 == 0).collect();
            for reverse in [false, true] {
                let mut row = full_row(&g, &w, &sources, 7, reverse, inf);
                let e = rng.gen_range(0..g.edge_count() as EdgeId);
                let old = w[e as usize];
                w[e as usize] = rng.gen_range(1..=7);
                repair_row(
                    &g,
                    &w,
                    &[(e, old)],
                    &sources,
                    reverse,
                    inf,
                    &mut row,
                    &mut scratch,
                );
                assert_eq!(
                    row,
                    full_row(&g, &w, &sources, 7, reverse, inf),
                    "trial {trial} reverse={reverse}"
                );
                w[e as usize] = old; // same baseline for the other direction
            }
        }
    }
}
