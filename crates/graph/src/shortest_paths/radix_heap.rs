//! Monotone radix heap and the radix-heap Dijkstra variant.
//!
//! Theorem 4 of the paper cites the Ahuja–Mehlhorn–Orlin–Tarjan shortest-path
//! algorithm, whose priority queue is a radix heap: a monotone queue whose
//! buckets cover exponentially growing key ranges relative to the last
//! extracted key. Insertions go into the bucket matching the key's highest
//! differing bit; extraction empties the lowest non-empty bucket,
//! redistributing its items against the new minimum. Each item moves to a
//! strictly lower bucket on redistribution, so total redistribution work is
//! `O(items · buckets)` with `buckets = 65` for 64-bit keys.

use super::{Dist, UNREACHABLE};
use crate::csr::{CsrGraph, NodeId};

const BUCKETS: usize = 65;

/// A monotone min-priority queue over `u64` keys: extracted keys form a
/// non-decreasing sequence, and pushed keys must be `>=` the last extracted
/// key (debug-asserted).
pub struct RadixHeap<T> {
    buckets: Vec<Vec<(u64, T)>>,
    /// Minimum key of each bucket, tracked to avoid rescans.
    bucket_min: [u64; BUCKETS],
    last: u64,
    len: usize,
}

impl<T> Default for RadixHeap<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> RadixHeap<T> {
    /// Creates an empty heap with last-extracted key 0.
    pub fn new() -> Self {
        RadixHeap {
            buckets: (0..BUCKETS).map(|_| Vec::new()).collect(),
            bucket_min: [u64::MAX; BUCKETS],
            last: 0,
            len: 0,
        }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn bucket_of(&self, key: u64) -> usize {
        // Bucket index = position of highest bit differing from `last`;
        // equal keys go to bucket 0.
        let x = key ^ self.last;
        (64 - x.leading_zeros()) as usize
    }

    /// Pushes `(key, value)`. `key` must be `>=` the last popped key.
    pub fn push(&mut self, key: u64, value: T) {
        debug_assert!(key >= self.last, "radix heap requires monotone keys");
        let b = self.bucket_of(key);
        self.buckets[b].push((key, value));
        if key < self.bucket_min[b] {
            self.bucket_min[b] = key;
        }
        self.len += 1;
    }

    /// Pops the item with the minimum key.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        if self.len == 0 {
            return None;
        }
        // Find the first non-empty bucket.
        let b = self
            .buckets
            .iter()
            .position(|bucket| !bucket.is_empty())
            // lint:allow(no-unwrap) `len` counts exactly the entries stored across buckets
            .expect("len > 0 implies a non-empty bucket");
        if b == 0 {
            // Bucket 0 holds keys equal to `last`; any entry is minimal.
            self.len -= 1;
            let item = self.buckets[0].pop();
            if self.buckets[0].is_empty() {
                self.bucket_min[0] = u64::MAX;
            }
            return item;
        }
        // Redistribute bucket `b` against its minimum key, which becomes the
        // new `last`. Every item lands in a strictly smaller bucket.
        let new_last = self.bucket_min[b];
        self.last = new_last;
        let drained = std::mem::take(&mut self.buckets[b]);
        self.bucket_min[b] = u64::MAX;
        for (k, v) in drained {
            let nb = self.bucket_of(k);
            debug_assert!(nb < b);
            if k < self.bucket_min[nb] {
                self.bucket_min[nb] = k;
            }
            self.buckets[nb].push((k, v));
        }
        self.len -= 1;
        let item = self.buckets[0].pop();
        if self.buckets[0].is_empty() {
            self.bucket_min[0] = u64::MAX;
        }
        item
    }
}

/// Multi-source Dijkstra driven by a [`RadixHeap`].
pub fn radix_dijkstra(g: &CsrGraph, weights: &[u32], sources: &[NodeId]) -> Vec<Dist> {
    debug_assert_eq!(weights.len(), g.edge_count());
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut heap: RadixHeap<NodeId> = RadixHeap::new();
    for &s in sources {
        if dist[s as usize] != 0 {
            dist[s as usize] = 0;
            heap.push(0, s);
        }
    }
    while let Some((d, u)) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for (e, v) in g.out_edges(u) {
            let nd = d + weights[e as usize] as Dist;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(nd, v);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn sorts_monotone_stream() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut heap = RadixHeap::new();
        let mut keys: Vec<u64> = (0..500).map(|_| rng.gen_range(0..10_000)).collect();
        for &k in &keys {
            heap.push(k, k);
        }
        keys.sort_unstable();
        let mut out = Vec::new();
        while let Some((k, v)) = heap.pop() {
            assert_eq!(k, v);
            out.push(k);
        }
        assert_eq!(out, keys);
    }

    #[test]
    fn interleaved_push_pop_stays_monotone() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut heap = RadixHeap::new();
        let mut last = 0u64;
        for _ in 0..200 {
            let base = last;
            for _ in 0..5 {
                let k = base + rng.gen_range(0..100);
                heap.push(k, ());
            }
            if let Some((k, ())) = heap.pop() {
                assert!(k >= last);
                last = k;
            }
        }
        while let Some((k, ())) = heap.pop() {
            assert!(k >= last);
            last = k;
        }
    }

    #[test]
    fn empty_pop_is_none() {
        let mut heap: RadixHeap<u32> = RadixHeap::new();
        assert!(heap.pop().is_none());
        assert!(heap.is_empty());
    }
}
