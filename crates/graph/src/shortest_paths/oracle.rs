//! Slow shortest-path oracles used to cross-check the fast engines in tests.

use super::{Dist, UNREACHABLE};
use crate::csr::{CsrGraph, NodeId};

/// Bellman–Ford from a single source. `O(n·m)`; test oracle only.
pub fn bellman_ford(g: &CsrGraph, weights: &[u32], source: NodeId) -> Vec<Dist> {
    debug_assert_eq!(weights.len(), g.edge_count());
    let n = g.node_count();
    let mut dist = vec![UNREACHABLE; n];
    dist[source as usize] = 0;
    for _ in 0..n.saturating_sub(1) {
        let mut changed = false;
        for u in g.nodes() {
            let du = dist[u as usize];
            if du == UNREACHABLE {
                continue;
            }
            for (e, v) in g.out_edges(u) {
                let nd = du + weights[e as usize] as Dist;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

/// Floyd–Warshall all-pairs distances. `O(n^3)`; test oracle only.
pub fn floyd_warshall(g: &CsrGraph, weights: &[u32]) -> Vec<Vec<Dist>> {
    debug_assert_eq!(weights.len(), g.edge_count());
    let n = g.node_count();
    let mut d = vec![vec![UNREACHABLE; n]; n];
    for (i, row) in d.iter_mut().enumerate() {
        row[i] = 0;
    }
    for u in g.nodes() {
        for (e, v) in g.out_edges(u) {
            let w = weights[e as usize] as Dist;
            if w < d[u as usize][v as usize] {
                d[u as usize][v as usize] = w;
            }
        }
    }
    for k in 0..n {
        let row_k = d[k].clone();
        for row_i in &mut d {
            let dik = row_i[k];
            if dik == UNREACHABLE {
                continue;
            }
            for (j, &dkj) in row_k.iter().enumerate() {
                if dkj == UNREACHABLE {
                    continue;
                }
                let through = dik + dkj;
                if through < row_i[j] {
                    row_i[j] = through;
                }
            }
        }
    }
    d
}
