//! Binary-heap Dijkstra (forward, reverse, and target-bounded variants).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use super::{Dist, UNREACHABLE};
use crate::csr::{CsrGraph, NodeId};

/// Multi-source Dijkstra with non-negative integer weights.
///
/// Returns the distance from the *closest* source to every node;
/// [`UNREACHABLE`] where no path exists. `weights` must be aligned with the
/// graph's forward edge ids.
pub fn dijkstra(g: &CsrGraph, weights: &[u32], sources: &[NodeId]) -> Vec<Dist> {
    debug_assert_eq!(weights.len(), g.edge_count());
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut heap: BinaryHeap<Reverse<(Dist, NodeId)>> = BinaryHeap::new();
    for &s in sources {
        if dist[s as usize] != 0 {
            dist[s as usize] = 0;
            heap.push(Reverse((0, s)));
        }
    }
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue; // stale entry
        }
        for (e, v) in g.out_edges(u) {
            let nd = d + weights[e as usize] as Dist;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

/// Dijkstra on the reversed graph: `result[v]` is the distance from `v` to
/// the closest node of `sources` along forward edges. Uses the CSR reverse
/// index, so the same forward-aligned weight slice is reused.
pub fn dijkstra_reverse(g: &CsrGraph, weights: &[u32], sources: &[NodeId]) -> Vec<Dist> {
    debug_assert_eq!(weights.len(), g.edge_count());
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut heap: BinaryHeap<Reverse<(Dist, NodeId)>> = BinaryHeap::new();
    for &s in sources {
        if dist[s as usize] != 0 {
            dist[s as usize] = 0;
            heap.push(Reverse((0, s)));
        }
    }
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        for (e, u) in g.in_edges(v) {
            let nd = d + weights[e as usize] as Dist;
            if nd < dist[u as usize] {
                dist[u as usize] = nd;
                heap.push(Reverse((nd, u)));
            }
        }
    }
    dist
}

/// Dijkstra that stops once every node in `targets` is settled.
///
/// Distances of unsettled non-target nodes are left as whatever tentative
/// value was reached; only target entries (and settled nodes) are final.
pub fn dijkstra_bounded(
    g: &CsrGraph,
    weights: &[u32],
    sources: &[NodeId],
    targets: &[NodeId],
) -> Vec<Dist> {
    debug_assert_eq!(weights.len(), g.edge_count());
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut is_target = vec![false; g.node_count()];
    let mut remaining = 0usize;
    for &t in targets {
        if !is_target[t as usize] {
            is_target[t as usize] = true;
            remaining += 1;
        }
    }
    let mut heap: BinaryHeap<Reverse<(Dist, NodeId)>> = BinaryHeap::new();
    for &s in sources {
        if dist[s as usize] != 0 {
            dist[s as usize] = 0;
            heap.push(Reverse((0, s)));
        }
    }
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        if is_target[u as usize] {
            is_target[u as usize] = false;
            remaining -= 1;
            if remaining == 0 {
                break;
            }
        }
        for (e, v) in g.out_edges(u) {
            let nd = d + weights[e as usize] as Dist;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}
