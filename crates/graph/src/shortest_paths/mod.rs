//! Single-source and all-pairs shortest paths.
//!
//! SND's ground distance is a shortest-path metric over integer edge costs
//! bounded by a constant `U` (the paper's Assumption 2). Three SSSP engines
//! are provided:
//!
//! * [`dijkstra`] — binary-heap Dijkstra, the robust default;
//! * [`dial`] — Dial's bucket queue, `O(m + n·U)`-ish for small `U`;
//! * [`radix_dijkstra`] — monotone radix-heap Dijkstra in the spirit of
//!   Ahuja–Mehlhorn–Orlin–Tarjan, the structure Theorem 4 cites.
//!
//! [`bellman_ford`] and [`floyd_warshall`] are slow reference oracles used by
//! tests. All functions accept a weight slice aligned with the graph's
//! forward [`EdgeId`](crate::csr::EdgeId)s, and all support multi-source
//! queries (distance from the *set* of sources), which SND uses both for
//! cluster-to-node distances and for the ICC model's seed-set distances.

mod dial_queue;
mod dijkstra_impl;
mod landmarks;
mod oracle;
mod radix_heap;
mod repair;
mod scratch;

pub use dial_queue::{dial, dial_reverse};
pub use dijkstra_impl::{dijkstra, dijkstra_bounded, dijkstra_reverse};
pub use landmarks::{select_landmarks, GroupAggregate, LandmarkSketch};
pub use oracle::{bellman_ford, floyd_warshall};
pub use radix_heap::{radix_dijkstra, RadixHeap};
pub use repair::{repair_row, CostChange, RepairScratch};
pub use scratch::{
    dial_bounded_scratch, dial_reverse_scratch, dial_scratch, dijkstra_scratch, SsspScratch,
};

/// Distance type. Path costs fit easily: at most `(n-1) * U`.
pub type Dist = u64;

/// Sentinel for "no path". Large enough to dominate any real path cost while
/// leaving headroom so that saturating additions never wrap.
pub const UNREACHABLE: Dist = u64::MAX;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;
    use crate::generators;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn line_graph() -> (CsrGraph, Vec<u32>) {
        // 0 -1-> 1 -2-> 2 -3-> 3
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut w = vec![0u32; g.edge_count()];
        w[g.find_edge(0, 1).unwrap() as usize] = 1;
        w[g.find_edge(1, 2).unwrap() as usize] = 2;
        w[g.find_edge(2, 3).unwrap() as usize] = 3;
        (g, w)
    }

    #[test]
    fn line_distances() {
        let (g, w) = line_graph();
        let d = dijkstra(&g, &w, &[0]);
        assert_eq!(d, vec![0, 1, 3, 6]);
        let d = dial(&g, &w, &[0], 3);
        assert_eq!(d, vec![0, 1, 3, 6]);
        let d = radix_dijkstra(&g, &w, &[0]);
        assert_eq!(d, vec![0, 1, 3, 6]);
    }

    #[test]
    fn unreachable_nodes() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        let w = vec![5u32];
        let d = dijkstra(&g, &w, &[0]);
        assert_eq!(d[2], UNREACHABLE);
        let d = dial(&g, &w, &[0], 5);
        assert_eq!(d[2], UNREACHABLE);
        let d = radix_dijkstra(&g, &w, &[0]);
        assert_eq!(d[2], UNREACHABLE);
    }

    #[test]
    fn multi_source() {
        let (g, w) = line_graph();
        let d = dijkstra(&g, &w, &[0, 2]);
        assert_eq!(d, vec![0, 1, 0, 3]);
    }

    #[test]
    fn reverse_distances_match_reversed_graph() {
        let (g, w) = line_graph();
        // Distance from every node TO node 3.
        let d = dijkstra_reverse(&g, &w, &[3]);
        assert_eq!(d, vec![6, 5, 3, 0]);
    }

    #[test]
    fn agree_with_oracles_on_random_graphs() {
        let mut rng = SmallRng::seed_from_u64(42);
        for trial in 0..30 {
            let n = 2 + (trial % 12);
            let g = generators::erdos_renyi_gnp(n, 0.4, true, &mut rng);
            let w: Vec<u32> = (0..g.edge_count()).map(|_| rng.gen_range(1..=9)).collect();
            let src = rng.gen_range(0..n as u32);
            let bf = bellman_ford(&g, &w, src);
            let dj = dijkstra(&g, &w, &[src]);
            let di = dial(&g, &w, &[src], 9);
            let rx = radix_dijkstra(&g, &w, &[src]);
            assert_eq!(dj, bf, "dijkstra vs bellman-ford, trial {trial}");
            assert_eq!(di, bf, "dial vs bellman-ford, trial {trial}");
            assert_eq!(rx, bf, "radix vs bellman-ford, trial {trial}");
            let fw = floyd_warshall(&g, &w);
            for v in 0..n {
                assert_eq!(fw[src as usize][v], bf[v]);
            }
        }
    }

    #[test]
    fn bounded_dijkstra_stops_early_but_correct_for_settled() {
        let mut rng = SmallRng::seed_from_u64(7);
        let g = generators::erdos_renyi_gnp(50, 0.1, true, &mut rng);
        let w: Vec<u32> = (0..g.edge_count()).map(|_| rng.gen_range(1..=5)).collect();
        let full = dijkstra(&g, &w, &[0]);
        let targets: Vec<u32> = vec![3, 17, 41];
        let bounded = dijkstra_bounded(&g, &w, &[0], &targets);
        for &t in &targets {
            assert_eq!(bounded[t as usize], full[t as usize]);
        }
    }

    #[test]
    fn capacity_bounded_dial_certifies_its_radius() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut scratch = SsspScratch::new();
        for trial in 0..40 {
            let n = 10 + (trial % 30);
            let g = generators::erdos_renyi_gnp(n, 0.15, true, &mut rng);
            let w: Vec<u32> = (0..g.edge_count()).map(|_| rng.gen_range(0..=6)).collect();
            let src = rng.gen_range(0..n as u32);
            let full = dial(&g, &w, &[src], 6);
            // Every node is a unit target; stop once a third are settled.
            let target_weight = vec![1u64; n];
            let radius = dial_bounded_scratch(
                &g,
                &w,
                &[src],
                6,
                false,
                &target_weight,
                n as u64 / 3,
                &mut scratch,
            );
            for v in 0..n as u32 {
                let got = scratch.dist(v);
                if got < radius {
                    assert_eq!(got, full[v as usize], "settled exact, trial {trial}");
                } else {
                    assert!(full[v as usize] >= radius, "radius floor, trial {trial}");
                    assert!(got >= full[v as usize], "tentative upper, trial {trial}");
                }
            }
            // The scratch must be reusable after an early stop.
            dial_scratch(&g, &w, &[src], 6, &mut scratch);
            let again: Vec<_> = scratch.distances(n).collect();
            assert_eq!(again, full, "scratch reusable after bounded run {trial}");
        }
    }

    #[test]
    fn zero_weight_edges_allowed() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let w = vec![0u32, 0u32];
        assert_eq!(dijkstra(&g, &w, &[0]), vec![0, 0, 0]);
        assert_eq!(dial(&g, &w, &[0], 1), vec![0, 0, 0]);
        assert_eq!(radix_dijkstra(&g, &w, &[0]), vec![0, 0, 0]);
    }
}
