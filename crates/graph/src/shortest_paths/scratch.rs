//! Allocation-free SSSP: reusable scratch buffers for batch row
//! computation.
//!
//! SND's sparse path runs one bounded-cost SSSP per residual user — for
//! all-pairs workloads that is thousands of runs over the same graph. The
//! plain [`dial`](super::dial)/[`dijkstra`](super::dijkstra) entry points
//! allocate a fresh `vec![UNREACHABLE; n]` (plus bucket arrays) per call;
//! at `n = 10⁴…10⁶` the zeroing alone rivals the traversal cost.
//!
//! [`SsspScratch`] holds the distance array, a timestamp array, the Dial
//! bucket ring, and the Dijkstra heap. Resetting between runs is O(1): the
//! epoch counter is bumped and stale entries are recognized by their
//! timestamp instead of being rewritten. Buckets and heap drain to empty as
//! a side effect of each run, so only their capacity persists.
//!
//! Intended use is one scratch per worker thread, reused across every row
//! that thread computes (see `snd-core`'s row cache).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use super::{Dist, UNREACHABLE};
use crate::csr::{CsrGraph, NodeId};

/// Reusable state for [`dial_scratch`] / [`dial_reverse_scratch`] /
/// [`dijkstra_scratch`]. Construction is cheap; buffers grow on first use
/// and are retained across runs.
#[derive(Default)]
pub struct SsspScratch {
    dist: Vec<Dist>,
    stamp: Vec<u32>,
    epoch: u32,
    buckets: Vec<Vec<NodeId>>,
    heap: BinaryHeap<Reverse<(Dist, NodeId)>>,
}

impl SsspScratch {
    /// An empty scratch; buffers are sized lazily by the first run.
    pub fn new() -> Self {
        SsspScratch::default()
    }

    /// Distance of `v` from the last run's sources ([`UNREACHABLE`] if no
    /// path, or if `v` was not touched by the last run).
    #[inline]
    pub fn dist(&self, v: NodeId) -> Dist {
        let v = v as usize;
        if self.stamp.get(v) == Some(&self.epoch) {
            self.dist[v]
        } else {
            UNREACHABLE
        }
    }

    /// Iterates the last run's distances for nodes `0..n`.
    pub fn distances(&self, n: usize) -> impl Iterator<Item = Dist> + '_ {
        (0..n as NodeId).map(|v| self.dist(v))
    }

    /// Starts a new run: O(1) reset via epoch bump, growing buffers to
    /// cover `n` nodes and `span` Dial buckets.
    fn begin(&mut self, n: usize, span: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, UNREACHABLE);
            self.stamp.resize(n, self.epoch);
        }
        if self.buckets.len() < span {
            self.buckets.resize_with(span, Vec::new);
        }
        debug_assert!(self.buckets.iter().all(|b| b.is_empty()), "drained");
        self.heap.clear();
        if self.epoch == u32::MAX {
            // Epoch wrap: invalidate everything explicitly once per 2³²
            // runs, then resume O(1) resets.
            self.stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// Tentative distance during a run (stamped read).
    #[inline]
    fn get(&self, v: NodeId) -> Dist {
        let v = v as usize;
        if self.stamp[v] == self.epoch {
            self.dist[v]
        } else {
            UNREACHABLE
        }
    }

    /// Stamped write.
    #[inline]
    fn set(&mut self, v: NodeId, d: Dist) {
        let v = v as usize;
        self.dist[v] = d;
        self.stamp[v] = self.epoch;
    }
}

/// Multi-source Dial's algorithm into caller-provided scratch. Semantics
/// match [`dial`](super::dial); read results via [`SsspScratch::dist`].
pub fn dial_scratch(
    g: &CsrGraph,
    weights: &[u32],
    sources: &[NodeId],
    max_weight: u32,
    scratch: &mut SsspScratch,
) {
    dial_scratch_impl(g, weights, sources, max_weight, false, scratch)
}

/// Reverse-edge counterpart of [`dial_scratch`] (distance *to* the source
/// set along forward edges).
pub fn dial_reverse_scratch(
    g: &CsrGraph,
    weights: &[u32],
    sources: &[NodeId],
    max_weight: u32,
    scratch: &mut SsspScratch,
) {
    dial_scratch_impl(g, weights, sources, max_weight, true, scratch)
}

fn dial_scratch_impl(
    g: &CsrGraph,
    weights: &[u32],
    sources: &[NodeId],
    max_weight: u32,
    reverse: bool,
    scratch: &mut SsspScratch,
) {
    debug_assert_eq!(weights.len(), g.edge_count());
    debug_assert!(weights.iter().all(|&w| w <= max_weight));
    let n = g.node_count();
    let span = max_weight as usize + 1;
    scratch.begin(n, span);
    let mut in_queue = 0usize;

    for &s in sources {
        if scratch.get(s) != 0 {
            scratch.set(s, 0);
            scratch.buckets[0].push(s);
            in_queue += 1;
        }
    }

    let mut current: Dist = 0;
    while in_queue > 0 {
        let slot = (current % span as Dist) as usize;
        // Buckets may hold stale entries whose distance improved since
        // insertion; they are skipped on extraction, exactly as in `dial`.
        while let Some(u) = scratch.buckets[slot].pop() {
            in_queue -= 1;
            if scratch.get(u) != current {
                continue; // stale
            }
            let mut relax = |e: u32, v: NodeId, scratch: &mut SsspScratch| {
                let nd = current + weights[e as usize] as Dist;
                if nd < scratch.get(v) {
                    scratch.set(v, nd);
                    scratch.buckets[(nd % span as Dist) as usize].push(v);
                    in_queue += 1;
                }
            };
            if reverse {
                for (e, v) in g.in_edges(u) {
                    relax(e, v, scratch);
                }
            } else {
                for (e, v) in g.out_edges(u) {
                    relax(e, v, scratch);
                }
            }
        }
        current += 1;
    }
}

/// Dial's algorithm with an early exit once enough *target capacity* has
/// been settled: nodes are settled in distance order (exactly as
/// [`dial_scratch`]), accumulating `target_weight[v]` per settled node, and
/// the run stops at the first bucket boundary where the accumulated weight
/// reaches `stop_capacity`.
///
/// Returns the exploration radius `r`. Every node whose entry reads `< r`
/// via [`SsspScratch::dist`] is settled — the entry is its exact distance.
/// Any other node's true distance is `>= r`, and its entry (when not
/// [`UNREACHABLE`]) is the best tentative path found, a valid *upper*
/// bound. A run that drains the queue before reaching the capacity returns
/// [`UNREACHABLE`], i.e. every finite entry is exact.
///
/// This is the materialization primitive of the approximate SND tier: a
/// supplier in a transportation problem only ships to its nearest
/// consumers, so settling a constant multiple of its own mass in nearby
/// consumer capacity is enough to price its flowing cells exactly, while
/// the radius floors the cost of every consumer the ball never reached.
#[allow(clippy::too_many_arguments)] // dial_scratch's signature plus the stop condition
pub fn dial_bounded_scratch(
    g: &CsrGraph,
    weights: &[u32],
    sources: &[NodeId],
    max_weight: u32,
    reverse: bool,
    target_weight: &[u64],
    stop_capacity: u64,
    scratch: &mut SsspScratch,
) -> Dist {
    debug_assert_eq!(weights.len(), g.edge_count());
    debug_assert_eq!(target_weight.len(), g.node_count());
    debug_assert!(weights.iter().all(|&w| w <= max_weight));
    let n = g.node_count();
    let span = max_weight as usize + 1;
    scratch.begin(n, span);
    let mut in_queue = 0usize;
    let mut settled: u64 = 0;

    for &s in sources {
        if scratch.get(s) != 0 {
            scratch.set(s, 0);
            scratch.buckets[0].push(s);
            in_queue += 1;
        }
    }

    let mut current: Dist = 0;
    while in_queue > 0 {
        let slot = (current % span as Dist) as usize;
        while let Some(u) = scratch.buckets[slot].pop() {
            in_queue -= 1;
            if scratch.get(u) != current {
                continue; // stale
            }
            settled = settled.saturating_add(target_weight[u as usize]);
            let mut relax = |e: u32, v: NodeId, scratch: &mut SsspScratch| {
                let nd = current + weights[e as usize] as Dist;
                if nd < scratch.get(v) {
                    scratch.set(v, nd);
                    scratch.buckets[(nd % span as Dist) as usize].push(v);
                    in_queue += 1;
                }
            };
            if reverse {
                for (e, v) in g.in_edges(u) {
                    relax(e, v, scratch);
                }
            } else {
                for (e, v) in g.out_edges(u) {
                    relax(e, v, scratch);
                }
            }
        }
        current += 1;
        // Stop only at bucket boundaries: everything at distance
        // `< current` is now settled, so `current` is a sound radius even
        // with zero-weight edges (same-bucket chains drain above).
        if settled >= stop_capacity {
            if in_queue > 0 {
                for b in scratch.buckets.iter_mut() {
                    b.clear();
                }
            }
            return current;
        }
    }
    UNREACHABLE
}

/// Multi-source binary-heap Dijkstra into caller-provided scratch.
/// Semantics match [`dijkstra`](super::dijkstra).
pub fn dijkstra_scratch(
    g: &CsrGraph,
    weights: &[u32],
    sources: &[NodeId],
    scratch: &mut SsspScratch,
) {
    debug_assert_eq!(weights.len(), g.edge_count());
    scratch.begin(g.node_count(), 0);
    for &s in sources {
        if scratch.get(s) != 0 {
            scratch.set(s, 0);
            scratch.heap.push(Reverse((0, s)));
        }
    }
    while let Some(Reverse((d, u))) = scratch.heap.pop() {
        if d > scratch.get(u) {
            continue; // stale entry
        }
        for (e, v) in g.out_edges(u) {
            let nd = d + weights[e as usize] as Dist;
            if nd < scratch.get(v) {
                scratch.set(v, nd);
                scratch.heap.push(Reverse((nd, v)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::shortest_paths::{dial, dial_reverse, dijkstra};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn scratch_variants_match_allocating_variants_across_reuse() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut scratch = SsspScratch::new();
        // One scratch reused across many graphs and runs — the regime the
        // row cache exercises.
        for trial in 0..25 {
            let n = 3 + (trial % 9);
            let g = generators::erdos_renyi_gnp(n, 0.4, true, &mut rng);
            let w: Vec<u32> = (0..g.edge_count()).map(|_| rng.gen_range(0..=7)).collect();
            let src = rng.gen_range(0..n as u32);

            dial_scratch(&g, &w, &[src], 7, &mut scratch);
            let expect = dial(&g, &w, &[src], 7);
            let got: Vec<_> = scratch.distances(n).collect();
            assert_eq!(got, expect, "dial trial {trial}");

            dial_reverse_scratch(&g, &w, &[src], 7, &mut scratch);
            let expect = dial_reverse(&g, &w, &[src], 7);
            let got: Vec<_> = scratch.distances(n).collect();
            assert_eq!(got, expect, "dial_reverse trial {trial}");

            dijkstra_scratch(&g, &w, &[src], &mut scratch);
            let expect = dijkstra(&g, &w, &[src]);
            let got: Vec<_> = scratch.distances(n).collect();
            assert_eq!(got, expect, "dijkstra trial {trial}");
        }
    }

    #[test]
    fn stale_distances_from_previous_runs_are_invisible() {
        // Run 1 reaches node 2; run 2 (different sources, different graph
        // region) must not see run 1's distances.
        let g = crate::csr::CsrGraph::from_edges(4, &[(0, 1), (1, 2)]);
        let w = vec![1u32, 1];
        let mut scratch = SsspScratch::new();
        dial_scratch(&g, &w, &[0], 1, &mut scratch);
        assert_eq!(scratch.dist(2), 2);
        assert_eq!(scratch.dist(3), crate::shortest_paths::UNREACHABLE);
        dial_scratch(&g, &w, &[3], 1, &mut scratch);
        assert_eq!(scratch.dist(3), 0);
        assert_eq!(
            scratch.dist(2),
            crate::shortest_paths::UNREACHABLE,
            "epoch reset hides the previous run"
        );
    }

    #[test]
    fn multi_source_and_zero_weights() {
        let g = crate::csr::CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let w = vec![0u32, 0];
        let mut scratch = SsspScratch::new();
        dial_scratch(&g, &w, &[0], 1, &mut scratch);
        assert_eq!(scratch.distances(3).collect::<Vec<_>>(), vec![0, 0, 0]);
        dijkstra_scratch(&g, &w, &[0, 2], &mut scratch);
        assert_eq!(scratch.distances(3).collect::<Vec<_>>(), vec![0, 0, 0]);
    }
}
