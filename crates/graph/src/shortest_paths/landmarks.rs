//! Landmark (pivot) SSSP sketches: triangle-inequality distance envelopes.
//!
//! A landmark sketch answers *certified bounds* on the oriented shortest
//! path distance `d(x, y)` from a small set of precomputed landmark rows
//! instead of a fresh SSSP per query — the classic ALT/pivot technique
//! (Goldberg–Harrelson), specialized here to the clamped integer domain
//! the SND geometry caches use.
//!
//! Let `d̂(x, y) = min(d(x, y), inf)` be the clamped distance with finite
//! sentinel `inf` for "no path". `d̂` still satisfies the triangle
//! inequality (`d̂(x,y) ≤ d̂(x,l) + d̂(l,y)` — if either clamp saturates the
//! right side is already `≥ inf ≥ d̂(x,y)`, and if neither does the real
//! relay path `x→l→y` has finite cost, so `d(x,y)` is exact on both
//! sides), which gives per-landmark envelopes
//!
//! ```text
//! d̂(x,y) ≤ d̂(x,l) + d̂(l,y)                       (upper, relay through l)
//! d̂(x,y) ≥ max(d̂(l,y) − d̂(l,x), d̂(x,l) − d̂(y,l))  (lower, reverse triangle)
//! ```
//!
//! tightened by taking the min (upper) / max (lower) over all landmarks.
//! The same algebra lifts to *groups* of nodes: with per-group aggregates
//! `min/max` of `d̂(v, l)` and `d̂(l, v)` over the members, the formulas
//! bound the min/max pairwise distance between two groups — the cell
//! bounds the coarsened EMD\* pricing in `snd-core` builds its certified
//! `[lower, upper]` cost matrices from.
//!
//! Landmark *selection* ([`select_landmarks`]) is topology-only (weight
//! free) and deterministic: the highest-degree node seeds the set, then
//! picks alternate between remaining high-degree hubs and farthest-point
//! covers (maximizing the BFS hop distance to the chosen set), the usual
//! degree + farthest-point mix. Selection is done once per graph; the
//! per-landmark distance *rows* depend on the edge weights and are
//! computed by the caller (one forward and one reverse SSSP per landmark
//! per weighting).

use crate::bfs::bfs_levels;
use crate::csr::{CsrGraph, NodeId};

/// Picks `count` distinct landmark nodes: highest total degree first, then
/// alternating farthest-point (max hop distance to the chosen set, treating
/// unreachable as farthest) and next-highest-degree picks. Deterministic;
/// ties break toward smaller node ids. Returns fewer than `count` only
/// when the graph has fewer nodes.
pub fn select_landmarks(g: &CsrGraph, count: usize) -> Vec<NodeId> {
    let n = g.node_count();
    let count = count.min(n);
    if count == 0 {
        return Vec::new();
    }
    let degree = |v: NodeId| g.out_degree(v) + g.in_degree(v);
    let mut by_degree: Vec<NodeId> = (0..n as NodeId).collect();
    // Stable ordering: degree descending, id ascending.
    by_degree.sort_by_key(|&v| (usize::MAX - degree(v), v));

    let mut chosen = vec![by_degree[0]];
    let mut taken = vec![false; n];
    taken[by_degree[0] as usize] = true;
    let mut next_hub = 1;
    while chosen.len() < count {
        let pick = if chosen.len() % 2 == 1 {
            // Farthest-point cover: the node maximizing the hop distance
            // to the chosen set (unreachable counts as infinitely far, so
            // disconnected components get a landmark early).
            let levels = bfs_levels(g, &chosen, true);
            (0..n as NodeId)
                .filter(|&v| !taken[v as usize])
                .max_by_key(|&v| (levels[v as usize], usize::MAX - v as usize))
        } else {
            by_degree[next_hub..]
                .iter()
                .find(|&&v| !taken[v as usize])
                .copied()
        };
        match pick {
            Some(v) => {
                taken[v as usize] = true;
                chosen.push(v);
                while next_hub < n && taken[by_degree[next_hub] as usize] {
                    next_hub += 1;
                }
            }
            None => break,
        }
    }
    chosen
}

/// Per-landmark min/max distance aggregates over one group of nodes — the
/// group-level sketch [`LandmarkSketch::group_upper`] /
/// [`group_lower`](LandmarkSketch::group_lower) work from. `to[l]` bounds
/// `d̂(v → landmark l)` over the members, `from[l]` bounds
/// `d̂(landmark l → v)`.
#[derive(Clone, Debug)]
pub struct GroupAggregate {
    min_to: Vec<u32>,
    max_to: Vec<u32>,
    min_from: Vec<u32>,
    max_from: Vec<u32>,
}

/// A landmark sketch over one weighting: for each landmark `l`, the
/// clamped distance rows `to[l][v] = d̂(v → l)` and `from[l][v] = d̂(l → v)`.
/// Rows are borrowed — they normally live in the caller's SSSP row cache,
/// shared with exact pricing.
pub struct LandmarkSketch<'a> {
    to: Vec<&'a [u32]>,
    from: Vec<&'a [u32]>,
    inf: u32,
}

impl<'a> LandmarkSketch<'a> {
    /// Builds a sketch from per-landmark rows. `to[l][v]` must be the
    /// clamped distance from `v` to landmark `l` (a reverse SSSP row of
    /// `l`), `from[l][v]` the clamped distance from `l` to `v` (a forward
    /// row), both clamped at the finite sentinel `inf`.
    pub fn new(to: Vec<&'a [u32]>, from: Vec<&'a [u32]>, inf: u32) -> Self {
        assert_eq!(to.len(), from.len(), "one row pair per landmark");
        LandmarkSketch { to, from, inf }
    }

    /// Number of landmarks.
    pub fn landmark_count(&self) -> usize {
        self.to.len()
    }

    /// Aggregates the per-landmark distances over a member set. `O(|members| · L)`.
    pub fn aggregate(&self, members: &[NodeId]) -> GroupAggregate {
        let l = self.landmark_count();
        let mut agg = GroupAggregate {
            min_to: vec![u32::MAX; l],
            max_to: vec![0; l],
            min_from: vec![u32::MAX; l],
            max_from: vec![0; l],
        };
        for (i, (to, from)) in self.to.iter().zip(&self.from).enumerate() {
            for &v in members {
                let t = to[v as usize];
                let f = from[v as usize];
                agg.min_to[i] = agg.min_to[i].min(t);
                agg.max_to[i] = agg.max_to[i].max(t);
                agg.min_from[i] = agg.min_from[i].min(f);
                agg.max_from[i] = agg.max_from[i].max(f);
            }
        }
        agg
    }

    /// Certified upper bound on `max_{x∈A, y∈B} d̂(x, y)`: the best relay
    /// landmark, clamped at the sentinel (every true `d̂` is `≤ inf`).
    pub fn group_upper(&self, a: &GroupAggregate, b: &GroupAggregate) -> u32 {
        let mut best = self.inf;
        for l in 0..self.landmark_count() {
            best = best.min(a.max_to[l].saturating_add(b.max_from[l]));
        }
        best
    }

    /// Certified lower bound on `min_{x∈A, y∈B} d̂(x, y)` via the reverse
    /// triangle inequality (never negative).
    pub fn group_lower(&self, a: &GroupAggregate, b: &GroupAggregate) -> u32 {
        let mut best = 0u32;
        for l in 0..self.landmark_count() {
            // d̂(x,y) ≥ d̂(l,y) − d̂(l,x) ≥ min_from_B − max_from_A
            best = best.max(b.min_from[l].saturating_sub(a.max_from[l]));
            // d̂(x,y) ≥ d̂(x,l) − d̂(y,l) ≥ min_to_A − max_to_B
            best = best.max(a.min_to[l].saturating_sub(b.max_to[l]));
        }
        best
    }

    /// The landmark index achieving [`group_upper`](Self::group_upper) —
    /// the binding relay landmark of the cell, or `None` when no landmark
    /// beats the sentinel. Adaptive placement uses this as the usefulness
    /// credit: a landmark that is never binding for any hot cell is a
    /// candidate for eviction.
    pub fn group_upper_arg(&self, a: &GroupAggregate, b: &GroupAggregate) -> Option<usize> {
        let mut best = self.inf;
        let mut arg = None;
        for l in 0..self.landmark_count() {
            let v = a.max_to[l].saturating_add(b.max_from[l]);
            if v < best {
                best = v;
                arg = Some(l);
            }
        }
        arg
    }

    /// The landmark index achieving [`group_lower`](Self::group_lower), or
    /// `None` when no landmark lifts the bound above the trivial 0.
    pub fn group_lower_arg(&self, a: &GroupAggregate, b: &GroupAggregate) -> Option<usize> {
        let mut best = 0u32;
        let mut arg = None;
        for l in 0..self.landmark_count() {
            let v = b.min_from[l]
                .saturating_sub(a.max_from[l])
                .max(a.min_to[l].saturating_sub(b.max_to[l]));
            if v > best {
                best = v;
                arg = Some(l);
            }
        }
        arg
    }

    /// Point-pair upper bound `d̂(x, y) ≤ min_l d̂(x,l) + d̂(l,y)`.
    pub fn upper(&self, x: NodeId, y: NodeId) -> u32 {
        let mut best = self.inf;
        for (to, from) in self.to.iter().zip(&self.from) {
            best = best.min(to[x as usize].saturating_add(from[y as usize]));
        }
        best
    }

    /// Point-pair lower bound (reverse triangle inequality, floor 0).
    pub fn lower(&self, x: NodeId, y: NodeId) -> u32 {
        let mut best = 0u32;
        for (to, from) in self.to.iter().zip(&self.from) {
            best = best.max(from[y as usize].saturating_sub(from[x as usize]));
            best = best.max(to[x as usize].saturating_sub(to[y as usize]));
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::shortest_paths::{dial, dial_reverse, UNREACHABLE};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn clamped_row(
        g: &CsrGraph,
        w: &[u32],
        src: NodeId,
        max_w: u32,
        rev: bool,
        inf: u32,
    ) -> Vec<u32> {
        let raw = if rev {
            dial_reverse(g, w, &[src], max_w)
        } else {
            dial(g, w, &[src], max_w)
        };
        raw.iter()
            .map(|&d| {
                if d == UNREACHABLE || d >= inf as u64 {
                    inf
                } else {
                    d as u32
                }
            })
            .collect()
    }

    #[test]
    fn selection_is_deterministic_distinct_and_bounded() {
        let mut rng = SmallRng::seed_from_u64(11);
        let g = generators::erdos_renyi_gnp(40, 0.1, true, &mut rng);
        let a = select_landmarks(&g, 8);
        let b = select_landmarks(&g, 8);
        assert_eq!(a, b, "selection must be deterministic");
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len(), "landmarks must be distinct");
        assert_eq!(select_landmarks(&g, 100).len(), 40, "capped at n");
        assert!(select_landmarks(&g, 0).is_empty());
    }

    #[test]
    fn first_landmark_is_a_top_degree_hub() {
        // Star: node 0 has degree 5, everything else 1.
        let g = CsrGraph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        assert_eq!(select_landmarks(&g, 1), vec![0]);
    }

    #[test]
    fn pair_and_group_bounds_bracket_exact_distances() {
        let mut rng = SmallRng::seed_from_u64(2026);
        const MAX_W: u32 = 9;
        for trial in 0..40 {
            let n = 6 + trial % 20;
            let g = generators::erdos_renyi_gnp(n, 0.15, false, &mut rng);
            if g.edge_count() == 0 {
                continue;
            }
            let inf = MAX_W * n as u32 + 1;
            let w: Vec<u32> = (0..g.edge_count())
                .map(|_| rng.gen_range(1..=MAX_W))
                .collect();
            let landmarks = select_landmarks(&g, 3);
            let to_rows: Vec<Vec<u32>> = landmarks
                .iter()
                .map(|&l| clamped_row(&g, &w, l, MAX_W, true, inf))
                .collect();
            let from_rows: Vec<Vec<u32>> = landmarks
                .iter()
                .map(|&l| clamped_row(&g, &w, l, MAX_W, false, inf))
                .collect();
            let sketch = LandmarkSketch::new(
                to_rows.iter().map(|r| r.as_slice()).collect(),
                from_rows.iter().map(|r| r.as_slice()).collect(),
                inf,
            );

            // Exact clamped rows for validation.
            let exact: Vec<Vec<u32>> = (0..n as NodeId)
                .map(|x| clamped_row(&g, &w, x, MAX_W, false, inf))
                .collect();
            for x in 0..n as NodeId {
                for y in 0..n as NodeId {
                    let d = exact[x as usize][y as usize];
                    let lo = sketch.lower(x, y);
                    let hi = sketch.upper(x, y);
                    assert!(
                        lo <= d && d <= hi,
                        "trial {trial}: d̂({x},{y})={d} ∉ [{lo},{hi}]"
                    );
                }
            }

            // Random groups: bounds must bracket the pairwise min/max.
            let group = |rng: &mut SmallRng| -> Vec<NodeId> {
                let size = rng.gen_range(1..=4.min(n));
                let mut m: Vec<NodeId> = (0..size).map(|_| rng.gen_range(0..n as NodeId)).collect();
                m.sort_unstable();
                m.dedup();
                m
            };
            for _ in 0..6 {
                let ga = group(&mut rng);
                let gb = group(&mut rng);
                let (mut dmin, mut dmax) = (u32::MAX, 0u32);
                for &x in &ga {
                    for &y in &gb {
                        let d = exact[x as usize][y as usize];
                        dmin = dmin.min(d);
                        dmax = dmax.max(d);
                    }
                }
                let aa = sketch.aggregate(&ga);
                let ab = sketch.aggregate(&gb);
                let lo = sketch.group_lower(&aa, &ab);
                let hi = sketch.group_upper(&aa, &ab);
                assert!(
                    lo <= dmin && dmax <= hi,
                    "trial {trial}: group [{dmin},{dmax}] ∉ [{lo},{hi}]"
                );
                // The argmin/argmax accessors must reproduce the bounds.
                if let Some(l) = sketch.group_upper_arg(&aa, &ab) {
                    assert_eq!(hi, aa.max_to[l].saturating_add(ab.max_from[l]));
                }
                if let Some(l) = sketch.group_lower_arg(&aa, &ab) {
                    let v = ab.min_from[l]
                        .saturating_sub(aa.max_from[l])
                        .max(aa.min_to[l].saturating_sub(ab.max_to[l]));
                    assert_eq!(lo, v);
                } else {
                    assert_eq!(lo, 0);
                }
            }
        }
    }
}
