//! Dial's bucket-queue Dijkstra for integer weights bounded by `U`.
//!
//! With edge weights in `[0, U]`, tentative distances in the priority queue
//! always span a window of at most `U + 1` consecutive values, so a circular
//! array of `U + 1` buckets replaces the heap. Extraction is `O(1)` amortized
//! plus the cost of scanning empty buckets, giving `O(m + D)` total where `D`
//! is the largest finite distance — exactly the regime of the paper's
//! Assumption 2.

use super::{Dist, UNREACHABLE};
use crate::csr::{CsrGraph, NodeId};

/// Multi-source Dial's algorithm. `max_weight` must bound every entry of
/// `weights` (checked in debug builds).
pub fn dial(g: &CsrGraph, weights: &[u32], sources: &[NodeId], max_weight: u32) -> Vec<Dist> {
    dial_impl(g, weights, sources, max_weight, false)
}

/// Dial's algorithm over reversed edges: `result[v]` is the distance from
/// `v` to the closest node of `sources` along forward edges.
pub fn dial_reverse(
    g: &CsrGraph,
    weights: &[u32],
    sources: &[NodeId],
    max_weight: u32,
) -> Vec<Dist> {
    dial_impl(g, weights, sources, max_weight, true)
}

fn dial_impl(
    g: &CsrGraph,
    weights: &[u32],
    sources: &[NodeId],
    max_weight: u32,
    reverse: bool,
) -> Vec<Dist> {
    debug_assert_eq!(weights.len(), g.edge_count());
    debug_assert!(weights.iter().all(|&w| w <= max_weight));
    let n = g.node_count();
    let span = max_weight as usize + 1;
    let mut dist = vec![UNREACHABLE; n];
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); span];
    let mut in_queue = 0usize;

    for &s in sources {
        if dist[s as usize] != 0 {
            dist[s as usize] = 0;
            buckets[0].push(s);
            in_queue += 1;
        }
    }

    let mut current: Dist = 0;
    while in_queue > 0 {
        let slot = (current % span as Dist) as usize;
        // Take the bucket for the current distance; it may contain stale
        // entries whose distance improved since insertion.
        while let Some(u) = buckets[slot].pop() {
            in_queue -= 1;
            if dist[u as usize] != current {
                continue; // stale
            }
            let mut relax = |e: u32, v: NodeId| {
                let nd = current + weights[e as usize] as Dist;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    buckets[(nd % span as Dist) as usize].push(v);
                    in_queue += 1;
                }
            };
            if reverse {
                for (e, v) in g.in_edges(u) {
                    relax(e, v);
                }
            } else {
                for (e, v) in g.out_edges(u) {
                    relax(e, v);
                }
            }
        }
        current += 1;
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;

    #[test]
    fn stale_entries_are_skipped() {
        // 0 ->(9) 1, 0 ->(1) 2, 2 ->(1) 1 : node 1 first queued at 9 then
        // improved to 2; the bucket at 9 must skip the stale entry.
        let g = CsrGraph::from_edges(3, &[(0, 1), (0, 2), (2, 1)]);
        let mut w = vec![0u32; 3];
        w[g.find_edge(0, 1).unwrap() as usize] = 9;
        w[g.find_edge(0, 2).unwrap() as usize] = 1;
        w[g.find_edge(2, 1).unwrap() as usize] = 1;
        assert_eq!(dial(&g, &w, &[0], 9), vec![0, 2, 1]);
    }
}
