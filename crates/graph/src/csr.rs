//! Compressed-sparse-row directed graph with a reverse index.

/// Node identifier. `u32` keeps adjacency arrays compact; the paper's largest
/// experiment uses 200k nodes, far below the limit.
pub type NodeId = u32;

/// Edge identifier: the position of the edge in the forward CSR arrays.
/// Weight vectors are indexed by `EdgeId`.
pub type EdgeId = u32;

/// A directed graph in CSR form.
///
/// The graph is immutable after construction. Parallel edges are collapsed
/// and self-loops dropped during construction, so `(source, target)` pairs
/// are unique. A reverse index is built eagerly: SND runs Dijkstra both
/// forward (costs of spreading *from* a user) and backward (costs of a user
/// *receiving* an opinion), and the reverse index maps each reverse arc back
/// to its forward [`EdgeId`] so a single weight vector serves both sweeps.
#[derive(Clone, Debug)]
pub struct CsrGraph {
    offsets: Box<[u32]>,
    targets: Box<[NodeId]>,
    rev_offsets: Box<[u32]>,
    rev_sources: Box<[NodeId]>,
    rev_edge_ids: Box<[EdgeId]>,
}

impl CsrGraph {
    /// Builds a graph with `n` nodes from a list of directed edges.
    ///
    /// Self-loops are dropped and duplicate edges collapsed. Panics if any
    /// endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        assert!(n < u32::MAX as usize, "node count exceeds u32 range");
        let mut list: Vec<(NodeId, NodeId)> =
            edges.iter().copied().filter(|&(u, v)| u != v).collect();
        for &(u, v) in &list {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge ({u}, {v}) out of bounds for {n} nodes"
            );
        }
        list.sort_unstable();
        list.dedup();

        let m = list.len();
        let mut offsets = vec![0u32; n + 1];
        for &(u, _) in &list {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let targets: Vec<NodeId> = list.iter().map(|&(_, v)| v).collect();

        // Reverse index via counting sort on targets.
        let mut rev_offsets = vec![0u32; n + 1];
        for &(_, v) in &list {
            rev_offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            rev_offsets[i + 1] += rev_offsets[i];
        }
        let mut cursor = rev_offsets.clone();
        let mut rev_sources = vec![0 as NodeId; m];
        let mut rev_edge_ids = vec![0 as EdgeId; m];
        for (e, &(u, v)) in list.iter().enumerate() {
            let slot = cursor[v as usize] as usize;
            rev_sources[slot] = u;
            rev_edge_ids[slot] = e as EdgeId;
            cursor[v as usize] += 1;
        }

        CsrGraph {
            offsets: offsets.into_boxed_slice(),
            targets: targets.into_boxed_slice(),
            rev_offsets: rev_offsets.into_boxed_slice(),
            rev_sources: rev_sources.into_boxed_slice(),
            rev_edge_ids: rev_edge_ids.into_boxed_slice(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Out-neighbors of `u` in ascending order.
    #[inline]
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Out-edges of `u` as `(edge_id, target)` pairs.
    #[inline]
    pub fn out_edges(&self, u: NodeId) -> impl Iterator<Item = (EdgeId, NodeId)> + '_ {
        let lo = self.offsets[u as usize];
        let hi = self.offsets[u as usize + 1];
        (lo..hi).map(move |e| (e, self.targets[e as usize]))
    }

    /// In-edges of `v` as `(edge_id, source)` pairs; `edge_id` refers to the
    /// forward edge `source -> v`.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> impl Iterator<Item = (EdgeId, NodeId)> + '_ {
        let lo = self.rev_offsets[v as usize] as usize;
        let hi = self.rev_offsets[v as usize + 1] as usize;
        (lo..hi).map(move |i| (self.rev_edge_ids[i], self.rev_sources[i]))
    }

    /// In-neighbors of `v` (sources of edges pointing at `v`).
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.rev_offsets[v as usize] as usize;
        let hi = self.rev_offsets[v as usize + 1] as usize;
        &self.rev_sources[lo..hi]
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        (self.offsets[u as usize + 1] - self.offsets[u as usize]) as usize
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        (self.rev_offsets[v as usize + 1] - self.rev_offsets[v as usize]) as usize
    }

    /// Target of edge `e`.
    #[inline]
    pub fn edge_target(&self, e: EdgeId) -> NodeId {
        self.targets[e as usize]
    }

    /// Source of edge `e`, found by binary search over the offset array.
    pub fn edge_source(&self, e: EdgeId) -> NodeId {
        debug_assert!((e as usize) < self.edge_count());
        // partition_point returns the first u with offsets[u] > e, so the
        // source is that index minus one.
        let idx = self.offsets.partition_point(|&o| o <= e);
        (idx - 1) as NodeId
    }

    /// Edge id of `u -> v` if present.
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        self.targets[lo..hi]
            .binary_search(&v)
            .ok()
            .map(|i| (lo + i) as EdgeId)
    }

    /// True if edge `u -> v` exists.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.find_edge(u, v).is_some()
    }

    /// All edges as `(source, target)` pairs, in `EdgeId` order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.node_count() as NodeId)
            .flat_map(move |u| self.out_neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Returns the graph with every edge direction flipped. The returned
    /// graph has its own edge ids; use [`CsrGraph::in_edges`] when a shared
    /// weight vector is needed instead.
    pub fn reversed(&self) -> CsrGraph {
        let edges: Vec<(NodeId, NodeId)> = self.edges().map(|(u, v)| (v, u)).collect();
        CsrGraph::from_edges(self.node_count(), &edges)
    }

    /// Node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.node_count() as NodeId
    }
}

/// Convenience builder that accumulates edges and can symmetrize them.
#[derive(Default, Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Adds a directed edge.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.edges.push((u, v));
        self
    }

    /// Adds edges in both directions (an undirected social tie).
    pub fn add_undirected(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.edges.push((u, v));
        self.edges.push((v, u));
        self
    }

    /// Adds the reverse of every edge currently present.
    pub fn symmetrize(&mut self) -> &mut Self {
        let rev: Vec<(NodeId, NodeId)> = self.edges.iter().map(|&(u, v)| (v, u)).collect();
        self.edges.extend(rev);
        self
    }

    /// Number of edges accumulated so far (before deduplication).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the graph.
    pub fn build(&self) -> CsrGraph {
        CsrGraph::from_edges(self.n, &self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn basic_counts() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.in_degree(0), 0);
    }

    #[test]
    fn neighbors_sorted() {
        let g = CsrGraph::from_edges(4, &[(0, 3), (0, 1), (0, 2)]);
        assert_eq!(g.out_neighbors(0), &[1, 2, 3]);
    }

    #[test]
    fn dedup_and_self_loops() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (0, 1), (1, 1), (1, 2)]);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    fn in_edges_map_back_to_forward_ids() {
        let g = diamond();
        for v in g.nodes() {
            for (e, u) in g.in_edges(v) {
                assert_eq!(g.edge_target(e), v);
                assert_eq!(g.edge_source(e), u);
            }
        }
    }

    #[test]
    fn edge_source_matches_iteration() {
        let g = diamond();
        for (e, (u, _)) in g.edges().enumerate() {
            assert_eq!(g.edge_source(e as EdgeId), u);
        }
    }

    #[test]
    fn find_edge_present_and_absent() {
        let g = diamond();
        assert!(g.find_edge(0, 1).is_some());
        assert!(g.find_edge(1, 0).is_none());
        assert_eq!(g.edge_target(g.find_edge(2, 3).unwrap()), 3);
    }

    #[test]
    fn reversed_flips_edges() {
        let g = diamond();
        let r = g.reversed();
        assert_eq!(r.edge_count(), 4);
        assert!(r.has_edge(1, 0));
        assert!(r.has_edge(3, 2));
        assert!(!r.has_edge(0, 1));
    }

    #[test]
    fn builder_symmetrize() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).add_edge(1, 2).symmetrize();
        let g = b.build();
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(2, 1));
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(5, &[]);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert!(g.out_neighbors(0).is_empty());
    }
}
