//! Breadth-first traversal utilities.

use std::collections::VecDeque;

use crate::csr::{CsrGraph, NodeId};

/// Hop distances from a multi-source frontier, ignoring edge weights.
/// Returns `u32::MAX` for unreachable nodes. When `undirected` is set the
/// sweep uses both out- and in-edges.
pub fn bfs_levels(g: &CsrGraph, sources: &[NodeId], undirected: bool) -> Vec<u32> {
    let mut level = vec![u32::MAX; g.node_count()];
    let mut queue = VecDeque::new();
    for &s in sources {
        if level[s as usize] == u32::MAX {
            level[s as usize] = 0;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        let next = level[u as usize] + 1;
        for &v in g.out_neighbors(u) {
            if level[v as usize] == u32::MAX {
                level[v as usize] = next;
                queue.push_back(v);
            }
        }
        if undirected {
            for &v in g.in_neighbors(u) {
                if level[v as usize] == u32::MAX {
                    level[v as usize] = next;
                    queue.push_back(v);
                }
            }
        }
    }
    level
}

/// Upper bound on the hop diameter via a double BFS sweep from `start`:
/// BFS to the farthest node `f`, then BFS from `f`; the eccentricity of `f`
/// lower-bounds the diameter and `2 * ecc(start)` upper-bounds it. Returns
/// `(lower, upper)` over the reachable part.
pub fn double_sweep_diameter(g: &CsrGraph, start: NodeId) -> (u32, u32) {
    let l1 = bfs_levels(g, &[start], true);
    let (far, ecc_start) = l1
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != u32::MAX)
        .max_by_key(|(_, &d)| d)
        .map(|(i, &d)| (i as NodeId, d))
        .unwrap_or((start, 0));
    let l2 = bfs_levels(g, &[far], true);
    let ecc_far = l2
        .iter()
        .copied()
        .filter(|&d| d != u32::MAX)
        .max()
        .unwrap_or(0);
    (ecc_far, 2 * ecc_start.max(ecc_far))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{cycle_graph, path_graph};

    #[test]
    fn levels_on_path() {
        let g = path_graph(5);
        assert_eq!(bfs_levels(&g, &[0], false), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_levels(&g, &[2], false), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn multi_source_levels() {
        let g = path_graph(5);
        assert_eq!(bfs_levels(&g, &[0, 4], false), vec![0, 1, 2, 1, 0]);
    }

    #[test]
    fn undirected_sweep_crosses_reverse_edges() {
        let g = CsrGraph::from_edges(3, &[(1, 0), (1, 2)]);
        let directed = bfs_levels(&g, &[0], false);
        assert_eq!(directed[1], u32::MAX);
        let undirected = bfs_levels(&g, &[0], true);
        assert_eq!(undirected, vec![0, 1, 2]);
    }

    #[test]
    fn double_sweep_bounds_hold() {
        let g = cycle_graph(10); // true diameter 5
        let (lo, hi) = double_sweep_diameter(&g, 0);
        assert!(lo <= 5 && 5 <= hi, "bounds ({lo}, {hi}) should bracket 5");
    }
}
