//! Node clustering used for EMD\* bank-bin placement and the community-lp
//! baseline.
//!
//! EMD\* attaches "local bank bins" to groups of histogram bins chosen by the
//! structural proximity of the corresponding users (paper §4, Fig. 4). Two
//! strategies are provided: asynchronous label propagation (natural
//! communities, used by the community-lp predictor too) and a balanced BFS
//! partition (bounded cluster count, used by default for bank placement so
//! the reduced transportation problem stays small).

use std::collections::VecDeque;

use rand::Rng;

use crate::csr::{CsrGraph, NodeId};

/// A partition of the node set into disjoint clusters.
#[derive(Clone, Debug)]
pub struct Clustering {
    /// Cluster id per node, contiguous from 0.
    pub labels: Vec<u32>,
    /// Members of each cluster.
    pub clusters: Vec<Vec<NodeId>>,
}

impl Clustering {
    /// Builds a clustering from arbitrary (possibly sparse) labels,
    /// renumbering them contiguously.
    pub fn from_labels(raw: &[u32]) -> Self {
        let mut remap = std::collections::HashMap::new();
        let mut labels = vec![0u32; raw.len()];
        let mut clusters: Vec<Vec<NodeId>> = Vec::new();
        for (v, &l) in raw.iter().enumerate() {
            let id = *remap.entry(l).or_insert_with(|| {
                clusters.push(Vec::new());
                (clusters.len() - 1) as u32
            });
            labels[v] = id;
            clusters[id as usize].push(v as NodeId);
        }
        Clustering { labels, clusters }
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Cluster id of node `v`.
    #[inline]
    pub fn cluster_of(&self, v: NodeId) -> u32 {
        self.labels[v as usize]
    }

    /// Members of cluster `c`.
    pub fn members(&self, c: u32) -> &[NodeId] {
        &self.clusters[c as usize]
    }
}

/// Everything in one cluster (degenerates EMD\* to EMDα with `Nb` banks).
pub fn whole_graph_cluster(n: usize) -> Clustering {
    Clustering {
        labels: vec![0; n],
        clusters: vec![(0..n as NodeId).collect()],
    }
}

/// Asynchronous label propagation over the undirected view of the graph.
///
/// Every node starts in its own community; nodes repeatedly adopt the most
/// frequent label among their neighbors (ties broken toward keeping the
/// current label, then by smallest label for determinism given the RNG's
/// visit order). Converges in a handful of sweeps on social graphs.
pub fn label_propagation<R: Rng>(g: &CsrGraph, max_sweeps: usize, rng: &mut R) -> Clustering {
    let n = g.node_count();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    let mut counts: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();

    for _ in 0..max_sweeps {
        // Shuffle the visit order each sweep.
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let mut changed = 0usize;
        for &v in &order {
            counts.clear();
            for &u in g.out_neighbors(v) {
                *counts.entry(labels[u as usize]).or_insert(0) += 1;
            }
            for &u in g.in_neighbors(v) {
                *counts.entry(labels[u as usize]).or_insert(0) += 1;
            }
            if counts.is_empty() {
                continue;
            }
            let current = labels[v as usize];
            let best = counts
                .iter()
                .max_by(|a, b| {
                    a.1.cmp(b.1)
                        .then_with(|| (*a.0 == current).cmp(&(*b.0 == current)))
                        .then_with(|| b.0.cmp(a.0))
                })
                .map(|(&l, _)| l)
                // lint:allow(no-unwrap) guarded by the `counts.is_empty()` continue above
                .expect("non-empty counts");
            if best != current {
                labels[v as usize] = best;
                changed += 1;
            }
        }
        if changed == 0 {
            break;
        }
    }
    Clustering::from_labels(&labels)
}

/// Balanced BFS partition into (at most) `num_clusters` clusters of
/// near-equal size. Seeds are spread by repeatedly starting a new region at
/// an unassigned node and growing it breadth-first (over the undirected
/// view) until the size budget is hit. Every node is assigned; isolated
/// nodes form or join trailing clusters.
pub fn bfs_partition(g: &CsrGraph, num_clusters: usize) -> Clustering {
    let n = g.node_count();
    assert!(num_clusters >= 1);
    let budget = n.div_ceil(num_clusters);
    let mut labels = vec![u32::MAX; n];
    let mut next_label = 0u32;
    let mut queue = VecDeque::new();

    for start in 0..n as NodeId {
        if labels[start as usize] != u32::MAX {
            continue;
        }
        let label = next_label;
        next_label += 1;
        let mut size = 0usize;
        queue.clear();
        queue.push_back(start);
        labels[start as usize] = label;
        size += 1;
        while let Some(u) = queue.pop_front() {
            if size >= budget {
                break;
            }
            for &v in g.out_neighbors(u).iter().chain(g.in_neighbors(u)) {
                if labels[v as usize] == u32::MAX {
                    labels[v as usize] = label;
                    size += 1;
                    queue.push_back(v);
                    if size >= budget {
                        break;
                    }
                }
            }
        }
    }
    Clustering::from_labels(&labels)
}

/// The quotient (cluster) graph of a partition: one node per cluster, one
/// edge per ordered pair of clusters connected by at least one original
/// edge (self-loops dropped, parallels deduplicated). Applying
/// [`bfs_partition`] to the quotient and composing labels coarsens a
/// partition hierarchically while keeping every coarse cluster a union of
/// fine clusters.
pub fn quotient_graph(g: &CsrGraph, c: &Clustering) -> CsrGraph {
    let mut edges: Vec<(NodeId, NodeId)> = (0..g.edge_count() as u32)
        .map(|e| {
            (
                c.cluster_of(g.edge_source(e)),
                c.cluster_of(g.edge_target(e)),
            )
        })
        .filter(|&(a, b)| a != b)
        .collect();
    edges.sort_unstable();
    edges.dedup();
    CsrGraph::from_edges(c.cluster_count(), &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{path_graph, two_cluster_bridge};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn from_labels_renumbers() {
        let c = Clustering::from_labels(&[7, 7, 3, 7, 3]);
        assert_eq!(c.cluster_count(), 2);
        assert_eq!(c.labels, vec![0, 0, 1, 0, 1]);
        assert_eq!(c.members(1), &[2, 4]);
    }

    #[test]
    fn label_propagation_finds_two_planted_clusters() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = two_cluster_bridge(30, 0.4, 2, &mut rng);
        let c = label_propagation(&g, 20, &mut rng);
        // The two planted halves should mostly not share a label.
        let left = c.labels[0];
        let same_left = (0..30).filter(|&v| c.labels[v] == left).count();
        let leak_right = (30..60).filter(|&v| c.labels[v] == left).count();
        assert!(same_left > 20, "left cluster cohesion: {same_left}");
        assert!(leak_right < 10, "leakage into right: {leak_right}");
    }

    #[test]
    fn bfs_partition_covers_all_nodes_with_bounded_clusters() {
        let g = path_graph(100);
        let c = bfs_partition(&g, 5);
        assert!(c.cluster_count() >= 5);
        assert_eq!(c.labels.len(), 100);
        let total: usize = c.clusters.iter().map(|m| m.len()).sum();
        assert_eq!(total, 100);
        for m in &c.clusters {
            assert!(m.len() <= 20, "cluster size {} exceeds budget", m.len());
        }
    }

    #[test]
    fn bfs_partition_single_cluster() {
        let g = path_graph(10);
        let c = bfs_partition(&g, 1);
        assert_eq!(c.cluster_count(), 1);
        assert_eq!(c.members(0).len(), 10);
    }

    #[test]
    fn quotient_graph_connects_adjacent_clusters_only() {
        // Path 0-1-2-3-4-5 split as [0,1] [2,3] [4,5]: the quotient is the
        // 3-node path, with no self-loops and no duplicate edges.
        // `path_graph` stores both directed arcs per undirected edge, and
        // the quotient preserves directions, so the 3-node path carries 4
        // arcs.
        let g = path_graph(6);
        let c = Clustering::from_labels(&[0, 0, 1, 1, 2, 2]);
        let q = quotient_graph(&g, &c);
        assert_eq!(q.node_count(), 3);
        assert_eq!(q.edge_count(), 4);
        assert_eq!(q.out_neighbors(0), &[1]);
        assert_eq!(q.out_neighbors(1), &[0, 2]);
        assert_eq!(q.out_neighbors(2), &[1]);
        // Coarsening the quotient composes into a nested partition.
        let coarse = bfs_partition(&q, 2);
        let composed: Vec<u32> = c
            .labels
            .iter()
            .map(|&l| coarse.labels[l as usize])
            .collect();
        let nested = Clustering::from_labels(&composed);
        assert_eq!(nested.labels.len(), 6);
        for (v, &l) in c.labels.iter().enumerate() {
            // Same fine cluster ⇒ same coarse cluster.
            for (u, &l2) in c.labels.iter().enumerate() {
                if l == l2 {
                    assert_eq!(nested.labels[v], nested.labels[u]);
                }
            }
        }
    }

    #[test]
    fn whole_graph_cluster_is_trivial() {
        let c = whole_graph_cluster(4);
        assert_eq!(c.cluster_count(), 1);
        assert_eq!(c.cluster_of(3), 0);
    }
}
