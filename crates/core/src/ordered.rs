//! Time-ordered SND for candidate-evaluation workloads: delta-priced
//! flip-list candidates over one patchable anchor geometry.
//!
//! §3 notes that for time-ordered states the ground distance can be
//! defined from the earlier state alone:
//!
//! ```text
//! ordered(from, to) = EMD*(from⁺, to⁺, D(from, +)) + EMD*(from⁻, to⁻, D(from, −))
//! ```
//!
//! The §6.3 predictor and the intervention-search workload evaluate
//! hundreds of candidate `to` states that each differ from the anchor by a
//! handful of flips. Two evaluators serve that shape:
//!
//! * [`CandidateEvaluator`] — the delta-priced path. The anchor's
//!   geometry is carried in one repairable
//!   [`DeltaStateGeometry`](crate::delta::DeltaStateGeometry) bundle, and
//!   a candidate is a compact **flip-list** `&[(node, opinion)]` relative
//!   to the anchor — no per-candidate `NetworkState` clone, no `O(n)`
//!   state scan. Because the ordered ground distance is anchored at the
//!   *from* state, a candidate changes only the `Q` side of each EMD\*
//!   term: the classification (residuals, totals, lighter-side bank bins)
//!   is derived from precomputed anchor stats in `O(flips + active)`, then
//!   funnels into the same assembly/solve
//!   ([`solve_reduced_term`](crate::sparse::solve_reduced_term)) the
//!   `O(n)`-scan path uses — so prices are **bit-identical** to
//!   [`OrderedSnd`] (property-tested across every registry scenario in
//!   `tests/candidate_pricing.rs`).
//!
//!   When the *anchor itself* moves (greedy intervention search commits an
//!   action), [`patch`](CandidateEvaluator::patch) advances the bundle
//!   through the PR 6 repair machinery — touched-edge cost rederivation
//!   plus [`repair_row`](snd_graph::repair_row) on exactly the cluster
//!   rows the change index says can move, untouched rows carried over as
//!   `O(1)` `Arc` bumps — and pushes the previous bundle on a stack, so
//!   [`unpatch`](CandidateEvaluator::unpatch) is an `O(1)` restore of the
//!   exact previous geometry (copy-on-write rows, never mutated in place).
//!
//!   Flip-lists express *state* changes only. Topology edits (edge
//!   insert/delete) cannot be patched: edge ids are CSR positions, so an
//!   insertion renumbers the cost/row indexing the bundle is built on.
//!   Callers handle those via the documented **rebuild fallback** —
//!   reconstruct the graph, a fresh engine, and a fresh evaluator (see
//!   `snd_analysis::intervene`).
//!
//! * [`OrderedSnd`] — the scratch reference path: fixes a *from* state,
//!   precomputes its two geometries, and prices each candidate through the
//!   full `O(n)` classification of
//!   [`emd_star_term`](crate::sparse::emd_star_term) with a shared SSSP
//!   row cache. Kept as the bit-identical sequential-classification
//!   reference the property suite and `BENCH_predict.json` compare
//!   against.

use snd_graph::{Clustering, NodeId};
use snd_models::{apply_flips, normalize_flips, NetworkState, Opinion, StateDelta};

use crate::delta::DeltaStateGeometry;
use crate::engine::{SndEngine, StateGeometry};
use crate::sparse::{emd_star_term, solve_reduced_term, BankBins, ReducedTerm, RowCache};

/// Ordered-SND evaluator anchored at a fixed "from" state.
pub struct OrderedSnd<'e, 'g> {
    engine: &'e SndEngine<'g>,
    from: NetworkState,
    geometry: StateGeometry,
}

impl<'e, 'g> OrderedSnd<'e, 'g> {
    /// Builds the evaluator (computes the two geometries of `from`).
    pub fn new(engine: &'e SndEngine<'g>, from: NetworkState) -> Self {
        let geometry = engine.state_geometry(&from);
        OrderedSnd {
            engine,
            from,
            geometry,
        }
    }

    /// The anchored state.
    pub fn from_state(&self) -> &NetworkState {
        &self.from
    }

    /// Ordered SND from the anchored state to `to`.
    pub fn distance_to(&self, to: &NetworkState) -> f64 {
        let term = |geom, op| {
            emd_star_term(
                self.engine.graph(),
                self.engine.clustering(),
                geom,
                &self.from,
                to,
                op,
                self.engine.config(),
                Some(&self.geometry.cache),
            )
        };
        let (pos, neg) = rayon::join(
            || term(&self.geometry.pos, Opinion::Positive),
            || term(&self.geometry.neg, Opinion::Negative),
        );
        pos + neg
    }

    /// Ordered SND to every candidate, fanned out over the thread pool.
    /// All evaluations share the anchored geometry and row cache; the
    /// result order matches `candidates`.
    pub fn distances_to(&self, candidates: &[NetworkState]) -> Vec<f64> {
        use rayon::prelude::*;
        candidates.par_iter().map(|c| self.distance_to(c)).collect()
    }

    /// Number of SSSP rows currently cached.
    pub fn cached_rows(&self) -> usize {
        self.geometry.cached_rows()
    }
}

/// Index of an opinion into the per-opinion stat arrays.
#[inline]
fn op_index(op: Opinion) -> usize {
    usize::from(op == Opinion::Negative)
}

/// Precomputed per-opinion anchor statistics: everything the `O(n)`
/// classification scan derives about the *anchor* side, computed once per
/// anchor so each candidate pays only for its own flips.
struct AnchorStats {
    /// `active[op]`: nodes holding `op` in the anchor, ascending.
    active: [Vec<NodeId>; 2],
    /// `cluster_counts[op][c]`: anchor holders of `op` in cluster `c`.
    cluster_counts: [Vec<u64>; 2],
}

impl AnchorStats {
    fn new(clustering: &Clustering, anchor: &NetworkState) -> Self {
        let nc = clustering.cluster_count();
        let mut active = [Vec::new(), Vec::new()];
        let mut cluster_counts = [vec![0u64; nc], vec![0u64; nc]];
        for u in 0..anchor.len() as NodeId {
            let op = anchor.opinion(u);
            if !op.is_active() {
                continue;
            }
            let i = op_index(op);
            active[i].push(u);
            cluster_counts[i][clustering.labels[u as usize] as usize] += 1;
        }
        AnchorStats {
            active,
            cluster_counts,
        }
    }
}

/// The candidate side's active list: the anchor's ascending active list
/// with `drop` removed and `add` merged in (both ascending; `add` is
/// disjoint from the anchor list by construction). Reproduces the scan
/// path's `active_q` — same nodes, same ascending order — in
/// `O(active + flips)`.
fn merged_active(anchor_active: &[NodeId], drop: &[NodeId], add: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(anchor_active.len() - drop.len() + add.len());
    let mut di = 0;
    let mut ai = 0;
    for &u in anchor_active {
        while ai < add.len() && add[ai] < u {
            out.push(add[ai]);
            ai += 1;
        }
        if di < drop.len() && drop[di] == u {
            di += 1;
            continue;
        }
        out.push(u);
    }
    out.extend_from_slice(&add[ai..]);
    out
}

/// One stack frame of the patch protocol: the complete evaluation state
/// of the previous anchor, restored verbatim by
/// [`CandidateEvaluator::unpatch`].
struct Frame {
    anchor: NetworkState,
    bundle: DeltaStateGeometry,
    cache: RowCache,
    stats: AnchorStats,
}

/// Delta-priced ordered-SND evaluator: candidates are flip-lists against
/// a patchable anchor geometry. See the module docs for the protocol and
/// the bit-identity contract with [`OrderedSnd`].
pub struct CandidateEvaluator<'e, 'g> {
    engine: &'e SndEngine<'g>,
    anchor: NetworkState,
    /// The anchor's repairable geometry bundle (PR 6 machinery): both
    /// opinion geometries plus the `Arc`-shared cluster rows `patch`
    /// repairs instead of recomputing.
    bundle: DeltaStateGeometry,
    /// SSSP row cache for the *current* bundle's geometry. Swapped (never
    /// reused) across patches: rows priced under old edge costs are
    /// invalid under new ones.
    cache: RowCache,
    stats: AnchorStats,
    /// Previous anchors, newest last — the unpatch stack.
    stack: Vec<Frame>,
}

impl<'e, 'g> CandidateEvaluator<'e, 'g> {
    /// Builds the evaluator: the anchor's repairable geometry bundle (both
    /// opinions in parallel, bit-identical to
    /// [`SndEngine::state_geometry`]) plus the per-opinion anchor stats
    /// candidates are classified against.
    pub fn new(engine: &'e SndEngine<'g>, anchor: NetworkState) -> Self {
        let bundle = DeltaStateGeometry::fresh(engine, &anchor);
        let stats = AnchorStats::new(engine.clustering(), &anchor);
        let cache = RowCache::new(engine.graph().node_count());
        CandidateEvaluator {
            engine,
            anchor,
            bundle,
            cache,
            stats,
            stack: Vec::new(),
        }
    }

    /// The current anchor state.
    pub fn anchor(&self) -> &NetworkState {
        &self.anchor
    }

    /// Number of patches currently applied (depth of the unpatch stack).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Number of SSSP rows computed into the current anchor's cache.
    pub fn cached_rows(&self) -> usize {
        self.cache.computed_rows()
    }

    /// Ordered SND from the anchor to the candidate described by `flips`
    /// (`(node, new opinion)`, any order, last-wins on duplicates, no-op
    /// entries ignored). Bit-identical to
    /// `OrderedSnd::distance_to(&apply_flips(anchor, flips))`.
    pub fn price(&self, flips: &[(NodeId, Opinion)]) -> f64 {
        let flips = normalize_flips(&self.anchor, flips);
        self.price_normalized(&flips, true)
    }

    /// Prices every candidate flip-list, fanned out over the thread pool.
    /// All evaluations share the anchor bundle (read-only) and its row
    /// cache; result order matches `candidates`.
    pub fn price_candidates(&self, candidates: &[Vec<(NodeId, Opinion)>]) -> Vec<f64> {
        use rayon::prelude::*;
        candidates.par_iter().map(|f| self.price(f)).collect()
    }

    /// Sequential reference for [`price_candidates`]: one candidate at a
    /// time, both terms on the calling thread, no fan-out anywhere.
    /// Bit-identical to the parallel batch (each term is an independent
    /// exact solve).
    ///
    /// [`price_candidates`]: Self::price_candidates
    pub fn price_candidates_seq(&self, candidates: &[Vec<(NodeId, Opinion)>]) -> Vec<f64> {
        candidates
            .iter()
            .map(|f| {
                let flips = normalize_flips(&self.anchor, f);
                self.price_normalized(&flips, false)
            })
            .collect()
    }

    /// Both forward terms over a normalized flip-list.
    fn price_normalized(&self, flips: &[(NodeId, Opinion)], parallel: bool) -> f64 {
        let term = |op: Opinion| {
            let geom = match op_index(op) {
                0 => &self.bundle.pos.geom,
                _ => &self.bundle.neg.geom,
            };
            solve_reduced_term(
                self.engine.graph(),
                self.engine.clustering(),
                geom,
                op,
                self.engine.config(),
                Some(&self.cache),
                self.reduced_term(flips, op),
            )
        };
        let (pos, neg) = if parallel {
            rayon::join(|| term(Opinion::Positive), || term(Opinion::Negative))
        } else {
            (term(Opinion::Positive), term(Opinion::Negative))
        };
        pos + neg
    }

    /// Derives one term's classification from the anchor stats in
    /// `O(flips)` (plus `O(active)` only when the lighter-side bank bins
    /// must be materialized) — the flip-side replacement for the `O(n)`
    /// scan in [`emd_star_term`], feeding the identical
    /// [`ReducedTerm`] into the shared assembly/solve.
    fn reduced_term(&self, flips: &[(NodeId, Opinion)], op: Opinion) -> ReducedTerm {
        let i = op_index(op);
        let scale = self.engine.config().scale;
        let clustering = self.engine.clustering();
        let per_bin = match i {
            0 => self.bundle.pos.geom.per_bin,
            _ => self.bundle.neg.geom.per_bin,
        };
        // Normalized flips are real changes in ascending node order, so
        // both residual lists come out ascending — the classification
        // order the scan path produces.
        let mut residual_p: Vec<NodeId> = Vec::new();
        let mut residual_q: Vec<NodeId> = Vec::new();
        for &(u, new_op) in flips {
            if self.anchor.opinion(u) == op {
                // Anchor holds `op`, candidate does not.
                residual_p.push(u);
            } else if new_op == op {
                // Candidate gains `op`.
                residual_q.push(u);
            }
        }
        let count_p = self.stats.active[i].len() as u64;
        let count_q = count_p - residual_p.len() as u64 + residual_q.len() as u64;
        let total_p = count_p * scale;
        let total_q = count_q * scale;
        let p_is_lighter = total_p < total_q;
        let banks = if total_p == total_q {
            BankBins::Balanced
        } else if per_bin {
            if p_is_lighter {
                BankBins::PerBin(self.stats.active[i].clone())
            } else {
                BankBins::PerBin(merged_active(
                    &self.stats.active[i],
                    &residual_p,
                    &residual_q,
                ))
            }
        } else {
            let counts: Vec<u64> = if p_is_lighter {
                self.stats.cluster_counts[i].clone()
            } else {
                let mut counts = self.stats.cluster_counts[i].clone();
                for &u in &residual_p {
                    counts[clustering.labels[u as usize] as usize] -= 1;
                }
                for &u in &residual_q {
                    counts[clustering.labels[u as usize] as usize] += 1;
                }
                counts
            };
            BankBins::Cluster(counts.iter().map(|&c| c * scale).collect())
        };
        ReducedTerm {
            residual_p,
            residual_q,
            total_p,
            total_q,
            banks,
        }
    }

    /// Moves the anchor itself: applies `flips` to the anchor and advances
    /// the geometry bundle through the delta repair machinery
    /// ([`StateDelta::from_flips`] names the touched edges; cluster rows
    /// the change index clears are carried over as `O(1)` `Arc` bumps,
    /// the rest are [`repair_row`](snd_graph::repair_row)-ed on
    /// copy-on-write clones). The previous evaluation state is pushed on
    /// the unpatch stack untouched. Prices after a patch are bit-identical
    /// to a fresh evaluator built at the new anchor.
    pub fn patch(&mut self, flips: &[(NodeId, Opinion)]) {
        let delta = StateDelta::from_flips(self.engine.graph(), &self.anchor, flips);
        let next_anchor = apply_flips(&self.anchor, flips);
        let next_bundle = self.bundle.step(self.engine, &next_anchor, &delta);
        let next_stats = AnchorStats::new(self.engine.clustering(), &next_anchor);
        // A fresh cache, not a reuse: cached rows were priced under the
        // previous edge costs and would be stale under the new ones.
        let next_cache = RowCache::new(self.engine.graph().node_count());
        let prev = Frame {
            anchor: std::mem::replace(&mut self.anchor, next_anchor),
            bundle: std::mem::replace(&mut self.bundle, next_bundle),
            cache: std::mem::replace(&mut self.cache, next_cache),
            stats: std::mem::replace(&mut self.stats, next_stats),
        };
        self.stack.push(prev);
    }

    /// Restores the evaluation state from before the most recent
    /// [`patch`](Self::patch) — an `O(1)` swap back to the stacked frame
    /// (rows are copy-on-write, so the previous bundle was never mutated).
    /// Returns `false` when no patch is applied.
    pub fn unpatch(&mut self) -> bool {
        match self.stack.pop() {
            Some(frame) => {
                self.anchor = frame.anchor;
                self.bundle = frame.bundle;
                self.cache = frame.cache;
                self.stats = frame.stats;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterSpec, GammaPolicy, SndConfig};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use snd_graph::generators::{barabasi_albert, path_graph};

    #[test]
    fn ordered_distance_is_zero_for_same_state() {
        let g = path_graph(6);
        let engine = SndEngine::new(&g, SndConfig::default());
        let s = NetworkState::from_values(&[1, 0, -1, 0, 1, 0]);
        let ordered = OrderedSnd::new(&engine, s.clone());
        assert_eq!(ordered.distance_to(&s), 0.0);
        let evaluator = CandidateEvaluator::new(&engine, s);
        assert_eq!(evaluator.price(&[]), 0.0);
    }

    #[test]
    fn candidates_reuse_cached_rows() {
        let g = path_graph(8);
        let engine = SndEngine::new(&g, SndConfig::default());
        let from = NetworkState::from_values(&[1, 1, 0, 0, 0, 0, -1, 0]);
        let ordered = OrderedSnd::new(&engine, from);
        let mut to_a = NetworkState::from_values(&[1, 1, 0, 1, 0, 0, -1, 0]);
        let _ = ordered.distance_to(&to_a);
        let rows_after_first = ordered.cached_rows();
        // Same differing users => no new rows.
        let _ = ordered.distance_to(&to_a);
        assert_eq!(ordered.cached_rows(), rows_after_first);
        // One extra differing user => at most a few more rows.
        to_a.set(4, Opinion::Negative);
        let _ = ordered.distance_to(&to_a);
        assert!(ordered.cached_rows() >= rows_after_first);
    }

    #[test]
    fn ordered_tracks_full_snd_direction_terms() {
        // ordered(from, to) must equal the two forward terms of the full
        // breakdown when geometries agree.
        let g = path_graph(8);
        let engine = SndEngine::new(&g, SndConfig::default());
        let a = NetworkState::from_values(&[1, 0, 0, -1, 0, 0, 1, 0]);
        let b = NetworkState::from_values(&[1, 1, 0, -1, -1, 0, 0, 0]);
        let ordered = OrderedSnd::new(&engine, a.clone());
        let got = ordered.distance_to(&b);
        let breakdown = engine.breakdown(&a, &b);
        let expected = breakdown.forward_pos + breakdown.forward_neg;
        assert!((got - expected).abs() < 1e-9, "{got} vs {expected}");
    }

    #[test]
    fn batch_scoring_matches_one_by_one() {
        let g = path_graph(10);
        let engine = SndEngine::new(&g, SndConfig::default());
        let from = NetworkState::from_values(&[1, 1, 0, 0, 0, 0, 0, 0, -1, 0]);
        let ordered = OrderedSnd::new(&engine, from);
        let candidates: Vec<NetworkState> = (0..6)
            .map(|i| {
                let mut s = ordered.from_state().clone();
                s.set(i as u32 + 2, Opinion::Positive);
                s
            })
            .collect();
        let batch = ordered.distances_to(&candidates);
        for (c, &d) in candidates.iter().zip(&batch) {
            assert_eq!(d, ordered.distance_to(c), "batch equals single eval");
        }
    }

    fn test_configs() -> Vec<SndConfig> {
        vec![
            SndConfig::default(), // per-bin banks
            SndConfig {
                clusters: ClusterSpec::BfsPartition { clusters: 3 },
                gamma: GammaPolicy::Constant(5),
                banks_per_cluster: 2,
                ..Default::default()
            },
            SndConfig {
                clusters: ClusterSpec::BfsPartition { clusters: 2 },
                gamma: GammaPolicy::Eccentricity,
                ..Default::default()
            },
        ]
    }

    fn random_state(n: usize, rng: &mut SmallRng) -> NetworkState {
        NetworkState::from_values(&(0..n).map(|_| rng.gen_range(-1..=1)).collect::<Vec<i8>>())
    }

    fn random_flips(n: usize, count: usize, rng: &mut SmallRng) -> Vec<(NodeId, Opinion)> {
        (0..count)
            .map(|_| {
                (
                    rng.gen_range(0..n as NodeId),
                    Opinion::from_value(rng.gen_range(-1..=1)),
                )
            })
            .collect()
    }

    #[test]
    fn flip_pricing_is_bit_identical_to_scratch_ordered_snd() {
        let mut rng = SmallRng::seed_from_u64(51);
        let g = barabasi_albert(30, 2, &mut rng);
        for config in test_configs() {
            let engine = SndEngine::new(&g, config);
            let anchor = random_state(30, &mut rng);
            let ordered = OrderedSnd::new(&engine, anchor.clone());
            let evaluator = CandidateEvaluator::new(&engine, anchor.clone());
            let candidates: Vec<Vec<(NodeId, Opinion)>> = (0..12)
                .map(|t| random_flips(30, 1 + t % 5, &mut rng))
                .collect();
            let states: Vec<NetworkState> =
                candidates.iter().map(|f| apply_flips(&anchor, f)).collect();
            let scratch = ordered.distances_to(&states);
            let par = evaluator.price_candidates(&candidates);
            let seq = evaluator.price_candidates_seq(&candidates);
            for i in 0..candidates.len() {
                assert_eq!(par[i].to_bits(), scratch[i].to_bits(), "candidate {i}");
                assert_eq!(par[i].to_bits(), seq[i].to_bits(), "par vs seq {i}");
            }
        }
    }

    #[test]
    fn patch_unpatch_repatch_round_trip_is_bit_identical() {
        let mut rng = SmallRng::seed_from_u64(77);
        let g = barabasi_albert(24, 2, &mut rng);
        for config in test_configs() {
            let engine = SndEngine::new(&g, config);
            let anchor = random_state(24, &mut rng);
            let mut evaluator = CandidateEvaluator::new(&engine, anchor.clone());
            let probes: Vec<Vec<(NodeId, Opinion)>> = (0..6)
                .map(|t| random_flips(24, 1 + t % 3, &mut rng))
                .collect();
            let base_prices = evaluator.price_candidates_seq(&probes);
            let base_pos = evaluator.bundle.pos.geom.clone();

            let flips = random_flips(24, 3, &mut rng);
            evaluator.patch(&flips);
            assert_eq!(evaluator.depth(), 1);
            assert_eq!(evaluator.anchor(), &apply_flips(&anchor, &flips));
            // Patched geometry and prices match a fresh evaluator at the
            // patched anchor, bit for bit.
            let fresh = CandidateEvaluator::new(&engine, evaluator.anchor().clone());
            assert_eq!(evaluator.bundle.pos.geom, fresh.bundle.pos.geom);
            assert_eq!(evaluator.bundle.neg.geom, fresh.bundle.neg.geom);
            let patched_prices = evaluator.price_candidates_seq(&probes);
            let fresh_prices = fresh.price_candidates_seq(&probes);
            for (a, b) in patched_prices.iter().zip(&fresh_prices) {
                assert_eq!(a.to_bits(), b.to_bits());
            }

            // Unpatch restores the original bundle bit-identically.
            assert!(evaluator.unpatch());
            assert_eq!(evaluator.depth(), 0);
            assert_eq!(evaluator.anchor(), &anchor);
            assert_eq!(evaluator.bundle.pos.geom, base_pos);
            let restored = evaluator.price_candidates_seq(&probes);
            for (a, b) in restored.iter().zip(&base_prices) {
                assert_eq!(a.to_bits(), b.to_bits());
            }

            // Repatching the same flips reproduces the patched state.
            evaluator.patch(&flips);
            let repatched = evaluator.price_candidates_seq(&probes);
            for (a, b) in repatched.iter().zip(&patched_prices) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert!(evaluator.unpatch());
            assert!(!evaluator.unpatch(), "stack exhausted");
        }
    }

    #[test]
    fn patch_stack_nests() {
        let g = path_graph(10);
        let engine = SndEngine::new(&g, SndConfig::default());
        let anchor = NetworkState::from_values(&[1, 0, 0, 0, -1, 0, 0, 1, 0, 0]);
        let mut ev = CandidateEvaluator::new(&engine, anchor.clone());
        let p0 = ev.price(&[(2, Opinion::Positive)]);
        ev.patch(&[(3, Opinion::Negative)]);
        ev.patch(&[(5, Opinion::Positive)]);
        assert_eq!(ev.depth(), 2);
        assert!(ev.unpatch());
        assert!(ev.unpatch());
        assert_eq!(ev.anchor(), &anchor);
        assert_eq!(p0.to_bits(), ev.price(&[(2, Opinion::Positive)]).to_bits());
    }
}
