//! Time-ordered SND with row caching, for prediction-style workloads.
//!
//! §3 notes that for time-ordered states the ground distance can be defined
//! from the earlier state alone. [`OrderedSnd`] fixes a *from* state,
//! precomputes its two geometries, and evaluates
//!
//! ```text
//! ordered(from, to) = EMD*(from⁺, to⁺, D(from, +)) + EMD*(from⁻, to⁻, D(from, −))
//! ```
//!
//! for many candidate `to` states cheaply: the geometry never changes, and
//! SSSP rows are cached per user, so evaluating a candidate that differs
//! from a previous one in a handful of users costs only a few extra SSSP
//! runs plus a small transportation solve. This is what makes the
//! randomized-search opinion predictor (§6.3) tractable.
//!
//! The row cache is thread-safe and shared: [`OrderedSnd`] is `Sync`, and
//! [`distances_to`](OrderedSnd::distances_to) scores a whole candidate
//! batch in parallel against the one cache.

use snd_models::{NetworkState, Opinion};

use crate::engine::{SndEngine, StateGeometry};
use crate::sparse::emd_star_term;

/// Ordered-SND evaluator anchored at a fixed "from" state.
pub struct OrderedSnd<'e, 'g> {
    engine: &'e SndEngine<'g>,
    from: NetworkState,
    geometry: StateGeometry,
}

impl<'e, 'g> OrderedSnd<'e, 'g> {
    /// Builds the evaluator (computes the two geometries of `from`).
    pub fn new(engine: &'e SndEngine<'g>, from: NetworkState) -> Self {
        let geometry = engine.state_geometry(&from);
        OrderedSnd {
            engine,
            from,
            geometry,
        }
    }

    /// The anchored state.
    pub fn from_state(&self) -> &NetworkState {
        &self.from
    }

    /// Ordered SND from the anchored state to `to`.
    pub fn distance_to(&self, to: &NetworkState) -> f64 {
        let term = |geom, op| {
            emd_star_term(
                self.engine.graph(),
                self.engine.clustering(),
                geom,
                &self.from,
                to,
                op,
                self.engine.config(),
                Some(&self.geometry.cache),
            )
        };
        let (pos, neg) = rayon::join(
            || term(&self.geometry.pos, Opinion::Positive),
            || term(&self.geometry.neg, Opinion::Negative),
        );
        pos + neg
    }

    /// Ordered SND to every candidate, fanned out over the thread pool.
    /// All evaluations share the anchored geometry and row cache; the
    /// result order matches `candidates`.
    pub fn distances_to(&self, candidates: &[NetworkState]) -> Vec<f64> {
        use rayon::prelude::*;
        candidates.par_iter().map(|c| self.distance_to(c)).collect()
    }

    /// Number of SSSP rows currently cached.
    pub fn cached_rows(&self) -> usize {
        self.geometry.cached_rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SndConfig;
    use snd_graph::generators::path_graph;

    #[test]
    fn ordered_distance_is_zero_for_same_state() {
        let g = path_graph(6);
        let engine = SndEngine::new(&g, SndConfig::default());
        let s = NetworkState::from_values(&[1, 0, -1, 0, 1, 0]);
        let ordered = OrderedSnd::new(&engine, s.clone());
        assert_eq!(ordered.distance_to(&s), 0.0);
    }

    #[test]
    fn candidates_reuse_cached_rows() {
        let g = path_graph(8);
        let engine = SndEngine::new(&g, SndConfig::default());
        let from = NetworkState::from_values(&[1, 1, 0, 0, 0, 0, -1, 0]);
        let ordered = OrderedSnd::new(&engine, from);
        let mut to_a = NetworkState::from_values(&[1, 1, 0, 1, 0, 0, -1, 0]);
        let _ = ordered.distance_to(&to_a);
        let rows_after_first = ordered.cached_rows();
        // Same differing users => no new rows.
        let _ = ordered.distance_to(&to_a);
        assert_eq!(ordered.cached_rows(), rows_after_first);
        // One extra differing user => at most a few more rows.
        to_a.set(4, Opinion::Negative);
        let _ = ordered.distance_to(&to_a);
        assert!(ordered.cached_rows() >= rows_after_first);
    }

    #[test]
    fn ordered_tracks_full_snd_direction_terms() {
        // ordered(from, to) must equal the two forward terms of the full
        // breakdown when geometries agree.
        let g = path_graph(8);
        let engine = SndEngine::new(&g, SndConfig::default());
        let a = NetworkState::from_values(&[1, 0, 0, -1, 0, 0, 1, 0]);
        let b = NetworkState::from_values(&[1, 1, 0, -1, -1, 0, 0, 0]);
        let ordered = OrderedSnd::new(&engine, a.clone());
        let got = ordered.distance_to(&b);
        let breakdown = engine.breakdown(&a, &b);
        let expected = breakdown.forward_pos + breakdown.forward_neg;
        assert!((got - expected).abs() < 1e-9, "{got} vs {expected}");
    }

    #[test]
    fn batch_scoring_matches_one_by_one() {
        let g = path_graph(10);
        let engine = SndEngine::new(&g, SndConfig::default());
        let from = NetworkState::from_values(&[1, 1, 0, 0, 0, 0, 0, 0, -1, 0]);
        let ordered = OrderedSnd::new(&engine, from);
        let candidates: Vec<NetworkState> = (0..6)
            .map(|i| {
                let mut s = ordered.from_state().clone();
                s.set(i as u32 + 2, Opinion::Positive);
                s
            })
            .collect();
        let batch = ordered.distances_to(&candidates);
        for (c, &d) in candidates.iter().zip(&batch) {
            assert_eq!(d, ordered.distance_to(c), "batch equals single eval");
        }
    }
}
