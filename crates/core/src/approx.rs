//! The approximate geometry tier: landmark sketches, opinion-community
//! coarsening, and ε-bounded progressive refinement.
//!
//! The exact sparse path ([`crate::sparse`]) prices one EMD\* term with one
//! SSSP per heavy-side residual user. On million-node graphs with
//! thousands of residual users that is thousands of Dial runs per term —
//! the wall the ROADMAP's scale item names. This tier replaces the
//! per-row SSSPs with a *certified interval*:
//!
//! 1. **Landmark sketches** — `L` landmarks (degree + farthest-point mix,
//!    [`snd_graph::select_landmarks`]) contribute `2·L` SSSP rows per
//!    `(ground state, opinion, term)`; triangle-inequality envelopes
//!    ([`snd_graph::LandmarkSketch`]) then bound any pairwise ground
//!    distance without further SSSPs. Landmark rows live in the same
//!    [`RowCache`] planes as the exact path's rows, so series and batch
//!    workloads share them across comparisons.
//! 2. **Opinion-community coarsening** — residual users (all holding the
//!    term's opinion on one side) are contracted by a topology-only
//!    quotient partition ([`snd_graph::bfs_partition`]); the reduced
//!    transportation problem is priced on the quotient with per-cell
//!    `[lower, upper]` ground-cost bounds from the group-level sketch.
//!    Solving the coarse problem twice — once per envelope — yields
//!    certified bounds on the exact term: the lower solve is dominated by
//!    the projection of the exact optimal plan, the upper solve dominates
//!    a proportional disaggregation of its own plan (both directions of
//!    the standard coarsening sandwich, since the transportation optimum
//!    is monotone in the cost matrix).
//! 3. **Progressive refinement** — while the interval is wider than the
//!    caller's ε, a batch of the worst boundary clusters (largest
//!    `cell gap × flow` over both optimal plans) is split and the
//!    quotient re-priced; cell bounds are maintained incrementally, so a
//!    round costs two coarse solves plus only the split groups' cells.
//!    Row groups refined down to singletons escalate to *bounded-radius
//!    SSSP balls* ([`snd_graph::dial_bounded_scratch`]): the ball prices
//!    the row's nearby consumers exactly and its radius floors everything
//!    it never reached — precisely the cells an optimal plan avoids —
//!    at a fraction of a full Dial run. Balls that stay too small
//!    escalate to the full exact row, so at full refinement the interval
//!    collapses to the exact value — ε = 0 terminates with the exact
//!    sparse answer (property-tested in `tests/approx_bounds.rs`).
//!
//! Tiny reduced problems (residual rows ≤ 2·L, where sketching would cost
//! more SSSPs than exactness) short-circuit to the exact sparse path and
//! return a zero-width interval.
//!
//! The tier supports the default [`ClusterSpec::PerBin`] bank mode only;
//! cluster-bank modes report [`ApproxError::UnsupportedBankMode`].

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use snd_graph::{
    bfs_partition, quotient_graph, select_landmarks, Clustering, CsrGraph, GroupAggregate,
    LandmarkSketch, NodeId,
};
use snd_models::{NetworkState, Opinion};
use snd_transport::{solve_balanced, DenseCost, Mass, TransportPlan};

use snd_graph::{dial_bounded_scratch, Dist};

use crate::banks::GroundGeometry;
use crate::config::{ClusterSpec, SndConfig};
use crate::delta::SketchRows;
use crate::sparse::{self, with_sssp_scratch, RowCache};

/// Configuration of the approximate tier (attached to
/// [`SndConfig::approx`](crate::SndConfig)).
#[derive(Clone, Debug, PartialEq)]
pub struct ApproxConfig {
    /// Per-term relative gap target: refinement stops once
    /// `upper − lower ≤ ε · upper` for every EMD\* term, which bounds the
    /// relative error of the midpoint estimate by ε. `0.0` refines all the
    /// way to the exact value.
    pub epsilon: f64,
    /// Landmarks per sketch (`2·max_landmarks` SSSPs per ground
    /// state/opinion/direction). More landmarks tighten the envelopes.
    pub max_landmarks: usize,
    /// Maximum refinement rounds per term; each round solves the coarse
    /// problem twice and splits a batch of the worst boundary clusters.
    /// On exhaustion the current (still certified) interval is returned
    /// even if wider than ε.
    pub budget: usize,
    /// `Solver::Auto`-style routing threshold for the scalar surfaces
    /// ([`distance`](crate::SndEngine::distance), series, tiles): graphs
    /// with fewer nodes stay on the exact path, larger ones enter the
    /// sketch tier. Interval queries
    /// ([`distance_interval`](crate::SndEngine::distance_interval)) ignore
    /// this and always run the approximate machinery.
    ///
    /// The default is the measured `BENCH_scale.json` crossover: below
    /// 5·10⁴ nodes the sketch tier runs at 0.84–0.90× of exact, at the
    /// crossover and above it wins (2.9× at 5·10⁴, 5.1× at 10⁵).
    pub min_nodes: usize,
}

impl Default for ApproxConfig {
    fn default() -> Self {
        ApproxConfig {
            epsilon: 0.05,
            max_landmarks: 8,
            budget: usize::MAX,
            min_nodes: 50_000,
        }
    }
}

impl ApproxConfig {
    /// Validates the configuration: ε must be a finite value ≥ 0 and at
    /// least one landmark is required.
    pub fn validate(&self) -> Result<(), ApproxError> {
        if !self.epsilon.is_finite() || self.epsilon < 0.0 {
            return Err(ApproxError::InvalidEpsilon(self.epsilon));
        }
        if self.max_landmarks == 0 {
            return Err(ApproxError::NoLandmarks);
        }
        Ok(())
    }
}

/// Structured errors of the approximate tier.
#[derive(Clone, Debug, PartialEq)]
pub enum ApproxError {
    /// ε was NaN, infinite, or negative.
    InvalidEpsilon(f64),
    /// `max_landmarks` was zero.
    NoLandmarks,
    /// The engine's bank mode is not [`ClusterSpec::PerBin`] — cluster
    /// banks price mismatch against precomputed cluster geometry the
    /// sketch does not bound.
    UnsupportedBankMode(String),
}

impl fmt::Display for ApproxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApproxError::InvalidEpsilon(e) => {
                write!(f, "approx epsilon must be finite and >= 0, got {e}")
            }
            ApproxError::NoLandmarks => write!(f, "approx needs at least one landmark"),
            ApproxError::UnsupportedBankMode(mode) => write!(
                f,
                "the approximate tier requires per-bin banks (ClusterSpec::PerBin), got {mode}"
            ),
        }
    }
}

impl std::error::Error for ApproxError {}

/// A certified interval around an SND value (or one EMD\* term):
/// `lower ≤ exact ≤ upper` always holds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SndInterval {
    /// Certified lower bound.
    pub lower: f64,
    /// Certified upper bound.
    pub upper: f64,
}

impl SndInterval {
    /// The midpoint estimate (what the scalar surfaces report).
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.lower + self.upper)
    }

    /// Interval width `upper − lower`.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// Whether `value` lies inside the interval (inclusive, with a tiny
    /// float tolerance on both ends).
    pub fn contains(&self, value: f64) -> bool {
        let tol = 1e-9 * (1.0 + self.upper.abs());
        self.lower - tol <= value && value <= self.upper + tol
    }
}

/// Initial quotient granularity: residual users are contracted into at
/// most this many topology communities before refinement, regardless of
/// graph size — the envelope transportation solves stay bounded even at
/// n ≥ 10⁷ because seeding always happens on the coarsest level.
const QUOTIENT_CLUSTERS: usize = 64;

/// Branching factor between adjacent quotient levels: each coarse cluster
/// is the union of about this many clusters of the next finer level, so a
/// refinement split replaces one group by a bounded handful of children.
const QUOTIENT_FANOUT: usize = 8;

/// Target member count of the finest level's clusters. Depth grows (up to
/// [`MAX_QUOTIENT_LEVELS`]) until the expected finest cluster size drops
/// to this, so splits stay topology-aware almost down to singletons.
const QUOTIENT_LEAF: usize = 256;

/// Hierarchy depth cap: 64·8⁵ ≈ 2·10⁶ finest clusters cover n ≈ 5·10⁸ at
/// [`QUOTIENT_LEAF`] granularity — beyond any graph this engine prices.
const MAX_QUOTIENT_LEVELS: usize = 6;

/// First-ball stop budget for bounded row materialization, as a multiple
/// of the row's own mass: the ball grows until it has settled this much
/// nearby consumer capacity (escalations quadruple it). Enough slack that
/// an optimal plan can usually route the row's mass inside the ball even
/// when neighboring rows compete for the same consumers.
const BALL_CAPACITY_FACTOR: u64 = 8;

/// Residual sides at most this large start refinement at singleton
/// granularity instead of on the quotient — the coarse rounds only pay
/// for themselves when contraction actually shrinks the problem.
const SINGLETON_INIT_MAX: usize = 1024;

/// Topology-only sketch context, computed once per engine: the landmark
/// node set and the recursive quotient hierarchy. Distance rows are per
/// ground state and live in that state's [`RowCache`] (or ride a
/// delta-repaired [`SketchRows`] bundle on the series path).
#[derive(Debug)]
pub(crate) struct ApproxCtx {
    pub(crate) landmarks: Vec<NodeId>,
    /// Nested quotient hierarchy, coarsest first: every cluster of
    /// `levels[d]` is a union of clusters of `levels[d + 1]` (built by
    /// [`bfs_partition`] on the [`quotient_graph`] of the finer level and
    /// composing labels). Seeding contracts by `levels[0]`; refinement
    /// splits descend the hierarchy before falling back to positional
    /// halves past the finest level.
    pub(crate) levels: Vec<Clustering>,
}

impl ApproxCtx {
    /// The coarsest level — the seeding quotient.
    pub(crate) fn quotient(&self) -> &Clustering {
        &self.levels[0]
    }
}

pub(crate) fn build_ctx(g: &CsrGraph, approx: &ApproxConfig) -> ApproxCtx {
    ApproxCtx {
        landmarks: select_landmarks(g, approx.max_landmarks.max(1)),
        levels: build_levels(g),
    }
}

/// Builds the nested quotient hierarchy: a finest [`bfs_partition`] sized
/// by [`QUOTIENT_LEAF`], then repeated [`quotient_graph`] + coarsening
/// with composed labels until the top level fits [`QUOTIENT_CLUSTERS`].
fn build_levels(g: &CsrGraph) -> Vec<Clustering> {
    let n = g.node_count().max(1);
    let mut fine = QUOTIENT_CLUSTERS;
    let mut depth = 1;
    while n.div_ceil(fine) > QUOTIENT_LEAF && depth < MAX_QUOTIENT_LEVELS {
        fine *= QUOTIENT_FANOUT;
        depth += 1;
    }
    let mut levels = vec![bfs_partition(g, fine.min(n))];
    loop {
        let composed = {
            let finer = &levels[levels.len() - 1];
            if finer.cluster_count() <= QUOTIENT_CLUSTERS {
                break;
            }
            let q = quotient_graph(g, finer);
            let target = (finer.cluster_count() / QUOTIENT_FANOUT).max(QUOTIENT_CLUSTERS);
            let coarse_of = bfs_partition(&q, target);
            let labels: Vec<u32> = finer
                .labels
                .iter()
                .map(|&l| coarse_of.labels[l as usize])
                .collect();
            let c = Clustering::from_labels(&labels);
            if c.cluster_count() >= finer.cluster_count() {
                // A heavily disconnected quotient can refuse to contract
                // (bfs_partition may exceed its target by one cluster per
                // component); keep the certified machinery with a shallower
                // hierarchy rather than loop.
                break;
            }
            c
        };
        levels.push(composed);
    }
    levels.reverse();
    levels
}

/// Returns the bank-mode name for [`ApproxError::UnsupportedBankMode`],
/// or `None` when the mode is supported.
pub(crate) fn unsupported_bank_mode(config: &SndConfig) -> Option<String> {
    match config.clusters {
        ClusterSpec::PerBin => None,
        ClusterSpec::BfsPartition { .. } => Some("BfsPartition".into()),
        ClusterSpec::LabelPropagation { .. } => Some("LabelPropagation".into()),
        ClusterSpec::Explicit(_) => Some("Explicit".into()),
        ClusterSpec::Single => Some("Single".into()),
    }
}

/// Whether `SND_APPROX_TRACE` diagnostics are on.
pub(crate) fn trace_enabled() -> bool {
    std::env::var_os("SND_APPROX_TRACE").is_some()
}

/// Process-global aggregate counters behind `SND_APPROX_TRACE`: per-term
/// lines show individual refinements, this accumulates the run-level
/// story (how many terms, how deep the escalation ladder went, how the
/// sketch bundle was maintained) and is drained once per run by
/// [`emit_trace_summary`].
struct TraceStats {
    terms: AtomicUsize,
    tiny_exact: AtomicUsize,
    rounds: AtomicUsize,
    /// Deepest escalation per term: sketch-only / Dial ball / reball /
    /// full exact row.
    ladder: [AtomicUsize; 4],
    sketch_repaired: AtomicUsize,
    sketch_reused: AtomicUsize,
    sketch_stale: AtomicUsize,
    sketch_rebuilt: AtomicUsize,
    /// Final relative gap per term: 0 / ≤1% / ≤5% / ≤20% / >20%.
    gap_hist: [AtomicUsize; 5],
    /// Wall-clock nanoseconds per cost phase (see the `PHASE_*` slots).
    phase_ns: [AtomicU64; 5],
}

/// [`TraceStats::phase_ns`] slots: sketch build/repair (delta bundles),
/// landmark row SSSPs (sketchless fetches), bounded Dial balls,
/// envelope transportation solves, and exact singleton rows.
pub(crate) const PHASE_SKETCH_MAINT: usize = 0;
pub(crate) const PHASE_LANDMARK_ROWS: usize = 1;
pub(crate) const PHASE_BALLS: usize = 2;
pub(crate) const PHASE_SOLVES: usize = 3;
pub(crate) const PHASE_EXACT_ROWS: usize = 4;

/// Runs `f`, charging its wall time to `phase` when tracing is on.
pub(crate) fn time_phase<T>(phase: usize, f: impl FnOnce() -> T) -> T {
    if !trace_enabled() {
        return f();
    }
    let start = std::time::Instant::now();
    let out = f();
    TRACE_STATS.phase_ns[phase].fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    out
}

static TRACE_STATS: TraceStats = TraceStats {
    terms: AtomicUsize::new(0),
    tiny_exact: AtomicUsize::new(0),
    rounds: AtomicUsize::new(0),
    ladder: [
        AtomicUsize::new(0),
        AtomicUsize::new(0),
        AtomicUsize::new(0),
        AtomicUsize::new(0),
    ],
    sketch_repaired: AtomicUsize::new(0),
    sketch_reused: AtomicUsize::new(0),
    sketch_stale: AtomicUsize::new(0),
    sketch_rebuilt: AtomicUsize::new(0),
    gap_hist: [
        AtomicUsize::new(0),
        AtomicUsize::new(0),
        AtomicUsize::new(0),
        AtomicUsize::new(0),
        AtomicUsize::new(0),
    ],
    phase_ns: [
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
    ],
};

/// Records one priced term's ladder depth, round count, and final gap.
fn record_term(rounds: usize, balls: usize, reballs: usize, exacts: usize, lo: f64, hi: f64) {
    if !trace_enabled() {
        return;
    }
    TRACE_STATS.terms.fetch_add(1, Ordering::Relaxed);
    TRACE_STATS.rounds.fetch_add(rounds, Ordering::Relaxed);
    let rung = if exacts > 0 {
        3
    } else if reballs > 0 {
        2
    } else if balls > 0 {
        1
    } else {
        0
    };
    TRACE_STATS.ladder[rung].fetch_add(1, Ordering::Relaxed);
    let rel = if hi > 0.0 { (hi - lo) / hi } else { 0.0 };
    let bucket = if rel <= 0.0 {
        0
    } else if rel <= 0.01 {
        1
    } else if rel <= 0.05 {
        2
    } else if rel <= 0.2 {
        3
    } else {
        4
    };
    TRACE_STATS.gap_hist[bucket].fetch_add(1, Ordering::Relaxed);
}

/// Records how a delta step maintained the 2·L sketch rows of one plane:
/// rows repaired through the change batch, rows provably untouched and
/// `Arc`-shared, and rows the feedback-driven policy left stale (parked
/// outside the envelope instead of paying a repair).
pub(crate) fn record_sketch_step(repaired: usize, reused: usize, stale: usize) {
    if !trace_enabled() {
        return;
    }
    TRACE_STATS
        .sketch_repaired
        .fetch_add(repaired, Ordering::Relaxed);
    TRACE_STATS
        .sketch_reused
        .fetch_add(reused, Ordering::Relaxed);
    TRACE_STATS.sketch_stale.fetch_add(stale, Ordering::Relaxed);
}

/// Records a fresh sketch build (initial bundle or high-churn fallback).
pub(crate) fn record_sketch_rebuild(rows: usize) {
    if !trace_enabled() {
        return;
    }
    TRACE_STATS
        .sketch_rebuilt
        .fetch_add(rows, Ordering::Relaxed);
}

/// Emits (and resets) the per-run aggregate summary. The interval
/// surfaces call this once per run, so a series prints one block instead
/// of only the per-term lines.
pub(crate) fn emit_trace_summary(context: &str) {
    if !trace_enabled() {
        return;
    }
    let take = |a: &AtomicUsize| a.swap(0, Ordering::Relaxed);
    let terms = take(&TRACE_STATS.terms);
    let tiny = take(&TRACE_STATS.tiny_exact);
    let rounds = take(&TRACE_STATS.rounds);
    let ladder: Vec<usize> = TRACE_STATS.ladder.iter().map(take).collect();
    let repaired = take(&TRACE_STATS.sketch_repaired);
    let reused = take(&TRACE_STATS.sketch_reused);
    let stale = take(&TRACE_STATS.sketch_stale);
    let rebuilt = take(&TRACE_STATS.sketch_rebuilt);
    let gaps: Vec<usize> = TRACE_STATS.gap_hist.iter().map(take).collect();
    let ms: Vec<f64> = TRACE_STATS
        .phase_ns
        .iter()
        .map(|a| a.swap(0, Ordering::Relaxed) as f64 / 1e6)
        .collect();
    eprintln!(
        "approx-summary [{context}]: terms={terms} (+{tiny} tiny-exact) \
         refinement_rounds={rounds} ladder[sketch/ball/reball/exact]={}/{}/{}/{} \
         sketch_rows[repaired/reused/stale/rebuilt]={repaired}/{reused}/{stale}/{rebuilt} \
         gap_hist[0,\u{2264}1%,\u{2264}5%,\u{2264}20%,>20%]={}/{}/{}/{}/{} \
         phase_ms[sketch/rows/balls/solves/exact]={:.0}/{:.0}/{:.0}/{:.0}/{:.0}",
        ladder[0],
        ladder[1],
        ladder[2],
        ladder[3],
        gaps[0],
        gaps[1],
        gaps[2],
        gaps[3],
        gaps[4],
        ms[0],
        ms[1],
        ms[2],
        ms[3],
        ms[4],
    );
}

/// Adaptive-placement feedback out of one term: representatives of the
/// worst `gap × flow` cells at convergence (hot spots the sketch should
/// cover next) plus per-landmark usefulness credit (was the landmark the
/// binding envelope of a hot cell). Indices in `landmark_useful` follow
/// the landmark order the term was priced with.
pub(crate) struct TermFeedback {
    pub(crate) hot_nodes: Vec<NodeId>,
    pub(crate) landmark_useful: Vec<bool>,
}

impl TermFeedback {
    fn empty() -> TermFeedback {
        TermFeedback {
            hot_nodes: Vec::new(),
            landmark_useful: Vec::new(),
        }
    }
}

/// One priced term: the certified interval plus adaptive feedback.
pub(crate) struct TermOutcome {
    pub(crate) lower: f64,
    pub(crate) upper: f64,
    pub(crate) feedback: TermFeedback,
}

impl TermOutcome {
    fn exact(v: f64) -> TermOutcome {
        TermOutcome {
            lower: v,
            upper: v,
            feedback: TermFeedback::empty(),
        }
    }
}

/// How many of the worst cells feed [`TermFeedback`].
const FEEDBACK_CELLS: usize = 8;

/// How precisely a (singleton) row group's ground distances are known.
/// Refinement escalates rows along `Sketch → Partial → … → Full` — each
/// step is taken only while the row's cells still gate the interval.
enum RowDists<'c> {
    /// Landmark envelopes only (the default for every group).
    Sketch,
    /// Bounded-radius SSSP ball: `vals[t]` is the distance for the term's
    /// `t`-th column member (see `target_ids` in
    /// [`emd_star_term_interval`]) — exact where `vals[t] < radius`, else a
    /// tentative *upper* bound with the true distance `≥ radius`. The
    /// `capacity` is the stop threshold the ball was grown with,
    /// quadrupled on each escalation.
    Partial {
        vals: Vec<Dist>,
        radius: Dist,
        capacity: u64,
    },
    /// Full clamped SSSP row from the shared cache — the same row the
    /// exact path would compute. Collapses cells against singleton
    /// columns to zero width.
    Full(&'c [u32]),
}

/// One coarse supplier/consumer: a contracted set of residual users (or
/// per-bin bank bins, offset by γ). A singleton *row* group may lazily
/// materialize its SSSP row — a bounded ball first, the full row as
/// refinement's last resort — when its cells cannot be split further.
struct Group<'c> {
    members: Vec<NodeId>,
    masses: Vec<Mass>,
    gamma: u32,
    agg: GroupAggregate,
    dists: RowDists<'c>,
    /// Quotient-hierarchy level this group is a (subset of a) cluster of;
    /// `levels.len()` means "finer than the finest level" — further
    /// splits fall back to positional halves.
    level: usize,
}

impl<'c> Group<'c> {
    fn mass(&self) -> Mass {
        self.masses.iter().sum()
    }
}

/// Certified `[lower, upper]` for one EMD\* term
/// `EMD*(Pᵒᵖ, Qᵒᵖ, D(ground, op))` under per-bin banks. Mirrors
/// [`sparse::emd_star_term`]'s reduction, orientation, and bank
/// construction exactly; only the per-pair ground distances are replaced
/// by sketch envelopes that refinement tightens until
/// `upper − lower ≤ ε · upper` (or the round budget runs out).
///
/// `sketch_rows` supplies prebuilt (delta-repaired) landmark rows; when
/// absent the rows are fetched through the ground state's shared
/// [`RowCache`] (2·L SSSPs on first use). Both sources are bit-identical
/// rows, so the interval does not depend on which one priced it.
#[allow(clippy::too_many_arguments)] // mirrors the exact term signature plus the approx knobs
pub(crate) fn emd_star_term_interval<'c>(
    g: &CsrGraph,
    clustering: &Clustering,
    ctx: &ApproxCtx,
    geom: &'c GroundGeometry,
    p_state: &NetworkState,
    q_state: &NetworkState,
    op: Opinion,
    config: &SndConfig,
    approx: &ApproxConfig,
    cache: &'c RowCache,
    sketch_rows: Option<&'c SketchRows>,
) -> TermOutcome {
    let n = g.node_count();
    assert!(geom.per_bin, "the approximate tier requires per-bin banks");
    assert_eq!(p_state.len(), n, "state size mismatch");
    assert_eq!(q_state.len(), n, "state size mismatch");
    let scale = config.scale;

    // Lemma 2 classification — identical to the exact sparse path.
    let mut residual_p: Vec<NodeId> = Vec::new();
    let mut residual_q: Vec<NodeId> = Vec::new();
    let mut active_p: Vec<NodeId> = Vec::new();
    let mut active_q: Vec<NodeId> = Vec::new();
    for u in 0..n as NodeId {
        let in_p = p_state.opinion(u) == op;
        let in_q = q_state.opinion(u) == op;
        if in_p {
            active_p.push(u);
        }
        if in_q {
            active_q.push(u);
        }
        if in_p && !in_q {
            residual_p.push(u);
        } else if in_q && !in_p {
            residual_q.push(u);
        }
    }
    let total_p = active_p.len() as u64 * scale;
    let total_q = active_q.len() as u64 * scale;
    if total_p == 0 && total_q == 0 {
        return TermOutcome::exact(0.0);
    }
    let delta = total_p.abs_diff(total_q);
    let p_is_lighter = total_p < total_q;

    // Per-bin banks on the lighter side — same bins and capacities as the
    // exact path (including the uniform fallback for an empty lighter
    // histogram).
    let (bank_bins, bank_caps): (Vec<NodeId>, Vec<Mass>) = if delta == 0 {
        (Vec::new(), Vec::new())
    } else {
        let bins = if p_is_lighter { &active_p } else { &active_q };
        if bins.is_empty() {
            let all: Vec<NodeId> = (0..n as NodeId).collect();
            let caps = snd_emd::proportional_split(delta, &vec![1; n]);
            (all, caps)
        } else {
            let masses = vec![scale; bins.len()];
            (bins.clone(), snd_emd::proportional_split(delta, &masses))
        }
    };

    let (row_nodes, col_nodes, reverse) = if !p_is_lighter {
        (residual_p, residual_q, false)
    } else {
        (residual_q, residual_p, true)
    };
    if row_nodes.is_empty() {
        debug_assert!(col_nodes.is_empty() && delta == 0);
        return TermOutcome::exact(0.0);
    }

    // Tiny reduced problems: exact rows cost fewer SSSPs than the sketch
    // would — answer exactly (zero-width interval). The threshold follows
    // the landmark set that would actually price this term (the bundle's
    // live adapted set when present).
    let n_landmarks = sketch_rows
        .map_or(ctx.landmarks.len(), SketchRows::live_count)
        .max(1);
    if row_nodes.len() <= 2 * n_landmarks {
        let v = sparse::emd_star_term(
            g,
            clustering,
            geom,
            p_state,
            q_state,
            op,
            config,
            Some(cache),
        );
        if trace_enabled() {
            TRACE_STATS.tiny_exact.fetch_add(1, Ordering::Relaxed);
        }
        return TermOutcome::exact(v);
    }

    // Landmark rows: a delta-repaired bundle when the series path carries
    // one, else 2·L SSSPs shared with the exact path through the ground
    // state's row cache. Either source yields bit-identical rows.
    let inf = geom.unreachable;
    let sketch = match sketch_rows {
        Some(rows) => rows.sketch(inf),
        None => time_phase(PHASE_LANDMARK_ROWS, || {
            LandmarkSketch::new(
                ctx.landmarks
                    .iter()
                    .map(|&l| cache.get_or_compute(g, geom, op, true, l))
                    .collect(),
                ctx.landmarks
                    .iter()
                    .map(|&l| cache.get_or_compute(g, geom, op, false, l))
                    .collect(),
                inf,
            )
        }),
    };

    // Exact SSSP row of a singleton row group — the same row the exact
    // path would compute, fetched lazily through the shared cache.
    let singleton_fetches = std::cell::Cell::new(0usize);
    let partial_fetches = std::cell::Cell::new(0usize);
    let reball_fetches = std::cell::Cell::new(0usize);
    let fetch_exact = |node: NodeId| {
        singleton_fetches.set(singleton_fetches.get() + 1);
        time_phase(PHASE_EXACT_ROWS, || {
            cache.get_or_compute(g, geom, op, reverse, node)
        })
    };
    let finest = ctx.levels.len();
    let make_group = |members: Vec<NodeId>, masses: Vec<Mass>, gamma: u32, level: usize| {
        debug_assert_eq!(members.len(), masses.len());
        Group {
            agg: sketch.aggregate(&members),
            members,
            masses,
            gamma,
            dists: RowDists::Sketch,
            level,
        }
    };

    // Opinion-community coarsening: contract each side by the coarsest
    // quotient level (bank bins grouped separately — their γ offset
    // differs). The solve dimensions start bounded by the level's cluster
    // count no matter how large the graph is.
    let partition = |items: &[NodeId], masses: Option<&[Mass]>| -> Vec<(Vec<NodeId>, Vec<Mass>)> {
        let quotient = ctx.quotient();
        let nc = quotient.cluster_count();
        let mut buckets: Vec<(Vec<NodeId>, Vec<Mass>)> = vec![(Vec::new(), Vec::new()); nc];
        for (i, &v) in items.iter().enumerate() {
            let c = quotient.labels[v as usize] as usize;
            buckets[c].0.push(v);
            buckets[c].1.push(masses.map_or(scale, |m| m[i]));
        }
        buckets.retain(|(m, _)| !m.is_empty());
        buckets
    };
    // Small residual sides skip the coarse rounds entirely: starting at
    // singleton granularity costs one full-size solve per round but saves
    // the split-only rounds whose solves refinement would pay anyway. The
    // (potentially huge) bank side always starts on the quotient.
    let seed_groups = |nodes: &[NodeId]| -> Vec<Group> {
        if nodes.len() <= SINGLETON_INIT_MAX {
            nodes
                .iter()
                .map(|&v| make_group(vec![v], vec![scale], 0, finest))
                .collect()
        } else {
            partition(nodes, None)
                .into_iter()
                .map(|(m, ms)| make_group(m, ms, 0, 0))
                .collect()
        }
    };
    let mut rows: Vec<Group> = seed_groups(&row_nodes);
    let mut cols: Vec<Group> = seed_groups(&col_nodes);
    cols.extend(
        partition(&bank_bins, Some(&bank_caps))
            .into_iter()
            .map(|(m, ms)| make_group(m, ms, config.per_bin_gamma, 0)),
    );

    // Column-member table for bounded materialization: every node a row
    // could ever ship to, its total transportation mass (a residual col
    // node on the lighter side is also a bank bin — the masses add), and
    // its slot in a partial row's `vals`. Columns only split after this
    // point, so the member set is fixed for the term's lifetime.
    let mut target_pos: Vec<u32> = vec![u32::MAX; n];
    let mut target_ids: Vec<NodeId> = Vec::new();
    let mut target_weight: Vec<u64> = vec![0; n];
    for c in &cols {
        for (&y, &m) in c.members.iter().zip(&c.masses) {
            if target_pos[y as usize] == u32::MAX {
                target_pos[y as usize] = target_ids.len() as u32;
                target_ids.push(y);
            }
            target_weight[y as usize] += m;
        }
    }
    let (target_pos, target_ids, target_weight) = (target_pos, target_ids, target_weight);
    let total_demand: u64 = cols.iter().map(Group::mass).sum();
    let partial_fetch = |node: NodeId, capacity: u64| -> RowDists<'c> {
        partial_fetches.set(partial_fetches.get() + 1);
        time_phase(PHASE_BALLS, || {
            with_sssp_scratch(|scratch| {
                let radius = dial_bounded_scratch(
                    g,
                    &geom.edge_costs,
                    &[node],
                    geom.max_edge_cost,
                    reverse,
                    &target_weight,
                    capacity,
                    scratch,
                );
                let vals = target_ids.iter().map(|&t| scratch.dist(t)).collect();
                RowDists::Partial {
                    vals,
                    radius,
                    capacity,
                }
            })
        })
    };

    // Cell bounds: row min/max when the row group is refined to a
    // singleton — exact from a full row, or ball-exact with the radius
    // flooring every member the ball never reached — and sketch envelopes
    // otherwise. The γ bank offset is added saturating, exactly like the
    // exact path's `row[u] + γ`.
    let cell_bounds = |a: &Group, b: &Group| -> (u32, u32) {
        let sketch_pair = || {
            if reverse {
                // Transposed orientation: cost(row r, col c) = d̂(c → r).
                (
                    sketch.group_lower(&b.agg, &a.agg),
                    sketch.group_upper(&b.agg, &a.agg),
                )
            } else {
                (
                    sketch.group_lower(&a.agg, &b.agg),
                    sketch.group_upper(&a.agg, &b.agg),
                )
            }
        };
        let (lo, hi) = match &a.dists {
            RowDists::Full(row) => {
                let (mut mn, mut mx) = (u32::MAX, 0u32);
                for &y in &b.members {
                    let d = row[y as usize];
                    mn = mn.min(d);
                    mx = mx.max(d);
                }
                (mn, mx)
            }
            RowDists::Partial { vals, radius, .. } => {
                // Settled members are exact. An unreached member costs at
                // least the ball radius (the bounded Dial's certificate)
                // and at most its tentative path, both intersected with
                // the landmark envelope.
                let (slo, shi) = sketch_pair();
                let floor = geom.clamp(*radius).max(slo);
                let (mut mn, mut mx) = (u32::MAX, 0u32);
                let mut open = false;
                for &y in &b.members {
                    let v = vals[target_pos[y as usize] as usize];
                    if v < *radius {
                        let d = geom.clamp(v);
                        mn = mn.min(d);
                        mx = mx.max(d);
                    } else {
                        open = true;
                        mx = mx.max(geom.clamp(v).min(shi));
                    }
                }
                if open {
                    mn = mn.min(floor);
                }
                (mn, mx)
            }
            RowDists::Sketch => sketch_pair(),
        };
        (lo.saturating_add(b.gamma), hi.saturating_add(b.gamma))
    };

    // Incrementally maintained cell bounds: `bounds[i][j]` caches
    // `cell_bounds(rows[i], cols[j])`. Bank groups can hold a large slice
    // of the active histogram, so recomputing the full matrix every round
    // would cost O(rows × Σ|members|) per round — instead a split
    // recomputes only its two replacement rows (or one column pair),
    // mirroring the `swap_remove` + 2×`push` layout of the group vectors.
    let mut bounds: Vec<Vec<(u32, u32)>> = rows
        .iter()
        .map(|a| cols.iter().map(|b| cell_bounds(a, b)).collect())
        .collect();

    let mut rounds = 0usize;
    loop {
        let (nr, nc) = (rows.len(), cols.len());
        let mut lo_data = Vec::with_capacity(nr * nc);
        let mut hi_data = Vec::with_capacity(nr * nc);
        for row in &bounds {
            for &(lo, hi) in row {
                debug_assert!(lo <= hi);
                lo_data.push(lo);
                hi_data.push(hi);
            }
        }
        let supplies: Vec<Mass> = rows.iter().map(Group::mass).collect();
        let demands: Vec<Mass> = cols.iter().map(Group::mass).collect();
        debug_assert_eq!(
            supplies.iter().sum::<u64>(),
            demands.iter().sum::<u64>(),
            "coarse problem must be balanced"
        );
        let lo_cost = DenseCost::from_vec(nr, nc, lo_data);
        let hi_cost = DenseCost::from_vec(nr, nc, hi_data);
        let plan_hi = time_phase(PHASE_SOLVES, || {
            solve_balanced(&supplies, &demands, &hi_cost, config.solver)
        });

        let round_no = rounds;
        let trace = |why: &str, interval: (f64, f64)| {
            if std::env::var_os("SND_APPROX_TRACE").is_some() {
                eprintln!(
                    "approx-trace: op={op:?} rev={reverse} {why}: rounds={round_no} \
                     dims={nr}x{nc} full_fetches={} ball_fetches={} interval=[{:.3}, {:.3}]",
                    singleton_fetches.get(),
                    partial_fetches.get(),
                    interval.0,
                    interval.1,
                );
            }
        };

        // Certified return: per-term trace line, run-level aggregates,
        // and the adaptive-placement feedback off the final hi plan.
        let finish = |why: &str, lower: f64, upper: f64| -> TermOutcome {
            trace(why, (lower, upper));
            record_term(
                round_no,
                partial_fetches.get(),
                reball_fetches.get(),
                singleton_fetches.get(),
                lower,
                upper,
            );
            TermOutcome {
                lower,
                upper,
                feedback: collect_feedback(&plan_hi, &bounds, &rows, &cols, &sketch, reverse),
            }
        };

        // Cheap gap probe: price the hi-optimal plan at the lower bounds.
        // That sum over-estimates the lo optimum, so `hi − probe`
        // *under*-estimates the certified gap — when even the probe misses
        // ε, the expensive lo solve cannot certify this round and is
        // skipped; refinement proceeds on the hi plan's cells alone.
        let probe: i128 = plan_hi
            .flows
            .iter()
            .map(|f| bounds[f.row as usize][f.col as usize].0 as i128 * f.flow as i128)
            .sum();
        let threshold = approx.epsilon * plan_hi.total_cost as f64;
        let certify = (plan_hi.total_cost - probe) as f64 <= threshold || rounds >= approx.budget;
        let mut plan_lo = certify.then(|| {
            time_phase(PHASE_SOLVES, || {
                solve_balanced(&supplies, &demands, &lo_cost, config.solver)
            })
        });
        if let Some(lo_plan) = &plan_lo {
            debug_assert!(lo_plan.total_cost <= plan_hi.total_cost);
            let result = (
                lo_plan.total_cost as f64 / scale as f64,
                plan_hi.total_cost as f64 / scale as f64,
            );
            let gap = (plan_hi.total_cost - lo_plan.total_cost) as f64;
            if gap <= threshold || gap == 0.0 {
                return finish("converged", result.0, result.1);
            }
            if rounds >= approx.budget {
                return finish("budget", result.0, result.1);
            }
        }
        rounds += 1;

        // Worst boundary clusters: rank flowing cells (in either optimal
        // plan) by `gap × flow`, skipping cells that no action can tighten
        // (both sides singleton *and* the row's exact SSSP row already
        // materialized ⇒ the cell is exact ⇒ zero gap anyway). Acting on
        // many groups per round amortizes the transportation re-solves —
        // one action per round would re-solve hundreds of times.
        let mut scored: Vec<(u128, usize, usize)> = Vec::new();
        let lo_flows = plan_lo.iter().flat_map(|p| p.flows.iter());
        for f in plan_hi.flows.iter().chain(lo_flows) {
            let (i, j) = (f.row as usize, f.col as usize);
            let (lo, hi) = bounds[i][j];
            let cell_gap = (hi - lo) as u128;
            let actionable = rows[i].members.len() > 1
                || cols[j].members.len() > 1
                || !matches!(rows[i].dists, RowDists::Full(_));
            if cell_gap == 0 || !actionable {
                continue;
            }
            scored.push((cell_gap * f.flow as u128, i, j));
        }
        scored.sort_unstable_by_key(|b| std::cmp::Reverse(b.0));
        let best = scored.first().copied();
        // Splitting descends the quotient hierarchy: a group at level `d`
        // is partitioned by the first finer level that actually separates
        // its members (fanout ≤ QUOTIENT_FANOUT by construction), so the
        // children follow community boundaries instead of member-array
        // positions. Past the finest level, positional halves.
        let split_group = |gr: Group<'c>| -> Vec<Group<'c>> {
            let mut lv = gr.level + 1;
            while lv < finest {
                let labels = &ctx.levels[lv].labels;
                let first = labels[gr.members[0] as usize];
                if gr.members.iter().any(|&v| labels[v as usize] != first) {
                    let mut buckets: BTreeMap<u32, (Vec<NodeId>, Vec<Mass>)> = BTreeMap::new();
                    for (k, &v) in gr.members.iter().enumerate() {
                        let e = buckets.entry(labels[v as usize]).or_default();
                        e.0.push(v);
                        e.1.push(gr.masses[k]);
                    }
                    return buckets
                        .into_values()
                        .map(|(m, ms)| make_group(m, ms, gr.gamma, lv))
                        .collect();
                }
                lv += 1;
            }
            let mid = gr.members.len() / 2;
            let (m1, m2) = (gr.members[..mid].to_vec(), gr.members[mid..].to_vec());
            let (s1, s2) = (gr.masses[..mid].to_vec(), gr.masses[mid..].to_vec());
            vec![
                make_group(m1, s1, gr.gamma, finest),
                make_group(m2, s2, gr.gamma, finest),
            ]
        };
        // Per-level cost propagation: a child's member pairs are a subset
        // of the parent's, so the parent's certified cell interval still
        // brackets the child's min/max — intersecting it with the child's
        // own sketch bounds keeps every cell certified while inheriting
        // whatever tightness the coarser levels already established.
        let clip = |(lo, hi): (u32, u32), (plo, phi): (u32, u32)| -> (u32, u32) {
            (lo.max(plo), hi.min(phi))
        };
        let split_row = |rows: &mut Vec<Group<'c>>,
                         bounds: &mut Vec<Vec<(u32, u32)>>,
                         cols: &[Group<'c>],
                         i: usize| {
            let parent = bounds.swap_remove(i);
            for child in split_group(rows.swap_remove(i)) {
                bounds.push(
                    cols.iter()
                        .zip(&parent)
                        .map(|(b, &pb)| clip(cell_bounds(&child, b), pb))
                        .collect(),
                );
                rows.push(child);
            }
        };
        let split_col = |cols: &mut Vec<Group<'c>>,
                         bounds: &mut Vec<Vec<(u32, u32)>>,
                         rows: &[Group<'c>],
                         j: usize| {
            let children = split_group(cols.swap_remove(j));
            for (a, row) in rows.iter().zip(bounds.iter_mut()) {
                let pb = row.swap_remove(j);
                for child in &children {
                    row.push(clip(cell_bounds(a, child), pb));
                }
            }
            cols.extend(children);
        };
        match best {
            Some((best_score, _, _)) => {
                // Act on every distinct group among the top-scoring cells,
                // capped per round. Cells far below the round's worst are
                // left for a later round — materializing a singleton row
                // costs an SSSP ball (or ultimately a full Dial run), not
                // worth it on cold cells that a tighter plan may stop
                // routing through. Group splits are free (landmark
                // aggregates only), so they are preferred until both sides
                // are singleton; rows then escalate Sketch → Partial →
                // Full, each ball quadrupling the settled-capacity budget.
                let max_actions = ((rows.len() + cols.len()) / 2).clamp(8, 256);
                let mut row_splits: BTreeSet<usize> = BTreeSet::new();
                let mut col_splits: BTreeSet<usize> = BTreeSet::new();
                let mut materialize: BTreeSet<usize> = BTreeSet::new();
                for &(score, i, j) in &scored {
                    if row_splits.len() + col_splits.len() + materialize.len() >= max_actions
                        || score < best_score / 64
                    {
                        break;
                    }
                    let (rl, cl) = (rows[i].members.len(), cols[j].members.len());
                    if rl >= cl && rl > 1 {
                        row_splits.insert(i);
                    } else if cl > 1 {
                        col_splits.insert(j);
                    } else {
                        materialize.insert(i);
                    }
                }
                // Materialize before splitting: these indices predate the
                // splits' `swap_remove` reshuffling, and the recomputed
                // cells then feed the splits' new columns below.
                for &i in &materialize {
                    let node = rows[i].members[0];
                    let next = match &rows[i].dists {
                        RowDists::Sketch => rows[i].mass().saturating_mul(BALL_CAPACITY_FACTOR),
                        RowDists::Partial { capacity, .. } => {
                            reball_fetches.set(reball_fetches.get() + 1);
                            capacity.saturating_mul(4)
                        }
                        RowDists::Full(_) => continue,
                    };
                    // A ball that must settle (nearly) all demand anyway is
                    // a full row — fetch it through the shared cache so the
                    // exact path can reuse it.
                    rows[i].dists = if next >= total_demand {
                        RowDists::Full(fetch_exact(node))
                    } else {
                        partial_fetch(node, next)
                    };
                    // The previous bounds stay certified (ball radii only
                    // grow, exact rows are final), so intersect instead of
                    // replacing — materialization never widens a cell.
                    for (j, b) in cols.iter().enumerate() {
                        bounds[i][j] = clip(cell_bounds(&rows[i], b), bounds[i][j]);
                    }
                }
                // Descending order keeps pending indices valid across the
                // `swap_remove` + push pairs (the displaced tail element is
                // never itself scheduled — it would have been the maximum).
                for &j in col_splits.iter().rev() {
                    split_col(&mut cols, &mut bounds, &rows, j);
                }
                for &i in row_splits.iter().rev() {
                    split_row(&mut rows, &mut bounds, &cols, i);
                }
            }
            None => {
                // No flowing cell is splittable, yet the interval is open:
                // split the largest remaining group to guarantee progress.
                let widest_row = rows.iter().enumerate().max_by_key(|(_, g)| g.members.len());
                let widest_col = cols.iter().enumerate().max_by_key(|(_, g)| g.members.len());
                match (widest_row, widest_col) {
                    (Some((i, r)), Some((j, c))) if r.members.len().max(c.members.len()) > 1 => {
                        if r.members.len() >= c.members.len() {
                            split_row(&mut rows, &mut bounds, &cols, i);
                        } else {
                            split_col(&mut cols, &mut bounds, &rows, j);
                        }
                    }
                    // Everything is a singleton: the matrices are exact and
                    // the gap must have been zero — unreachable, but return
                    // a certified interval rather than loop.
                    _ => {
                        let lo_plan = plan_lo.take().unwrap_or_else(|| {
                            solve_balanced(&supplies, &demands, &lo_cost, config.solver)
                        });
                        return finish(
                            "exhausted",
                            lo_plan.total_cost as f64 / scale as f64,
                            plan_hi.total_cost as f64 / scale as f64,
                        );
                    }
                }
            }
        }
    }
}

/// Ranks the final hi plan's flowing cells by `gap × flow` and extracts
/// the adaptive-placement feedback: the worst cells' row representatives
/// (residual groups only — bank bins are not mass sources the sketch
/// should chase) and the landmarks binding those cells' envelopes.
fn collect_feedback(
    plan: &TransportPlan,
    bounds: &[Vec<(u32, u32)>],
    rows: &[Group<'_>],
    cols: &[Group<'_>],
    sketch: &LandmarkSketch<'_>,
    reverse: bool,
) -> TermFeedback {
    let mut cells: Vec<(u128, usize, usize)> = plan
        .flows
        .iter()
        .filter_map(|f| {
            let (i, j) = (f.row as usize, f.col as usize);
            let (lo, hi) = bounds[i][j];
            (hi > lo && f.flow > 0).then(|| (((hi - lo) as u128) * f.flow as u128, i, j))
        })
        .collect();
    cells.sort_unstable_by_key(|c| std::cmp::Reverse(c.0));
    // Credit stops once the walked cells carry half the residual gap
    // mass: landmarks binding only the long tail of near-converged cells
    // are not worth keeping on the repair payroll.
    let total_gap: u128 = cells.iter().map(|c| c.0).sum();
    let mut credited: u128 = 0;
    let mut hot_nodes = Vec::new();
    let mut landmark_useful = vec![false; sketch.landmark_count()];
    for &(score, i, j) in cells.iter().take(FEEDBACK_CELLS) {
        if credited * 2 >= total_gap {
            break;
        }
        credited += score;
        let rep = rows[i].members[0];
        if rows[i].gamma == 0 && !hot_nodes.contains(&rep) {
            hot_nodes.push(rep);
        }
        let (a, b) = if reverse {
            (&cols[j].agg, &rows[i].agg)
        } else {
            (&rows[i].agg, &cols[j].agg)
        };
        if let Some(l) = sketch.group_upper_arg(a, b) {
            landmark_useful[l] = true;
        }
        if let Some(l) = sketch.group_lower_arg(a, b) {
            landmark_useful[l] = true;
        }
    }
    TermFeedback {
        hot_nodes,
        landmark_useful,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(ApproxConfig::default().validate().is_ok());
        let bad = ApproxConfig {
            epsilon: -0.1,
            ..Default::default()
        };
        assert!(matches!(
            bad.validate(),
            Err(ApproxError::InvalidEpsilon(_))
        ));
        let nan = ApproxConfig {
            epsilon: f64::NAN,
            ..Default::default()
        };
        assert!(matches!(
            nan.validate(),
            Err(ApproxError::InvalidEpsilon(_))
        ));
        let none = ApproxConfig {
            max_landmarks: 0,
            ..Default::default()
        };
        assert!(matches!(none.validate(), Err(ApproxError::NoLandmarks)));
    }

    #[test]
    fn interval_accessors() {
        let iv = SndInterval {
            lower: 2.0,
            upper: 6.0,
        };
        assert_eq!(iv.midpoint(), 4.0);
        assert_eq!(iv.width(), 4.0);
        assert!(iv.contains(2.0) && iv.contains(6.0) && iv.contains(3.5));
        assert!(!iv.contains(1.0) && !iv.contains(7.0));
    }

    #[test]
    fn intervals_bracket_exact_on_random_graphs() {
        use crate::engine::SndEngine;
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        use snd_graph::generators;

        let mut rng = SmallRng::seed_from_u64(99);
        for trial in 0..12 {
            let n = 30 + trial * 5;
            let g = generators::erdos_renyi_gnp(n, 0.08, true, &mut rng);
            let vals_a: Vec<i8> = (0..n).map(|_| rng.gen_range(-1..=1)).collect();
            let vals_b: Vec<i8> = (0..n).map(|_| rng.gen_range(-1..=1)).collect();
            let a = snd_models::NetworkState::from_values(&vals_a);
            let b = snd_models::NetworkState::from_values(&vals_b);
            let exact_engine = SndEngine::new(&g, SndConfig::default());
            let exact = exact_engine.distance(&a, &b);
            for (eps, landmarks, budget) in [
                (0.25, 2, usize::MAX),
                (0.05, 3, usize::MAX),
                (0.0, 2, usize::MAX),
                (0.5, 2, 1),
            ] {
                let config = SndConfig {
                    approx: Some(ApproxConfig {
                        epsilon: eps,
                        max_landmarks: landmarks,
                        budget,
                        min_nodes: 0,
                    }),
                    ..Default::default()
                };
                let engine = SndEngine::new(&g, config);
                let iv = engine.distance_interval(&a, &b).unwrap();
                assert!(
                    iv.lower <= iv.upper + 1e-9,
                    "trial {trial} eps {eps}: inverted interval {iv:?}"
                );
                assert!(
                    iv.contains(exact),
                    "trial {trial} eps {eps} L {landmarks}: exact {exact} outside {iv:?}"
                );
                if eps == 0.0 {
                    assert!(
                        (iv.lower - exact).abs() < 1e-9 && (iv.upper - exact).abs() < 1e-9,
                        "trial {trial}: eps=0 must collapse to exact {exact}, got {iv:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn unsupported_modes_are_named() {
        let mut config = SndConfig::default();
        assert!(unsupported_bank_mode(&config).is_none());
        config.clusters = ClusterSpec::BfsPartition { clusters: 4 };
        assert_eq!(
            unsupported_bank_mode(&config).as_deref(),
            Some("BfsPartition")
        );
        config.clusters = ClusterSpec::Single;
        assert_eq!(unsupported_bank_mode(&config).as_deref(), Some("Single"));
    }
}
