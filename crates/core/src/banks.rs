//! Per-state ground geometry: edge costs, bank γ distances, inter-cluster
//! distances.
//!
//! Everything EMD\* needs beyond the raw SSSP rows depends only on the
//! *ground state* (the state whose opinions define propagation costs) and
//! the opinion being transported, not on the pair of states under
//! comparison — so it is computed once per `(state, opinion)` and reused
//! across comparisons ([`crate::SndEngine::series_distances`],
//! [`crate::OrderedSnd`]).
//!
//! Cluster-bank geometry is embarrassingly parallel across clusters: each
//! cluster's inter-cluster row and γ need only that cluster's SSSPs.
//! [`compute_geometry`] fans the per-cluster work out over the rayon pool
//! (each worker reuses its thread-local SSSP scratch);
//! [`compute_geometry_seq`] is the kept sequential reference, and the two
//! are property-tested bit-identical (`tests/shard_matrix.rs`).

use rayon::prelude::*;
use snd_graph::{
    dial_reverse_scratch, dial_scratch, Clustering, CsrGraph, SsspScratch, UNREACHABLE,
};
use snd_models::{edge_costs, NetworkState, Opinion};
use snd_transport::DenseCost;

use crate::config::{GammaPolicy, SndConfig};
use crate::sparse::with_sssp_scratch;

/// Opinion-dependent ground geometry for one network state.
#[derive(Clone, Debug, PartialEq)]
pub struct GroundGeometry {
    /// Quantized edge costs (aligned with forward edge ids).
    pub edge_costs: Vec<u32>,
    /// Upper bound `U` on edge costs (Assumption 2).
    pub max_edge_cost: u32,
    /// Finite sentinel distance for unreachable pairs. Exceeds every real
    /// path cost, so triangle inequalities survive the substitution.
    pub unreachable: u32,
    /// Per-bin bank mode (one bank per bin with constant γ): no cluster
    /// geometry is required — bank distances come directly from SSSP rows.
    pub per_bin: bool,
    /// `gammas[c][b]`: ground distance of bank `b` of cluster `c` (empty in
    /// per-bin mode).
    pub gammas: Vec<Vec<u32>>,
    /// `inter_cluster.at(c, c2) = min_{p∈c, q∈c2} D(p, q)` (zero diagonal;
    /// empty in per-bin mode).
    pub inter_cluster: DenseCost,
}

impl GroundGeometry {
    /// Clamps a raw SSSP distance into the bounded `u32` cost domain.
    #[inline]
    pub fn clamp(&self, d: u64) -> u32 {
        if d >= self.unreachable as u64 {
            self.unreachable
        } else {
            d as u32
        }
    }
}

/// Computes the geometry for `(state, op)`: one multi-source bounded-cost
/// SSSP per cluster for the inter-cluster matrix, plus the γ policy's runs.
/// Per-cluster work fans out over the rayon pool; the result is
/// bit-identical to [`compute_geometry_seq`].
pub fn compute_geometry(
    g: &CsrGraph,
    clustering: &Clustering,
    state: &NetworkState,
    op: Opinion,
    config: &SndConfig,
) -> GroundGeometry {
    build_geometry(g, clustering, state, op, config, true)
}

/// Fully sequential [`compute_geometry`]: one scratch, one cluster at a
/// time, no thread fan-out. Kept as the determinism reference and for
/// single-core baselines.
pub fn compute_geometry_seq(
    g: &CsrGraph,
    clustering: &Clustering,
    state: &NetworkState,
    op: Opinion,
    config: &SndConfig,
) -> GroundGeometry {
    build_geometry(g, clustering, state, op, config, false)
}

fn build_geometry(
    g: &CsrGraph,
    clustering: &Clustering,
    state: &NetworkState,
    op: Opinion,
    config: &SndConfig,
    parallel: bool,
) -> GroundGeometry {
    let costs = edge_costs(g, state, op, &config.ground);
    let max_edge_cost = config.ground.max_edge_cost();
    let n = g.node_count();
    let unreachable = ((max_edge_cost as u64)
        .saturating_mul(n as u64)
        .saturating_add(1))
    .min(u32::MAX as u64 / 4) as u32;

    if matches!(config.clusters, crate::config::ClusterSpec::PerBin) {
        assert!(
            config.per_bin_gamma > 0,
            "per-bin gamma must be positive (identity of indiscernibles)"
        );
        return GroundGeometry {
            edge_costs: costs,
            max_edge_cost,
            unreachable,
            per_bin: true,
            gammas: Vec::new(),
            inter_cluster: DenseCost::filled(0, 0, 0),
        };
    }

    let nc = clustering.cluster_count();
    // One inter-cluster row plus one base γ per cluster, each needing only
    // that cluster's SSSPs — independent work items, identical outputs in
    // either evaluation order.
    let per_cluster: Vec<(Vec<u32>, u32)> = if parallel {
        (0..nc)
            .into_par_iter()
            .map(|c| {
                with_sssp_scratch(|scratch| {
                    cluster_geometry(
                        g,
                        clustering,
                        &costs,
                        max_edge_cost,
                        unreachable,
                        config,
                        c,
                        scratch,
                    )
                })
            })
            .collect()
    } else {
        // One scratch serves every SSSP this geometry needs — no per-run
        // `dist` allocation.
        let mut scratch = SsspScratch::new();
        (0..nc)
            .map(|c| {
                cluster_geometry(
                    g,
                    clustering,
                    &costs,
                    max_edge_cost,
                    unreachable,
                    config,
                    c,
                    &mut scratch,
                )
            })
            .collect()
    };

    let mut inter = DenseCost::filled(nc, nc, unreachable);
    let nb = config.banks_per_cluster.max(1);
    let mut gammas = Vec::with_capacity(nc);
    for (c, (row, base)) in per_cluster.into_iter().enumerate() {
        for (c2, &d) in row.iter().enumerate() {
            *inter.at_mut(c, c2) = d;
        }
        *inter.at_mut(c, c) = 0;
        gammas.push(
            (0..nb)
                .map(|b| base.saturating_mul(b as u32 + 1).min(unreachable))
                .collect(),
        );
    }

    GroundGeometry {
        edge_costs: costs,
        max_edge_cost,
        unreachable,
        per_bin: false,
        gammas,
        inter_cluster: inter,
    }
}

/// Cluster `c`'s inter-cluster distance row plus its base γ — the unit of
/// per-cluster fan-out.
#[allow(clippy::too_many_arguments)] // internal helper mirroring the geometry inputs
fn cluster_geometry(
    g: &CsrGraph,
    clustering: &Clustering,
    costs: &[u32],
    max_edge_cost: u32,
    unreachable: u32,
    config: &SndConfig,
    c: usize,
    scratch: &mut SsspScratch,
) -> (Vec<u32>, u32) {
    dial_scratch(
        g,
        costs,
        clustering.members(c as u32),
        max_edge_cost,
        scratch,
    );
    let row = per_cluster_min(scratch, g.node_count(), clustering, unreachable);
    let base = base_gamma(
        g,
        clustering,
        costs,
        max_edge_cost,
        unreachable,
        config,
        c,
        scratch,
    );
    (row, base)
}

/// Reduces the scratch's last run to the minimum distance per cluster.
fn per_cluster_min(
    scratch: &SsspScratch,
    n: usize,
    clustering: &Clustering,
    unreachable: u32,
) -> Vec<u32> {
    let mut mins = vec![unreachable; clustering.cluster_count()];
    for (x, d) in scratch.distances(n).enumerate() {
        if d != UNREACHABLE {
            let c = clustering.labels[x] as usize;
            let clamped = (d.min(unreachable as u64)) as u32;
            if clamped < mins[c] {
                mins[c] = clamped;
            }
        }
    }
    mins
}

/// The γ policy's base value for one cluster.
#[allow(clippy::too_many_arguments)] // internal helper mirroring the geometry inputs
fn base_gamma(
    g: &CsrGraph,
    clustering: &Clustering,
    costs: &[u32],
    max_edge_cost: u32,
    unreachable: u32,
    config: &SndConfig,
    c: usize,
    scratch: &mut SsspScratch,
) -> u32 {
    // Eccentricity of the scratch's last run over a cluster's members.
    let member_ecc = |scratch: &SsspScratch, members: &[snd_graph::NodeId]| {
        members
            .iter()
            .map(|&m| {
                let d = scratch.dist(m);
                if d == UNREACHABLE {
                    unreachable as u64
                } else {
                    d.min(unreachable as u64)
                }
            })
            .max()
            .unwrap_or(0) as u32
    };
    match config.gamma {
        GammaPolicy::Constant(v) => v,
        GammaPolicy::Eccentricity => {
            let members = clustering.members(c as u32);
            let rep = members[0];
            dial_scratch(g, costs, &[rep], max_edge_cost, scratch);
            let fwd = member_ecc(scratch, members);
            dial_reverse_scratch(g, costs, &[rep], max_edge_cost, scratch);
            let bwd = member_ecc(scratch, members);
            fwd.max(bwd)
        }
        GammaPolicy::HalfExactDiameter => {
            let members = clustering.members(c as u32);
            let mut diam = 0u64;
            for &p in members {
                dial_scratch(g, costs, &[p], max_edge_cost, scratch);
                for &q in members {
                    let d = scratch.dist(q);
                    let d = if d == UNREACHABLE {
                        unreachable as u64
                    } else {
                        d.min(unreachable as u64)
                    };
                    diam = diam.max(d);
                }
            }
            (diam.div_ceil(2)).min(unreachable as u64) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snd_graph::{bfs_partition, generators::path_graph};
    use snd_models::NetworkState;

    fn setup() -> (CsrGraph, Clustering, SndConfig) {
        let g = path_graph(8);
        let clustering = bfs_partition(&g, 2);
        let config = SndConfig {
            clusters: crate::config::ClusterSpec::BfsPartition { clusters: 2 },
            ..Default::default()
        };
        (g, clustering, config)
    }

    #[test]
    fn inter_cluster_diagonal_is_zero() {
        let (g, clustering, config) = setup();
        let state = NetworkState::new_neutral(8);
        let geom = compute_geometry(&g, &clustering, &state, Opinion::Positive, &config);
        for c in 0..clustering.cluster_count() {
            assert_eq!(geom.inter_cluster.at(c, c), 0);
        }
    }

    #[test]
    fn gammas_satisfy_theorem_3_bound() {
        // HalfExactDiameter and Eccentricity must both be >= half the exact
        // intra-cluster diameter.
        let (g, clustering, mut config) = setup();
        let state = NetworkState::from_values(&[1, 0, 0, -1, 0, 1, 0, 0]);
        config.gamma = GammaPolicy::HalfExactDiameter;
        let exact = compute_geometry(&g, &clustering, &state, Opinion::Positive, &config);
        config.gamma = GammaPolicy::Eccentricity;
        let ecc = compute_geometry(&g, &clustering, &state, Opinion::Positive, &config);
        for c in 0..clustering.cluster_count() {
            // exact gamma is ceil(diam/2); ecc must be at least that.
            assert!(
                ecc.gammas[c][0] >= exact.gammas[c][0],
                "cluster {c}: ecc {} < half-diam {}",
                ecc.gammas[c][0],
                exact.gammas[c][0]
            );
        }
    }

    #[test]
    fn bank_multiples_scale_gamma() {
        let (g, clustering, mut config) = setup();
        config.banks_per_cluster = 3;
        config.gamma = GammaPolicy::Constant(4);
        let state = NetworkState::new_neutral(8);
        let geom = compute_geometry(&g, &clustering, &state, Opinion::Negative, &config);
        for c in 0..clustering.cluster_count() {
            assert_eq!(geom.gammas[c], vec![4, 8, 12]);
        }
    }

    #[test]
    fn unreachable_sentinel_dominates_paths() {
        let (g, clustering, config) = setup();
        let state = NetworkState::new_neutral(8);
        let geom = compute_geometry(&g, &clustering, &state, Opinion::Positive, &config);
        // Longest possible path: (n-1) hops at max cost each.
        let longest = geom.max_edge_cost as u64 * 7;
        assert!(geom.unreachable as u64 > longest);
        assert_eq!(geom.clamp(u64::MAX), geom.unreachable);
        assert_eq!(geom.clamp(5), 5);
    }

    #[test]
    fn disconnected_clusters_get_sentinel_distance() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 2)]);
        let clustering = Clustering::from_labels(&[0, 0, 1, 1]);
        let config = SndConfig {
            clusters: crate::config::ClusterSpec::BfsPartition { clusters: 2 },
            ..Default::default()
        };
        let state = NetworkState::new_neutral(4);
        let geom = compute_geometry(&g, &clustering, &state, Opinion::Positive, &config);
        assert_eq!(geom.inter_cluster.at(0, 1), geom.unreachable);
        assert_eq!(geom.inter_cluster.at(1, 0), geom.unreachable);
    }

    #[test]
    fn parallel_geometry_matches_sequential_under_every_gamma_policy() {
        let (g, clustering, mut config) = setup();
        let state = NetworkState::from_values(&[1, -1, 0, 1, 0, 0, -1, 1]);
        for gamma in [
            GammaPolicy::Constant(3),
            GammaPolicy::Eccentricity,
            GammaPolicy::HalfExactDiameter,
        ] {
            config.gamma = gamma;
            for op in [Opinion::Positive, Opinion::Negative] {
                let par = compute_geometry(&g, &clustering, &state, op, &config);
                let seq = compute_geometry_seq(&g, &clustering, &state, op, &config);
                assert_eq!(par, seq, "policy {gamma:?}, opinion {op:?}");
            }
        }
    }
}
