//! The Theorem 4 sparse path: reduced transportation over `n∆` SSSP rows.
//!
//! One EMD\* term `EMD*(P, Q, D(ground_state, op))` is computed as:
//!
//! 1. **Lemma 2 + Lemma 1 reduction** — users holding `op` in both states
//!    cancel; only the symmetric difference (≤ `n∆` users) remains as
//!    residual suppliers/consumers. Bank capacities are computed from the
//!    *full* (unreduced) cluster masses of the lighter histogram, exactly as
//!    in the dense definition.
//! 2. **Orientation** — banks live on the lighter side. When `P` is heavier
//!    the reduced problem is solved as-is (rows = residual suppliers,
//!    forward SSSP); when `Q` is heavier the transpose is solved instead
//!    (rows = residual consumers, SSSP on reversed edges), so bank bins are
//!    always columns and the number of SSSP runs is always the residual
//!    count of the *heavier* side.
//! 3. **Rows** — one Dial's-algorithm run per row node over the bounded
//!    integer costs; bank columns come from the precomputed
//!    [`GroundGeometry`] (`γ + inter-cluster distance`), needing no
//!    per-comparison SSSP.
//! 4. **Exact solve** — the reduced problem (balanced by construction) goes
//!    to the configured transportation solver. Under the default
//!    `Solver::Auto` the choice is sized per reduced instance: single-line
//!    shapes are answered directly, column-heavy shapes (few residual rows,
//!    many bank columns — the nearly-identical-snapshot case) take
//!    cost-scaling, and everything else runs the block-priced simplex
//!    (parallel pricing above ~16k cells) — the warm-cache regime where
//!    rows are cache hits and the solve dominates is exactly where this
//!    matters.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use snd_emd::bank_capacities_from_cluster_masses;
use snd_graph::{dial_reverse_scratch, dial_scratch, Clustering, CsrGraph, NodeId, SsspScratch};
use snd_models::{NetworkState, Opinion};
use snd_transport::{solve_balanced, DenseCost, Mass};

use crate::banks::GroundGeometry;
use crate::config::SndConfig;

thread_local! {
    /// Per-thread SSSP scratch: `dist`/bucket buffers are reused across
    /// every row a thread computes instead of being reallocated per call.
    static SSSP_SCRATCH: RefCell<SsspScratch> = RefCell::new(SsspScratch::new());
}

/// Runs `f` with the calling thread's reusable SSSP scratch. Shared by row
/// computation here and the per-cluster geometry fan-out in
/// [`crate::banks`], so every SSSP in the crate reuses one allocation per
/// thread.
pub(crate) fn with_sssp_scratch<R>(f: impl FnOnce(&mut SsspScratch) -> R) -> R {
    SSSP_SCRATCH.with(|cell| f(&mut cell.borrow_mut()))
}

/// Thread-safe cache of clamped SSSP rows for one ground state, shared
/// across every comparison grounded in that state (series evaluation,
/// all-pairs matrices, [`crate::OrderedSnd`] candidate search).
///
/// Layout: four lazily-allocated dense planes — one per `(opinion,
/// direction)` — each a slab of [`OnceLock`] slots indexed directly by
/// node id. Dense indexing replaces the old
/// `HashMap<(i8, bool, NodeId), _>`: lookups are two array indexes, and
/// synchronization is per *row* (each slot is its own lock), so concurrent
/// readers of different rows never contend and concurrent requests for the
/// same row compute it exactly once. A plane's slot slab (`n` slots,
/// ~24 B each) is only allocated when the first row of that
/// `(opinion, direction)` is requested — a typical comparison touches one
/// direction per opinion, so usually two of the four planes stay empty.
///
/// [`computed_rows`](RowCache::computed_rows) counts actual SSSP runs —
/// the observability hook the cache-reuse tests assert on.
/// One cached row slot: filled exactly once with the clamped SSSP row.
type RowSlot = OnceLock<Box<[u32]>>;

#[derive(Debug)]
pub struct RowCache {
    planes: [OnceLock<Box<[RowSlot]>>; 4],
    n: usize,
    computed: AtomicUsize,
}

impl RowCache {
    /// Empty cache for a graph of `n` nodes.
    pub fn new(n: usize) -> Self {
        RowCache {
            planes: std::array::from_fn(|_| OnceLock::new()),
            n,
            computed: AtomicUsize::new(0),
        }
    }

    /// Number of cached rows (equals the number of SSSP runs performed).
    pub fn len(&self) -> usize {
        self.computed_rows()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of SSSP row computations this cache has performed — a second
    /// request for any `(opinion, direction, node)` row is a hit and does
    /// not increment this.
    pub fn computed_rows(&self) -> usize {
        self.computed.load(Ordering::Relaxed)
    }

    fn plane(op: Opinion, reverse: bool) -> usize {
        // EMD* terms only ever transport the two polar opinions; a neutral
        // key would silently alias the positive plane.
        debug_assert!(op.is_active(), "row cache keys require a polar opinion");
        let op_bit = usize::from(op == Opinion::Negative);
        (op_bit << 1) | usize::from(reverse)
    }

    /// Row lookup-or-compute, shared with the approximate tier
    /// ([`crate::approx`]): landmark rows and refined exact rows live in
    /// the same planes as the exact path's rows, so the two tiers share
    /// SSSP work when both price against one ground state.
    pub(crate) fn get_or_compute(
        &self,
        g: &CsrGraph,
        geom: &GroundGeometry,
        op: Opinion,
        reverse: bool,
        node: NodeId,
    ) -> &[u32] {
        let slots = self.planes[Self::plane(op, reverse)]
            .get_or_init(|| (0..self.n).map(|_| OnceLock::new()).collect());
        slots[node as usize].get_or_init(|| {
            self.computed.fetch_add(1, Ordering::Relaxed);
            compute_row(g, geom, reverse, node)
        })
    }
}

/// One clamped SSSP row, computed on the calling thread's reusable scratch.
fn compute_row(g: &CsrGraph, geom: &GroundGeometry, reverse: bool, node: NodeId) -> Box<[u32]> {
    with_sssp_scratch(|scratch| {
        if reverse {
            dial_reverse_scratch(g, &geom.edge_costs, &[node], geom.max_edge_cost, scratch);
        } else {
            dial_scratch(g, &geom.edge_costs, &[node], geom.max_edge_cost, scratch);
        }
        scratch
            .distances(g.node_count())
            .map(|d| geom.clamp(d))
            .collect()
    })
}

/// The lighter histogram's bank inputs for one classified EMD\* term —
/// whatever [`solve_reduced_term`] needs to reproduce the bank columns of
/// the full classification, supplied by either classification route (the
/// `O(n)` state scan in [`emd_star_term`], or the `O(flips)` derivation in
/// [`crate::ordered::CandidateEvaluator`]).
pub(crate) enum BankBins {
    /// `total_p == total_q`: no surplus, no bank columns at all.
    Balanced,
    /// Per-bin geometry: the lighter side's active bins, ascending. May be
    /// empty (the uniform-spread degenerate case is handled in the solve).
    PerBin(Vec<NodeId>),
    /// Cluster geometry: the lighter side's *full* (unreduced) per-cluster
    /// masses, already scaled.
    Cluster(Vec<Mass>),
}

/// One EMD\* term after Lemma 1/2 classification, ready to assemble and
/// solve. Both residual lists are ascending (the classification order the
/// bit-identity discipline pins down); totals are scaled masses.
pub(crate) struct ReducedTerm {
    pub residual_p: Vec<NodeId>,
    pub residual_q: Vec<NodeId>,
    pub total_p: Mass,
    pub total_q: Mass,
    pub banks: BankBins,
}

/// Computes one EMD\* term `EMD*(Pᵒᵖ, Qᵒᵖ, D(ground, op))` where the ground
/// geometry was built from the same state/opinion. `cache` (optional) reuses
/// SSSP rows across calls sharing this geometry — a shared reference, so
/// concurrent terms over the same ground state fill one cache together.
#[allow(clippy::too_many_arguments)] // mirrors the EMD*(P, Q, D | config) signature
pub fn emd_star_term(
    g: &CsrGraph,
    clustering: &Clustering,
    geom: &GroundGeometry,
    p_state: &NetworkState,
    q_state: &NetworkState,
    op: Opinion,
    config: &SndConfig,
    cache: Option<&RowCache>,
) -> f64 {
    let n = g.node_count();
    assert_eq!(p_state.len(), n, "state size mismatch");
    assert_eq!(q_state.len(), n, "state size mismatch");
    let scale = config.scale;
    let nc = clustering.cluster_count();

    // Classify users; Lemma 2 leaves only the symmetric difference.
    let mut residual_p: Vec<NodeId> = Vec::new();
    let mut residual_q: Vec<NodeId> = Vec::new();
    let mut active_p: Vec<NodeId> = Vec::new();
    let mut active_q: Vec<NodeId> = Vec::new();
    let mut cluster_count_p = vec![0u64; nc];
    let mut cluster_count_q = vec![0u64; nc];
    for u in 0..n as NodeId {
        let in_p = p_state.opinion(u) == op;
        let in_q = q_state.opinion(u) == op;
        if in_p {
            active_p.push(u);
            cluster_count_p[clustering.labels[u as usize] as usize] += 1;
        }
        if in_q {
            active_q.push(u);
            cluster_count_q[clustering.labels[u as usize] as usize] += 1;
        }
        if in_p && !in_q {
            residual_p.push(u);
        } else if in_q && !in_p {
            residual_q.push(u);
        }
    }
    let total_p = active_p.len() as u64 * scale;
    let total_q = active_q.len() as u64 * scale;
    let p_is_lighter = total_p < total_q;
    let banks = if total_p == total_q {
        BankBins::Balanced
    } else if geom.per_bin {
        BankBins::PerBin(if p_is_lighter { active_p } else { active_q })
    } else {
        let counts = if p_is_lighter {
            &cluster_count_p
        } else {
            &cluster_count_q
        };
        BankBins::Cluster(counts.iter().map(|&c| c * scale).collect())
    };
    solve_reduced_term(
        g,
        clustering,
        geom,
        op,
        config,
        cache,
        ReducedTerm {
            residual_p,
            residual_q,
            total_p,
            total_q,
            banks,
        },
    )
}

/// Assembles and solves one classified EMD\* term: bank capacities from
/// the lighter side's inputs, orientation (banks always columns), one SSSP
/// row per heavy-side residual node, exact transportation solve. This is
/// the shared back half of [`emd_star_term`] — every classification route
/// funnels through it, so a flip-derived [`ReducedTerm`] that matches the
/// scan-derived one is priced through literally the same arithmetic.
pub(crate) fn solve_reduced_term(
    g: &CsrGraph,
    clustering: &Clustering,
    geom: &GroundGeometry,
    op: Opinion,
    config: &SndConfig,
    cache: Option<&RowCache>,
    term: ReducedTerm,
) -> f64 {
    let n = g.node_count();
    let scale = config.scale;
    let nc = clustering.cluster_count();
    let nb = config.banks_per_cluster.max(1);
    let ReducedTerm {
        residual_p,
        residual_q,
        total_p,
        total_q,
        banks,
    } = term;
    if total_p == 0 && total_q == 0 {
        return 0.0;
    }
    let delta = total_p.abs_diff(total_q);
    let p_is_lighter = total_p < total_q;

    // Bank bins on the lighter side, capacities from the *full* (unreduced)
    // masses. Per-bin mode: one bank per active bin of the lighter
    // histogram, each at distance `per_bin_gamma` from its bin; cluster
    // mode: `nb` banks per cluster at the precomputed γ / inter-cluster
    // distances.
    let (bank_bins, bank_caps): (Vec<NodeId>, Vec<Mass>) = match banks {
        BankBins::Balanced => {
            debug_assert_eq!(delta, 0, "balanced term must carry no surplus");
            (Vec::new(), Vec::new())
        }
        BankBins::PerBin(bins) => {
            if bins.is_empty() {
                // The lighter histogram is empty: the capacity rule
                // degenerates to a uniform spread over every bin (matching
                // the dense-path `proportional_split` fallback on all-zero
                // weights).
                let all: Vec<NodeId> = (0..n as NodeId).collect();
                let caps = snd_emd::proportional_split(delta, &vec![1; n]);
                (all, caps)
            } else {
                let masses = vec![scale; bins.len()];
                let caps = snd_emd::proportional_split(delta, &masses);
                (bins, caps)
            }
        }
        BankBins::Cluster(lighter_cluster_masses) => (
            Vec::new(),
            bank_capacities_from_cluster_masses(delta, &lighter_cluster_masses, nb),
        ),
    };

    // Orientation: banks always end up as columns (rows are the heavier
    // side's residual bins, one SSSP each — forward when P is heavier,
    // reversed when Q is).
    let (row_nodes, col_nodes, reverse) = if !p_is_lighter {
        (residual_p, residual_q, false)
    } else {
        (residual_q, residual_p, true)
    };
    if row_nodes.is_empty() {
        debug_assert!(col_nodes.is_empty() && delta == 0);
        return 0.0;
    }

    let n_rows = row_nodes.len();
    let n_cols = col_nodes.len() + bank_caps.len();
    let supplies = vec![scale; n_rows];
    let mut demands: Vec<Mass> = vec![scale; col_nodes.len()];
    demands.extend_from_slice(&bank_caps);
    debug_assert_eq!(
        supplies.iter().sum::<u64>(),
        demands.iter().sum::<u64>(),
        "reduced problem must be balanced"
    );

    // Assemble the reduced cost matrix: one SSSP row per heavy-side node.
    let mut data = Vec::with_capacity(n_rows * n_cols);
    let mut local_row; // fallback storage when no cache was provided
    for &node in &row_nodes {
        let row: &[u32] = match cache {
            Some(c) => c.get_or_compute(g, geom, op, reverse, node),
            None => {
                local_row = compute_row(g, geom, reverse, node);
                &local_row
            }
        };
        for &cn in &col_nodes {
            data.push(row[cn as usize]);
        }
        if bank_caps.is_empty() {
            // Balanced masses: no bank columns at all.
        } else if geom.per_bin {
            // Forward: D̃[node, bank(u)] = γ + D(node, u) — read off the
            // forward row. Transposed: D̃[bank(u), node] = γ + D(u, node) —
            // read off the reverse row. Either way it is `row[u] + γ`.
            for &u in &bank_bins {
                // Matches the dense path's `γ + D(·,·)` exactly, including
                // `γ + sentinel` for unreachable pairs (saturating).
                data.push(row[u as usize].saturating_add(config.per_bin_gamma));
            }
        } else {
            let node_cluster = clustering.labels[node as usize] as usize;
            for c in 0..nc {
                // Forward: D̃[node, bank(c,b)] = γ_c[b] + d(cluster(node), c).
                // Transposed: D̃[bank(c,b), node] = γ_c[b] + d(c, cluster(node)).
                let d_cc = if reverse {
                    geom.inter_cluster.at(c, node_cluster)
                } else {
                    geom.inter_cluster.at(node_cluster, c)
                };
                for b in 0..nb {
                    data.push(geom.gammas[c][b].saturating_add(d_cc));
                }
            }
        }
    }
    let cost = DenseCost::from_vec(n_rows, n_cols, data);
    let plan = solve_balanced(&supplies, &demands, &cost, config.solver);
    plan.total_cost as f64 / scale as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::banks::compute_geometry;
    use snd_graph::bfs_partition;
    use snd_graph::generators::path_graph;

    #[test]
    fn identical_states_have_zero_terms() {
        let g = path_graph(6);
        let clustering = bfs_partition(&g, 2);
        let config = SndConfig::default();
        let state = NetworkState::from_values(&[1, 0, -1, 0, 1, 0]);
        for op in [Opinion::Positive, Opinion::Negative] {
            let geom = compute_geometry(&g, &clustering, &state, op, &config);
            let v = emd_star_term(&g, &clustering, &geom, &state, &state, op, &config, None);
            assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn single_new_activation_costs_bank_distance() {
        // P empty, Q has one + user: the unit must come from a bank.
        let g = path_graph(4);
        let clustering = bfs_partition(&g, 1);
        let mut config = SndConfig {
            clusters: crate::config::ClusterSpec::BfsPartition { clusters: 1 },
            ..Default::default()
        };
        config.gamma = crate::config::GammaPolicy::Constant(7);
        let p = NetworkState::new_neutral(4);
        let mut q = NetworkState::new_neutral(4);
        q.set(2, Opinion::Positive);
        let geom = compute_geometry(&g, &clustering, &p, Opinion::Positive, &config);
        let v = emd_star_term(
            &g,
            &clustering,
            &geom,
            &p,
            &q,
            Opinion::Positive,
            &config,
            None,
        );
        // Bank of the single cluster at γ=7, inter-cluster d = 0.
        assert!((v - 7.0).abs() < 1e-9, "{v}");
    }

    #[test]
    fn cache_reuses_rows() {
        let g = path_graph(6);
        let clustering = bfs_partition(&g, 2);
        let config = SndConfig::default();
        let p = NetworkState::from_values(&[1, 0, 0, 0, 0, 0]);
        let q = NetworkState::from_values(&[0, 0, 0, 1, 0, 0]);
        let geom = compute_geometry(&g, &clustering, &p, Opinion::Positive, &config);
        let cache = RowCache::new(g.node_count());
        let v1 = emd_star_term(
            &g,
            &clustering,
            &geom,
            &p,
            &q,
            Opinion::Positive,
            &config,
            Some(&cache),
        );
        let cached = cache.computed_rows();
        assert!(cached > 0);
        let v2 = emd_star_term(
            &g,
            &clustering,
            &geom,
            &p,
            &q,
            Opinion::Positive,
            &config,
            Some(&cache),
        );
        assert_eq!(cache.computed_rows(), cached, "no new rows on repeat");
        assert_eq!(v1, v2);
    }

    #[test]
    fn concurrent_cache_fills_compute_each_row_once() {
        use rayon::prelude::*;
        let g = path_graph(12);
        let clustering = bfs_partition(&g, 3);
        let config = SndConfig::default();
        let p = NetworkState::from_values(&[1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        let geom = compute_geometry(&g, &clustering, &p, Opinion::Positive, &config);
        let cache = RowCache::new(g.node_count());
        // Many threads demand the same rows at once; each row must be
        // computed exactly once and every reader must see identical data.
        let rows: Vec<Vec<u32>> = (0..64usize)
            .into_par_iter()
            .map(|i| {
                let node = (i % 12) as u32;
                cache
                    .get_or_compute(&g, &geom, Opinion::Positive, false, node)
                    .to_vec()
            })
            .collect();
        assert_eq!(cache.computed_rows(), 12, "one SSSP per distinct row");
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row, &rows[i % 12], "readers agree");
        }
    }
}
