//! The dense reference path: full all-pairs ground distance plus the full
//! extended transportation problem of Eq. 4.
//!
//! This is deliberately the "direct computation" a practitioner would write
//! without Theorem 4 — it materializes the `n × n` ground distance (`n`
//! SSSP runs) and hands the complete extended problem to the LP solver. It
//! serves as (a) the correctness oracle for the sparse path and (b) the
//! stand-in for the paper's CPLEX baseline in the Fig. 11 scalability
//! comparison. Memory is `O(n²)`; keep `n` in the low thousands.

use snd_emd::{emd_star, Histogram, StarGeometry};
use snd_graph::{dial, Clustering, CsrGraph, NodeId};
use snd_models::{NetworkState, Opinion};
use snd_transport::DenseCost;

use crate::banks::GroundGeometry;
use crate::config::SndConfig;

/// Materializes the full `n × n` ground distance matrix with one SSSP per
/// node; unreachable pairs get the geometry's finite sentinel.
pub fn full_ground_matrix(g: &CsrGraph, geom: &GroundGeometry) -> DenseCost {
    let n = g.node_count();
    let mut data = Vec::with_capacity(n * n);
    for u in 0..n as NodeId {
        let dist = dial(g, &geom.edge_costs, &[u], geom.max_edge_cost);
        data.extend(dist.into_iter().map(|d| geom.clamp(d)));
    }
    DenseCost::from_vec(n, n, data)
}

/// Converts the engine's clustering + geometry into the explicit
/// [`StarGeometry`] consumed by `snd-emd`'s dense EMD\*.
pub fn star_geometry(clustering: &Clustering, geom: &GroundGeometry) -> StarGeometry {
    StarGeometry {
        labels: clustering.labels.clone(),
        cluster_count: clustering.cluster_count(),
        gammas: geom.gammas.clone(),
        inter_cluster: geom.inter_cluster.clone(),
    }
}

/// One dense EMD\* term `EMD*(Pᵒᵖ, Qᵒᵖ, D(ground, op))`. In per-bin mode
/// the explicit geometry has one singleton cluster per bin with
/// `inter_cluster = D` itself.
pub fn emd_star_term(
    g: &CsrGraph,
    clustering: &Clustering,
    geom: &GroundGeometry,
    p_state: &NetworkState,
    q_state: &NetworkState,
    op: Opinion,
    config: &SndConfig,
) -> f64 {
    let ground = full_ground_matrix(g, geom);
    let star = if geom.per_bin {
        let n = g.node_count();
        StarGeometry {
            labels: (0..n as u32).collect(),
            cluster_count: n,
            gammas: vec![vec![config.per_bin_gamma]; n],
            inter_cluster: ground.clone(),
        }
    } else {
        star_geometry(clustering, geom)
    };
    let p = Histogram::from_f64(&p_state.projection(op), config.scale);
    let q = Histogram::from_f64(&q_state.projection(op), config.scale);
    emd_star(&p, &q, &ground, &star, config.solver)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::banks::compute_geometry;
    use snd_graph::bfs_partition;
    use snd_graph::floyd_warshall;
    use snd_graph::generators::path_graph;

    fn snd_core_cluster_spec(k: usize) -> crate::config::ClusterSpec {
        crate::config::ClusterSpec::BfsPartition { clusters: k }
    }

    #[test]
    fn full_matrix_matches_floyd_warshall() {
        let g = path_graph(6);
        let clustering = bfs_partition(&g, 2);
        let config = SndConfig {
            clusters: snd_core_cluster_spec(2),
            ..Default::default()
        };
        let state = NetworkState::from_values(&[1, 0, -1, 0, 0, 1]);
        let geom = compute_geometry(&g, &clustering, &state, Opinion::Positive, &config);
        let dense = full_ground_matrix(&g, &geom);
        let fw = floyd_warshall(&g, &geom.edge_costs);
        for (i, fw_row) in fw.iter().enumerate() {
            for (j, &expect) in fw_row.iter().enumerate() {
                assert_eq!(dense.at(i, j) as u64, expect, "({i},{j})");
            }
        }
    }

    #[test]
    fn inter_cluster_matrix_agrees_with_full_matrix() {
        // The geometry's multi-source inter-cluster distances must equal the
        // min-pair distances read off the full matrix.
        let g = path_graph(9);
        let clustering = bfs_partition(&g, 3);
        let config = SndConfig {
            clusters: snd_core_cluster_spec(3),
            ..Default::default()
        };
        let state = NetworkState::from_values(&[1, -1, 0, 0, 1, 0, 0, 0, -1]);
        let geom = compute_geometry(&g, &clustering, &state, Opinion::Negative, &config);
        let dense = full_ground_matrix(&g, &geom);
        for c in 0..clustering.cluster_count() {
            for c2 in 0..clustering.cluster_count() {
                let mut expected = u32::MAX;
                for &p in clustering.members(c as u32) {
                    for &q in clustering.members(c2 as u32) {
                        expected = expected.min(dense.at(p as usize, q as usize));
                    }
                }
                assert_eq!(geom.inter_cluster.at(c, c2), expected, "({c},{c2})");
            }
        }
    }
}
