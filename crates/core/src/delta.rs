//! Delta-aware series evaluation: incremental geometry between
//! consecutive snapshots.
//!
//! The series workloads (anomaly detection over `d(G_t, G_{t+1})`,
//! prediction, the paper's Fig. 10–12) price *consecutive* snapshots of
//! one evolving network. A simulation step flips a handful of opinions,
//! yet the batch path rebuilds each state's full ground geometry — per
//! opinion: an `O(m)` edge-cost sweep, plus (in cluster-bank mode) one
//! multi-source SSSP per cluster and two eccentricity SSSPs per cluster —
//! from scratch. This module exploits snapshot locality end to end:
//!
//! 1. **Edge costs** ([`snd_models::StateDelta`]): only the touched edges
//!    (incident to flipped nodes, plus receiver-side aggregate spill for
//!    activity flips) are re-derived, bit-identical to the full sweep.
//! 2. **Cluster geometry** ([`DeltaStateGeometry`]): the per-cluster SSSP
//!    rows (sources = the cluster's members — *static* across snapshots)
//!    are kept alive and repaired with
//!    [`snd_graph::repair_row`] instead of recomputed; a cluster whose
//!    rows the repair reports unchanged reuses its previous inter-cluster
//!    row and γ verbatim. Repaired geometry is bit-identical to
//!    [`compute_geometry`](crate::banks::compute_geometry) because
//!    shortest-path distances are unique.
//! 3. **Transitions** ([`SeriesEvaluator`]): identical consecutive states
//!    (empty delta) short-circuit to
//!    [`SndBreakdown::default`](crate::SndBreakdown); otherwise the four
//!    EMD\* terms are evaluated exactly as the batch path would, over the
//!    incrementally-derived geometries. At most **two** geometry bundles
//!    are live at any point (asserted by `tests/series_memory.rs`).
//!
//! # When the fast path falls back
//!
//! Repair is exact only in a *lossless* clamp domain (every true finite
//! distance below the `u32` sentinel `U·n + 1`; violated only when that
//! product overflows the sentinel cap) and pays off only when few edges
//! changed. [`DeltaStateGeometry::step`] rebuilds from scratch — at
//! batch-path cost plus an `O(n + Σdeg(flipped))` delta sweep — when:
//!
//! * more than [`REPAIR_EDGE_FRACTION`]⁻¹ of the edges were touched
//!   (high-churn dynamics like random activation), or
//! * the clamp domain is capped (`U·n + 1 > u32::MAX / 4`), or
//! * the γ policy is `HalfExactDiameter` (its `O(|members|)` SSSPs per
//!   cluster are not cached).
//!
//! Per-bin mode (the default [`ClusterSpec`](crate::ClusterSpec)) has no
//! cluster SSSPs at all; its delta win is the touched-edge cost sweep and
//! the empty-delta shortcut.
//!
//! Everything here is property-tested bit-identical to
//! [`series_distances_seq`](crate::SndEngine::series_distances_seq)
//! across every registry scenario (`tests/delta_series.rs`).

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rayon::prelude::*;
use snd_graph::{
    dial_reverse_scratch, dial_scratch, repair_row, CostChange, CsrGraph, NodeId, RepairScratch,
    SsspScratch, UNREACHABLE,
};
use snd_models::{edge_costs, update_edge_costs, NetworkState, Opinion, StateDelta};
use snd_transport::DenseCost;

use crate::banks::GroundGeometry;
use crate::config::GammaPolicy;
use crate::engine::{SndEngine, StateGeometry};
use crate::sparse::{with_sssp_scratch, RowCache};

/// Fallback knob: the repair path engages only when touched edges are at
/// most `edge_count / REPAIR_EDGE_FRACTION` — beyond that the affected
/// region rivals the graph and a fresh rebuild is cheaper.
pub const REPAIR_EDGE_FRACTION: usize = 4;

thread_local! {
    static REPAIR_SCRATCH: RefCell<RepairScratch> = RefCell::new(RepairScratch::new());
}

/// Process-wide generation counter for cached SSSP rows. Every freshly
/// computed or repaired row content gets a new generation; a reused row
/// carries its previous generation forward. The reuse invariant — equal
/// generations imply the same `Arc` (and therefore identical contents) —
/// is what makes the `O(1)` carry-over in [`OpGeometry::advanced`] sound,
/// and it only holds because this bump is atomic across the per-cluster
/// parallel fan-out.
static ROW_GEN: AtomicU64 = AtomicU64::new(0);

/// Issues a generation no live row has carried before (never 0, so 0 can
/// mean "untagged" in scratch states).
fn next_row_gen() -> u64 {
    ROW_GEN.fetch_add(1, Ordering::Relaxed) + 1
}

/// The cached, repairable geometry of one `(state, opinion)` pair.
///
/// Rows are `Arc`-shared: a cluster whose rows a transition provably
/// cannot perturb (see [`ChangeIndex`]) carries its previous rows into
/// the next bundle as an `O(1)` reference bump instead of an `O(n)` copy.
pub(crate) struct OpGeometry {
    pub(crate) geom: GroundGeometry,
    /// Per-cluster clamped multi-source SSSP row (empty when rows are not
    /// cached: per-bin mode, lossy clamp domain, `HalfExactDiameter`).
    cluster_rows: Vec<Arc<Vec<u32>>>,
    /// Generation tag per cached row, parallel to `cluster_rows`. Repair
    /// issues a fresh tag from [`ROW_GEN`]; reuse carries the tag forward,
    /// so equal tags across bundles always mean the same `Arc`.
    row_gens: Vec<u64>,
    /// Eccentricity-policy representative rows (forward / reverse), one
    /// pair per cluster; empty unless the policy is `Eccentricity`.
    ecc_fwd: Vec<Arc<Vec<u32>>>,
    ecc_rev: Vec<Arc<Vec<u32>>>,
    /// Approximate-tier landmark rows (per-bin mode with an approx config
    /// and a lossless clamp domain only), repaired across steps like the
    /// cluster rows above.
    pub(crate) sketch: Option<SketchRows>,
}

/// Repair-compatible landmark sketch rows of one `(state, opinion)`
/// geometry plane: per landmark `l`, the clamped reverse row
/// `to[l][v] = d̂(v → l)` and forward row `from[l][v] = d̂(l → v)` — exactly
/// what a [`LandmarkSketch`](snd_graph::LandmarkSketch) borrows. Rows are
/// `Arc`-shared so a transition that provably cannot perturb one (same
/// [`ChangeIndex::fires`] contract as the cluster rows) carries it into
/// the next bundle in `O(1)`; the rest are repaired with [`repair_row`],
/// which is bit-identical to a fresh SSSP because the clamp domain is
/// lossless whenever a sketch exists (`tests/sketch_repair.rs`).
///
/// Adaptive landmark placement ([`DeltaStateGeometry::adapt_sketch`])
/// appends and evicts whole row pairs between snapshots; the usefulness
/// clock (`last_useful` / `tick`) travels with the bundle, including
/// through the high-churn fresh-rebuild fallback.
///
/// Repair is **feedback-driven**: a triangle-inequality envelope over a
/// *subset* of the landmarks is still sound (an upper bound minimized
/// over fewer landmarks only loosens, a lower bound maximized over fewer
/// only loosens), so a transition does not have to repair all `2·L`
/// rows. Pairs whose landmark recently bound a hot cell — plus a small
/// floor — are repaired; the rest are parked `stale`, dropped from the
/// envelope, and cost nothing until adaptive placement evicts them (a
/// stale pair's `last_useful` ages, so eviction finds it first). Until
/// the first pricing signal arrives (`tick == 0`) every pair is
/// advanced, which keeps un-priced stepping bit-identical to a fresh
/// build across every row.
#[derive(Clone)]
pub struct SketchRows {
    pub(crate) landmarks: Vec<NodeId>,
    pub(crate) to: Vec<Arc<Vec<u32>>>,
    pub(crate) from: Vec<Arc<Vec<u32>>>,
    /// Last tick each landmark was the binding envelope of a hot cell.
    pub(crate) last_useful: Vec<u64>,
    /// Adaptation clock, bumped once per priced snapshot.
    pub(crate) tick: u64,
    /// Pairs whose rows a repair policy skipped across some fired
    /// transition: no longer valid for the current costs, excluded from
    /// [`sketch`](Self::sketch) until replaced (only a full rebuild or
    /// eviction revives the slot — repair needs a valid starting row).
    pub(crate) stale: Vec<bool>,
}

/// Per-transition repair budget of [`SketchRows::advanced`]: the number
/// of row pairs kept live once pricing feedback exists, chosen
/// most-recently-useful first. Enough for a serviceable envelope, small
/// enough that a series whose refinement never leans on the sketch stops
/// paying for its upkeep; pairs the feedback keeps crediting always rank
/// inside the budget.
const REPAIR_PAIR_BUDGET: usize = 3;

/// One adaptive promotion costs two full SSSPs plus membership in the
/// repair budget, so placement moves at most one landmark per plane
/// every this many snapshots — a genuinely hot region stays hot long
/// enough to be covered one landmark at a time.
const PROMOTE_PERIOD: u64 = 4;

impl SketchRows {
    /// Number of landmarks (row pairs), live or stale.
    pub fn landmark_count(&self) -> usize {
        self.landmarks.len()
    }

    /// Number of live (repair-current) row pairs — the envelope width
    /// pricing actually sees.
    pub fn live_count(&self) -> usize {
        self.stale.iter().filter(|&&s| !s).count()
    }

    /// The landmark set, in row order.
    pub fn landmarks(&self) -> &[NodeId] {
        &self.landmarks
    }

    /// Bundle indices of the live pairs, in row order — position `j` in
    /// the borrowed [`sketch`](Self::sketch) (and in any feedback derived
    /// from it) maps to bundle pair `live_indices()[j]`.
    fn live_indices(&self) -> Vec<usize> {
        (0..self.landmarks.len())
            .filter(|&i| !self.stale[i])
            .collect()
    }

    /// Records pricing feedback: `useful[j]` refers to the `j`-th *live*
    /// pair (the subset the envelope served), credited at the current
    /// tick.
    pub(crate) fn note_useful(&mut self, useful: &[bool]) {
        let live = self.live_indices();
        for (&i, &u) in live.iter().zip(useful) {
            if u {
                self.last_useful[i] = self.tick;
            }
        }
    }

    /// One stored row: the reverse row `d̂(v → landmark)` when `reverse`,
    /// else the forward row `d̂(landmark → v)`.
    pub fn row(&self, idx: usize, reverse: bool) -> &[u32] {
        if reverse {
            &self.to[idx]
        } else {
            &self.from[idx]
        }
    }

    /// Borrows the **live** rows as a
    /// [`LandmarkSketch`](snd_graph::LandmarkSketch) with sentinel `inf`.
    /// Stale pairs are excluded — the envelope over the remaining
    /// landmarks is looser but still sound.
    pub(crate) fn sketch(&self, inf: u32) -> snd_graph::LandmarkSketch<'_> {
        let live = self.live_indices();
        snd_graph::LandmarkSketch::new(
            live.iter().map(|&i| self.to[i].as_slice()).collect(),
            live.iter().map(|&i| self.from[i].as_slice()).collect(),
            inf,
        )
    }

    /// Builds every row pair from scratch (2·L SSSPs, parallel over
    /// landmarks). `last_useful`/`tick` are carried, not reset, so the
    /// high-churn fallback keeps the adaptation history.
    fn build(
        g: &CsrGraph,
        costs: &[u32],
        max_edge_cost: u32,
        unreachable: u32,
        landmarks: Vec<NodeId>,
        last_useful: Vec<u64>,
        tick: u64,
    ) -> SketchRows {
        let n = g.node_count();
        // One (to-landmark, from-landmark) row pair per landmark.
        type RowPair = (Arc<Vec<u32>>, Arc<Vec<u32>>);
        let rows: Vec<RowPair> =
            crate::approx::time_phase(crate::approx::PHASE_SKETCH_MAINT, || {
                landmarks
                    .par_iter()
                    .map(|&l| {
                        with_sssp_scratch(|scratch| {
                            dial_reverse_scratch(g, costs, &[l], max_edge_cost, scratch);
                            let to = clamped_row(scratch, n, unreachable);
                            dial_scratch(g, costs, &[l], max_edge_cost, scratch);
                            let from = clamped_row(scratch, n, unreachable);
                            (Arc::new(to), Arc::new(from))
                        })
                    })
                    .collect()
            });
        crate::approx::record_sketch_rebuild(rows.len() * 2);
        let (to, from) = rows.into_iter().unzip();
        let stale = vec![false; landmarks.len()];
        SketchRows {
            landmarks,
            to,
            from,
            last_useful,
            tick,
            stale,
        }
    }

    /// Fresh rebuild over new costs at the *same* (possibly adapted)
    /// landmark set — the high-churn fallback.
    fn rebuilt(
        &self,
        g: &CsrGraph,
        costs: &[u32],
        max_edge_cost: u32,
        unreachable: u32,
    ) -> SketchRows {
        SketchRows::build(
            g,
            costs,
            max_edge_cost,
            unreachable,
            self.landmarks.clone(),
            self.last_useful.clone(),
            self.tick,
        )
    }

    /// The pairs the feedback-driven policy repairs across the next
    /// transition: the [`REPAIR_PAIR_BUDGET`] most recently useful live
    /// pairs (ties broken by slot, so the budget does not wander across
    /// equally-idle pairs). Before any pricing signal exists
    /// (`tick == 0`) every pair is wanted, so un-priced stepping stays
    /// exhaustive.
    fn repair_wanted(&self) -> Vec<bool> {
        let n = self.landmarks.len();
        if self.tick == 0 {
            return vec![true; n];
        }
        let mut want: Vec<bool> = vec![false; n];
        let mut live: Vec<usize> = (0..n).filter(|&i| !self.stale[i]).collect();
        live.sort_unstable_by_key(|&i| (std::cmp::Reverse(self.last_useful[i]), i));
        for &i in live.iter().take(REPAIR_PAIR_BUDGET) {
            want[i] = true;
        }
        want
    }

    /// Advances the row pairs across a transition. Rows a change provably
    /// cannot perturb are `Arc`-shared; rows of pairs the feedback policy
    /// ([`repair_wanted`](Self::repair_wanted)) retains are repaired in
    /// place — bit-identical to [`build`](Self::build) over the new
    /// costs; fired pairs the policy lets go are carried unrepaired and
    /// marked stale (a stale pair stays stale: repair needs a valid
    /// starting row, so only eviction or a full rebuild revives the
    /// slot).
    fn advanced(
        &self,
        g: &CsrGraph,
        new_costs: &[u32],
        changes: &[CostChange],
        unreachable: u32,
    ) -> SketchRows {
        let index = ChangeIndex::new(g, changes, new_costs);
        let want = self.repair_wanted();
        let repair = |prev: &Arc<Vec<u32>>, l: NodeId, reverse: bool| -> Arc<Vec<u32>> {
            REPAIR_SCRATCH.with(|cell| {
                let scratch = &mut cell.borrow_mut();
                let mut row = (**prev).clone();
                repair_row(
                    g,
                    new_costs,
                    changes,
                    &[l],
                    reverse,
                    unreachable,
                    &mut row,
                    scratch,
                );
                Arc::new(row)
            })
        };
        // Per pair: (to, from, repaired, reused, went_stale).
        type Advanced = (Arc<Vec<u32>>, Arc<Vec<u32>>, usize, usize, bool);
        let pairs: Vec<Advanced> =
            crate::approx::time_phase(crate::approx::PHASE_SKETCH_MAINT, || {
                (0..self.landmarks.len())
                    .into_par_iter()
                    .map(|i| {
                        let (t, f) = (&self.to[i], &self.from[i]);
                        if self.stale[i] {
                            return (Arc::clone(t), Arc::clone(f), 0, 0, true);
                        }
                        let l = self.landmarks[i];
                        let fires_to = index.fires(t, unreachable, true);
                        let fires_from = index.fires(f, unreachable, false);
                        let fired = usize::from(fires_to) + usize::from(fires_from);
                        if fired > 0 && !want[i] {
                            return (Arc::clone(t), Arc::clone(f), 0, 0, true);
                        }
                        let t = if fires_to {
                            repair(t, l, true)
                        } else {
                            Arc::clone(t)
                        };
                        let f = if fires_from {
                            repair(f, l, false)
                        } else {
                            Arc::clone(f)
                        };
                        (t, f, fired, 2 - fired, false)
                    })
                    .collect()
            });
        let mut to = Vec::with_capacity(pairs.len());
        let mut from = Vec::with_capacity(pairs.len());
        let mut stale = Vec::with_capacity(pairs.len());
        let (mut repaired, mut reused, mut parked) = (0usize, 0usize, 0usize);
        for (t, f, rep, reu, s) in pairs {
            repaired += rep;
            reused += reu;
            parked += usize::from(s) * 2;
            stale.push(s);
            to.push(t);
            from.push(f);
        }
        crate::approx::record_sketch_step(repaired, reused, parked);
        SketchRows {
            landmarks: self.landmarks.clone(),
            to,
            from,
            last_useful: self.last_useful.clone(),
            tick: self.tick,
            stale,
        }
    }
}

/// Per-transition index of the changed edges in relaxation terms:
/// `(tail, head, old, new)` per change, endpoints precomputed once in
/// forward orientation. High-cluster-count configs previously paid an
/// `O(n)` row clone plus a [`repair_row`] invocation per cluster per
/// transition just to *discover* that the batch was a no-op for that
/// cluster; [`fires`](ChangeIndex::fires) discovers it in `O(|changes|)`
/// without touching the row, so unchanged clusters are skipped outright.
struct ChangeIndex {
    entries: Vec<(NodeId, NodeId, u32, u32)>,
}

impl ChangeIndex {
    fn new(g: &CsrGraph, changes: &[CostChange], new_costs: &[u32]) -> ChangeIndex {
        ChangeIndex {
            entries: changes
                .iter()
                .map(|&(e, old)| {
                    (
                        g.edge_source(e),
                        g.edge_target(e),
                        old,
                        new_costs[e as usize],
                    )
                })
                .collect(),
        }
    }

    /// Whether any change in the batch can perturb `dist` (a clamped row
    /// in the direction given by `reverse`). `false` guarantees
    /// [`repair_row`] would report zero moved nodes and leave the row
    /// bit-identical, because these are exactly its trigger conditions:
    /// a *decrease* does work only when it strictly improves its head
    /// from the current tail distance, an *increase* only when the edge
    /// supported its head's distance (`dist[tail] + old == dist[head]`).
    /// With no trigger, the repair's affected set and settle heap both
    /// stay empty and the row is untouched.
    fn fires(&self, dist: &[u32], inf: u32, reverse: bool) -> bool {
        self.entries.iter().any(|&(s, t, old, new)| {
            let (tail, head) = if reverse { (t, s) } else { (s, t) };
            let dt = dist[tail as usize];
            if dt == inf {
                return false; // nothing propagates through an unreachable tail
            }
            let dh = dist[head as usize];
            if new < old {
                dt.saturating_add(new) < dh
            } else {
                dh != inf && dt.saturating_add(old) == dh
            }
        })
    }
}

/// Clamps a raw scratch distance into the bounded domain.
#[inline]
fn clamp(d: u64, unreachable: u32) -> u32 {
    if d == UNREACHABLE || d >= unreachable as u64 {
        unreachable
    } else {
        d as u32
    }
}

/// Collects the scratch's last run as a clamped row.
fn clamped_row(scratch: &SsspScratch, n: usize, unreachable: u32) -> Vec<u32> {
    scratch
        .distances(n)
        .map(|d| clamp(d, unreachable))
        .collect()
}

/// Per-cluster minimum of a clamped row — the inter-cluster distance row.
fn min_reduce(row: &[u32], labels: &[u32], nc: usize, unreachable: u32) -> Vec<u32> {
    let mut mins = vec![unreachable; nc];
    for (x, &d) in row.iter().enumerate() {
        let c = labels[x] as usize;
        if d < mins[c] {
            mins[c] = d;
        }
    }
    mins
}

/// Eccentricity of a clamped row over a member set.
fn member_ecc(row: &[u32], members: &[NodeId]) -> u32 {
    members.iter().map(|&m| row[m as usize]).max().unwrap_or(0)
}

impl OpGeometry {
    /// True when the clamp domain is lossless — every real path cost fits
    /// strictly below the sentinel, the precondition for row repair.
    fn lossless(unreachable: u32, max_edge_cost: u32, n: usize) -> bool {
        unreachable as u64 == (max_edge_cost as u64) * (n as u64) + 1
    }

    /// Whether this engine/policy combination caches (and repairs) rows.
    fn caches_rows(engine: &SndEngine<'_>, unreachable: u32) -> bool {
        !matches!(engine.config().clusters, crate::config::ClusterSpec::PerBin)
            && !matches!(engine.config().gamma, GammaPolicy::HalfExactDiameter)
            && Self::lossless(
                unreachable,
                engine.config().ground.max_edge_cost(),
                engine.graph().node_count(),
            )
    }

    /// Builds the geometry from scratch, retaining the SSSP rows for
    /// later repair. Bit-identical to
    /// [`compute_geometry`](crate::banks::compute_geometry).
    fn fresh(engine: &SndEngine<'_>, state: &NetworkState, op: Opinion) -> OpGeometry {
        let costs = edge_costs(engine.graph(), state, op, &engine.config().ground);
        Self::from_costs(engine, op, costs)
    }

    /// Builds the geometry from already-derived edge costs.
    fn from_costs(engine: &SndEngine<'_>, _op: Opinion, costs: Vec<u32>) -> OpGeometry {
        let g = engine.graph();
        let config = engine.config();
        let clustering = engine.clustering();
        let n = g.node_count();
        let max_edge_cost = config.ground.max_edge_cost();
        let unreachable = ((max_edge_cost as u64)
            .saturating_mul(n as u64)
            .saturating_add(1))
        .min(u32::MAX as u64 / 4) as u32;

        if matches!(config.clusters, crate::config::ClusterSpec::PerBin) {
            assert!(
                config.per_bin_gamma > 0,
                "per-bin gamma must be positive (identity of indiscernibles)"
            );
            // Approximate-tier engines get a live sketch bundle alongside
            // the costs — only in a lossless clamp domain, the repair
            // precondition (otherwise the approx path falls back to cache
            // fetches, still certified).
            let sketch = if Self::lossless(unreachable, max_edge_cost, n) {
                engine.delta_sketch_ctx().map(|ctx| {
                    let landmarks = ctx.landmarks.clone();
                    let count = landmarks.len();
                    SketchRows::build(
                        g,
                        &costs,
                        max_edge_cost,
                        unreachable,
                        landmarks,
                        vec![0; count],
                        0,
                    )
                })
            } else {
                None
            };
            return OpGeometry {
                geom: GroundGeometry {
                    edge_costs: costs,
                    max_edge_cost,
                    unreachable,
                    per_bin: true,
                    gammas: Vec::new(),
                    inter_cluster: DenseCost::filled(0, 0, 0),
                },
                cluster_rows: Vec::new(),
                row_gens: Vec::new(),
                ecc_fwd: Vec::new(),
                ecc_rev: Vec::new(),
                sketch,
            };
        }

        let nc = clustering.cluster_count();
        let keep_rows = Self::caches_rows(engine, unreachable);
        let want_ecc = keep_rows && matches!(config.gamma, GammaPolicy::Eccentricity);

        // One work item per cluster, mirroring `compute_geometry`'s
        // fan-out; additionally retains the clamped rows when repairable.
        struct ClusterOut {
            row: Vec<u32>,
            min_row: Vec<u32>,
            base: u32,
            ecc_fwd: Vec<u32>,
            ecc_rev: Vec<u32>,
        }
        let per_cluster: Vec<ClusterOut> = (0..nc)
            .into_par_iter()
            .map(|c| {
                with_sssp_scratch(|scratch| {
                    let members = clustering.members(c as u32);
                    dial_scratch(g, &costs, members, max_edge_cost, scratch);
                    let row = clamped_row(scratch, n, unreachable);
                    let min_row = min_reduce(&row, &clustering.labels, nc, unreachable);
                    let (base, ecc_fwd, ecc_rev) = match config.gamma {
                        GammaPolicy::Constant(v) => (v, Vec::new(), Vec::new()),
                        GammaPolicy::Eccentricity => {
                            let rep = members[0];
                            dial_scratch(g, &costs, &[rep], max_edge_cost, scratch);
                            let fwd = clamped_row(scratch, n, unreachable);
                            dial_reverse_scratch(g, &costs, &[rep], max_edge_cost, scratch);
                            let rev = clamped_row(scratch, n, unreachable);
                            let base = member_ecc(&fwd, members).max(member_ecc(&rev, members));
                            if want_ecc {
                                (base, fwd, rev)
                            } else {
                                (base, Vec::new(), Vec::new())
                            }
                        }
                        GammaPolicy::HalfExactDiameter => {
                            let mut diam = 0u32;
                            for &p in members {
                                dial_scratch(g, &costs, &[p], max_edge_cost, scratch);
                                for &q in members {
                                    diam = diam.max(clamp(scratch.dist(q), unreachable));
                                }
                            }
                            (
                                ((diam as u64).div_ceil(2).min(unreachable as u64)) as u32,
                                Vec::new(),
                                Vec::new(),
                            )
                        }
                    };
                    ClusterOut {
                        row: if keep_rows { row } else { Vec::new() },
                        min_row,
                        base,
                        ecc_fwd,
                        ecc_rev,
                    }
                })
            })
            .collect();

        let nb = config.banks_per_cluster.max(1);
        let mut inter = DenseCost::filled(nc, nc, unreachable);
        let mut gammas = Vec::with_capacity(nc);
        let mut cluster_rows = Vec::with_capacity(if keep_rows { nc } else { 0 });
        let mut row_gens = Vec::with_capacity(if keep_rows { nc } else { 0 });
        let mut ecc_fwd = Vec::new();
        let mut ecc_rev = Vec::new();
        for (c, out) in per_cluster.into_iter().enumerate() {
            for (c2, &d) in out.min_row.iter().enumerate() {
                *inter.at_mut(c, c2) = d;
            }
            *inter.at_mut(c, c) = 0;
            gammas.push(
                (0..nb)
                    .map(|b| out.base.saturating_mul(b as u32 + 1).min(unreachable))
                    .collect(),
            );
            if keep_rows {
                cluster_rows.push(Arc::new(out.row));
                row_gens.push(next_row_gen());
            }
            if want_ecc {
                ecc_fwd.push(Arc::new(out.ecc_fwd));
                ecc_rev.push(Arc::new(out.ecc_rev));
            }
        }

        OpGeometry {
            geom: GroundGeometry {
                edge_costs: costs,
                max_edge_cost,
                unreachable,
                per_bin: false,
                gammas,
                inter_cluster: inter,
            },
            cluster_rows,
            row_gens,
            ecc_fwd,
            ecc_rev,
            sketch: None,
        }
    }

    /// Advances to the next state by repairing the cached rows with the
    /// actually-changed edge costs. Caller guarantees `changes` is exact
    /// (see [`DeltaStateGeometry::step`]) and that rows are cached.
    fn advanced(
        &self,
        engine: &SndEngine<'_>,
        new_costs: Vec<u32>,
        changes: &[CostChange],
    ) -> OpGeometry {
        let g = engine.graph();
        let config = engine.config();
        let clustering = engine.clustering();
        let nc = clustering.cluster_count();
        let nb = config.banks_per_cluster.max(1);
        let unreachable = self.geom.unreachable;
        debug_assert!(!self.geom.per_bin && self.cluster_rows.len() == nc);

        struct ClusterOut {
            row: Arc<Vec<u32>>,
            /// Generation of `row`: fresh on repair, carried over on reuse.
            gen: u64,
            min_row: Option<Vec<u32>>, // None: unchanged, reuse previous
            base: Option<u32>,
            ecc_fwd: Arc<Vec<u32>>,
            ecc_rev: Arc<Vec<u32>>,
        }
        let want_ecc = matches!(config.gamma, GammaPolicy::Eccentricity);
        // Index the batch once; each cluster then answers "can any change
        // touch my rows?" in O(|changes|) instead of cloning and repairing
        // just to find out.
        let index = ChangeIndex::new(g, changes, &new_costs);
        let empty = Arc::new(Vec::new());
        let per_cluster: Vec<ClusterOut> = (0..nc)
            .into_par_iter()
            .map(|c| {
                REPAIR_SCRATCH.with(|cell| {
                    let scratch = &mut cell.borrow_mut();
                    let members = clustering.members(c as u32);
                    let (row, gen, min_row) =
                        if index.fires(&self.cluster_rows[c], unreachable, false) {
                            let mut row = (*self.cluster_rows[c]).clone();
                            let moved = repair_row(
                                g,
                                &new_costs,
                                changes,
                                members,
                                false,
                                unreachable,
                                &mut row,
                                scratch,
                            );
                            let min_row = (moved > 0)
                                .then(|| min_reduce(&row, &clustering.labels, nc, unreachable));
                            (Arc::new(row), next_row_gen(), min_row)
                        } else {
                            // Provable no-op: share the previous row (O(1)),
                            // generation carried forward with it.
                            (Arc::clone(&self.cluster_rows[c]), self.row_gens[c], None)
                        };
                    let (base, ecc_fwd, ecc_rev) = if want_ecc {
                        let rep = members[0];
                        let mut repair_ecc = |prev: &Arc<Vec<u32>>, reverse: bool| {
                            if !index.fires(prev, unreachable, reverse) {
                                return (Arc::clone(prev), 0);
                            }
                            let mut r = (**prev).clone();
                            let moved = repair_row(
                                g,
                                &new_costs,
                                changes,
                                &[rep],
                                reverse,
                                unreachable,
                                &mut r,
                                scratch,
                            );
                            (Arc::new(r), moved)
                        };
                        let (fwd, moved_f) = repair_ecc(&self.ecc_fwd[c], false);
                        let (rev, moved_r) = repair_ecc(&self.ecc_rev[c], true);
                        let base = (moved_f + moved_r > 0)
                            .then(|| member_ecc(&fwd, members).max(member_ecc(&rev, members)));
                        (base, fwd, rev)
                    } else {
                        // Constant policy: γ never moves.
                        (None, Arc::clone(&empty), Arc::clone(&empty))
                    };
                    ClusterOut {
                        row,
                        gen,
                        min_row,
                        base,
                        ecc_fwd,
                        ecc_rev,
                    }
                })
            })
            .collect();

        let mut inter = DenseCost::filled(nc, nc, unreachable);
        let mut gammas = Vec::with_capacity(nc);
        let mut cluster_rows = Vec::with_capacity(nc);
        let mut row_gens = Vec::with_capacity(nc);
        let mut ecc_fwd = Vec::new();
        let mut ecc_rev = Vec::new();
        for (c, out) in per_cluster.into_iter().enumerate() {
            // The soundness of O(1) reuse, stated as a check: a carried
            // generation must mean a carried Arc. Repaired rows got a fresh
            // atomic bump, so a collision here means the bump was lost.
            debug_assert!(
                out.gen != self.row_gens[c] || Arc::ptr_eq(&out.row, &self.cluster_rows[c]),
                "cluster {c}: repaired row reuses generation {} — stale-row hazard",
                out.gen
            );
            match out.min_row {
                Some(mins) => {
                    for (c2, &d) in mins.iter().enumerate() {
                        *inter.at_mut(c, c2) = d;
                    }
                    *inter.at_mut(c, c) = 0;
                }
                None => {
                    // Rows untouched by the repair: the previous state's
                    // inter-cluster row is reused verbatim.
                    for c2 in 0..nc {
                        *inter.at_mut(c, c2) = self.geom.inter_cluster.at(c, c2);
                    }
                }
            }
            match out.base {
                Some(base) => gammas.push(
                    (0..nb)
                        .map(|b| base.saturating_mul(b as u32 + 1).min(unreachable))
                        .collect(),
                ),
                None => gammas.push(self.geom.gammas[c].clone()),
            }
            cluster_rows.push(out.row);
            row_gens.push(out.gen);
            if want_ecc {
                ecc_fwd.push(out.ecc_fwd);
                ecc_rev.push(out.ecc_rev);
            }
        }

        OpGeometry {
            geom: GroundGeometry {
                edge_costs: new_costs,
                max_edge_cost: self.geom.max_edge_cost,
                unreachable,
                per_bin: false,
                gammas,
                inter_cluster: inter,
            },
            cluster_rows,
            row_gens,
            ecc_fwd,
            ecc_rev,
            sketch: None,
        }
    }
}

/// The repairable geometry bundle of one state: both opinion geometries
/// plus the cached SSSP rows they were derived from. The delta-series
/// unit of reuse — [`step`](Self::step) derives the next state's bundle
/// from this one.
pub struct DeltaStateGeometry {
    pub(crate) pos: OpGeometry,
    pub(crate) neg: OpGeometry,
}

impl DeltaStateGeometry {
    /// Builds the bundle from scratch (both opinions in parallel).
    pub fn fresh(engine: &SndEngine<'_>, state: &NetworkState) -> DeltaStateGeometry {
        let (pos, neg) = rayon::join(
            || OpGeometry::fresh(engine, state, Opinion::Positive),
            || OpGeometry::fresh(engine, state, Opinion::Negative),
        );
        DeltaStateGeometry { pos, neg }
    }

    /// Derives the next state's bundle: touched-edge cost rederivation,
    /// then row repair — or a fresh rebuild past the fallback conditions
    /// (see the module docs). Exact either way.
    pub fn step(
        &self,
        engine: &SndEngine<'_>,
        next: &NetworkState,
        delta: &StateDelta,
    ) -> DeltaStateGeometry {
        let g = engine.graph();
        let m = g.edge_count();
        let config = engine.config();
        let high_churn = delta.touched_edges().len() * REPAIR_EDGE_FRACTION > m;

        let advance_op = |prev: &OpGeometry, op: Opinion| -> OpGeometry {
            // Touched-edge cost sweep (exact, shared with the fresh path).
            let mut new_costs = prev.geom.edge_costs.clone();
            update_edge_costs(
                g,
                next,
                op,
                &config.ground,
                delta.touched_edges(),
                &mut new_costs,
            );
            if prev.geom.per_bin {
                // No cluster geometry to repair: the costs are the
                // geometry. A live sketch bundle advances under the same
                // contract as cluster rows — Arc-share provable no-ops,
                // repair the rest, fresh rebuild past the churn threshold.
                let sketch = prev.sketch.as_ref().map(|s| {
                    if high_churn {
                        return s.rebuilt(
                            g,
                            &new_costs,
                            prev.geom.max_edge_cost,
                            prev.geom.unreachable,
                        );
                    }
                    let changes: Vec<CostChange> = delta
                        .touched_edges()
                        .iter()
                        .filter(|&&e| new_costs[e as usize] != prev.geom.edge_costs[e as usize])
                        .map(|&e| (e, prev.geom.edge_costs[e as usize]))
                        .collect();
                    if changes.is_empty() {
                        crate::approx::record_sketch_step(0, s.live_count() * 2, 0);
                        s.clone()
                    } else {
                        s.advanced(g, &new_costs, &changes, prev.geom.unreachable)
                    }
                });
                return OpGeometry {
                    geom: GroundGeometry {
                        edge_costs: new_costs,
                        ..prev.geom.clone_scalars()
                    },
                    cluster_rows: Vec::new(),
                    row_gens: Vec::new(),
                    ecc_fwd: Vec::new(),
                    ecc_rev: Vec::new(),
                    sketch,
                };
            }
            if high_churn || prev.cluster_rows.is_empty() {
                return OpGeometry::from_costs(engine, op, new_costs);
            }
            let changes: Vec<CostChange> = delta
                .touched_edges()
                .iter()
                .filter(|&&e| new_costs[e as usize] != prev.geom.edge_costs[e as usize])
                .map(|&e| (e, prev.geom.edge_costs[e as usize]))
                .collect();
            if changes.is_empty() {
                // Costs identical for this opinion: geometry carries over.
                return OpGeometry {
                    geom: GroundGeometry {
                        edge_costs: new_costs,
                        ..prev.geom.clone_scalars()
                    },
                    cluster_rows: prev.cluster_rows.clone(),
                    row_gens: prev.row_gens.clone(),
                    ecc_fwd: prev.ecc_fwd.clone(),
                    ecc_rev: prev.ecc_rev.clone(),
                    sketch: None,
                };
            }
            prev.advanced(engine, new_costs, &changes)
        };

        let (pos, neg) = rayon::join(
            || advance_op(&self.pos, Opinion::Positive),
            || advance_op(&self.neg, Opinion::Negative),
        );
        DeltaStateGeometry { pos, neg }
    }

    /// Materializes the batch-path bundle for this state: both geometries
    /// (cloned) plus an empty shared row cache. Feeding these to
    /// [`SndEngine::breakdown_with`] prices transitions exactly as the
    /// batch path does. Live sketch bundles ride along (Arc-shared rows,
    /// so the clone is `O(L)`), keeping the approximate tile path on
    /// delta-repaired rows.
    pub fn bundle(&self, engine: &SndEngine<'_>) -> StateGeometry {
        StateGeometry::new(
            self.pos.geom.clone(),
            self.neg.geom.clone(),
            RowCache::new(engine.graph().node_count()),
        )
        .with_sketches(self.pos.sketch.clone(), self.neg.sketch.clone())
    }

    /// The live landmark-sketch bundle of one opinion plane, when this
    /// engine maintains one (per-bin banks + approx config + lossless
    /// clamp domain).
    pub fn sketch(&self, op: Opinion) -> Option<&SketchRows> {
        match op {
            Opinion::Positive => self.pos.sketch.as_ref(),
            _ => self.neg.sketch.as_ref(),
        }
    }

    /// Adaptive landmark placement: folds one term's refinement feedback
    /// (hot `gap × flow` cell representatives + per-landmark usefulness
    /// credit) into the `op` plane's sketch. Up to two hot nodes are
    /// promoted to landmarks per call (two SSSPs each over this plane's
    /// costs); past `max_landmarks` the least-recently-useful landmark is
    /// evicted — unless every landmark was useful this very snapshot, in
    /// which case the set is left alone rather than churned.
    pub(crate) fn adapt_sketch(
        &mut self,
        engine: &SndEngine<'_>,
        op: Opinion,
        feedback: &crate::approx::TermFeedback,
        max_landmarks: usize,
    ) {
        let plane = match op {
            Opinion::Positive => &mut self.pos,
            _ => &mut self.neg,
        };
        let Some(sketch) = plane.sketch.as_mut() else {
            return;
        };
        sketch.tick += 1;
        let tick = sketch.tick;
        // Feedback indices refer to the live pairs the term was priced
        // with; `note_useful` maps them back onto bundle slots.
        sketch.note_useful(&feedback.landmark_useful);
        // Promotion is gated on the envelope earning its keep (some
        // landmark bound a hot cell) and paced by [`PROMOTE_PERIOD`]:
        // when the pricing does not lean on the sketch, two SSSPs per
        // promotion buy rows nothing will read, and even a hot streak
        // only justifies moving placement one landmark at a time.
        let any_useful = feedback.landmark_useful.iter().any(|&u| u);
        let full = sketch.landmarks.len() >= max_landmarks.max(1);
        if full && (!any_useful || tick % PROMOTE_PERIOD != 0) {
            return;
        }
        let g = engine.graph();
        let n = g.node_count();
        let costs = &plane.geom.edge_costs;
        let max_edge_cost = plane.geom.max_edge_cost;
        let unreachable = plane.geom.unreachable;
        // Paced to one promotion per snapshot: each costs two SSSPs, and
        // a genuinely hot region stays hot long enough to be covered one
        // landmark at a time.
        let mut promoted = 0usize;
        for &v in &feedback.hot_nodes {
            if promoted >= 1 {
                break;
            }
            if sketch.landmarks.contains(&v) {
                continue;
            }
            if sketch.landmarks.len() >= max_landmarks.max(1) {
                let Some((evict, &least)) = sketch
                    .last_useful
                    .iter()
                    .enumerate()
                    .min_by_key(|&(i, &lu)| (lu, i))
                else {
                    break;
                };
                if least >= tick {
                    break;
                }
                sketch.landmarks.swap_remove(evict);
                sketch.to.swap_remove(evict);
                sketch.from.swap_remove(evict);
                sketch.last_useful.swap_remove(evict);
                sketch.stale.swap_remove(evict);
            }
            let (to, from) = crate::approx::time_phase(crate::approx::PHASE_SKETCH_MAINT, || {
                with_sssp_scratch(|scratch| {
                    dial_reverse_scratch(g, costs, &[v], max_edge_cost, scratch);
                    let to = clamped_row(scratch, n, unreachable);
                    dial_scratch(g, costs, &[v], max_edge_cost, scratch);
                    let from = clamped_row(scratch, n, unreachable);
                    (to, from)
                })
            });
            sketch.landmarks.push(v);
            sketch.to.push(Arc::new(to));
            sketch.from.push(Arc::new(from));
            sketch.last_useful.push(tick);
            sketch.stale.push(false);
            promoted += 1;
        }
    }
}

impl GroundGeometry {
    /// A copy carrying everything except the edge costs (which every
    /// delta step replaces).
    fn clone_scalars(&self) -> GroundGeometry {
        GroundGeometry {
            edge_costs: Vec::new(),
            max_edge_cost: self.max_edge_cost,
            unreachable: self.unreachable,
            per_bin: self.per_bin,
            gammas: self.gammas.clone(),
            inter_cluster: self.inter_cluster.clone(),
        }
    }
}

/// Delta-aware series evaluation over one engine.
///
/// [`SndEngine::series_distances`] delegates here; construct one directly
/// to reuse it across calls or to drive custom series workloads.
pub struct SeriesEvaluator<'e, 'g> {
    engine: &'e SndEngine<'g>,
}

impl<'e, 'g> SeriesEvaluator<'e, 'g> {
    /// An evaluator over `engine`.
    pub fn new(engine: &'e SndEngine<'g>) -> Self {
        SeriesEvaluator { engine }
    }

    /// Distances between adjacent states, delta-aware and bit-identical
    /// to [`SndEngine::series_distances_seq`]. Exactly two repairable
    /// geometry bundles (and two row caches) are live at any point; the
    /// geometries are *borrowed* into the term evaluation — never cloned
    /// per transition.
    pub fn distances(&self, states: &[NetworkState]) -> Vec<f64> {
        if states.len() < 2 {
            return Vec::new();
        }
        let engine = self.engine;
        let g = engine.graph();
        let n = g.node_count();
        let mut out = Vec::with_capacity(states.len() - 1);
        let mut prev = DeltaStateGeometry::fresh(engine, &states[0]);
        let mut prev_rows = RowCache::new(n);
        for t in 1..states.len() {
            let delta = StateDelta::between(g, &states[t - 1], &states[t]);
            if delta.is_empty() {
                // Identical states: every EMD* term is exactly zero, and
                // the geometry (hence the caches) carries over untouched.
                out.push(crate::engine::SndBreakdown::default().total());
                continue;
            }
            let cur = prev.step(engine, &states[t], &delta);
            let cur_rows = RowCache::new(n);
            let breakdown = engine.terms_sketched(
                &states[t - 1],
                &states[t],
                [&prev.pos.geom, &prev.neg.geom, &cur.pos.geom, &cur.neg.geom],
                [
                    Some(&prev_rows),
                    Some(&prev_rows),
                    Some(&cur_rows),
                    Some(&cur_rows),
                ],
                [
                    prev.pos.sketch.as_ref(),
                    prev.neg.sketch.as_ref(),
                    cur.pos.sketch.as_ref(),
                    cur.neg.sketch.as_ref(),
                ],
            );
            out.push(breakdown.total());
            prev = cur;
            prev_rows = cur_rows; // the old cache drops here
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterSpec, SndConfig};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use snd_graph::generators::barabasi_albert;

    fn random_series(n: usize, steps: usize, seed: u64) -> Vec<NetworkState> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut states = Vec::with_capacity(steps + 1);
        let first: Vec<i8> = (0..n).map(|_| rng.gen_range(-1..=1)).collect();
        states.push(NetworkState::from_values(&first));
        for _ in 0..steps {
            let mut next = states.last().unwrap().clone();
            for _ in 0..1 + rng.gen_range(0..3) {
                let u = rng.gen_range(0..n as u32);
                next.set(u, Opinion::from_value(rng.gen_range(-1..=1)));
            }
            states.push(next);
        }
        states
    }

    fn configs() -> Vec<SndConfig> {
        vec![
            SndConfig::default(), // per-bin
            SndConfig {
                clusters: ClusterSpec::BfsPartition { clusters: 3 },
                gamma: GammaPolicy::Eccentricity,
                ..Default::default()
            },
            SndConfig {
                clusters: ClusterSpec::BfsPartition { clusters: 4 },
                gamma: GammaPolicy::Constant(5),
                banks_per_cluster: 2,
                ..Default::default()
            },
            SndConfig {
                clusters: ClusterSpec::BfsPartition { clusters: 2 },
                gamma: GammaPolicy::HalfExactDiameter,
                ..Default::default()
            },
        ]
    }

    #[test]
    fn fresh_geometry_matches_compute_geometry() {
        let mut rng = SmallRng::seed_from_u64(9);
        let g = barabasi_albert(40, 2, &mut rng);
        for config in configs() {
            let engine = SndEngine::new(&g, config);
            let vals: Vec<i8> = (0..40).map(|_| rng.gen_range(-1..=1)).collect();
            let state = NetworkState::from_values(&vals);
            for op in [Opinion::Positive, Opinion::Negative] {
                let fresh = OpGeometry::fresh(&engine, &state, op);
                assert_eq!(fresh.geom, engine.geometry_seq(&state, op));
            }
        }
    }

    #[test]
    fn stepped_geometry_matches_fresh_geometry() {
        let mut rng = SmallRng::seed_from_u64(41);
        let g = barabasi_albert(36, 2, &mut rng);
        let states = random_series(36, 8, 7);
        for config in configs() {
            let engine = SndEngine::new(&g, config);
            let mut cache = DeltaStateGeometry::fresh(&engine, &states[0]);
            for t in 1..states.len() {
                let delta = StateDelta::between(&g, &states[t - 1], &states[t]);
                cache = cache.step(&engine, &states[t], &delta);
                assert_eq!(
                    cache.pos.geom,
                    engine.geometry_seq(&states[t], Opinion::Positive),
                    "t={t}"
                );
                assert_eq!(
                    cache.neg.geom,
                    engine.geometry_seq(&states[t], Opinion::Negative),
                    "t={t}"
                );
            }
        }
    }

    #[test]
    fn delta_series_matches_seq_on_random_series() {
        let mut rng = SmallRng::seed_from_u64(23);
        let g = barabasi_albert(30, 2, &mut rng);
        let states = random_series(30, 6, 11);
        for config in configs() {
            let engine = SndEngine::new(&g, config);
            let delta = SeriesEvaluator::new(&engine).distances(&states);
            let seq = engine.series_distances_seq(&states);
            assert_eq!(delta, seq, "bit-identical series");
        }
    }

    #[test]
    fn empty_delta_short_circuits_to_zero() {
        let mut rng = SmallRng::seed_from_u64(4);
        let g = barabasi_albert(20, 2, &mut rng);
        let engine = SndEngine::new(&g, SndConfig::default());
        let a = NetworkState::from_values(&(0..20).map(|i| (i % 3) as i8 - 1).collect::<Vec<_>>());
        let mut b = a.clone();
        b.set(3, Opinion::Neutral);
        // a, a (identical), b, b, a — two static transitions inside.
        let states = vec![a.clone(), a.clone(), b.clone(), b, a];
        let delta = SeriesEvaluator::new(&engine).distances(&states);
        assert_eq!(delta[0], 0.0);
        assert_eq!(delta[2], 0.0);
        assert_eq!(delta, engine.series_distances_seq(&states));
    }

    #[test]
    fn untouched_clusters_share_rows_instead_of_recloning() {
        // Across a low-churn series, clusters whose rows a transition
        // provably cannot perturb must carry the *same* allocation into
        // the next bundle (Arc identity), not a fresh copy — while the
        // geometry stays bit-identical to a from-scratch build.
        let mut rng = SmallRng::seed_from_u64(77);
        let g = barabasi_albert(48, 2, &mut rng);
        let states = random_series(48, 10, 13);
        let config = SndConfig {
            clusters: ClusterSpec::BfsPartition { clusters: 8 },
            gamma: GammaPolicy::Eccentricity,
            ..Default::default()
        };
        let engine = SndEngine::new(&g, config);
        let mut cache = DeltaStateGeometry::fresh(&engine, &states[0]);
        let mut shared = 0usize;
        let mut total = 0usize;
        for t in 1..states.len() {
            let delta = StateDelta::between(&g, &states[t - 1], &states[t]);
            let next = cache.step(&engine, &states[t], &delta);
            for (a, b) in cache.pos.cluster_rows.iter().zip(&next.pos.cluster_rows) {
                total += 1;
                if std::sync::Arc::ptr_eq(a, b) {
                    shared += 1;
                }
            }
            assert_eq!(
                next.pos.geom,
                engine.geometry_seq(&states[t], Opinion::Positive),
                "t={t}"
            );
            cache = next;
        }
        assert!(
            shared > 0,
            "no cluster row was ever shared across {total} cluster-steps"
        );
    }

    #[test]
    fn high_churn_falls_back_and_stays_exact() {
        let mut rng = SmallRng::seed_from_u64(15);
        let g = barabasi_albert(24, 2, &mut rng);
        // Flip nearly every node every step: far past the repair
        // threshold.
        let mut states = Vec::new();
        states.push(NetworkState::from_values(
            &(0..24).map(|_| rng.gen_range(-1..=1)).collect::<Vec<i8>>(),
        ));
        for _ in 0..4 {
            states.push(NetworkState::from_values(
                &(0..24).map(|_| rng.gen_range(-1..=1)).collect::<Vec<i8>>(),
            ));
        }
        for config in configs() {
            let engine = SndEngine::new(&g, config);
            let delta = SeriesEvaluator::new(&engine).distances(&states);
            assert_eq!(delta, engine.series_distances_seq(&states));
        }
    }
}
