//! Social Network Distance (SND) — the paper's primary contribution.
//!
//! SND quantifies the cost of evolving one network state into another under
//! a model of polar opinion propagation (paper Eq. 3):
//!
//! ```text
//! SND(G1, G2) = ½ · [ EMD*(G1⁺, G2⁺, D(G1, +)) + EMD*(G1⁻, G2⁻, D(G1, −))
//!                   + EMD*(G2⁺, G1⁺, D(G2, +)) + EMD*(G2⁻, G1⁻, D(G2, −)) ]
//! ```
//!
//! where `Gᵒᵖ` projects a state onto one opinion (unit mass per user holding
//! `op`) and `D(G, op)` is the shortest-path ground distance over the
//! opinion-dependent edge costs of `snd-models`.
//!
//! Two computation paths are provided and cross-validated:
//!
//! * [`SndEngine::distance_dense`] — the reference: all-pairs ground
//!   distances plus the full extended transportation problem of Eq. 4. This
//!   plays the role of the paper's "direct computation with a general LP
//!   solver" baseline (Fig. 11).
//! * [`SndEngine::distance`] — the Theorem 4 sparse path: Lemma 1/2
//!   reduction (only the `n∆` users whose opinion differs remain), one
//!   bounded-cost SSSP (Dial's algorithm) per remaining supplier, bank
//!   columns from precomputed cluster geometry, and an exact reduced
//!   transportation solve. Linear in `n` for bounded `n∆` on sparse graphs.
//!
//! [`GroundGeometry`] (per state and opinion) carries the edge costs, the
//! per-cluster bank distances γ, and the inter-cluster distance matrix; it
//! is reusable across comparisons involving the same state — see
//! [`SndEngine::series_distances`] and [`OrderedSnd`].
//!
//! # The delta pipeline (time-series workloads)
//!
//! Series workloads compare *consecutive* snapshots of one evolving
//! network, and a simulation step flips a handful of opinions out of
//! thousands. [`SndEngine::series_distances`] therefore evaluates
//! **delta-aware** (module [`delta`]): a
//! [`StateDelta`](snd_models::StateDelta) names the flipped nodes and the
//! touched edges, edge costs are re-derived on touched edges only, the
//! per-cluster SSSP rows behind the cluster-bank geometry are *repaired*
//! ([`snd_graph::repair_row`], Ramalingam–Reps style) rather than
//! recomputed — clusters whose rows the repair leaves untouched reuse
//! their previous inter-cluster row and γ verbatim — and identical
//! consecutive states short-circuit to zero. The checkpoint-backed series
//! path ([`SndEngine::series_tiles_checkpointed`], surfaced as
//! `snd_analysis::resume::series_distances_checkpointed`) advances the
//! same repairable bundles along the series.
//!
//! Every fast path is **exact** (shortest-path distances are the unique
//! relaxation fixpoint, so repaired geometry is bit-identical to a
//! from-scratch build; `tests/delta_series.rs` asserts equality with
//! [`SndEngine::series_distances_seq`] across every registry scenario),
//! and the path **falls back** to a fresh rebuild per transition when the
//! touched-edge count exceeds `1/`[`REPAIR_EDGE_FRACTION`] of the edges
//! (high-churn dynamics), when the clamped `u32` distance domain would be
//! lossy (`U·n + 1` past the sentinel cap), or under the
//! `HalfExactDiameter` γ policy (whose per-member SSSPs are not cached).
//! Measured effect on the 10k-node series workload: `BENCH_series.json`
//! (regenerate with `cargo bench -p snd-bench --bench delta_series`).
//!
//! # The approximate tier (million-node graphs)
//!
//! Both paths above are exact, and both spend at least one bounded SSSP
//! per differing user — past ~10⁵ nodes that sweep dominates. Setting
//! [`SndConfig::approx`] ([`ApproxConfig`]) enables the third tier
//! (module [`approx`]): landmark SSSP sketches bound node-to-node
//! distances by triangle-inequality envelopes, differing users are
//! contracted into quotient-graph clusters, each EMD* term is priced
//! **twice** — once over the lower envelope, once over the upper — and
//! the worst cluster is split and re-priced until the certified relative
//! gap meets `epsilon` (`epsilon = 0` refines all the way to exact).
//!
//! The result is an interval, not a point: [`SndEngine::distance_interval`]
//! and [`SndEngine::series_intervals`] return [`SndInterval`] with the
//! exact SND proven inside `[lower, upper]` (property-tested against the
//! exact tier in `tests/approx_bounds.rs`). Scalar entry points
//! ([`SndEngine::distance`], [`SndEngine::series_distances`], the shard
//! tiles) return interval midpoints when the tier is active — active
//! meaning `approx` is set, banks are per-bin, and the graph has at
//! least [`ApproxConfig::min_nodes`] nodes. The reference paths
//! ([`SndEngine::distance_dense`], the `*_seq` variants) never
//! approximate, so exactness tests remain meaningful. Tier selection in
//! short: small graph → exact; series → delta; huge graph + `approx` →
//! certified intervals.
//!
//! ## Certified series: the sketch lifecycle
//!
//! An approximate **series** run composes the two fast paths.
//! [`SndEngine::series_intervals`] carries one live [`SketchRows`] bundle
//! per opinion plane along the series instead of re-sketching every
//! snapshot:
//!
//! 1. **Build** — the first snapshot runs `2·L` landmark SSSPs per plane
//!    (one to-landmark, one from-landmark row per landmark);
//! 2. **Repair** — each transition repairs rows through the touched
//!    edges ([`snd_graph::repair_row`]), under the same contract as the
//!    cluster-geometry rows: repaired rows are **bit-identical** to
//!    fresh SSSPs (`tests/sketch_repair.rs`). Repair is
//!    **feedback-driven**: once pricing signal exists, only a small
//!    budget of the most-recently-useful landmark pairs is kept
//!    current; the rest are parked *stale* and excluded from envelopes
//!    (a subset envelope is looser but still sound), so a series whose
//!    refinement does not lean on the sketch stops paying for its
//!    upkeep;
//! 3. **Adapt** — term feedback credits the landmarks binding the
//!    worst remaining `gap × flow` cells (these stay inside the repair
//!    budget) and periodically promotes the hottest residual nodes into
//!    the landmark set, evicting the least-recently-useful landmark —
//!    stale pairs age fastest — once [`ApproxConfig::max_landmarks`] is
//!    reached;
//! 4. **Fall back** — high-churn transitions (touched edges above
//!    `1/`[`REPAIR_EDGE_FRACTION`] of the graph) rebuild the sketch
//!    fresh — every pair, reviving stale ones — exactly like the
//!    cluster rows.
//!
//! The envelope solves behind each term run on a **recursive quotient**:
//! the quotient graph is itself `bfs_partition`-coarsened (fanout 8, up
//! to 6 levels) so the coarse solve stays bounded for `n ≥ 10⁷`, with
//! per-level `[lo, hi]` cost propagation keeping every interval
//! certified. Shard checkpoints written under an active approximate tier
//! persist each tile's `[lo, hi]` pairs (`I` lines, see [`shard`]), so
//! merged matrices stay re-certifiable; `SND_APPROX_TRACE=1` prints a
//! per-run summary of sketch repairs/reuses/stale parks/rebuilds, the
//! sketch→ball→re-ball→exact refinement ladder, and per-phase wall
//! time.

pub mod approx;
pub mod banks;
pub mod batch;
pub mod config;
pub mod delta;
pub mod dense;
pub mod engine;
pub mod ordered;
pub mod shard;
pub mod sparse;

pub use approx::{ApproxConfig, ApproxError, SndInterval};
pub use banks::GroundGeometry;
pub use batch::DistanceMatrix;
pub use config::{ClusterSpec, GammaPolicy, SndConfig};
pub use delta::{DeltaStateGeometry, SeriesEvaluator, SketchRows, REPAIR_EDGE_FRACTION};
pub use engine::{SndBreakdown, SndEngine, StateGeometry};
pub use ordered::{CandidateEvaluator, OrderedSnd};
pub use shard::{
    auto_tile, interval_line, parse_interval_line, parse_tile_line, parse_timing_line,
    states_fingerprint, tile_line, timing_line, Checkpoint, ShardError, ShardPlan, TileGrid,
    TileSet, DEFAULT_TILE,
};
pub use sparse::RowCache;
