//! Social Network Distance (SND) — the paper's primary contribution.
//!
//! SND quantifies the cost of evolving one network state into another under
//! a model of polar opinion propagation (paper Eq. 3):
//!
//! ```text
//! SND(G1, G2) = ½ · [ EMD*(G1⁺, G2⁺, D(G1, +)) + EMD*(G1⁻, G2⁻, D(G1, −))
//!                   + EMD*(G2⁺, G1⁺, D(G2, +)) + EMD*(G2⁻, G1⁻, D(G2, −)) ]
//! ```
//!
//! where `Gᵒᵖ` projects a state onto one opinion (unit mass per user holding
//! `op`) and `D(G, op)` is the shortest-path ground distance over the
//! opinion-dependent edge costs of `snd-models`.
//!
//! Two computation paths are provided and cross-validated:
//!
//! * [`SndEngine::distance_dense`] — the reference: all-pairs ground
//!   distances plus the full extended transportation problem of Eq. 4. This
//!   plays the role of the paper's "direct computation with a general LP
//!   solver" baseline (Fig. 11).
//! * [`SndEngine::distance`] — the Theorem 4 sparse path: Lemma 1/2
//!   reduction (only the `n∆` users whose opinion differs remain), one
//!   bounded-cost SSSP (Dial's algorithm) per remaining supplier, bank
//!   columns from precomputed cluster geometry, and an exact reduced
//!   transportation solve. Linear in `n` for bounded `n∆` on sparse graphs.
//!
//! [`GroundGeometry`] (per state and opinion) carries the edge costs, the
//! per-cluster bank distances γ, and the inter-cluster distance matrix; it
//! is reusable across comparisons involving the same state — see
//! [`SndEngine::series_distances`] and [`OrderedSnd`].

pub mod banks;
pub mod batch;
pub mod config;
pub mod dense;
pub mod engine;
pub mod ordered;
pub mod shard;
pub mod sparse;

pub use banks::GroundGeometry;
pub use batch::DistanceMatrix;
pub use config::{ClusterSpec, GammaPolicy, SndConfig};
pub use engine::{SndBreakdown, SndEngine, StateGeometry};
pub use ordered::OrderedSnd;
pub use shard::{
    auto_tile, states_fingerprint, ShardError, ShardPlan, TileGrid, TileSet, DEFAULT_TILE,
};
pub use sparse::RowCache;
