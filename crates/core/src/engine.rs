//! The SND engine: Eq. 3 over a fixed graph and configuration.

use snd_graph::{bfs_partition, label_propagation, whole_graph_cluster, Clustering, CsrGraph};
use snd_models::{NetworkState, Opinion};

use crate::banks::{compute_geometry, GroundGeometry};
use crate::config::{ClusterSpec, SndConfig};
use crate::{dense, sparse};

/// The four EMD\* terms of Eq. 3.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SndBreakdown {
    /// `EMD*(G1⁺, G2⁺, D(G1, +))`.
    pub forward_pos: f64,
    /// `EMD*(G1⁻, G2⁻, D(G1, −))`.
    pub forward_neg: f64,
    /// `EMD*(G2⁺, G1⁺, D(G2, +))`.
    pub backward_pos: f64,
    /// `EMD*(G2⁻, G1⁻, D(G2, −))`.
    pub backward_neg: f64,
}

impl SndBreakdown {
    /// `SND = ½ · Σ terms`.
    pub fn total(&self) -> f64 {
        0.5 * (self.forward_pos + self.forward_neg + self.backward_pos + self.backward_neg)
    }
}

/// SND evaluator over one graph. Construction computes the structural bin
/// clustering once; every distance call derives the per-state geometry it
/// needs (or reuses one supplied by the caller).
pub struct SndEngine<'g> {
    graph: &'g CsrGraph,
    config: SndConfig,
    clustering: Clustering,
}

impl<'g> SndEngine<'g> {
    /// Creates an engine, computing the bank clustering per the config.
    pub fn new(graph: &'g CsrGraph, config: SndConfig) -> Self {
        let clustering = match &config.clusters {
            // Per-bin mode never consults the clustering (bank columns come
            // straight from SSSP rows); keep a trivial one as a placeholder.
            ClusterSpec::PerBin => whole_graph_cluster(graph.node_count()),
            ClusterSpec::BfsPartition { clusters } => bfs_partition(graph, *clusters),
            ClusterSpec::LabelPropagation { max_sweeps, seed } => {
                use rand::SeedableRng;
                let mut rng = rand::rngs::SmallRng::seed_from_u64(*seed);
                label_propagation(graph, *max_sweeps, &mut rng)
            }
            ClusterSpec::Explicit(labels) => {
                assert_eq!(labels.len(), graph.node_count(), "labels per node");
                Clustering::from_labels(labels)
            }
            ClusterSpec::Single => whole_graph_cluster(graph.node_count()),
        };
        SndEngine {
            graph,
            config,
            clustering,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &CsrGraph {
        self.graph
    }

    /// The engine configuration.
    pub fn config(&self) -> &SndConfig {
        &self.config
    }

    /// The bank clustering.
    pub fn clustering(&self) -> &Clustering {
        &self.clustering
    }

    /// Computes the ground geometry for `(state, op)` — reusable across
    /// comparisons whose ground state is `state`.
    pub fn geometry(&self, state: &NetworkState, op: Opinion) -> GroundGeometry {
        compute_geometry(self.graph, &self.clustering, state, op, &self.config)
    }

    /// SND between two states via the sparse (Theorem 4) path.
    pub fn distance(&self, a: &NetworkState, b: &NetworkState) -> f64 {
        self.breakdown(a, b).total()
    }

    /// The four Eq. 3 terms via the sparse path.
    pub fn breakdown(&self, a: &NetworkState, b: &NetworkState) -> SndBreakdown {
        let ga_pos = self.geometry(a, Opinion::Positive);
        let ga_neg = self.geometry(a, Opinion::Negative);
        let gb_pos = self.geometry(b, Opinion::Positive);
        let gb_neg = self.geometry(b, Opinion::Negative);
        self.breakdown_with_geometry(a, b, [&ga_pos, &ga_neg, &gb_pos, &gb_neg])
    }

    /// The four Eq. 3 terms given precomputed geometries
    /// `[D(a,+), D(a,−), D(b,+), D(b,−)]` — the building block for series
    /// evaluation where adjacent pairs share ground states.
    pub fn breakdown_with_geometry(
        &self,
        a: &NetworkState,
        b: &NetworkState,
        geoms: [&GroundGeometry; 4],
    ) -> SndBreakdown {
        let term = |geom: &GroundGeometry, p: &NetworkState, q: &NetworkState, op: Opinion| {
            sparse::emd_star_term(
                self.graph,
                &self.clustering,
                geom,
                p,
                q,
                op,
                &self.config,
                None,
            )
        };
        SndBreakdown {
            forward_pos: term(geoms[0], a, b, Opinion::Positive),
            forward_neg: term(geoms[1], a, b, Opinion::Negative),
            backward_pos: term(geoms[2], b, a, Opinion::Positive),
            backward_neg: term(geoms[3], b, a, Opinion::Negative),
        }
    }

    /// SND via the dense reference path (full APSP + full extended LP).
    /// `O(n²)` memory — intended for validation and the Fig. 11 baseline.
    pub fn distance_dense(&self, a: &NetworkState, b: &NetworkState) -> f64 {
        let term = |ground_state: &NetworkState, p: &NetworkState, q: &NetworkState, op| {
            let geom = self.geometry(ground_state, op);
            dense::emd_star_term(self.graph, &self.clustering, &geom, p, q, op, &self.config)
        };
        0.5 * (term(a, a, b, Opinion::Positive)
            + term(a, a, b, Opinion::Negative)
            + term(b, b, a, Opinion::Positive)
            + term(b, b, a, Opinion::Negative))
    }

    /// Distances between adjacent states of a series (sparse path), sharing
    /// geometry between the two pairs each state participates in. Returns
    /// `states.len() − 1` values.
    pub fn series_distances(&self, states: &[NetworkState]) -> Vec<f64> {
        if states.len() < 2 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(states.len() - 1);
        let mut prev_geoms = (
            self.geometry(&states[0], Opinion::Positive),
            self.geometry(&states[0], Opinion::Negative),
        );
        for t in 1..states.len() {
            let cur_geoms = (
                self.geometry(&states[t], Opinion::Positive),
                self.geometry(&states[t], Opinion::Negative),
            );
            let breakdown = self.breakdown_with_geometry(
                &states[t - 1],
                &states[t],
                [&prev_geoms.0, &prev_geoms.1, &cur_geoms.0, &cur_geoms.1],
            );
            out.push(breakdown.total());
            prev_geoms = cur_geoms;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snd_graph::generators::{barabasi_albert, path_graph};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn snd_is_zero_on_identical_states() {
        let g = path_graph(8);
        let engine = SndEngine::new(&g, SndConfig::default());
        let s = NetworkState::from_values(&[1, 0, -1, 0, 1, 1, 0, -1]);
        assert_eq!(engine.distance(&s, &s), 0.0);
    }

    #[test]
    fn snd_is_symmetric_by_construction() {
        let g = path_graph(8);
        let engine = SndEngine::new(&g, SndConfig::default());
        let a = NetworkState::from_values(&[1, 0, -1, 0, 0, 1, 0, 0]);
        let b = NetworkState::from_values(&[0, 1, -1, 0, -1, 1, 0, 1]);
        let ab = engine.distance(&a, &b);
        let ba = engine.distance(&b, &a);
        assert!((ab - ba).abs() < 1e-9, "{ab} vs {ba}");
        assert!(ab > 0.0);
    }

    #[test]
    fn sparse_matches_dense_on_small_random_instances() {
        let mut rng = SmallRng::seed_from_u64(31);
        let g = barabasi_albert(24, 2, &mut rng);
        let engine = SndEngine::new(&g, SndConfig::default());
        use rand::Rng;
        for trial in 0..8 {
            let vals_a: Vec<i8> = (0..24).map(|_| rng.gen_range(-1..=1)).collect();
            let vals_b: Vec<i8> = (0..24).map(|_| rng.gen_range(-1..=1)).collect();
            let a = NetworkState::from_values(&vals_a);
            let b = NetworkState::from_values(&vals_b);
            let sparse = engine.distance(&a, &b);
            let dense = engine.distance_dense(&a, &b);
            assert!(
                (sparse - dense).abs() < 1e-6,
                "trial {trial}: sparse {sparse} vs dense {dense}"
            );
        }
    }

    #[test]
    fn series_matches_pairwise_distances() {
        let g = path_graph(10);
        let engine = SndEngine::new(&g, SndConfig::default());
        let states = vec![
            NetworkState::from_values(&[1, 0, 0, 0, 0, 0, 0, 0, 0, 0]),
            NetworkState::from_values(&[1, 1, 0, 0, 0, 0, 0, 0, 0, -1]),
            NetworkState::from_values(&[1, 1, 0, 0, 1, 0, 0, -1, 0, -1]),
        ];
        let series = engine.series_distances(&states);
        assert_eq!(series.len(), 2);
        assert!((series[0] - engine.distance(&states[0], &states[1])).abs() < 1e-9);
        assert!((series[1] - engine.distance(&states[1], &states[2])).abs() < 1e-9);
    }

    #[test]
    fn opposite_polarity_states_are_far() {
        // Flipping every active user's opinion should cost much more than
        // keeping opinions and moving one user.
        let g = path_graph(10);
        let engine = SndEngine::new(&g, SndConfig::default());
        let base = NetworkState::from_values(&[1, 1, 0, 0, 0, 0, 0, 0, -1, -1]);
        let flipped = NetworkState::from_values(&[-1, -1, 0, 0, 0, 0, 0, 0, 1, 1]);
        let mut shifted = base.clone();
        shifted.set(1, Opinion::Neutral);
        shifted.set(2, Opinion::Positive);
        let d_flip = engine.distance(&base, &flipped);
        let d_shift = engine.distance(&base, &shifted);
        assert!(
            d_flip > 2.0 * d_shift,
            "flip {d_flip} should dwarf shift {d_shift}"
        );
    }
}
