//! The SND engine: Eq. 3 over a fixed graph and configuration.
//!
//! # Threading model
//!
//! [`SndEngine`] is immutable after construction and `Sync`: share one
//! engine by reference across any number of threads. Per-call parallelism
//! is internal — [`breakdown`](SndEngine::breakdown) evaluates its four
//! EMD\* terms concurrently, and
//! [`pairwise_distances`](SndEngine::pairwise_distances) fans comparisons
//! out over all cores. [`series_distances`](SndEngine::series_distances)
//! instead walks the series *incrementally* (delta-aware, see
//! [`crate::delta`]) with per-transition parallelism only —
//! [`series_distances_batch`](SndEngine::series_distances_batch) keeps the
//! windowed cross-transition fan-out for multi-core runs. Results are
//! bit-identical to a sequential evaluation either way: every term is an
//! independent exact computation and reductions happen in a fixed order.
//!
//! Parallelism nests safely: terms running on the shared rayon pool may
//! themselves hit the transportation simplex's parallel pricing (large
//! reduced instances under the default `Solver::Auto`); the pool's
//! caller-participation guarantee means inner fan-outs always progress
//! even with every worker busy on outer terms.

use std::sync::OnceLock;

use snd_graph::{bfs_partition, label_propagation, whole_graph_cluster, Clustering, CsrGraph};
use snd_models::{NetworkState, Opinion};

use crate::approx::{ApproxConfig, ApproxCtx, ApproxError, SndInterval};
use crate::banks::{compute_geometry, GroundGeometry};
use crate::config::{ClusterSpec, SndConfig};
use crate::sparse::RowCache;
use crate::{approx, dense, sparse};

/// The four EMD\* terms of Eq. 3.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SndBreakdown {
    /// `EMD*(G1⁺, G2⁺, D(G1, +))`.
    pub forward_pos: f64,
    /// `EMD*(G1⁻, G2⁻, D(G1, −))`.
    pub forward_neg: f64,
    /// `EMD*(G2⁺, G1⁺, D(G2, +))`.
    pub backward_pos: f64,
    /// `EMD*(G2⁻, G1⁻, D(G2, −))`.
    pub backward_neg: f64,
}

impl SndBreakdown {
    /// `SND = ½ · Σ terms`.
    pub fn total(&self) -> f64 {
        0.5 * (self.forward_pos + self.forward_neg + self.backward_pos + self.backward_neg)
    }
}

/// Per-state evaluation bundle: both opinion geometries plus the shared,
/// thread-safe SSSP row cache for comparisons grounded in that state.
/// Built by [`SndEngine::state_geometry`] (or [`StateGeometry::new`] —
/// the only constructors, so the live/peak accounting below stays
/// balanced with the `Drop` impl), consumed by
/// [`SndEngine::breakdown_with`] and the batch entry points.
pub struct StateGeometry {
    /// `D(state, +)` geometry.
    pub(crate) pos: GroundGeometry,
    /// `D(state, −)` geometry.
    pub(crate) neg: GroundGeometry,
    /// Shared row cache (one slot per `(opinion, direction, node)`).
    pub(crate) cache: RowCache,
    /// Delta-repaired landmark rows per opinion plane (series/tile paths
    /// only — `None` bundles fall back to cache-fetched landmark rows).
    pub(crate) sketch_pos: Option<crate::delta::SketchRows>,
    pub(crate) sketch_neg: Option<crate::delta::SketchRows>,
}

/// Live [`StateGeometry`] bundles right now — each holds O(n) geometry
/// plus its row cache, so series evaluation must bound this.
static LIVE_BUNDLES: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
/// High-water mark of [`LIVE_BUNDLES`] since the last reset.
static PEAK_BUNDLES: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

impl StateGeometry {
    /// Assembles a bundle, tracking it in the live/peak accounting.
    pub fn new(pos: GroundGeometry, neg: GroundGeometry, cache: RowCache) -> StateGeometry {
        use std::sync::atomic::Ordering;
        let live = LIVE_BUNDLES.fetch_add(1, Ordering::Relaxed) + 1;
        PEAK_BUNDLES.fetch_max(live, Ordering::Relaxed);
        StateGeometry {
            pos,
            neg,
            cache,
            sketch_pos: None,
            sketch_neg: None,
        }
    }

    /// Attaches delta-repaired landmark-row bundles (used by
    /// [`DeltaStateGeometry::bundle`](crate::delta::DeltaStateGeometry)).
    pub(crate) fn with_sketches(
        mut self,
        pos: Option<crate::delta::SketchRows>,
        neg: Option<crate::delta::SketchRows>,
    ) -> StateGeometry {
        self.sketch_pos = pos;
        self.sketch_neg = neg;
        self
    }

    /// Number of SSSP rows computed into this bundle's cache so far.
    pub fn cached_rows(&self) -> usize {
        self.cache.computed_rows()
    }

    /// Bundles alive right now (process-wide).
    pub fn live_count() -> usize {
        LIVE_BUNDLES.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// High-water mark of live bundles since the last
    /// [`reset_peak_live`](Self::reset_peak_live) — the observability
    /// hook the series memory test asserts on (series evaluation must
    /// keep at most two bundles alive).
    pub fn peak_live() -> usize {
        PEAK_BUNDLES.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Resets the high-water mark to the current live count.
    pub fn reset_peak_live() {
        PEAK_BUNDLES.store(Self::live_count(), std::sync::atomic::Ordering::Relaxed);
    }
}

impl Drop for StateGeometry {
    fn drop(&mut self) {
        LIVE_BUNDLES.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
    }
}

/// SND evaluator over one graph. Construction computes the structural bin
/// clustering once; every distance call derives the per-state geometry it
/// needs (or reuses one supplied by the caller).
pub struct SndEngine<'g> {
    graph: &'g CsrGraph,
    config: SndConfig,
    clustering: Clustering,
    /// Lazily-built approximate-tier context (landmarks + quotient
    /// partition) — topology-only, so one build serves every query.
    approx_ctx: OnceLock<ApproxCtx>,
}

impl<'g> SndEngine<'g> {
    /// Creates an engine, computing the bank clustering per the config.
    pub fn new(graph: &'g CsrGraph, config: SndConfig) -> Self {
        let clustering = match &config.clusters {
            // Per-bin mode never consults the clustering (bank columns come
            // straight from SSSP rows); keep a trivial one as a placeholder.
            ClusterSpec::PerBin => whole_graph_cluster(graph.node_count()),
            ClusterSpec::BfsPartition { clusters } => bfs_partition(graph, *clusters),
            ClusterSpec::LabelPropagation { max_sweeps, seed } => {
                use rand::SeedableRng;
                let mut rng = rand::rngs::SmallRng::seed_from_u64(*seed);
                label_propagation(graph, *max_sweeps, &mut rng)
            }
            ClusterSpec::Explicit(labels) => {
                assert_eq!(labels.len(), graph.node_count(), "labels per node");
                Clustering::from_labels(labels)
            }
            ClusterSpec::Single => whole_graph_cluster(graph.node_count()),
        };
        SndEngine {
            graph,
            config,
            clustering,
            approx_ctx: OnceLock::new(),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &CsrGraph {
        self.graph
    }

    /// The engine configuration.
    pub fn config(&self) -> &SndConfig {
        &self.config
    }

    /// The bank clustering.
    pub fn clustering(&self) -> &Clustering {
        &self.clustering
    }

    /// Computes the ground geometry for `(state, op)` — reusable across
    /// comparisons whose ground state is `state`. Per-cluster SSSPs fan out
    /// over the rayon pool; bit-identical to
    /// [`geometry_seq`](Self::geometry_seq).
    pub fn geometry(&self, state: &NetworkState, op: Opinion) -> GroundGeometry {
        compute_geometry(self.graph, &self.clustering, state, op, &self.config)
    }

    /// Fully sequential [`geometry`](Self::geometry): no thread fan-out.
    /// The `*_seq` reference paths use this so they stay single-threaded
    /// end to end.
    pub fn geometry_seq(&self, state: &NetworkState, op: Opinion) -> GroundGeometry {
        crate::banks::compute_geometry_seq(self.graph, &self.clustering, state, op, &self.config)
    }

    /// Computes the full per-state bundle — both opinion geometries (in
    /// parallel) plus an empty shared row cache. This is the unit of reuse
    /// for batch evaluation: every comparison grounded in `state` draws its
    /// SSSP rows from the bundle's cache, so each
    /// `(opinion, direction, node)` row is computed at most once per
    /// ground state no matter how many comparisons touch it.
    pub fn state_geometry(&self, state: &NetworkState) -> StateGeometry {
        let (pos, neg) = rayon::join(
            || self.geometry(state, Opinion::Positive),
            || self.geometry(state, Opinion::Negative),
        );
        StateGeometry::new(pos, neg, RowCache::new(self.graph.node_count()))
    }

    /// SND between two states via the sparse (Theorem 4) path.
    pub fn distance(&self, a: &NetworkState, b: &NetworkState) -> f64 {
        self.breakdown(a, b).total()
    }

    /// Fully sequential [`distance`](Self::distance): no thread fan-out
    /// anywhere. Reference for determinism tests and single-core baselines;
    /// returns bit-identical values to the parallel path.
    pub fn distance_seq(&self, a: &NetworkState, b: &NetworkState) -> f64 {
        self.breakdown_seq(a, b).total()
    }

    /// Fully sequential [`breakdown`](Self::breakdown).
    pub fn breakdown_seq(&self, a: &NetworkState, b: &NetworkState) -> SndBreakdown {
        let ga_pos = self.geometry_seq(a, Opinion::Positive);
        let ga_neg = self.geometry_seq(a, Opinion::Negative);
        let gb_pos = self.geometry_seq(b, Opinion::Positive);
        let gb_neg = self.geometry_seq(b, Opinion::Negative);
        self.breakdown_with_geometry_seq(a, b, [&ga_pos, &ga_neg, &gb_pos, &gb_neg])
    }

    /// Fully sequential
    /// [`breakdown_with_geometry`](Self::breakdown_with_geometry).
    pub fn breakdown_with_geometry_seq(
        &self,
        a: &NetworkState,
        b: &NetworkState,
        geoms: [&GroundGeometry; 4],
    ) -> SndBreakdown {
        let term = |geom: &GroundGeometry, p: &NetworkState, q: &NetworkState, op: Opinion| {
            sparse::emd_star_term(
                self.graph,
                &self.clustering,
                geom,
                p,
                q,
                op,
                &self.config,
                None,
            )
        };
        SndBreakdown {
            forward_pos: term(geoms[0], a, b, Opinion::Positive),
            forward_neg: term(geoms[1], a, b, Opinion::Negative),
            backward_pos: term(geoms[2], b, a, Opinion::Positive),
            backward_neg: term(geoms[3], b, a, Opinion::Negative),
        }
    }

    /// The four Eq. 3 terms via the sparse path. Geometries and terms are
    /// evaluated concurrently; the result is bit-identical to a sequential
    /// evaluation.
    pub fn breakdown(&self, a: &NetworkState, b: &NetworkState) -> SndBreakdown {
        let ((ga_pos, ga_neg), (gb_pos, gb_neg)) = rayon::join(
            || {
                rayon::join(
                    || self.geometry(a, Opinion::Positive),
                    || self.geometry(a, Opinion::Negative),
                )
            },
            || {
                rayon::join(
                    || self.geometry(b, Opinion::Positive),
                    || self.geometry(b, Opinion::Negative),
                )
            },
        );
        self.breakdown_with_geometry(a, b, [&ga_pos, &ga_neg, &gb_pos, &gb_neg])
    }

    /// The four Eq. 3 terms given precomputed geometries
    /// `[D(a,+), D(a,−), D(b,+), D(b,−)]` — the building block for series
    /// evaluation where adjacent pairs share ground states. Terms are
    /// computed concurrently (they are independent transportation solves).
    pub fn breakdown_with_geometry(
        &self,
        a: &NetworkState,
        b: &NetworkState,
        geoms: [&GroundGeometry; 4],
    ) -> SndBreakdown {
        self.terms(a, b, geoms, [None, None, None, None])
    }

    /// [`breakdown_with_geometry`](Self::breakdown_with_geometry) drawing
    /// SSSP rows from per-state bundles: `ga` must be `a`'s geometry and
    /// `gb` must be `b`'s. Rows computed here stay in the bundles' caches
    /// for later comparisons sharing either ground state.
    pub fn breakdown_with(
        &self,
        a: &NetworkState,
        b: &NetworkState,
        ga: &StateGeometry,
        gb: &StateGeometry,
    ) -> SndBreakdown {
        self.terms(
            a,
            b,
            [&ga.pos, &ga.neg, &gb.pos, &gb.neg],
            [
                Some(&ga.cache),
                Some(&ga.cache),
                Some(&gb.cache),
                Some(&gb.cache),
            ],
        )
    }

    /// The four Eq. 3 terms over explicit geometries and row caches — the
    /// borrowing building block behind
    /// [`breakdown_with`](Self::breakdown_with) and the delta series path
    /// (which owns its geometries inside repairable bundles and must not
    /// clone them per transition).
    pub(crate) fn terms(
        &self,
        a: &NetworkState,
        b: &NetworkState,
        geoms: [&GroundGeometry; 4],
        caches: [Option<&RowCache>; 4],
    ) -> SndBreakdown {
        self.terms_sketched(a, b, geoms, caches, [None, None, None, None])
    }

    /// [`terms`](Self::terms) with optional delta-repaired landmark rows
    /// per term — the series paths pass their live sketch bundles so the
    /// approximate tier prices without re-running the 2·L sketch SSSPs.
    pub(crate) fn terms_sketched(
        &self,
        a: &NetworkState,
        b: &NetworkState,
        geoms: [&GroundGeometry; 4],
        caches: [Option<&RowCache>; 4],
        sketches: [Option<&crate::delta::SketchRows>; 4],
    ) -> SndBreakdown {
        // `Solver::Auto`-style tier routing: when the approximate tier is
        // active for this engine (configured, supported bank mode, graph at
        // least `min_nodes`), every scalar term is the midpoint of its
        // certified interval; otherwise the exact sparse path runs.
        let approx = self.approx_if_active();
        let term = |geom: &GroundGeometry,
                    cache: Option<&RowCache>,
                    sketch: Option<&crate::delta::SketchRows>,
                    p: &NetworkState,
                    q: &NetworkState,
                    op: Opinion| {
            if let Some(a_cfg) = &approx {
                let (lo, hi) = self.approx_term(geom, cache, sketch, p, q, op, a_cfg);
                return 0.5 * (lo + hi);
            }
            sparse::emd_star_term(
                self.graph,
                &self.clustering,
                geom,
                p,
                q,
                op,
                &self.config,
                cache,
            )
        };
        let ((forward_pos, forward_neg), (backward_pos, backward_neg)) = rayon::join(
            || {
                rayon::join(
                    || term(geoms[0], caches[0], sketches[0], a, b, Opinion::Positive),
                    || term(geoms[1], caches[1], sketches[1], a, b, Opinion::Negative),
                )
            },
            || {
                rayon::join(
                    || term(geoms[2], caches[2], sketches[2], b, a, Opinion::Positive),
                    || term(geoms[3], caches[3], sketches[3], b, a, Opinion::Negative),
                )
            },
        );
        SndBreakdown {
            forward_pos,
            forward_neg,
            backward_pos,
            backward_neg,
        }
    }

    /// The approx config when the approximate tier handles this engine's
    /// *scalar* queries ([`distance`](Self::distance), series, pairwise,
    /// tiles): configured, valid, per-bin banks, and the graph at least
    /// `min_nodes` nodes. `None` keeps everything exact. The `*_seq`
    /// reference paths and [`distance_dense`](Self::distance_dense) never
    /// route here — they stay exact oracles.
    pub(crate) fn approx_if_active(&self) -> Option<ApproxConfig> {
        let a = self.config.approx.as_ref()?;
        if a.validate().is_err()
            || approx::unsupported_bank_mode(&self.config).is_some()
            || self.graph.node_count() < a.min_nodes
        {
            return None;
        }
        Some(a.clone())
    }

    /// The lazily-built sketch context (landmark set + quotient hierarchy).
    pub(crate) fn approx_ctx(&self) -> &ApproxCtx {
        self.approx_ctx.get_or_init(|| {
            let a = self.config.approx.clone().unwrap_or_default();
            approx::build_ctx(self.graph, &a)
        })
    }

    /// The sketch context when the delta series path should maintain a
    /// live landmark-row bundle: an approx config is present, valid, and
    /// the bank mode is per-bin. Deliberately *not* gated on `min_nodes` —
    /// interval surfaces run the sketch machinery on any size, so the
    /// bundle must exist whenever intervals might be priced.
    pub(crate) fn delta_sketch_ctx(&self) -> Option<&ApproxCtx> {
        let a = self.config.approx.as_ref()?;
        if a.validate().is_err() || approx::unsupported_bank_mode(&self.config).is_some() {
            return None;
        }
        Some(self.approx_ctx())
    }

    /// Certified `[lower, upper]` for one EMD\* term via the sketch tier.
    /// Falls back to a term-local row cache when the caller has none (the
    /// interval is certified either way; a shared cache just reuses SSSPs).
    #[allow(clippy::too_many_arguments)] // the exact term surface plus the approx knobs
    pub(crate) fn approx_term(
        &self,
        geom: &GroundGeometry,
        cache: Option<&RowCache>,
        sketch: Option<&crate::delta::SketchRows>,
        p: &NetworkState,
        q: &NetworkState,
        op: Opinion,
        approx_cfg: &ApproxConfig,
    ) -> (f64, f64) {
        let outcome = self.approx_term_outcome(geom, cache, sketch, p, q, op, approx_cfg);
        (outcome.lower, outcome.upper)
    }

    /// [`approx_term`](Self::approx_term) keeping the adaptive-placement
    /// feedback — the series interval path consumes it.
    #[allow(clippy::too_many_arguments)] // the exact term surface plus the approx knobs
    fn approx_term_outcome(
        &self,
        geom: &GroundGeometry,
        cache: Option<&RowCache>,
        sketch: Option<&crate::delta::SketchRows>,
        p: &NetworkState,
        q: &NetworkState,
        op: Opinion,
        approx_cfg: &ApproxConfig,
    ) -> approx::TermOutcome {
        let run = |c: &RowCache| {
            approx::emd_star_term_interval(
                self.graph,
                &self.clustering,
                self.approx_ctx(),
                geom,
                p,
                q,
                op,
                &self.config,
                approx_cfg,
                c,
                sketch,
            )
        };
        match cache {
            Some(c) => run(c),
            None => run(&RowCache::new(self.graph.node_count())),
        }
    }

    /// Certified SND interval `lower ≤ SND(a, b) ≤ upper` via the
    /// approximate tier (landmark sketches + coarsening + ε-refinement,
    /// see [`crate::approx`]).
    ///
    /// This is the *explicit* interval query: it runs the sketch machinery
    /// regardless of [`ApproxConfig::min_nodes`] (tiny reduced problems
    /// still short-circuit to exact, zero-width intervals), and uses
    /// [`ApproxConfig::default`] when the engine has no approx config.
    /// Errors when ε is invalid or the bank mode is not per-bin.
    pub fn distance_interval(
        &self,
        a: &NetworkState,
        b: &NetworkState,
    ) -> Result<SndInterval, ApproxError> {
        let approx_cfg = self.validated_approx()?;
        let (ga, gb) = rayon::join(|| self.state_geometry(a), || self.state_geometry(b));
        let interval = self.interval_with(a, b, &ga, &gb, &approx_cfg);
        approx::emit_trace_summary("distance_interval");
        Ok(interval)
    }

    /// Certified intervals for every adjacent transition of a series —
    /// the interval-carrying analogue of
    /// [`series_distances`](Self::series_distances), and like it
    /// **delta-aware**: the series is walked with repairable
    /// [`DeltaStateGeometry`](crate::delta::DeltaStateGeometry) bundles
    /// (≤ 2 live), so edge costs are re-derived on touched edges only and
    /// — when the engine carries an approx config — the 2·L landmark
    /// sketch rows are *repaired* across each transition instead of
    /// recomputed. After each priced transition the refinement loop's
    /// worst-cell feedback adapts the next ground state's landmark set
    /// ([`DeltaStateGeometry::adapt_sketch`](crate::delta::DeltaStateGeometry::adapt_sketch)).
    pub fn series_intervals(
        &self,
        states: &[NetworkState],
    ) -> Result<Vec<SndInterval>, ApproxError> {
        let approx_cfg = self.validated_approx()?;
        if states.len() < 2 {
            return Ok(Vec::new());
        }
        let g = self.graph;
        let n = g.node_count();
        let mut out = Vec::with_capacity(states.len() - 1);
        let mut prev = crate::delta::DeltaStateGeometry::fresh(self, &states[0]);
        let mut prev_rows = RowCache::new(n);
        for t in 1..states.len() {
            let delta = snd_models::StateDelta::between(g, &states[t - 1], &states[t]);
            if delta.is_empty() {
                out.push(SndInterval {
                    lower: 0.0,
                    upper: 0.0,
                });
                continue;
            }
            let mut cur = prev.step(self, &states[t], &delta);
            let cur_rows = RowCache::new(n);
            let (interval, feedback) = self.interval_terms(
                &states[t - 1],
                &states[t],
                [&prev.pos.geom, &prev.neg.geom, &cur.pos.geom, &cur.neg.geom],
                [
                    Some(&prev_rows),
                    Some(&prev_rows),
                    Some(&cur_rows),
                    Some(&cur_rows),
                ],
                [
                    prev.pos.sketch.as_ref(),
                    prev.neg.sketch.as_ref(),
                    cur.pos.sketch.as_ref(),
                    cur.neg.sketch.as_ref(),
                ],
                &approx_cfg,
            );
            out.push(interval);
            // The backward terms ground in `cur`, which is exactly the
            // next transition's forward ground state — fold their hot
            // cells into its landmark set before stepping on.
            let [_, _, feedback_pos, feedback_neg] = feedback;
            cur.adapt_sketch(
                self,
                Opinion::Positive,
                &feedback_pos,
                approx_cfg.max_landmarks,
            );
            cur.adapt_sketch(
                self,
                Opinion::Negative,
                &feedback_neg,
                approx_cfg.max_landmarks,
            );
            prev = cur;
            prev_rows = cur_rows;
        }
        approx::emit_trace_summary("series_intervals");
        Ok(out)
    }

    /// The pre-delta interval series baseline: a fresh
    /// [`state_geometry`](Self::state_geometry) per snapshot, landmark
    /// rows re-fetched through each bundle's cache (2·L sketch SSSPs per
    /// plane per snapshot), no adaptation. Certified exactly like
    /// [`series_intervals`](Self::series_intervals); kept as the
    /// re-sketch baseline the `scale_series` bench measures the
    /// delta-repaired path against.
    pub fn series_intervals_fresh(
        &self,
        states: &[NetworkState],
    ) -> Result<Vec<SndInterval>, ApproxError> {
        let approx_cfg = self.validated_approx()?;
        if states.len() < 2 {
            return Ok(Vec::new());
        }
        let mut out = Vec::with_capacity(states.len() - 1);
        let mut prev = self.state_geometry(&states[0]);
        for t in 1..states.len() {
            if states[t - 1] == states[t] {
                out.push(SndInterval {
                    lower: 0.0,
                    upper: 0.0,
                });
                continue;
            }
            let cur = self.state_geometry(&states[t]);
            out.push(self.interval_with(&states[t - 1], &states[t], &prev, &cur, &approx_cfg));
            prev = cur;
        }
        approx::emit_trace_summary("series_intervals_fresh");
        Ok(out)
    }

    /// The engine's approx config (or the default), validated for interval
    /// queries: ε well-formed, bank mode per-bin.
    fn validated_approx(&self) -> Result<ApproxConfig, ApproxError> {
        let approx_cfg = self.config.approx.clone().unwrap_or_default();
        approx_cfg.validate()?;
        if let Some(mode) = approx::unsupported_bank_mode(&self.config) {
            return Err(ApproxError::UnsupportedBankMode(mode));
        }
        Ok(approx_cfg)
    }

    /// Sums the four per-term intervals into the Eq. 3 SND interval
    /// (`½·Σ` of each envelope — interval arithmetic over independent
    /// certified bounds), keeping each term's adaptive-placement feedback
    /// in breakdown order (forward+, forward−, backward+, backward−).
    /// Terms run concurrently like [`terms`](Self::terms).
    fn interval_terms(
        &self,
        a: &NetworkState,
        b: &NetworkState,
        geoms: [&GroundGeometry; 4],
        caches: [Option<&RowCache>; 4],
        sketches: [Option<&crate::delta::SketchRows>; 4],
        approx_cfg: &ApproxConfig,
    ) -> (SndInterval, [approx::TermFeedback; 4]) {
        let term = |geom: &GroundGeometry,
                    cache: Option<&RowCache>,
                    sketch: Option<&crate::delta::SketchRows>,
                    p: &NetworkState,
                    q: &NetworkState,
                    op| {
            self.approx_term_outcome(geom, cache, sketch, p, q, op, approx_cfg)
        };
        let ((fp, fn_), (bp, bn)) = rayon::join(
            || {
                rayon::join(
                    || term(geoms[0], caches[0], sketches[0], a, b, Opinion::Positive),
                    || term(geoms[1], caches[1], sketches[1], a, b, Opinion::Negative),
                )
            },
            || {
                rayon::join(
                    || term(geoms[2], caches[2], sketches[2], b, a, Opinion::Positive),
                    || term(geoms[3], caches[3], sketches[3], b, a, Opinion::Negative),
                )
            },
        );
        let interval = SndInterval {
            lower: 0.5 * (fp.lower + fn_.lower + bp.lower + bn.lower),
            upper: 0.5 * (fp.upper + fn_.upper + bp.upper + bn.upper),
        };
        (
            interval,
            [fp.feedback, fn_.feedback, bp.feedback, bn.feedback],
        )
    }

    /// [`interval_terms`](Self::interval_terms) over two per-state
    /// bundles, feedback discarded — the pair-query surface.
    fn interval_with(
        &self,
        a: &NetworkState,
        b: &NetworkState,
        ga: &StateGeometry,
        gb: &StateGeometry,
        approx_cfg: &ApproxConfig,
    ) -> SndInterval {
        let (interval, _) = self.interval_terms(
            a,
            b,
            [&ga.pos, &ga.neg, &gb.pos, &gb.neg],
            [
                Some(&ga.cache),
                Some(&ga.cache),
                Some(&gb.cache),
                Some(&gb.cache),
            ],
            [
                ga.sketch_pos.as_ref(),
                ga.sketch_neg.as_ref(),
                gb.sketch_pos.as_ref(),
                gb.sketch_neg.as_ref(),
            ],
            approx_cfg,
        );
        interval
    }

    /// SND via the dense reference path (full APSP + full extended LP).
    /// `O(n²)` memory — intended for validation and the Fig. 11 baseline.
    pub fn distance_dense(&self, a: &NetworkState, b: &NetworkState) -> f64 {
        let term = |ground_state: &NetworkState, p: &NetworkState, q: &NetworkState, op| {
            let geom = self.geometry(ground_state, op);
            dense::emd_star_term(self.graph, &self.clustering, &geom, p, q, op, &self.config)
        };
        0.5 * (term(a, a, b, Opinion::Positive)
            + term(a, a, b, Opinion::Negative)
            + term(b, b, a, Opinion::Positive)
            + term(b, b, a, Opinion::Negative))
    }

    /// Distances between adjacent states of a series (sparse path),
    /// evaluated **delta-aware**: consecutive snapshots share everything
    /// their [`StateDelta`](snd_models::StateDelta) leaves untouched —
    /// edge costs are re-derived only on touched edges, cluster-bank SSSP
    /// rows are *repaired* rather than recomputed, identical states
    /// short-circuit to zero — with an automatic fallback to a fresh
    /// rebuild on high-churn transitions (see [`crate::delta`]). Returns
    /// `states.len() − 1` values, bit-identical to
    /// [`series_distances_seq`](Self::series_distances_seq); at most two
    /// geometry bundles are live at any point.
    pub fn series_distances(&self, states: &[NetworkState]) -> Vec<f64> {
        crate::delta::SeriesEvaluator::new(self).distances(states)
    }

    /// The pre-delta batch series path: geometries for a window of states
    /// computed concurrently, then every transition fanned out over the
    /// thread pool. Kept as the wall-clock baseline the delta path is
    /// benchmarked against (`BENCH_series.json`) and for multi-core runs
    /// where cross-transition parallelism can beat incremental repair.
    /// Bit-identical to [`series_distances_seq`](Self::series_distances_seq).
    pub fn series_distances_batch(&self, states: &[NetworkState]) -> Vec<f64> {
        use rayon::prelude::*;
        if states.len() < 2 {
            return Vec::new();
        }
        // Evaluate in windows so at most GEOMETRY_WINDOW bundles (each
        // holding geometries plus cached SSSP rows, O(n) apiece) are live
        // at once — a long series on a large graph must not hold T bundles
        // simultaneously. The one overlap state per window boundary is
        // recomputed, which is deterministic and amortized by the window.
        const GEOMETRY_WINDOW: usize = 33;
        let mut out = Vec::with_capacity(states.len() - 1);
        let mut lo = 0usize;
        while lo + 1 < states.len() {
            let hi = (lo + GEOMETRY_WINDOW - 1).min(states.len() - 1);
            let geoms: Vec<StateGeometry> = states[lo..=hi]
                .par_iter()
                .map(|s| self.state_geometry(s))
                .collect();
            out.extend(
                (lo + 1..hi + 1)
                    .into_par_iter()
                    .map(|t| {
                        self.breakdown_with(
                            &states[t - 1],
                            &states[t],
                            &geoms[t - 1 - lo],
                            &geoms[t - lo],
                        )
                        .total()
                    })
                    .collect::<Vec<f64>>(),
            );
            lo = hi;
        }
        out
    }

    /// Sequential reference implementation of
    /// [`series_distances`](Self::series_distances): one transition at a
    /// time with no thread fan-out, geometries shared between adjacent
    /// pairs (the seed's original behavior). Kept for validation and
    /// single-core baselines. Identical consecutive states short-circuit
    /// to [`SndBreakdown::default`] — every EMD\* term over equal states
    /// is exactly zero and the geometry carries over unchanged, so the
    /// shortcut is value-preserving.
    pub fn series_distances_seq(&self, states: &[NetworkState]) -> Vec<f64> {
        if states.len() < 2 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(states.len() - 1);
        let mut prev = (
            self.geometry_seq(&states[0], Opinion::Positive),
            self.geometry_seq(&states[0], Opinion::Negative),
        );
        for t in 1..states.len() {
            if states[t - 1] == states[t] {
                out.push(SndBreakdown::default().total());
                continue;
            }
            let cur = (
                self.geometry_seq(&states[t], Opinion::Positive),
                self.geometry_seq(&states[t], Opinion::Negative),
            );
            let breakdown = self.breakdown_with_geometry_seq(
                &states[t - 1],
                &states[t],
                [&prev.0, &prev.1, &cur.0, &cur.1],
            );
            out.push(breakdown.total());
            prev = cur;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use snd_graph::generators::{barabasi_albert, path_graph};

    #[test]
    fn snd_is_zero_on_identical_states() {
        let g = path_graph(8);
        let engine = SndEngine::new(&g, SndConfig::default());
        let s = NetworkState::from_values(&[1, 0, -1, 0, 1, 1, 0, -1]);
        assert_eq!(engine.distance(&s, &s), 0.0);
    }

    #[test]
    fn approx_activation_honors_the_measured_min_nodes_crossover() {
        // BENCH_scale.json: the approximate tier's speedup crosses 1×
        // between 10⁴ and 5·10⁴ nodes, so the default floor keeps smaller
        // graphs on the faster exact tier. This pins both the constant
        // and the boundary it gates.
        assert_eq!(ApproxConfig::default().min_nodes, 50_000);
        let config = SndConfig {
            approx: Some(ApproxConfig::default()),
            ..SndConfig::default()
        };
        let at = path_graph(50_000);
        assert!(
            SndEngine::new(&at, config.clone())
                .approx_if_active()
                .is_some(),
            "at the crossover the tier activates"
        );
        let below = path_graph(49_999);
        assert!(
            SndEngine::new(&below, config).approx_if_active().is_none(),
            "below the crossover the exact tier wins"
        );
    }

    #[test]
    fn snd_is_symmetric_by_construction() {
        let g = path_graph(8);
        let engine = SndEngine::new(&g, SndConfig::default());
        let a = NetworkState::from_values(&[1, 0, -1, 0, 0, 1, 0, 0]);
        let b = NetworkState::from_values(&[0, 1, -1, 0, -1, 1, 0, 1]);
        let ab = engine.distance(&a, &b);
        let ba = engine.distance(&b, &a);
        assert!((ab - ba).abs() < 1e-9, "{ab} vs {ba}");
        assert!(ab > 0.0);
    }

    #[test]
    fn sparse_matches_dense_on_small_random_instances() {
        let mut rng = SmallRng::seed_from_u64(31);
        let g = barabasi_albert(24, 2, &mut rng);
        let engine = SndEngine::new(&g, SndConfig::default());
        use rand::Rng;
        for trial in 0..8 {
            let vals_a: Vec<i8> = (0..24).map(|_| rng.gen_range(-1..=1)).collect();
            let vals_b: Vec<i8> = (0..24).map(|_| rng.gen_range(-1..=1)).collect();
            let a = NetworkState::from_values(&vals_a);
            let b = NetworkState::from_values(&vals_b);
            let sparse = engine.distance(&a, &b);
            let dense = engine.distance_dense(&a, &b);
            assert!(
                (sparse - dense).abs() < 1e-6,
                "trial {trial}: sparse {sparse} vs dense {dense}"
            );
        }
    }

    #[test]
    fn series_matches_pairwise_distances() {
        let g = path_graph(10);
        let engine = SndEngine::new(&g, SndConfig::default());
        let states = vec![
            NetworkState::from_values(&[1, 0, 0, 0, 0, 0, 0, 0, 0, 0]),
            NetworkState::from_values(&[1, 1, 0, 0, 0, 0, 0, 0, 0, -1]),
            NetworkState::from_values(&[1, 1, 0, 0, 1, 0, 0, -1, 0, -1]),
        ];
        let series = engine.series_distances(&states);
        assert_eq!(series.len(), 2);
        assert!((series[0] - engine.distance(&states[0], &states[1])).abs() < 1e-9);
        assert!((series[1] - engine.distance(&states[1], &states[2])).abs() < 1e-9);
    }

    #[test]
    fn parallel_breakdown_is_bit_identical_to_sequential_reference() {
        let mut rng = SmallRng::seed_from_u64(97);
        let g = barabasi_albert(20, 2, &mut rng);
        let engine = SndEngine::new(&g, SndConfig::default());
        use rand::Rng;
        let vals_a: Vec<i8> = (0..20).map(|_| rng.gen_range(-1..=1)).collect();
        let vals_b: Vec<i8> = (0..20).map(|_| rng.gen_range(-1..=1)).collect();
        let a = NetworkState::from_values(&vals_a);
        let b = NetworkState::from_values(&vals_b);

        let ga_pos = engine.geometry_seq(&a, Opinion::Positive);
        let ga_neg = engine.geometry_seq(&a, Opinion::Negative);
        let gb_pos = engine.geometry_seq(&b, Opinion::Positive);
        let gb_neg = engine.geometry_seq(&b, Opinion::Negative);
        let geoms = [&ga_pos, &ga_neg, &gb_pos, &gb_neg];

        let seq = engine.breakdown_with_geometry_seq(&a, &b, geoms);
        let par = engine.breakdown_with_geometry(&a, &b, geoms);
        // Bit identity, not tolerance: the parallel fan-out must change
        // nothing about the arithmetic.
        assert_eq!(seq.total().to_bits(), par.total().to_bits());
        assert_eq!(
            seq.total().to_bits(),
            engine.breakdown(&a, &b).total().to_bits()
        );
        assert_eq!(
            seq.total().to_bits(),
            engine.breakdown_seq(&a, &b).total().to_bits()
        );
    }

    #[test]
    fn opposite_polarity_states_are_far() {
        // Flipping every active user's opinion should cost much more than
        // keeping opinions and moving one user.
        let g = path_graph(10);
        let engine = SndEngine::new(&g, SndConfig::default());
        let base = NetworkState::from_values(&[1, 1, 0, 0, 0, 0, 0, 0, -1, -1]);
        let flipped = NetworkState::from_values(&[-1, -1, 0, 0, 0, 0, 0, 0, 1, 1]);
        let mut shifted = base.clone();
        shifted.set(1, Opinion::Neutral);
        shifted.set(2, Opinion::Positive);
        let d_flip = engine.distance(&base, &flipped);
        let d_shift = engine.distance(&base, &shifted);
        assert!(
            d_flip > 2.0 * d_shift,
            "flip {d_flip} should dwarf shift {d_shift}"
        );
    }
}
