//! SND engine configuration.

use snd_models::GroundCostConfig;
use snd_transport::Solver;

/// How histogram bins (users) are grouped into clusters for EMD\*'s local
/// bank bins.
///
/// Bank distances are *cluster-granular*: the mismatch penalty resolves
/// positions only up to the clustering, so the cluster count trades
/// positional sensitivity against reduced-problem size (each cluster adds
/// `banks_per_cluster` bins to every comparison).
#[derive(Clone, Debug)]
pub enum ClusterSpec {
    /// One bank per bin — §4's high-fidelity extreme (default). Bank
    /// capacities sit exactly on the lighter histogram's active users, so
    /// the mismatch penalty is the true propagation distance from existing
    /// same-opinion users (plus [`SndConfig::per_bin_gamma`]). Costs no
    /// extra geometry in the sparse path: bank columns are read off the
    /// same SSSP rows as regular columns.
    PerBin,
    /// Balanced BFS partition into this many clusters — the coarse,
    /// cluster-granular mode for very large graphs (bank distances resolve
    /// positions only up to the clustering).
    BfsPartition {
        /// Number of clusters.
        clusters: usize,
    },
    /// Label-propagation communities (natural but unbounded in count).
    LabelPropagation {
        /// Sweep budget.
        max_sweeps: usize,
        /// RNG seed for the sweep order.
        seed: u64,
    },
    /// Explicit cluster labels per node.
    Explicit(Vec<u32>),
    /// A single cluster (degenerates EMD\* to EMDα).
    Single,
}

/// How the bank ground distance γ of each cluster is chosen.
///
/// Theorem 3 requires `γ ≥ ½·max_{p,q∈C} D(p,q)` for metricity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GammaPolicy {
    /// `γ = max(forward, backward) eccentricity` of a cluster
    /// representative, measured in the full graph over the state's ground
    /// costs. By the triangle inequality this is at least half the
    /// intra-cluster diameter, and it is "of the same order as the ground
    /// distances within the cluster" as §4 prescribes. Two bounded-cost
    /// SSSP runs per cluster.
    Eccentricity,
    /// Exact `⌈½·max_{p,q∈C} D(p,q)⌉` — one SSSP per cluster member; meant
    /// for tests and small graphs.
    HalfExactDiameter,
    /// A fixed γ for every cluster (caller guarantees the Theorem 3 bound).
    Constant(u32),
}

/// Full SND configuration.
#[derive(Clone, Debug)]
pub struct SndConfig {
    /// Ground-cost construction (opinion dynamics model, quantization).
    pub ground: GroundCostConfig,
    /// Bin clustering for bank placement.
    pub clusters: ClusterSpec,
    /// Banks per cluster (`Nb`). Bank `b` gets ground distance `(b+1)·γ`,
    /// modelling non-constant transportation cost into a cluster's bank
    /// group (§4); the first bank is the plain γ.
    pub banks_per_cluster: usize,
    /// Bank ground-distance policy (ignored in
    /// [`ClusterSpec::PerBin`] mode).
    pub gamma: GammaPolicy,
    /// Bank ground distance in per-bin mode. Must be positive: a zero γ
    /// would let mass mismatch hide inside a user's own bank, breaking the
    /// identity of indiscernibles. Semantically this is the base cost of
    /// one brand-new activation right next to an existing same-opinion
    /// user.
    pub per_bin_gamma: u32,
    /// Fixed-point scale for histogram masses.
    pub scale: u64,
    /// Transportation solver for the (reduced or full) problem. The default
    /// [`Solver::Auto`] sizes the choice per reduced instance (single-line
    /// shortcut, cost-scaling for column-heavy shapes, block-priced simplex
    /// otherwise — see `snd_transport::select_solver`); pin a concrete
    /// solver for cross-validation runs.
    pub solver: Solver,
    /// Optional approximate geometry tier (landmark sketches + coarsening +
    /// ε-refinement, see [`crate::approx`]). `None` (the default) keeps
    /// every query exact. `Some(_)` routes per-bin comparisons on graphs
    /// with at least [`ApproxConfig::min_nodes`](crate::ApproxConfig) nodes
    /// through the sketch tier; smaller graphs stay exact
    /// (`Solver::Auto`-style routing).
    pub approx: Option<crate::approx::ApproxConfig>,
}

impl Default for SndConfig {
    fn default() -> Self {
        SndConfig {
            ground: GroundCostConfig::default(),
            clusters: ClusterSpec::PerBin,
            banks_per_cluster: 1,
            gamma: GammaPolicy::Eccentricity,
            per_bin_gamma: 1,
            scale: snd_emd::DEFAULT_SCALE,
            solver: Solver::Auto,
            approx: None,
        }
    }
}

impl SndConfig {
    /// Config with the given ground-cost model and defaults elsewhere.
    pub fn with_ground(ground: GroundCostConfig) -> Self {
        SndConfig {
            ground,
            ..Default::default()
        }
    }
}
