//! Batch evaluation: cached, parallel all-pairs distance matrices.
//!
//! The evaluation workloads that dominate in practice — anomaly detection
//! over a snapshot series, clustering and nearest-neighbor search over a
//! snapshot set — are all-pairs regimes: every state participates in up to
//! `T − 1` comparisons. Evaluated naively (one [`SndEngine::distance`] per
//! pair) the same per-state work is redone `T − 1` times: the two ground
//! geometries, and one SSSP row per residual user of every comparison
//! grounded in that state.
//!
//! [`SndEngine::pairwise_distances`] restructures this around the
//! per-state [`StateGeometry`] bundle: geometries are computed once per
//! state (in parallel across states), and every `(ground state, opinion,
//! direction, node)` SSSP row is computed at most once — concurrent terms
//! pull rows from the bundle's shared [`RowCache`](crate::sparse::RowCache).
//! The `4·T·(T−1)/2` EMD\* terms then fan out over the thread pool
//! individually, which load-balances well because term cost varies with
//! the pair's residual size.
//!
//! Results are **bit-identical** to the sequential naive loop: each term is
//! an exact integer transportation solve, cached rows hold exactly what
//! recomputation would produce, and per-pair terms are reduced in a fixed
//! order. The property tests in `tests/batch_parallel.rs` assert this.
//!
//! In the *warm* regime (`pairwise_distances_with` over pre-filled
//! bundles) every SSSP row is a cache hit and the per-term cost is almost
//! entirely the exact transportation solve — which is why the solver layer
//! (per-instance `Solver::Auto` selection, anti-cycling block-priced
//! simplex) is the lever for this path; see `BENCH_pairwise.json` /
//! `BENCH_solver.json` for the tracked numbers.

use rayon::prelude::*;
use snd_models::NetworkState;

use crate::engine::{SndBreakdown, SndEngine, StateGeometry};
use crate::sparse;

/// Symmetric all-pairs distance matrix over a snapshot set (row-major,
/// zero diagonal).
#[derive(Clone, Debug, PartialEq)]
pub struct DistanceMatrix {
    k: usize,
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Number of states (the matrix is `size × size`).
    pub fn size(&self) -> usize {
        self.k
    }

    /// Distance between states `i` and `j`.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.k + j]
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.k..(i + 1) * self.k]
    }

    /// The matrix as nested rows (the shape the clustering helpers take).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        (0..self.k).map(|i| self.row(i).to_vec()).collect()
    }

    /// Adjacent-transition distances `d(G_t, G_{t+1})` read off the
    /// superdiagonal (`size − 1` values).
    pub fn adjacent(&self) -> Vec<f64> {
        (1..self.k).map(|t| self.at(t - 1, t)).collect()
    }

    /// Builds a matrix from the strict upper triangle, mirroring it.
    pub(crate) fn from_upper(k: usize, upper: &[f64]) -> Self {
        debug_assert_eq!(upper.len(), k * k.saturating_sub(1) / 2);
        let mut data = vec![0.0; k * k];
        let mut idx = 0;
        for i in 0..k {
            for j in (i + 1)..k {
                data[i * k + j] = upper[idx];
                data[j * k + i] = upper[idx];
                idx += 1;
            }
        }
        DistanceMatrix { k, data }
    }
}

impl<'g> SndEngine<'g> {
    /// All-pairs SND matrix over a snapshot set: geometry computed once per
    /// state, SSSP rows computed at most once per ground state and shared
    /// through thread-safe caches, all `4·T·(T−1)/2` EMD\* terms fanned out
    /// over the thread pool.
    pub fn pairwise_distances(&self, states: &[NetworkState]) -> DistanceMatrix {
        let geoms: Vec<StateGeometry> = states.par_iter().map(|s| self.state_geometry(s)).collect();
        self.pairwise_distances_with(states, &geoms)
    }

    /// [`pairwise_distances`](Self::pairwise_distances) over caller-owned
    /// bundles — reuse them to price additional snapshots against the same
    /// set, or to inspect cache statistics afterwards.
    pub fn pairwise_distances_with(
        &self,
        states: &[NetworkState],
        geoms: &[StateGeometry],
    ) -> DistanceMatrix {
        assert_eq!(states.len(), geoms.len(), "one geometry bundle per state");
        let k = states.len();
        let pairs: Vec<(usize, usize)> = (0..k)
            .flat_map(|i| ((i + 1)..k).map(move |j| (i, j)))
            .collect();
        // Fan out at term granularity (4 independent EMD* solves per pair):
        // term cost varies wildly with the pair's residual size, so finer
        // work items load-balance better than whole pairs.
        let terms: Vec<f64> = (0..pairs.len() * 4)
            .into_par_iter()
            .map(|t| {
                let (i, j) = pairs[t / 4];
                self.pair_term(&states[i], &states[j], &geoms[i], &geoms[j], t % 4)
            })
            .collect();
        let upper: Vec<f64> = terms
            .chunks_exact(4)
            .map(|t| {
                SndBreakdown {
                    forward_pos: t[0],
                    forward_neg: t[1],
                    backward_pos: t[2],
                    backward_neg: t[3],
                }
                .total()
            })
            .collect();
        DistanceMatrix::from_upper(k, &upper)
    }

    /// The naive sequential all-pairs loop (no sharing, no threads):
    /// exactly `T·(T−1)/2` independent [`distance_seq`](Self::distance_seq)
    /// calls. The baseline the batch path is benchmarked and property-tested
    /// against.
    pub fn pairwise_distances_seq(&self, states: &[NetworkState]) -> DistanceMatrix {
        let k = states.len();
        let mut upper = Vec::with_capacity(k * k.saturating_sub(1) / 2);
        for i in 0..k {
            for j in (i + 1)..k {
                upper.push(self.distance_seq(&states[i], &states[j]));
            }
        }
        DistanceMatrix::from_upper(k, &upper)
    }

    /// One of the four Eq. 3 terms of pair `(a, b)` given the two states'
    /// bundles, drawing rows from the ground state's shared cache. Term
    /// order matches [`SndBreakdown`]: forward +, forward −, backward +,
    /// backward −. Shared with the tile-based shard path
    /// ([`crate::shard`]).
    pub(crate) fn pair_term(
        &self,
        a: &NetworkState,
        b: &NetworkState,
        ga: &StateGeometry,
        gb: &StateGeometry,
        which: usize,
    ) -> f64 {
        let (lo, hi) = self.pair_term_interval(a, b, ga, gb, which);
        // Zero-width (exact-tier) envelopes return the value itself so the
        // scalar stays bit-identical to the sparse path; the midpoint of a
        // genuine interval is the approximate tier's scalar estimate.
        if lo == hi {
            return lo;
        }
        0.5 * (lo + hi)
    }

    /// [`pair_term`](Self::pair_term) keeping the certified envelope: the
    /// exact tier returns a zero-width interval, an active approximate
    /// tier the term's `[lower, upper]` (whose midpoint is exactly what
    /// [`pair_term`](Self::pair_term) reports). The tile checkpoint path
    /// persists these so merged shard matrices stay re-certifiable.
    pub(crate) fn pair_term_interval(
        &self,
        a: &NetworkState,
        b: &NetworkState,
        ga: &StateGeometry,
        gb: &StateGeometry,
        which: usize,
    ) -> (f64, f64) {
        use snd_models::Opinion;
        let (ground, p, q, geom, op) = match which {
            0 => (ga, a, b, &ga.pos, Opinion::Positive),
            1 => (ga, a, b, &ga.neg, Opinion::Negative),
            2 => (gb, b, a, &gb.pos, Opinion::Positive),
            _ => (gb, b, a, &gb.neg, Opinion::Negative),
        };
        // Same tier routing as `SndEngine::terms`: an active approximate
        // tier prices the term as a certified interval, drawing landmark
        // rows from the bundle's delta-repaired sketch when it carries one.
        if let Some(a_cfg) = self.approx_if_active() {
            let sketch = match op {
                Opinion::Positive => ground.sketch_pos.as_ref(),
                _ => ground.sketch_neg.as_ref(),
            };
            return self.approx_term(geom, Some(&ground.cache), sketch, p, q, op, &a_cfg);
        }
        let v = sparse::emd_star_term(
            self.graph(),
            self.clustering(),
            geom,
            p,
            q,
            op,
            self.config(),
            Some(&ground.cache),
        );
        (v, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SndConfig;
    use snd_graph::generators::path_graph;

    fn states() -> Vec<NetworkState> {
        vec![
            NetworkState::from_values(&[1, 0, 0, 0, 0, 0, 0, -1]),
            NetworkState::from_values(&[1, 1, 0, 0, 0, 0, -1, -1]),
            NetworkState::from_values(&[0, 1, 1, 0, 0, -1, -1, 0]),
            NetworkState::from_values(&[0, 0, 1, 1, -1, -1, 0, 0]),
        ]
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let g = path_graph(8);
        let engine = SndEngine::new(&g, SndConfig::default());
        let m = engine.pairwise_distances(&states());
        assert_eq!(m.size(), 4);
        for i in 0..4 {
            assert_eq!(m.at(i, i), 0.0);
            for j in 0..4 {
                assert_eq!(m.at(i, j), m.at(j, i));
            }
        }
        assert!(m.at(0, 3) > 0.0);
    }

    #[test]
    fn parallel_matrix_equals_naive_sequential_loop() {
        let g = path_graph(8);
        let engine = SndEngine::new(&g, SndConfig::default());
        let s = states();
        let par = engine.pairwise_distances(&s);
        let seq = engine.pairwise_distances_seq(&s);
        assert_eq!(par, seq, "bit-identical matrices");
    }

    #[test]
    fn adjacent_reads_the_superdiagonal() {
        let g = path_graph(8);
        let engine = SndEngine::new(&g, SndConfig::default());
        let s = states();
        let m = engine.pairwise_distances(&s);
        let adj = m.adjacent();
        assert_eq!(adj.len(), 3);
        for (t, &d) in adj.iter().enumerate() {
            assert_eq!(d, m.at(t, t + 1));
        }
    }

    #[test]
    fn reusing_bundles_adds_no_new_rows() {
        let g = path_graph(8);
        let engine = SndEngine::new(&g, SndConfig::default());
        let s = states();
        let geoms: Vec<StateGeometry> = s.iter().map(|st| engine.state_geometry(st)).collect();
        let first = engine.pairwise_distances_with(&s, &geoms);
        let rows_after: Vec<usize> = geoms.iter().map(|b| b.cached_rows()).collect();
        assert!(rows_after.iter().sum::<usize>() > 0);
        let second = engine.pairwise_distances_with(&s, &geoms);
        let rows_again: Vec<usize> = geoms.iter().map(|b| b.cached_rows()).collect();
        assert_eq!(rows_after, rows_again, "second evaluation: zero new SSSP");
        assert_eq!(first, second);
    }

    #[test]
    fn empty_and_single_state_sets() {
        let g = path_graph(8);
        let engine = SndEngine::new(&g, SndConfig::default());
        assert_eq!(engine.pairwise_distances(&[]).size(), 0);
        let one = engine.pairwise_distances(&states()[..1]);
        assert_eq!(one.size(), 1);
        assert_eq!(one.at(0, 0), 0.0);
    }
}
