//! Tile-based sharding of the all-pairs SND matrix, with
//! checkpoint/resume and shard merging.
//!
//! The all-pairs matrix is embarrassingly block-parallel: the strict upper
//! triangle of a `k × k` [`DistanceMatrix`] is decomposed by a [`TileGrid`]
//! into fixed-size tiles over a block grid (block `b` covers state indices
//! `[b·tile, min((b+1)·tile, k))`; tile `(bi, bj)` with `bi ≤ bj` holds
//! every pair `(i, j)` with `i < j`, `i ∈ block bi`, `j ∈ block bj`).
//! Tiles get deterministic IDs — row-major over the upper-triangular block
//! grid including the diagonal — so any two machines agree on what tile 17
//! means for a given `(k, tile)`.
//!
//! [`SndEngine::pairwise_tiles`] computes any subset of tiles selected by
//! a [`ShardPlan`]: EMD\* terms fan out over the rayon pool *inside* each
//! tile, per-state geometry bundles (and their SSSP row caches) are shared
//! across every tile of the run and dropped as soon as no remaining tile
//! needs them, and each finished tile can be appended to a checkpoint file
//! so an interrupted run resumes without recomputation
//! ([`SndEngine::pairwise_tiles_checkpointed`]).
//!
//! # Shard plans
//!
//! A [`ShardPlan`] names the tiles one worker computes:
//!
//! * [`ShardPlan::full`] — every tile (single-machine, resumable);
//! * [`ShardPlan::round_robin`] — tile IDs with `id % shard_count ==
//!   shard_index`: `shard_count` independent machines each produce a
//!   partial artifact covering a disjoint tile set whose union is the full
//!   matrix;
//! * [`ShardPlan::superdiagonal`] — only the tiles containing adjacent
//!   transitions `(t−1, t)`, the series workload;
//! * [`ShardPlan::explicit`] — any caller-chosen tile subset.
//!
//! [`TileSet::merge`] reassembles partial artifacts, rejecting
//! conflicting overlaps (the same tile with different bits) and
//! mismatched grids/datasets; [`TileSet::to_matrix`] validates that no
//! tile is missing (holes) before producing the full [`DistanceMatrix`].
//! Merging the tiles of any plan partition is bit-identical to
//! [`SndEngine::pairwise_distances_seq`] — property-tested in
//! `tests/shard_matrix.rs`.
//!
//! # Checkpoint / artifact format
//!
//! Checkpoints and shard artifacts are the same line-oriented text format:
//!
//! ```text
//! SNDSHARD v1
//! k <states> tile <tile_size> fingerprint <hex64>
//! T <tile_id> <pair_count> <f64-bits-hex> <f64-bits-hex> ...
//! I <tile_id> <pair_count> <lo-bits-hex> <hi-bits-hex> ...
//! W <tile_id> <seconds-bits-hex>
//! T ...
//! ```
//!
//! The fingerprint is a 64-bit FNV-1a hash over everything the distances
//! depend on — graph topology, engine configuration, and the snapshot set
//! ([`SndEngine::shard_fingerprint`]) — so a checkpoint is never resumed
//! against a different dataset, graph, or configuration. Distances are
//! serialized as the hex of their IEEE-754 bits — round-trips are exact,
//! which is what makes resume bit-identical.
//!
//! When the approximate tier is active, each `T` line is followed by an
//! `I` line carrying the tile's certified `[lo, hi]` interval pairs (same
//! pair order, two hex words per pair), so merged shard matrices stay
//! re-certifiable ([`TileSet::pair_interval`]). Readers tolerate both
//! `T`-only files (exact-tier runs and pre-interval checkpoints — the
//! tile loads with no interval) and a trailing `T` whose `I` line was
//! lost to a kill.
//! Each `T` line (after its optional `I` line) may be followed by a `W`
//! line recording the tile's observed compute wall time in seconds (hex
//! of the IEEE-754 bits, like distances). Timings are *advisory*: the
//! orchestrator's autotuner warm-starts its per-tile cost model from
//! them, but they never participate in artifact identity — two artifacts
//! with identical tiles and different timings are equal — and readers
//! predating the `W` line simply treated such files as ending at the
//! first `W` (new-format files are not readable by old readers; old files
//! load fine here).
//! Tile lines are appended (and flushed) one at a time as tiles finish; on
//! load, a truncated or corrupt trailing line (the half-written remnant of
//! an interrupted run) is discarded and its tile recomputed.
//!
//! # CLI workflow
//!
//! ```text
//! # each machine computes one shard of the 2-way split, resumably:
//! snd shard --data snaps.json --shard 0/2 --checkpoint part0.snd
//! snd shard --data snaps.json --shard 1/2 --checkpoint part1.snd
//! # kill/restart either command: completed tiles are not recomputed.
//!
//! # reassemble the full matrix (validates overlap/holes/fingerprints):
//! snd shard merge --out matrix.json part0.snd part1.snd
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::ops::Range;
use std::path::Path;

use rayon::prelude::*;
use snd_models::NetworkState;

use crate::approx::SndInterval;
use crate::batch::DistanceMatrix;
use crate::engine::{SndBreakdown, SndEngine, StateGeometry};

/// Default tile edge (states per block): `8 × 8` tiles hold up to 64
/// pairs — coarse enough that checkpoint appends are rare, fine enough
/// that a killed run loses little work. Prefer [`auto_tile`], which sizes
/// the tile from the workload instead.
pub const DEFAULT_TILE: usize = 8;

/// Picks a tile size from the workload shape — the first step of tile-size
/// autotuning.
///
/// Two forces pull in opposite directions. More, smaller tiles balance
/// round-robin shard plans and lose less work on a kill (checkpoint
/// granularity). But the *duplicated* cost of a sharded run is per-state
/// geometry: every shard computes geometry bundles for each state its
/// tiles touch, and small tiles scatter each state's pairs across many
/// shards — so the more expensive geometry is (bigger graphs), the larger
/// the tile should be. The heuristic aims for roughly eight block-rows
/// and caps the tile by a graph-size-dependent ceiling.
///
/// Deliberately a function of `(states, nodes)` only — never thread count
/// or machine state — so every shard of a distributed run agrees on the
/// grid without coordination.
pub fn auto_tile(states: usize, nodes: usize) -> usize {
    let k = states.max(2);
    // ~8 block-rows => ~36 upper-triangle tiles: enough for round-robin
    // balance at typical shard counts.
    let balance = k.div_ceil(8);
    // Geometry cost grows with the graph; larger graphs take larger tiles
    // so each state's row of pairs stays on fewer shards.
    let cap = if nodes > 200_000 {
        32
    } else if nodes > 20_000 {
        16
    } else {
        8
    };
    balance.clamp(2, cap).min(k)
}

const MAGIC: &str = "SNDSHARD v1";

/// Hook invoked with each finished tile before it is recorded — the
/// checkpoint append point. The third argument is the tile's certified
/// `[lo, hi]` pairs when the approximate tier produced them; the fourth
/// is the tile's observed compute wall time in seconds (geometry
/// materialization attributed to the tile that triggered it), which the
/// checkpoint persists as a `W` line and the orchestrator's autotuner
/// feeds on.
pub type OnTile<'a> =
    dyn FnMut(usize, &[f64], Option<&[(f64, f64)]>, f64) -> Result<(), ShardError> + 'a;

/// Tile-computation callee plugged into the shared checkpointed-run
/// skeleton (`SndEngine::run_checkpointed`): the batch plan path or the
/// delta-advanced series path.
type TileCompute<'g> = fn(
    &SndEngine<'g>,
    &[NetworkState],
    &ShardPlan,
    &mut TileSet,
    &mut OnTile<'_>,
) -> Result<(), ShardError>;

/// Errors from shard planning, checkpoint IO, and merging.
#[derive(Debug)]
pub enum ShardError {
    /// Invalid shard arithmetic (e.g. `shard_index ≥ shard_count`).
    InvalidPlan(String),
    /// Underlying file IO failed.
    Io(std::io::Error),
    /// A checkpoint/artifact file is not in the expected format.
    Format(String),
    /// A checkpoint/artifact belongs to a different grid or dataset.
    Mismatch(String),
    /// Two artifacts disagree on the same tile's values.
    Overlap {
        /// The conflicting tile.
        tile: usize,
    },
    /// Tiles missing from a merge that must cover the full matrix.
    Holes {
        /// Missing tile IDs (truncated to the first few for display).
        missing: Vec<usize>,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::InvalidPlan(m) => write!(f, "invalid shard plan: {m}"),
            ShardError::Io(e) => write!(f, "shard checkpoint IO: {e}"),
            ShardError::Format(m) => write!(f, "bad shard file: {m}"),
            ShardError::Mismatch(m) => write!(f, "shard file mismatch: {m}"),
            ShardError::Overlap { tile } => {
                write!(f, "conflicting values for tile {tile} across artifacts")
            }
            ShardError::Holes { missing } => write!(
                f,
                "matrix has {} missing tile(s), first: {:?}",
                missing.len(),
                &missing[..missing.len().min(8)]
            ),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<std::io::Error> for ShardError {
    fn from(e: std::io::Error) -> Self {
        ShardError::Io(e)
    }
}

/// Decomposition of the strict upper triangle of a `k × k` matrix into
/// fixed-size tiles with deterministic IDs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileGrid {
    k: usize,
    tile: usize,
}

impl TileGrid {
    /// Grid over `k` states with `tile × tile` blocks (`tile ≥ 1`).
    pub fn new(k: usize, tile: usize) -> Self {
        assert!(tile >= 1, "tile size must be at least 1");
        TileGrid { k, tile }
    }

    /// Number of states (`k`).
    pub fn states(&self) -> usize {
        self.k
    }

    /// Tile edge length.
    pub fn tile_size(&self) -> usize {
        self.tile
    }

    /// Number of blocks per axis (`⌈k / tile⌉`).
    pub fn blocks(&self) -> usize {
        self.k.div_ceil(self.tile)
    }

    /// Number of tiles: the upper-triangular block grid including the
    /// diagonal.
    pub fn tile_count(&self) -> usize {
        let nb = self.blocks();
        nb * (nb + 1) / 2
    }

    /// State-index range of block `b`.
    fn range(&self, b: usize) -> Range<usize> {
        (b * self.tile)..((b + 1) * self.tile).min(self.k)
    }

    /// Tile ID of block coordinates `(bi, bj)` with `bi ≤ bj`: row-major
    /// over the upper-triangular block grid.
    pub fn id(&self, bi: usize, bj: usize) -> usize {
        let nb = self.blocks();
        assert!(bi <= bj && bj < nb, "block coords out of range");
        bi * nb - bi * (bi.saturating_sub(1)) / 2 - bi + bj
    }

    /// Block coordinates `(bi, bj)` of a tile ID.
    pub fn coords(&self, id: usize) -> (usize, usize) {
        assert!(id < self.tile_count(), "tile id out of range");
        let nb = self.blocks();
        let mut bi = 0;
        let mut start = 0;
        while start + (nb - bi) <= id {
            start += nb - bi;
            bi += 1;
        }
        (bi, bi + (id - start))
    }

    /// The `(i, j)` pairs (`i < j`) of one tile, in the fixed row-major
    /// order tile values are serialized in.
    pub fn pairs(&self, id: usize) -> Vec<(usize, usize)> {
        let (bi, bj) = self.coords(id);
        let ri = self.range(bi);
        let rj = self.range(bj);
        let mut out = Vec::with_capacity(self.pair_count(id));
        for i in ri {
            for j in rj.clone() {
                if i < j {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// Number of pairs in a tile (without materializing them).
    pub fn pair_count(&self, id: usize) -> usize {
        let (bi, bj) = self.coords(id);
        let wi = self.range(bi).len();
        let wj = self.range(bj).len();
        if bi == bj {
            wi * wi.saturating_sub(1) / 2
        } else {
            wi * wj
        }
    }

    /// IDs of the tiles containing the superdiagonal pairs `(t−1, t)` —
    /// the tiles a series workload needs.
    pub fn superdiagonal_tiles(&self) -> Vec<usize> {
        let nb = self.blocks();
        let mut ids = Vec::new();
        for b in 0..nb {
            ids.push(self.id(b, b));
            if b + 1 < nb {
                ids.push(self.id(b, b + 1));
            }
        }
        ids.sort_unstable();
        ids
    }
}

/// The tile subset one worker computes.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    grid: TileGrid,
    tiles: Vec<usize>,
}

impl ShardPlan {
    /// Every tile of the grid (single-machine, resumable, full matrix).
    pub fn full(grid: TileGrid) -> Self {
        ShardPlan {
            grid,
            tiles: (0..grid.tile_count()).collect(),
        }
    }

    /// Round-robin split: tile IDs with `id % shard_count == shard_index`.
    /// The `shard_count` plans partition the grid exactly.
    pub fn round_robin(
        grid: TileGrid,
        shard_index: usize,
        shard_count: usize,
    ) -> Result<Self, ShardError> {
        if shard_count == 0 {
            return Err(ShardError::InvalidPlan("shard count must be ≥ 1".into()));
        }
        if shard_index >= shard_count {
            return Err(ShardError::InvalidPlan(format!(
                "shard index {shard_index} out of range for {shard_count} shard(s)"
            )));
        }
        Ok(ShardPlan {
            grid,
            tiles: (0..grid.tile_count())
                .filter(|id| id % shard_count == shard_index)
                .collect(),
        })
    }

    /// Only the tiles covering adjacent transitions `(t−1, t)`.
    pub fn superdiagonal(grid: TileGrid) -> Self {
        ShardPlan {
            grid,
            tiles: grid.superdiagonal_tiles(),
        }
    }

    /// An arbitrary tile subset (deduplicated, ascending order).
    pub fn explicit(grid: TileGrid, mut tiles: Vec<usize>) -> Result<Self, ShardError> {
        tiles.sort_unstable();
        tiles.dedup();
        if let Some(&bad) = tiles.iter().find(|&&id| id >= grid.tile_count()) {
            return Err(ShardError::InvalidPlan(format!(
                "tile {bad} out of range for {} tile(s)",
                grid.tile_count()
            )));
        }
        Ok(ShardPlan { grid, tiles })
    }

    /// The grid this plan tiles.
    pub fn grid(&self) -> &TileGrid {
        &self.grid
    }

    /// The plan's tile IDs, ascending.
    pub fn tile_ids(&self) -> &[usize] {
        &self.tiles
    }
}

/// Incremental 64-bit FNV-1a.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0100_0000_01b3);
        }
    }
}

/// 64-bit FNV-1a fingerprint of a snapshot set: state count, per-state
/// length, and every opinion value. The engine entry points extend this
/// with the graph and configuration
/// ([`SndEngine::shard_fingerprint`]) — distances depend on all three.
pub fn states_fingerprint(states: &[NetworkState]) -> u64 {
    let mut h = Fnv::new();
    eat_states(&mut h, states);
    h.0
}

fn eat_states(h: &mut Fnv, states: &[NetworkState]) {
    h.eat(&(states.len() as u64).to_le_bytes());
    for s in states {
        h.eat(&(s.len() as u64).to_le_bytes());
        for op in s.opinions() {
            h.eat(&[op.value() as u8]);
        }
    }
}

/// A set of computed tiles over one grid and dataset: a partial (or full)
/// all-pairs artifact. Produced by the engine's tile entry points and by
/// [`TileSet::load`]; reassembled by [`TileSet::merge`].
#[derive(Clone, Debug)]
pub struct TileSet {
    grid: TileGrid,
    fingerprint: u64,
    tiles: BTreeMap<usize, Vec<f64>>,
    /// Certified `[lo, hi]` envelopes for tiles computed by an active
    /// approximate tier, keyed like `tiles` (same pair order). Exact-tier
    /// tiles — and tiles loaded from pre-interval checkpoints — have no
    /// entry.
    intervals: BTreeMap<usize, Vec<(f64, f64)>>,
    /// Observed per-tile compute wall seconds (`W` checkpoint lines) —
    /// advisory autotuner measurements, never part of artifact identity.
    timings: BTreeMap<usize, f64>,
}

/// Artifact identity is the grid, the dataset fingerprint, and the tile
/// values/intervals. Timings are wall-clock *measurements* — they differ
/// between bit-identical runs — so equality deliberately ignores them.
impl PartialEq for TileSet {
    fn eq(&self, other: &Self) -> bool {
        self.grid == other.grid
            && self.fingerprint == other.fingerprint
            && self.tiles == other.tiles
            && self.intervals == other.intervals
    }
}

impl TileSet {
    /// An empty artifact for `grid` over the dataset with `fingerprint`.
    pub fn empty(grid: TileGrid, fingerprint: u64) -> Self {
        TileSet {
            grid,
            fingerprint,
            tiles: BTreeMap::new(),
            intervals: BTreeMap::new(),
            timings: BTreeMap::new(),
        }
    }

    /// The tile grid.
    pub fn grid(&self) -> &TileGrid {
        &self.grid
    }

    /// The dataset fingerprint the tiles were computed from.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of tiles present.
    pub fn tile_count(&self) -> usize {
        self.tiles.len()
    }

    /// Number of present tiles carrying certified `[lo, hi]` intervals.
    /// Equal to [`tile_count`](Self::tile_count) iff every present tile
    /// re-certifies; smaller when midpoint-only (old-format or exact-tier)
    /// tiles are mixed in.
    pub fn certified_tile_count(&self) -> usize {
        self.intervals.len()
    }

    /// Whether a present tile carries certified intervals.
    pub fn is_certified(&self, id: usize) -> bool {
        self.intervals.contains_key(&id)
    }

    /// Observed compute wall seconds of a tile, when a run recorded one
    /// (`W` checkpoint line). Old-format artifacts have none.
    pub fn timing(&self, id: usize) -> Option<f64> {
        self.timings.get(&id).copied()
    }

    /// Records a tile's observed compute wall seconds. Advisory: feeds
    /// the orchestrator's autotuner warm-start, ignored by equality.
    pub fn set_timing(&mut self, id: usize, seconds: f64) {
        self.timings.insert(id, seconds);
    }

    /// Whether a tile is present.
    pub fn contains(&self, id: usize) -> bool {
        self.tiles.contains_key(&id)
    }

    /// IDs of grid tiles not present — the holes a full matrix still
    /// needs.
    pub fn missing_tiles(&self) -> Vec<usize> {
        (0..self.grid.tile_count())
            .filter(|id| !self.tiles.contains_key(id))
            .collect()
    }

    /// Distance of pair `(i, j)` if its tile is present (`Some(0.0)` on
    /// the diagonal).
    pub fn pair(&self, i: usize, j: usize) -> Option<f64> {
        if i == j && i < self.grid.k {
            return Some(0.0);
        }
        let (id, idx) = self.pair_slot(i, j)?;
        Some(self.tiles.get(&id)?[idx])
    }

    /// Certified `[lo, hi]` interval of pair `(i, j)`, when its tile both
    /// is present and carries intervals (approximate-tier tiles; see the
    /// format notes). The diagonal is exactly zero; exact-tier and
    /// pre-interval-format tiles return `None`.
    pub fn pair_interval(&self, i: usize, j: usize) -> Option<SndInterval> {
        if i == j && i < self.grid.k {
            return Some(SndInterval {
                lower: 0.0,
                upper: 0.0,
            });
        }
        let (id, idx) = self.pair_slot(i, j)?;
        let (lower, upper) = self.intervals.get(&id)?[idx];
        Some(SndInterval { lower, upper })
    }

    /// `(tile id, index into the tile's pair order)` of an off-diagonal
    /// pair, or `None` when out of range.
    fn pair_slot(&self, i: usize, j: usize) -> Option<(usize, usize)> {
        if i >= self.grid.k || j >= self.grid.k || i == j {
            return None;
        }
        let (i, j) = (i.min(j), i.max(j));
        let (bi, bj) = (i / self.grid.tile, j / self.grid.tile);
        let (r, c) = (i - bi * self.grid.tile, j - bj * self.grid.tile);
        let idx = if bi == bj {
            let w = self.grid.range(bi).len();
            r * (2 * w - r - 1) / 2 + (c - r - 1)
        } else {
            r * self.grid.range(bj).len() + c
        };
        Some((self.grid.id(bi, bj), idx))
    }

    /// Inserts a completed tile (values in the grid's pair order).
    pub fn insert(&mut self, id: usize, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.grid.pair_count(id),
            "tile value count must match the grid"
        );
        self.tiles.insert(id, values);
        self.intervals.remove(&id);
        self.timings.remove(&id);
    }

    /// [`insert`](Self::insert) with the tile's certified `[lo, hi]`
    /// envelopes (same pair order) — what the approximate tier records.
    pub fn insert_certified(&mut self, id: usize, values: Vec<f64>, intervals: Vec<(f64, f64)>) {
        self.insert(id, values);
        self.certify(id, intervals);
    }

    /// Attaches certified `[lo, hi]` envelopes to an already-present tile
    /// (same pair order) — how the coordinator records an `I` result line
    /// arriving after its `T` line.
    ///
    /// # Panics
    /// If the tile is absent or the interval count mismatches the grid.
    pub fn certify(&mut self, id: usize, intervals: Vec<(f64, f64)>) {
        assert!(
            self.tiles.contains_key(&id),
            "certify requires the tile to be present"
        );
        assert_eq!(
            intervals.len(),
            self.grid.pair_count(id),
            "tile interval count must match the grid"
        );
        self.intervals.insert(id, intervals);
    }

    /// Keeps only the listed tiles.
    pub(crate) fn restrict(mut self, ids: &[usize]) -> Self {
        let keep: std::collections::BTreeSet<usize> = ids.iter().copied().collect();
        self.tiles.retain(|id, _| keep.contains(id));
        self.intervals.retain(|id, _| keep.contains(id));
        self.timings.retain(|id, _| keep.contains(id));
        self
    }

    /// Reassembles partial artifacts into one set. All parts must share
    /// the grid and fingerprint; a tile present in several parts must
    /// carry identical bits ([`ShardError::Overlap`] otherwise).
    pub fn merge(parts: impl IntoIterator<Item = TileSet>) -> Result<TileSet, ShardError> {
        let mut parts = parts.into_iter();
        let mut merged = parts
            .next()
            .ok_or_else(|| ShardError::InvalidPlan("merge needs at least one artifact".into()))?;
        for part in parts {
            if part.grid != merged.grid {
                return Err(ShardError::Mismatch(format!(
                    "grid {:?} vs {:?}",
                    part.grid, merged.grid
                )));
            }
            if part.fingerprint != merged.fingerprint {
                return Err(ShardError::Mismatch(format!(
                    "dataset fingerprint {:016x} vs {:016x}",
                    part.fingerprint, merged.fingerprint
                )));
            }
            for (id, values) in part.tiles {
                match merged.tiles.get(&id) {
                    Some(existing) => {
                        let same = existing.len() == values.len()
                            && existing
                                .iter()
                                .zip(&values)
                                .all(|(a, b)| a.to_bits() == b.to_bits());
                        if !same {
                            return Err(ShardError::Overlap { tile: id });
                        }
                    }
                    None => {
                        merged.tiles.insert(id, values);
                    }
                }
            }
            // Certification survives the merge: a tile's intervals come
            // from whichever part carries them (an old midpoint-only
            // artifact contributes none), and two certified copies of the
            // same tile must agree bit-for-bit — with identical values and
            // fingerprints a disagreement means a corrupt artifact.
            for (id, ivs) in part.intervals {
                match merged.intervals.get(&id) {
                    Some(existing) => {
                        let same = existing.len() == ivs.len()
                            && existing.iter().zip(&ivs).all(|(a, b)| {
                                a.0.to_bits() == b.0.to_bits() && a.1.to_bits() == b.1.to_bits()
                            });
                        if !same {
                            return Err(ShardError::Overlap { tile: id });
                        }
                    }
                    None => {
                        merged.intervals.insert(id, ivs);
                    }
                }
            }
            // Timings are advisory measurements: first part wins, no
            // agreement required (two runs legitimately time differently).
            for (id, secs) in part.timings {
                merged.timings.entry(id).or_insert(secs);
            }
        }
        Ok(merged)
    }

    /// The full [`DistanceMatrix`], validating that every tile is present.
    pub fn to_matrix(&self) -> Result<DistanceMatrix, ShardError> {
        let missing = self.missing_tiles();
        if !missing.is_empty() {
            return Err(ShardError::Holes { missing });
        }
        let k = self.grid.k;
        let mut upper = vec![0.0; k * k.saturating_sub(1) / 2];
        for (&id, values) in &self.tiles {
            for ((i, j), &v) in self.grid.pairs(id).iter().zip(values) {
                upper[i * k - i * (i + 1) / 2 + (j - i - 1)] = v;
            }
        }
        Ok(DistanceMatrix::from_upper(k, &upper))
    }

    /// Writes the artifact (header + every tile) to `path`, replacing any
    /// existing file.
    pub fn save(&self, path: &Path) -> Result<(), ShardError> {
        let mut out = String::new();
        header_lines(&mut out, &self.grid, self.fingerprint);
        for (&id, values) in &self.tiles {
            tile_line(&mut out, id, values);
            if let Some(ivs) = self.intervals.get(&id) {
                interval_line(&mut out, id, ivs);
            }
            if let Some(&secs) = self.timings.get(&id) {
                timing_line(&mut out, id, secs);
            }
        }
        std::fs::write(path, out)?;
        Ok(())
    }

    /// Reads an artifact/checkpoint. A truncated or corrupt trailing tile
    /// line — the remnant of an interrupted run — is discarded (that tile
    /// is simply recomputed on resume); header corruption is an error.
    pub fn load(path: &Path) -> Result<TileSet, ShardError> {
        let mut text = String::new();
        std::fs::File::open(path)?.read_to_string(&mut text)?;
        Ok(Self::parse_artifact(&text, path)?.0)
    }

    /// Parses an artifact's text, returning the set plus the byte length
    /// of the valid prefix — resume truncates the file there before
    /// appending. Both header lines must be complete
    /// (newline-terminated): appending tiles after a half-written header
    /// would corrupt the file irrecoverably.
    fn parse_artifact(text: &str, path: &Path) -> Result<(TileSet, u64), ShardError> {
        let mut offset = 0u64;
        let mut lines = text.split_inclusive('\n');

        let magic = lines.next().unwrap_or("");
        if magic != format!("{MAGIC}\n") {
            return Err(ShardError::Format(format!(
                "{}: missing '{MAGIC}' header",
                path.display()
            )));
        }
        offset += magic.len() as u64;
        let header = lines.next().unwrap_or("");
        let (grid, fingerprint) = header
            .strip_suffix('\n')
            .and_then(parse_header)
            .ok_or_else(|| ShardError::Format(format!("{}: bad header line", path.display())))?;
        offset += header.len() as u64;

        let mut set = TileSet::empty(grid, fingerprint);
        for line in lines {
            // A line without its trailing newline, or that fails to parse,
            // is a half-written append: drop it and everything after.
            let Some(complete) = line.strip_suffix('\n') else {
                break;
            };
            // An `I` line certifies the tile it names, which must already
            // be present (its `T` line precedes it) and uncertified. A
            // tile whose `I` line was lost to a kill stays valid — just
            // uncertified — so resume never recomputes it.
            if complete.starts_with('I') {
                match parse_interval_line(complete, &grid) {
                    Some((id, ivs))
                        if set.tiles.contains_key(&id) && !set.intervals.contains_key(&id) =>
                    {
                        set.intervals.insert(id, ivs);
                        offset += line.len() as u64;
                        continue;
                    }
                    _ => break,
                }
            }
            // A `W` line times the tile it names; like `I`, its tile must
            // already be present. A lost trailing `W` costs nothing but a
            // warm-start hint.
            if complete.starts_with('W') {
                match parse_timing_line(complete, &grid) {
                    Some((id, secs))
                        if set.tiles.contains_key(&id) && !set.timings.contains_key(&id) =>
                    {
                        set.timings.insert(id, secs);
                        offset += line.len() as u64;
                        continue;
                    }
                    _ => break,
                }
            }
            match parse_tile_line(complete, &grid) {
                Some((id, values)) if !set.tiles.contains_key(&id) => {
                    set.tiles.insert(id, values);
                    offset += line.len() as u64;
                }
                _ => break,
            }
        }
        Ok((set, offset))
    }
}

fn header_lines(out: &mut String, grid: &TileGrid, fingerprint: u64) {
    out.push_str(MAGIC);
    out.push('\n');
    out.push_str(&format!(
        "k {} tile {} fingerprint {fingerprint:016x}\n",
        grid.k, grid.tile
    ));
}

/// Appends one newline-terminated `T` line — a tile's values, hex-exact —
/// to `out`. Public because the orchestrator wire protocol reuses the
/// checkpoint line format verbatim as its transfer format.
pub fn tile_line(out: &mut String, id: usize, values: &[f64]) {
    out.push_str(&format!("T {id} {}", values.len()));
    for v in values {
        out.push_str(&format!(" {:016x}", v.to_bits()));
    }
    out.push('\n');
}

/// Appends one newline-terminated `I` line — a tile's certified `[lo, hi]`
/// pairs — to `out`.
pub fn interval_line(out: &mut String, id: usize, intervals: &[(f64, f64)]) {
    out.push_str(&format!("I {id} {}", intervals.len()));
    for (lo, hi) in intervals {
        out.push_str(&format!(" {:016x} {:016x}", lo.to_bits(), hi.to_bits()));
    }
    out.push('\n');
}

/// Appends one newline-terminated `W` line — a tile's observed compute
/// wall seconds — to `out`.
pub fn timing_line(out: &mut String, id: usize, seconds: f64) {
    out.push_str(&format!("W {id} {:016x}\n", seconds.to_bits()));
}

/// An append-mode handle on a checkpoint/artifact file: the durable side
/// of a run. [`Checkpoint::open`] validates (or writes) the header,
/// resumes completed tiles, and truncates a half-written trailing line;
/// [`Checkpoint::append`] records one finished tile and flushes, so a
/// kill at any moment loses at most the line being written.
///
/// The engine's checkpointed entry points use this internally; the
/// orchestrator coordinator drives it directly, appending results as
/// they arrive off the wire.
pub struct Checkpoint {
    file: std::fs::File,
}

impl Checkpoint {
    /// Opens (or creates) the checkpoint at `path` for a `(grid,
    /// fingerprint)` run: validates both against an existing file,
    /// discards a half-written trailing line, and positions the file for
    /// appending. Returns the resumed [`TileSet`] alongside the handle.
    pub fn open(
        path: &Path,
        grid: TileGrid,
        fingerprint: u64,
    ) -> Result<(TileSet, Checkpoint), ShardError> {
        let mut expected_header = String::new();
        header_lines(&mut expected_header, &grid, fingerprint);
        let existing = match std::fs::read_to_string(path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(e.into()),
            Ok(text) if text.is_empty() => None,
            // A proper prefix of the header this run would write is the
            // remnant of a kill during the initial header write — no tile
            // was committed, so start fresh instead of appending tile
            // lines onto a half-written header.
            Ok(text) if expected_header.starts_with(&text) => None,
            Ok(text) => {
                let (set, clean_len) = TileSet::parse_artifact(&text, path)?;
                if *set.grid() != grid {
                    return Err(ShardError::Mismatch(format!(
                        "checkpoint {} is for k={} tile={}, run wants k={} tile={}",
                        path.display(),
                        set.grid().states(),
                        set.grid().tile_size(),
                        grid.states(),
                        grid.tile_size(),
                    )));
                }
                if set.fingerprint() != fingerprint {
                    return Err(ShardError::Mismatch(format!(
                        "checkpoint {} was computed from a different graph, \
                         configuration, or snapshot set \
                         (fingerprint {:016x}, expected {fingerprint:016x})",
                        path.display(),
                        set.fingerprint(),
                    )));
                }
                Some((set, clean_len))
            }
        };
        match existing {
            Some((set, clean_len)) => {
                // Truncate away any half-written tail, then append.
                let mut file = std::fs::OpenOptions::new().write(true).open(path)?;
                file.set_len(clean_len)?;
                file.seek(SeekFrom::End(0))?;
                Ok((set, Checkpoint { file }))
            }
            None => {
                let mut file = std::fs::File::create(path)?;
                file.write_all(expected_header.as_bytes())?;
                Ok((TileSet::empty(grid, fingerprint), Checkpoint { file }))
            }
        }
    }

    /// Appends one finished tile (plus its certification line when the
    /// approximate tier produced one, plus its timing line when the run
    /// observed one) and flushes.
    pub fn append(
        &mut self,
        id: usize,
        values: &[f64],
        intervals: Option<&[(f64, f64)]>,
        seconds: Option<f64>,
    ) -> Result<(), ShardError> {
        let mut line = String::new();
        tile_line(&mut line, id, values);
        if let Some(ivs) = intervals {
            interval_line(&mut line, id, ivs);
        }
        if let Some(secs) = seconds {
            timing_line(&mut line, id, secs);
        }
        self.file.write_all(line.as_bytes())?;
        self.file.flush()?;
        Ok(())
    }

    /// Appends a tile's `I` certification line on its own — the
    /// orchestrated path, where a tile's interval line arrives after its
    /// value line. The caller must have appended the tile's `T` line
    /// earlier (and at most one `I` line per tile), matching what the
    /// loader accepts.
    pub fn append_intervals(
        &mut self,
        id: usize,
        intervals: &[(f64, f64)],
    ) -> Result<(), ShardError> {
        let mut line = String::new();
        interval_line(&mut line, id, intervals);
        self.file.write_all(line.as_bytes())?;
        self.file.flush()?;
        Ok(())
    }

    /// Appends a tile's `W` timing line on its own (same contract as
    /// [`append_intervals`](Self::append_intervals)).
    pub fn append_timing(&mut self, id: usize, seconds: f64) -> Result<(), ShardError> {
        let mut line = String::new();
        timing_line(&mut line, id, seconds);
        self.file.write_all(line.as_bytes())?;
        self.file.flush()?;
        Ok(())
    }
}

fn parse_header(line: &str) -> Option<(TileGrid, u64)> {
    let mut t = line.split_ascii_whitespace();
    if t.next()? != "k" {
        return None;
    }
    let k: usize = t.next()?.parse().ok()?;
    if t.next()? != "tile" {
        return None;
    }
    let tile: usize = t.next()?.parse().ok()?;
    if t.next()? != "fingerprint" || tile == 0 {
        return None;
    }
    let fingerprint = u64::from_str_radix(t.next()?, 16).ok()?;
    if t.next().is_some() {
        return None;
    }
    Some((TileGrid::new(k, tile), fingerprint))
}

/// Parses one `T` line against `grid` (ID range and pair count must
/// match). `None` on any malformation — callers treat that as a truncated
/// checkpoint tail or a protocol violation, never a panic.
pub fn parse_tile_line(line: &str, grid: &TileGrid) -> Option<(usize, Vec<f64>)> {
    let mut t = line.split_ascii_whitespace();
    if t.next()? != "T" {
        return None;
    }
    let id: usize = t.next()?.parse().ok()?;
    if id >= grid.tile_count() {
        return None;
    }
    let count: usize = t.next()?.parse().ok()?;
    if count != grid.pair_count(id) {
        return None;
    }
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        values.push(f64::from_bits(u64::from_str_radix(t.next()?, 16).ok()?));
    }
    if t.next().is_some() {
        return None;
    }
    Some((id, values))
}

/// Parses one `I` line against `grid`. `None` on any malformation.
pub fn parse_interval_line(line: &str, grid: &TileGrid) -> Option<(usize, Vec<(f64, f64)>)> {
    let mut t = line.split_ascii_whitespace();
    if t.next()? != "I" {
        return None;
    }
    let id: usize = t.next()?.parse().ok()?;
    if id >= grid.tile_count() {
        return None;
    }
    let count: usize = t.next()?.parse().ok()?;
    if count != grid.pair_count(id) {
        return None;
    }
    let mut intervals = Vec::with_capacity(count);
    for _ in 0..count {
        let lo = f64::from_bits(u64::from_str_radix(t.next()?, 16).ok()?);
        let hi = f64::from_bits(u64::from_str_radix(t.next()?, 16).ok()?);
        intervals.push((lo, hi));
    }
    if t.next().is_some() {
        return None;
    }
    Some((id, intervals))
}

/// Parses one `W` line against `grid` (ID must be in range and the
/// seconds finite and non-negative — a corrupt timing must not poison the
/// autotuner's cost model). `None` on any malformation.
pub fn parse_timing_line(line: &str, grid: &TileGrid) -> Option<(usize, f64)> {
    let mut t = line.split_ascii_whitespace();
    if t.next()? != "W" {
        return None;
    }
    let id: usize = t.next()?.parse().ok()?;
    if id >= grid.tile_count() {
        return None;
    }
    let secs = f64::from_bits(u64::from_str_radix(t.next()?, 16).ok()?);
    if t.next().is_some() || !secs.is_finite() || secs < 0.0 {
        return None;
    }
    Some((id, secs))
}

/// Folds a tile's per-term `[lo, hi]` envelopes (four per pair, in
/// [`SndBreakdown`] order) into the tile's scalar values — bit-identical
/// to what [`SndEngine::pair_term`] reports, since each term collapses to
/// its exact value when the envelope is zero-width and to its midpoint
/// otherwise — plus, when `certified`, the per-pair `[lo, hi]` list the
/// `I` checkpoint lines persist.
fn fold_tile_terms(terms: &[(f64, f64)], certified: bool) -> (Vec<f64>, Option<Vec<(f64, f64)>>) {
    fn breakdown(t: &[(f64, f64)], pick: impl Fn(&(f64, f64)) -> f64) -> f64 {
        SndBreakdown {
            forward_pos: pick(&t[0]),
            forward_neg: pick(&t[1]),
            backward_pos: pick(&t[2]),
            backward_neg: pick(&t[3]),
        }
        .total()
    }
    let values = terms
        .chunks_exact(4)
        .map(|t| breakdown(t, |&(lo, hi)| if lo == hi { lo } else { 0.5 * (lo + hi) }))
        .collect();
    let intervals = certified.then(|| {
        terms
            .chunks_exact(4)
            .map(|t| (breakdown(t, |&(lo, _)| lo), breakdown(t, |&(_, hi)| hi)))
            .collect()
    });
    (values, intervals)
}

/// Outcome of a checkpointed shard run: the plan's tiles plus how much of
/// the plan was resumed from the checkpoint versus computed fresh.
#[derive(Debug)]
pub struct ShardRun {
    /// The plan's tiles, all present.
    pub tiles: TileSet,
    /// Plan tiles already complete in the checkpoint when the run began.
    pub resumed: usize,
    /// Plan tiles computed (and appended) by this run.
    pub computed: usize,
}

impl<'g> SndEngine<'g> {
    /// Fingerprint binding a tile artifact to everything the distances
    /// depend on: the graph topology, the engine configuration (clustering
    /// spec, γ policy, ground costs, solver, scale), and the snapshot set.
    /// A checkpoint is only resumed — and artifacts only merge — when all
    /// three match.
    pub fn shard_fingerprint(&self, states: &[NetworkState]) -> u64 {
        let mut h = Fnv::new();
        h.eat(&(self.graph().node_count() as u64).to_le_bytes());
        for (u, v) in self.graph().edges() {
            h.eat(&u.to_le_bytes());
            h.eat(&v.to_le_bytes());
        }
        // The config's Debug form covers every field that shapes the
        // distances; a config change therefore invalidates checkpoints.
        h.eat(format!("{:?}", self.config()).as_bytes());
        eat_states(&mut h, states);
        h.0
    }

    /// Computes the tiles of a [`ShardPlan`] in memory: rayon fan-out at
    /// EMD\* term granularity inside each tile, per-state geometry bundles
    /// (with their shared SSSP row caches) reused across every tile of the
    /// run and freed once no remaining tile needs them. The union of any
    /// plan partition, merged, is bit-identical to
    /// [`pairwise_distances_seq`](Self::pairwise_distances_seq).
    pub fn pairwise_tiles(&self, states: &[NetworkState], plan: &ShardPlan) -> TileSet {
        let mut set = TileSet::empty(*plan.grid(), self.shard_fingerprint(states));
        self.compute_plan_tiles(states, plan, &mut set, &mut |_, _, _, _| Ok(()))
            // lint:allow(no-unwrap) the no-op sink closure is the only error source and always returns Ok
            .expect("in-memory tile computation performs no IO");
        set
    }

    /// [`pairwise_tiles`](Self::pairwise_tiles) with a per-tile hook:
    /// `on_tile` sees each finished tile (ID, values, optional certified
    /// intervals, compute wall seconds) *before* it is recorded in the
    /// returned set, in ascending tile-ID order. This is the streaming
    /// entry point — an orchestrated worker serializes each tile onto its
    /// socket from here, overlapping the send with the next tile's
    /// compute. An error from the hook aborts the run.
    pub fn pairwise_tiles_with(
        &self,
        states: &[NetworkState],
        plan: &ShardPlan,
        on_tile: &mut OnTile<'_>,
    ) -> Result<TileSet, ShardError> {
        let mut set = TileSet::empty(*plan.grid(), self.shard_fingerprint(states));
        self.compute_plan_tiles(states, plan, &mut set, on_tile)?;
        Ok(set)
    }

    /// [`pairwise_tiles`](Self::pairwise_tiles) with checkpointing: tiles
    /// already present in the file at `path` are skipped, and each newly
    /// finished tile is appended and flushed, so killing and rerunning the
    /// same invocation never recomputes completed work. The file doubles
    /// as the shard's output artifact for [`TileSet::merge`].
    pub fn pairwise_tiles_checkpointed(
        &self,
        states: &[NetworkState],
        plan: &ShardPlan,
        path: &Path,
    ) -> Result<ShardRun, ShardError> {
        self.run_checkpointed(states, plan, path, Self::compute_plan_tiles)
    }

    /// The shared checkpointed-run skeleton: open/validate/resume the
    /// checkpoint, hand the missing tiles to `compute` with the
    /// append-and-flush hook, and account for the run. Both the batch
    /// tile path and the delta series path go through here, so the
    /// checkpoint handling can never diverge between them.
    fn run_checkpointed(
        &self,
        states: &[NetworkState],
        plan: &ShardPlan,
        path: &Path,
        compute: TileCompute<'g>,
    ) -> Result<ShardRun, ShardError> {
        let (mut set, mut ckpt) =
            Checkpoint::open(path, *plan.grid(), self.shard_fingerprint(states))?;
        let resumed = plan
            .tile_ids()
            .iter()
            .filter(|id| set.contains(**id))
            .count();
        compute(
            self,
            states,
            plan,
            &mut set,
            &mut |id, values, ivs, secs| ckpt.append(id, values, ivs, Some(secs)),
        )?;
        Ok(ShardRun {
            tiles: set.restrict(plan.tile_ids()),
            resumed,
            computed: plan.tile_ids().len() - resumed,
        })
    }

    /// Computes the plan's tiles missing from `set`, invoking `on_tile`
    /// (the checkpoint append hook) before recording each one.
    fn compute_plan_tiles(
        &self,
        states: &[NetworkState],
        plan: &ShardPlan,
        set: &mut TileSet,
        on_tile: &mut OnTile<'_>,
    ) -> Result<(), ShardError> {
        let grid = plan.grid();
        assert_eq!(
            grid.states(),
            states.len(),
            "tile grid sized for a different snapshot set"
        );
        let todo: Vec<usize> = plan
            .tile_ids()
            .iter()
            .copied()
            .filter(|id| !set.contains(*id))
            .collect();
        // An active approximate tier prices every term as a certified
        // envelope; persist those alongside the scalar tile values.
        let certified = self.approx_if_active().is_some();

        // A state's geometry bundle stays alive from the first tile that
        // needs it to the last, then is dropped — a shard never holds
        // bundles for states only other shards touch.
        let mut last_use = vec![usize::MAX; states.len()];
        let tile_states: Vec<Vec<usize>> = todo
            .iter()
            .map(|&id| {
                let mut touched: Vec<usize> =
                    grid.pairs(id).iter().flat_map(|&(i, j)| [i, j]).collect();
                touched.sort_unstable();
                touched.dedup();
                touched
            })
            .collect();
        for (pos, touched) in tile_states.iter().enumerate() {
            for &s in touched {
                last_use[s] = pos;
            }
        }

        let mut geoms: Vec<Option<StateGeometry>> = (0..states.len()).map(|_| None).collect();
        // Per-tile wall clock for the `W` checkpoint lines: geometry
        // materialization counts against the tile that triggered it —
        // that is the true cost of scheduling the tile, which is what an
        // autotuner planning leases needs.
        let mut mark = std::time::Instant::now();
        for (pos, (&id, touched)) in todo.iter().zip(&tile_states).enumerate() {
            let needed: Vec<usize> = touched
                .iter()
                .copied()
                .filter(|&s| geoms[s].is_none())
                .collect();
            let computed: Vec<(usize, StateGeometry)> = needed
                .par_iter()
                .map(|&s| (s, self.state_geometry(&states[s])))
                .collect();
            for (s, g) in computed {
                geoms[s] = Some(g);
            }

            let pairs = grid.pairs(id);
            // Term-granularity fan-out, exactly like `pairwise_distances`:
            // the four EMD* solves of a pair are independent, and finer
            // work items load-balance better than whole pairs.
            let terms: Vec<(f64, f64)> = (0..pairs.len() * 4)
                .into_par_iter()
                .map(|t| {
                    let (i, j) = pairs[t / 4];
                    let (ga, gb) = (
                        // lint:allow(no-unwrap) the materialization pass above filled every index in `pairs`
                        geoms[i].as_ref().expect("geometry materialized"),
                        // lint:allow(no-unwrap) the materialization pass above filled every index in `pairs`
                        geoms[j].as_ref().expect("geometry materialized"),
                    );
                    self.pair_term_interval(&states[i], &states[j], ga, gb, t % 4)
                })
                .collect();
            let (values, intervals) = fold_tile_terms(&terms, certified);

            let secs = mark.elapsed().as_secs_f64();
            on_tile(id, &values, intervals.as_deref(), secs)?;
            match intervals {
                Some(ivs) => set.insert_certified(id, values, ivs),
                None => set.insert(id, values),
            }
            set.set_timing(id, secs);
            for &s in touched {
                if last_use[s] == pos {
                    geoms[s] = None;
                }
            }
            mark = std::time::Instant::now();
        }
        Ok(())
    }

    /// Checkpoint-backed **series** run through the delta path: computes
    /// (or resumes) exactly the superdiagonal tiles, building each
    /// state's geometry bundle by *advancing* the previous state's bundle
    /// through their [`StateDelta`](snd_models::StateDelta) — touched-edge
    /// cost rederivation plus SSSP row repair (see [`crate::delta`]) —
    /// instead of rebuilding it from scratch. Tile values, the checkpoint
    /// format, and the fingerprint are bit-identical to
    /// [`pairwise_tiles_checkpointed`](Self::pairwise_tiles_checkpointed)
    /// over [`ShardPlan::superdiagonal`]; checkpoints written by either
    /// path resume under the other, and a later full-matrix run reuses
    /// the series tiles.
    pub fn series_tiles_checkpointed(
        &self,
        states: &[NetworkState],
        tile: usize,
        path: &Path,
    ) -> Result<ShardRun, ShardError> {
        let grid = TileGrid::new(states.len(), tile);
        let plan = ShardPlan::superdiagonal(grid);
        self.run_checkpointed(states, &plan, path, Self::compute_series_tiles)
    }

    /// Computes the plan's missing tiles with delta-advanced geometry
    /// bundles. Tiles are visited in ascending ID order, which for a
    /// superdiagonal plan walks the states monotonically — the delta
    /// chain advances one transition at a time and jumps (fresh rebuild)
    /// across long resumed stretches.
    fn compute_series_tiles(
        &self,
        states: &[NetworkState],
        plan: &ShardPlan,
        set: &mut TileSet,
        on_tile: &mut OnTile<'_>,
    ) -> Result<(), ShardError> {
        use crate::delta::DeltaStateGeometry;
        use snd_models::StateDelta;

        let grid = plan.grid();
        assert_eq!(
            grid.states(),
            states.len(),
            "tile grid sized for a different snapshot set"
        );
        let todo: Vec<usize> = plan
            .tile_ids()
            .iter()
            .copied()
            .filter(|id| !set.contains(*id))
            .collect();
        let certified = self.approx_if_active().is_some();

        let mut last_use = vec![usize::MAX; states.len()];
        let tile_states: Vec<Vec<usize>> = todo
            .iter()
            .map(|&id| {
                let mut touched: Vec<usize> =
                    grid.pairs(id).iter().flat_map(|&(i, j)| [i, j]).collect();
                touched.sort_unstable();
                touched.dedup();
                touched
            })
            .collect();
        for (pos, touched) in tile_states.iter().enumerate() {
            for &s in touched {
                last_use[s] = pos;
            }
        }

        // The delta chain: the most recently materialized state's
        // repairable geometry. Advancing it one transition costs the
        // touched-edge sweep plus row repair; a gap longer than two
        // blocks (resumed tiles) is cheaper to cross with a fresh build.
        let mut chain: Option<(usize, DeltaStateGeometry)> = None;
        let mut geoms: Vec<Option<StateGeometry>> = (0..states.len()).map(|_| None).collect();
        let mut mark = std::time::Instant::now();
        for (pos, (&id, touched)) in todo.iter().zip(&tile_states).enumerate() {
            for &s in touched {
                if geoms[s].is_some() {
                    continue;
                }
                let cache = match chain.take() {
                    Some((at, cache)) if at < s && s - at <= 2 * grid.tile_size() => {
                        let mut cache = cache;
                        for k in at + 1..=s {
                            let delta =
                                StateDelta::between(self.graph(), &states[k - 1], &states[k]);
                            if !delta.is_empty() {
                                cache = cache.step(self, &states[k], &delta);
                            }
                        }
                        cache
                    }
                    Some((at, cache)) if at == s => cache,
                    _ => DeltaStateGeometry::fresh(self, &states[s]),
                };
                geoms[s] = Some(cache.bundle(self));
                chain = Some((s, cache));
            }

            let pairs = grid.pairs(id);
            // Identical states price to exactly zero (every EMD* term of
            // an equal pair vanishes) — skip their solves outright.
            let equal: Vec<bool> = pairs.iter().map(|&(i, j)| states[i] == states[j]).collect();
            let terms: Vec<(f64, f64)> = (0..pairs.len() * 4)
                .into_par_iter()
                .map(|t| {
                    if equal[t / 4] {
                        return (0.0, 0.0);
                    }
                    let (i, j) = pairs[t / 4];
                    let (ga, gb) = (
                        // lint:allow(no-unwrap) the materialization pass above filled every index in `pairs`
                        geoms[i].as_ref().expect("geometry materialized"),
                        // lint:allow(no-unwrap) the materialization pass above filled every index in `pairs`
                        geoms[j].as_ref().expect("geometry materialized"),
                    );
                    self.pair_term_interval(&states[i], &states[j], ga, gb, t % 4)
                })
                .collect();
            let (values, intervals) = fold_tile_terms(&terms, certified);

            let secs = mark.elapsed().as_secs_f64();
            on_tile(id, &values, intervals.as_deref(), secs)?;
            match intervals {
                Some(ivs) => set.insert_certified(id, values, ivs),
                None => set.insert(id, values),
            }
            set.set_timing(id, secs);
            for &s in touched {
                if last_use[s] == pos {
                    geoms[s] = None;
                }
            }
            mark = std::time::Instant::now();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SndConfig;
    use snd_graph::generators::path_graph;

    fn states(k: usize) -> Vec<NetworkState> {
        (0..k)
            .map(|t| {
                let vals: Vec<i8> = (0..8).map(|u| ((u + t) % 3) as i8 - 1).collect();
                NetworkState::from_values(&vals)
            })
            .collect()
    }

    #[test]
    fn auto_tile_small_grids_stay_fine_grained() {
        // A handful of snapshots on a small graph: minimum tile, but the
        // grid still has several tiles to spread across shards.
        let tile = auto_tile(4, 1_000);
        assert_eq!(tile, 2);
        assert!(TileGrid::new(4, tile).tile_count() >= 3);
        // Degenerate sizes stay valid (tile >= 1, tile <= max(k, 2)).
        assert_eq!(auto_tile(0, 0), 2);
        assert_eq!(auto_tile(1, 10), 2);
    }

    #[test]
    fn auto_tile_large_series_keeps_many_tiles() {
        // 512 snapshots: tile capped well below k so round-robin plans
        // have plenty of tiles to balance.
        let tile = auto_tile(512, 10_000);
        assert!(
            (2..=16).contains(&tile),
            "tile {tile} out of expected range"
        );
        assert!(TileGrid::new(512, tile).tile_count() >= 64);
    }

    #[test]
    fn auto_tile_grows_with_graph_size() {
        // Bigger graphs (more expensive geometry) take coarser tiles.
        let small = auto_tile(256, 10_000);
        let medium = auto_tile(256, 100_000);
        let large = auto_tile(256, 1_000_000);
        assert!(small <= medium && medium <= large);
        assert!(large > small, "{small} .. {large}");
        // But never machine state: repeated calls agree (shards must
        // derive identical grids independently).
        assert_eq!(auto_tile(256, 100_000), medium);
    }

    #[test]
    fn tile_ids_roundtrip_and_cover_every_pair() {
        for (k, tile) in [(0, 3), (1, 2), (5, 2), (7, 3), (8, 8), (9, 4)] {
            let grid = TileGrid::new(k, tile);
            let mut seen = std::collections::BTreeSet::new();
            for id in 0..grid.tile_count() {
                let (bi, bj) = grid.coords(id);
                assert_eq!(grid.id(bi, bj), id, "k={k} tile={tile}");
                let pairs = grid.pairs(id);
                assert_eq!(pairs.len(), grid.pair_count(id));
                for (i, j) in pairs {
                    assert!(i < j && j < k);
                    assert!(seen.insert((i, j)), "pair ({i},{j}) appears twice");
                }
            }
            assert_eq!(seen.len(), k * k.saturating_sub(1) / 2, "k={k} tile={tile}");
        }
    }

    #[test]
    fn round_robin_plans_partition_the_grid() {
        let grid = TileGrid::new(11, 3);
        for shards in 1..5 {
            let mut all: Vec<usize> = (0..shards)
                .flat_map(|s| {
                    ShardPlan::round_robin(grid, s, shards)
                        .unwrap()
                        .tile_ids()
                        .to_vec()
                })
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..grid.tile_count()).collect::<Vec<_>>());
        }
        assert!(ShardPlan::round_robin(grid, 2, 2).is_err());
        assert!(ShardPlan::round_robin(grid, 0, 0).is_err());
    }

    #[test]
    fn superdiagonal_plan_covers_every_transition() {
        for (k, tile) in [(2, 1), (6, 2), (9, 4), (10, 3)] {
            let grid = TileGrid::new(k, tile);
            let plan = ShardPlan::superdiagonal(grid);
            let covered: std::collections::BTreeSet<(usize, usize)> = plan
                .tile_ids()
                .iter()
                .flat_map(|&id| grid.pairs(id))
                .collect();
            for t in 1..k {
                assert!(covered.contains(&(t - 1, t)), "k={k} tile={tile} t={t}");
            }
        }
    }

    #[test]
    fn sharded_tiles_merge_to_the_sequential_matrix() {
        let g = path_graph(8);
        let engine = SndEngine::new(&g, SndConfig::default());
        let s = states(6);
        let grid = TileGrid::new(6, 2);
        let parts: Vec<TileSet> = (0..3)
            .map(|i| engine.pairwise_tiles(&s, &ShardPlan::round_robin(grid, i, 3).unwrap()))
            .collect();
        let merged = TileSet::merge(parts).unwrap().to_matrix().unwrap();
        assert_eq!(merged, engine.pairwise_distances_seq(&s));
    }

    #[test]
    fn merge_rejects_holes_and_mismatches() {
        let g = path_graph(8);
        let engine = SndEngine::new(&g, SndConfig::default());
        let s = states(5);
        let grid = TileGrid::new(5, 2);
        let part0 = engine.pairwise_tiles(&s, &ShardPlan::round_robin(grid, 0, 2).unwrap());
        // A lone shard cannot produce the full matrix.
        assert!(matches!(part0.to_matrix(), Err(ShardError::Holes { .. })));
        // Mismatched fingerprints refuse to merge.
        let other = TileSet::empty(grid, part0.fingerprint() ^ 1);
        assert!(matches!(
            TileSet::merge([part0.clone(), other]),
            Err(ShardError::Mismatch(_))
        ));
        // Conflicting overlap is rejected; identical overlap is fine.
        let mut conflicting = part0.clone();
        let (&id, values) = conflicting.tiles.iter_mut().next().unwrap();
        if let Some(v) = values.first_mut() {
            *v += 1.0;
            assert!(matches!(
                TileSet::merge([part0.clone(), conflicting]),
                Err(ShardError::Overlap { tile }) if tile == id
            ));
        }
        assert!(TileSet::merge([part0.clone(), part0]).is_ok());
    }

    #[test]
    fn pair_lookup_matches_the_matrix() {
        let g = path_graph(8);
        let engine = SndEngine::new(&g, SndConfig::default());
        let s = states(7);
        let grid = TileGrid::new(7, 3);
        let set = engine.pairwise_tiles(&s, &ShardPlan::full(grid));
        let m = set.to_matrix().unwrap();
        for i in 0..7 {
            for j in 0..7 {
                assert_eq!(set.pair(i, j), Some(m.at(i, j)), "({i},{j})");
            }
        }
        assert_eq!(set.pair(0, 7), None);
    }

    #[test]
    fn resume_recovers_from_a_half_written_header() {
        let g = path_graph(8);
        let engine = SndEngine::new(&g, SndConfig::default());
        let s = states(4);
        let grid = TileGrid::new(4, 2);
        let plan = ShardPlan::full(grid);
        let path =
            std::env::temp_dir().join(format!("snd_shard_half_header_{}.ckpt", std::process::id()));

        // Simulate a kill during the very first header write: the file
        // holds a proper prefix of the header this run would produce.
        let mut header = String::new();
        header_lines(&mut header, &grid, engine.shard_fingerprint(&s));
        for cut in [1, MAGIC.len(), MAGIC.len() + 5, header.len() - 1] {
            std::fs::write(&path, &header[..cut]).unwrap();
            let run = engine
                .pairwise_tiles_checkpointed(&s, &plan, &path)
                .unwrap();
            assert_eq!(run.resumed, 0, "nothing was committed before the kill");
            assert_eq!(
                run.tiles.to_matrix().unwrap(),
                engine.pairwise_distances_seq(&s)
            );
            // The rewritten file is a complete, loadable artifact.
            TileSet::load(&path).unwrap();
        }

        // A half-written header from some *other* run is not silently
        // clobbered: it surfaces as a format error instead.
        std::fs::write(&path, "SNDSHARD v1\nk 9 tile 3 fingerprint 0123").unwrap();
        assert!(matches!(
            engine.pairwise_tiles_checkpointed(&s, &plan, &path),
            Err(ShardError::Format(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fingerprint_binds_states_graph_and_config() {
        let g = path_graph(8);
        let engine = SndEngine::new(&g, SndConfig::default());
        let s = states(4);
        let base = engine.shard_fingerprint(&s);
        assert_eq!(base, engine.shard_fingerprint(&s), "deterministic");

        // Different snapshots.
        assert_ne!(base, engine.shard_fingerprint(&states(5)));
        // Different configuration over the same graph and snapshots.
        let other_config = SndConfig {
            per_bin_gamma: SndConfig::default().per_bin_gamma + 1,
            ..Default::default()
        };
        assert_ne!(base, SndEngine::new(&g, other_config).shard_fingerprint(&s));
        // Different graph topology.
        let g2 = snd_graph::generators::cycle_graph(8);
        assert_ne!(
            base,
            SndEngine::new(&g2, SndConfig::default()).shard_fingerprint(&s)
        );
    }

    fn approx_engine_config() -> SndConfig {
        SndConfig {
            approx: Some(crate::approx::ApproxConfig {
                epsilon: 0.5,
                min_nodes: 0,
                ..Default::default()
            }),
            ..Default::default()
        }
    }

    #[test]
    fn interval_lines_roundtrip_and_certify_pairs() {
        let g = path_graph(8);
        let engine = SndEngine::new(&g, approx_engine_config());
        let s = states(5);
        let grid = TileGrid::new(5, 2);
        let path =
            std::env::temp_dir().join(format!("snd_shard_intervals_{}.ckpt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let run = engine
            .pairwise_tiles_checkpointed(&s, &ShardPlan::full(grid), &path)
            .unwrap();
        let set = run.tiles;
        for i in 0..5 {
            for j in 0..5 {
                let d = set.pair(i, j).unwrap();
                let iv = set.pair_interval(i, j).expect("approx tiles certify");
                assert!(
                    iv.lower <= d + 1e-12 && d <= iv.upper + 1e-12,
                    "({i},{j}): {d} outside [{}, {}]",
                    iv.lower,
                    iv.upper
                );
                if i == j {
                    assert_eq!((iv.lower, iv.upper), (0.0, 0.0));
                }
            }
        }
        // The checkpoint file round-trips the intervals bit-exactly.
        let loaded = TileSet::load(&path).unwrap();
        assert_eq!(loaded, set);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn old_midpoint_checkpoints_still_load_and_merge() {
        let g = path_graph(8);
        let engine = SndEngine::new(&g, approx_engine_config());
        let s = states(4);
        let grid = TileGrid::new(4, 2);
        let new_set = engine.pairwise_tiles(&s, &ShardPlan::full(grid));
        assert!(!new_set.intervals.is_empty());
        let path =
            std::env::temp_dir().join(format!("snd_shard_old_format_{}.ckpt", std::process::id()));
        new_set.save(&path).unwrap();

        // Strip the `I` and `W` lines: exactly what a pre-interval,
        // pre-timing artifact holds.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.lines().any(|l| l.starts_with("I ")));
        let old: String = text
            .lines()
            .filter(|l| !l.starts_with("I ") && !l.starts_with("W "))
            .flat_map(|l| [l, "\n"])
            .collect();
        std::fs::write(&path, old).unwrap();
        let old_set = TileSet::load(&path).unwrap();
        assert_eq!(old_set.tiles, new_set.tiles, "midpoints survive");
        assert!(old_set.intervals.is_empty());
        assert_eq!(old_set.pair_interval(0, 1), None);

        // Merging an old artifact with a certified one re-certifies it.
        let merged = TileSet::merge([old_set, new_set.clone()]).unwrap();
        assert_eq!(merged, new_set);
        assert!(merged.pair_interval(0, 1).is_some());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn exact_tier_writes_no_interval_lines() {
        let g = path_graph(8);
        let engine = SndEngine::new(&g, SndConfig::default());
        let s = states(4);
        let grid = TileGrid::new(4, 2);
        let path =
            std::env::temp_dir().join(format!("snd_shard_exact_tier_{}.ckpt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let run = engine
            .pairwise_tiles_checkpointed(&s, &ShardPlan::full(grid), &path)
            .unwrap();
        assert!(run.tiles.intervals.is_empty());
        assert_eq!(run.tiles.pair_interval(0, 1), None);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.lines().all(|l| !l.starts_with("I ")));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_interval_line_keeps_its_tile() {
        let g = path_graph(8);
        let engine = SndEngine::new(&g, approx_engine_config());
        let s = states(4);
        let grid = TileGrid::new(4, 2);
        let set = engine.pairwise_tiles(&s, &ShardPlan::full(grid));
        let path = std::env::temp_dir().join(format!(
            "snd_shard_cut_interval_{}.ckpt",
            std::process::id()
        ));
        set.save(&path).unwrap();

        // Kill mid-append of the trailing `W` line: the tile and its
        // certification survive, only the timing hint is lost.
        let text = std::fs::read_to_string(&path).unwrap();
        let cut = text.strip_suffix('\n').unwrap();
        assert!(cut.lines().last().unwrap().starts_with("W "));
        std::fs::write(&path, cut).unwrap();
        let loaded = TileSet::load(&path).unwrap();
        assert_eq!(loaded.tiles, set.tiles);
        assert_eq!(loaded.intervals.len(), set.intervals.len());
        assert_eq!(loaded.timings.len(), set.timings.len() - 1);

        // Kill mid-append of an `I` line (no `W` lines written, as under
        // a pre-timing writer): the tile survives uncertified.
        let no_w: String = text
            .lines()
            .filter(|l| !l.starts_with("W "))
            .flat_map(|l| [l, "\n"])
            .collect();
        let cut = no_w.strip_suffix('\n').unwrap();
        assert!(cut.lines().last().unwrap().starts_with("I "));
        std::fs::write(&path, cut).unwrap();
        let loaded = TileSet::load(&path).unwrap();
        // Every tile survives; only the interrupted certification is lost.
        assert_eq!(loaded.tiles, set.tiles);
        assert_eq!(loaded.intervals.len(), set.intervals.len() - 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn timing_lines_roundtrip_and_stay_out_of_identity() {
        let g = path_graph(8);
        let engine = SndEngine::new(&g, SndConfig::default());
        let s = states(5);
        let grid = TileGrid::new(5, 2);
        let path =
            std::env::temp_dir().join(format!("snd_shard_timings_{}.ckpt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let run = engine
            .pairwise_tiles_checkpointed(&s, &ShardPlan::full(grid), &path)
            .unwrap();
        // Every computed tile was timed, and the `W` lines round-trip
        // bit-exactly through the checkpoint.
        let loaded = TileSet::load(&path).unwrap();
        for id in 0..grid.tile_count() {
            let recorded = run.tiles.timing(id).expect("computed tiles are timed");
            assert!(recorded >= 0.0);
            assert_eq!(
                loaded.timing(id).map(f64::to_bits),
                Some(recorded.to_bits()),
                "tile {id}"
            );
        }
        // Timings are advisory: equality ignores them entirely...
        let mut retimed = loaded.clone();
        retimed.set_timing(0, 123.456);
        assert_eq!(retimed, loaded);
        // ...and merge keeps the first part's measurement.
        let merged = TileSet::merge([retimed.clone(), loaded.clone()]).unwrap();
        assert_eq!(merged.timing(0), Some(123.456));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checkpoint_handle_matches_engine_runs_and_rejects_mismatches() {
        let g = path_graph(8);
        let engine = SndEngine::new(&g, SndConfig::default());
        let s = states(4);
        let grid = TileGrid::new(4, 2);
        let fp = engine.shard_fingerprint(&s);
        let path =
            std::env::temp_dir().join(format!("snd_shard_handle_{}.ckpt", std::process::id()));
        let _ = std::fs::remove_file(&path);

        // Drive the public handle directly, the way the orchestrator's
        // coordinator does: append tiles as they arrive off the wire.
        let full = engine.pairwise_tiles(&s, &ShardPlan::full(grid));
        {
            let (resumed, mut ckpt) = Checkpoint::open(&path, grid, fp).unwrap();
            assert_eq!(resumed.tile_count(), 0);
            for id in 0..grid.tile_count() {
                let values: Vec<f64> = grid
                    .pairs(id)
                    .iter()
                    .map(|&(i, j)| full.pair(i, j).unwrap())
                    .collect();
                ckpt.append(id, &values, None, Some(0.25)).unwrap();
            }
        }
        // The file resumes complete and matches the engine's own artifact.
        let (resumed, _ckpt) = Checkpoint::open(&path, grid, fp).unwrap();
        assert_eq!(resumed, full);
        assert_eq!(resumed.timing(0), Some(0.25));
        // A different fingerprint or grid refuses to open.
        assert!(matches!(
            Checkpoint::open(&path, grid, fp ^ 1),
            Err(ShardError::Mismatch(_))
        ));
        assert!(matches!(
            Checkpoint::open(&path, TileGrid::new(4, 3), fp),
            Err(ShardError::Mismatch(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mixed_format_merge_downgrades_explicitly_and_recertifies() {
        // Satellite: a PR 9 interval-bearing part merged with an old
        // midpoint-only part covering *different* tiles. The merge
        // succeeds, but certification is explicitly partial — pairs from
        // the old part report no interval — and re-certifying the stale
        // part restores full certification.
        let g = path_graph(8);
        let engine = SndEngine::new(&g, approx_engine_config());
        let s = states(6);
        let grid = TileGrid::new(6, 2);
        let certified_part =
            engine.pairwise_tiles(&s, &ShardPlan::round_robin(grid, 0, 2).unwrap());
        let fresh_part = engine.pairwise_tiles(&s, &ShardPlan::round_robin(grid, 1, 2).unwrap());

        // Age part 1 into the midpoint-only format via a save/strip/load
        // round-trip (exactly what a pre-interval file holds).
        let path =
            std::env::temp_dir().join(format!("snd_shard_mixed_fmt_{}.ckpt", std::process::id()));
        fresh_part.save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let old: String = text
            .lines()
            .filter(|l| !l.starts_with("I ") && !l.starts_with("W "))
            .flat_map(|l| [l, "\n"])
            .collect();
        std::fs::write(&path, old).unwrap();
        let old_part = TileSet::load(&path).unwrap();

        let merged = TileSet::merge([certified_part.clone(), old_part]).unwrap();
        // The matrix is whole and bit-identical to the sequential
        // reference — midpoints are unaffected by lost certification.
        assert_eq!(
            merged.to_matrix().unwrap(),
            engine.pairwise_distances_seq(&s)
        );
        // The downgrade is explicit and queryable, not silent: exactly
        // the certified part's tiles certify, and every pair of an
        // old-format tile reports `None`.
        assert!(merged.certified_tile_count() < merged.tile_count());
        assert_eq!(
            merged.certified_tile_count(),
            certified_part.certified_tile_count()
        );
        for id in 0..grid.tile_count() {
            let from_old = fresh_part.contains(id) && id % 2 == 1;
            for (i, j) in grid.pairs(id) {
                assert_eq!(
                    merged.pair_interval(i, j).is_none(),
                    from_old,
                    "pair ({i},{j}) of tile {id}"
                );
            }
        }
        // Re-certifying the stale tiles (a fresh interval-bearing run of
        // the same plan) restores full certification.
        let recertified = TileSet::merge([merged, fresh_part]).unwrap();
        assert_eq!(recertified.certified_tile_count(), recertified.tile_count());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn degenerate_sizes_produce_empty_matrices() {
        let g = path_graph(8);
        let engine = SndEngine::new(&g, SndConfig::default());
        for k in [0, 1] {
            let grid = TileGrid::new(k, 4);
            let set = engine.pairwise_tiles(&states(k), &ShardPlan::full(grid));
            let m = set.to_matrix().unwrap();
            assert_eq!(m.size(), k);
        }
    }
}
