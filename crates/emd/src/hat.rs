//! ÊMD — EMD with an additive total-mass-mismatch penalty (Pele–Werman).

use snd_transport::{DenseCost, Solver};

use crate::classic;
use crate::histogram::Histogram;

/// ÊMD(P, Q, D) = EMD·min(ΣP, ΣQ) + γ·|ΣP − ΣQ|.
///
/// The paper parameterizes the penalty as `γ = α·max(D)` with `α ≥ 0.5`
/// required for metricity; we take the (integral) `γ` directly so the
/// Theorem 2 equality with [`crate::emd_alpha`] is exact in integer
/// arithmetic. The penalty term depends only on the mismatch magnitude —
/// the limitation EMD\* removes.
pub fn emd_hat(
    p: &Histogram,
    q: &Histogram,
    ground: &DenseCost,
    gamma: u32,
    solver: Solver,
) -> f64 {
    assert_eq!(p.scale(), q.scale(), "histogram scale mismatch");
    let moved_cost = classic::emd_total_cost(p, q, ground, solver);
    let mismatch = p.total().abs_diff(q.total()) as f64 / p.scale() as f64;
    moved_cost + gamma as f64 * mismatch
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::DEFAULT_SCALE;

    fn line_metric(n: usize) -> DenseCost {
        let mut d = DenseCost::filled(n, n, 0);
        for i in 0..n {
            for j in 0..n {
                *d.at_mut(i, j) = (i as i64 - j as i64).unsigned_abs() as u32;
            }
        }
        d
    }

    #[test]
    fn penalizes_mass_mismatch() {
        let d = line_metric(2);
        let p = Histogram::from_f64(&[10.0, 0.0], DEFAULT_SCALE);
        let q = Histogram::from_f64(&[1.0, 0.0], DEFAULT_SCALE);
        // No transport cost, mismatch 9, γ = 1.
        assert!((emd_hat(&p, &q, &d, 1, Solver::Simplex) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn equal_masses_have_no_penalty() {
        let d = line_metric(3);
        let p = Histogram::from_f64(&[1.0, 0.0, 1.0], DEFAULT_SCALE);
        let q = Histogram::from_f64(&[0.0, 2.0, 0.0], DEFAULT_SCALE);
        let plain = classic::emd_total_cost(&p, &q, &d, Solver::Simplex);
        let hat = emd_hat(&p, &q, &d, 7, Solver::Simplex);
        assert!((plain - hat).abs() < 1e-9);
    }

    #[test]
    fn symmetric_in_arguments() {
        let d = line_metric(3);
        let p = Histogram::from_f64(&[3.0, 0.0, 1.0], DEFAULT_SCALE);
        let q = Histogram::from_f64(&[0.0, 1.0, 0.0], DEFAULT_SCALE);
        let ab = emd_hat(&p, &q, &d, 2, Solver::Simplex);
        let ba = emd_hat(&q, &p, &d, 2, Solver::Simplex);
        assert!((ab - ba).abs() < 1e-9);
    }
}
