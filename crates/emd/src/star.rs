//! EMD\* — EMD with *local* bank bins per bin cluster (paper §4, Eq. 4).
//!
//! EMDα's single global bank makes the mass-mismatch penalty depend only on
//! the mismatch magnitude. EMD\* instead attaches `Nb` banks to every
//! *cluster* of bins and splits the mismatch across clusters proportionally
//! to their mass, so newly appeared mass is penalized according to *where*
//! it appeared: mass that shows up next to existing mass is cheap, mass that
//! appears in a far-away empty region is expensive (Fig. 5 of the paper).
//!
//! The extended ground distance follows Eq. 4:
//!
//! * regular → regular: the original `D`;
//! * regular bin `i` → bank `b` of cluster `c`: `γ_c[b] + d(cluster(i), c)`;
//! * bank `b` of `c` → regular `j`: `γ_c[b] + d(c, cluster(j))`;
//! * bank `(c,b)` → bank `(c',b')`: `γ_c[b] + γ_{c'}[b'] + d(c, c')`, zero on
//!   the exact diagonal;
//!
//! where `d(c, c') = min_{p∈c, q∈c'} D(p, q)` is the inter-cluster distance
//! and `γ_c[b] ≥ ½·max_{p,q∈c} D(p,q)` is required for metricity
//! (Theorem 3).

use snd_transport::{solve_balanced, DenseCost, Mass, Solver};

use crate::histogram::Histogram;

/// Bank geometry for EMD\*: cluster assignment of bins, per-cluster bank
/// ground distances, and the inter-cluster distance matrix.
#[derive(Clone, Debug)]
pub struct StarGeometry {
    /// Cluster id per bin (contiguous ids `0..cluster_count`).
    pub labels: Vec<u32>,
    /// Number of clusters.
    pub cluster_count: usize,
    /// `gammas[c][b]`: ground distance to/from bank `b` of cluster `c`.
    pub gammas: Vec<Vec<u32>>,
    /// `inter_cluster.at(c, c')` = `min_{p∈c, q∈c'} D(p, q)`; zero diagonal.
    pub inter_cluster: DenseCost,
}

impl StarGeometry {
    /// Geometry with a single cluster covering all bins (EMD\* then behaves
    /// like EMDα with `banks` global banks).
    pub fn single_cluster(n: usize, gammas: Vec<u32>) -> Self {
        StarGeometry {
            labels: vec![0; n],
            cluster_count: 1,
            gammas: vec![gammas],
            inter_cluster: DenseCost::filled(1, 1, 0),
        }
    }

    /// Banks per cluster (must be uniform across clusters).
    pub fn banks_per_cluster(&self) -> usize {
        let nb = self.gammas.first().map_or(0, Vec::len);
        debug_assert!(self.gammas.iter().all(|g| g.len() == nb));
        nb
    }

    /// Total number of bank bins.
    pub fn bank_count(&self) -> usize {
        self.cluster_count * self.banks_per_cluster()
    }

    /// Flat index of bank `b` of cluster `c` among all banks.
    #[inline]
    pub fn bank_index(&self, c: usize, b: usize) -> usize {
        c * self.banks_per_cluster() + b
    }

    /// Ground distance from regular bin `i` to bank `(c, b)`:
    /// `γ_c[b] + d(cluster(i), c)`.
    ///
    /// On symmetric ground distances this matches the paper's Eq. 4
    /// exactly; on directed (semimetric) grounds the two directions use the
    /// corresponding directed inter-cluster distances.
    #[inline]
    pub fn bin_to_bank(&self, i: usize, c: usize, b: usize) -> u32 {
        let ci = self.labels[i] as usize;
        self.gammas[c][b].saturating_add(self.inter_cluster.at(ci, c))
    }

    /// Ground distance from bank `(c, b)` to regular bin `i`:
    /// `γ_c[b] + d(c, cluster(i))`.
    #[inline]
    pub fn bank_to_bin(&self, c: usize, b: usize, i: usize) -> u32 {
        let ci = self.labels[i] as usize;
        self.gammas[c][b].saturating_add(self.inter_cluster.at(c, ci))
    }

    /// Ground distance between banks `(c, b)` and `(c2, b2)`.
    #[inline]
    pub fn bank_to_bank(&self, c: usize, b: usize, c2: usize, b2: usize) -> u32 {
        if c == c2 && b == b2 {
            0
        } else {
            self.gammas[c][b]
                .saturating_add(self.gammas[c2][b2])
                .saturating_add(self.inter_cluster.at(c, c2))
        }
    }

    /// Checks the Theorem 3 metricity precondition
    /// `γ_c[b] ≥ ½·max_{p,q∈c} D(p,q)` against an explicit ground distance.
    pub fn validate(&self, ground: &DenseCost) -> Result<(), String> {
        if self.labels.len() != ground.rows() || ground.rows() != ground.cols() {
            return Err("geometry/ground shape mismatch".into());
        }
        let mut max_intra = vec![0u32; self.cluster_count];
        for i in 0..self.labels.len() {
            for j in 0..self.labels.len() {
                if self.labels[i] == self.labels[j] {
                    let c = self.labels[i] as usize;
                    max_intra[c] = max_intra[c].max(ground.at(i, j));
                }
            }
        }
        for (c, gammas) in self.gammas.iter().enumerate() {
            for (b, &g) in gammas.iter().enumerate() {
                if (g as u64) * 2 < max_intra[c] as u64 {
                    return Err(format!(
                        "gamma[{c}][{b}] = {g} below half intra-cluster diameter {}",
                        max_intra[c]
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Bank capacities for one comparison: the lighter histogram's banks absorb
/// the mismatch `Δ = |ΣP − ΣQ|`, split across clusters proportionally to the
/// lighter histogram's per-cluster mass (uniformly when it is empty), and
/// evenly across the `Nb` banks of a cluster. Capacities sum to exactly `Δ`
/// so the extended problem is exactly balanced in integer arithmetic.
///
/// Note: the arXiv text prints the capacity as cluster-mass *divided by* the
/// mismatch, which cannot equalize totals; we implement the evidently
/// intended proportional allocation (see DESIGN.md).
#[derive(Clone, Debug, Default)]
pub struct BankCapacities {
    /// Per-bank capacities appended to `P` (flat `(cluster, bank)` order).
    pub p_banks: Vec<Mass>,
    /// Per-bank capacities appended to `Q`.
    pub q_banks: Vec<Mass>,
}

/// Splits `delta` proportionally to `weights` (uniformly if all zero),
/// summing to exactly `delta` via largest-remainder rounding.
pub fn proportional_split(delta: Mass, weights: &[Mass]) -> Vec<Mass> {
    let k = weights.len();
    debug_assert!(k > 0);
    let total: u128 = weights.iter().map(|&w| w as u128).sum();
    if delta == 0 {
        return vec![0; k];
    }
    if total == 0 {
        let base = delta / k as u64;
        let rem = (delta % k as u64) as usize;
        return (0..k).map(|i| base + u64::from(i < rem)).collect();
    }
    let mut shares: Vec<Mass> = Vec::with_capacity(k);
    let mut remainders: Vec<(u128, usize)> = Vec::with_capacity(k);
    let mut assigned: u128 = 0;
    for (i, &w) in weights.iter().enumerate() {
        let exact_num = delta as u128 * w as u128;
        let floor = exact_num / total;
        shares.push(floor as Mass);
        assigned += floor;
        remainders.push((exact_num % total, i));
    }
    let mut leftover = delta as u128 - assigned;
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut idx = 0;
    while leftover > 0 {
        shares[remainders[idx].1] += 1;
        leftover -= 1;
        idx = (idx + 1) % k;
    }
    shares
}

/// Splits the mismatch `delta` into flat per-(cluster, bank) capacities
/// given the lighter histogram's per-cluster masses — the allocation rule of
/// [`bank_capacities`] exposed for callers (like SND's sparse path) that
/// track cluster masses directly instead of building dense histograms.
pub fn bank_capacities_from_cluster_masses(
    delta: Mass,
    cluster_masses: &[Mass],
    banks_per_cluster: usize,
) -> Vec<Mass> {
    let per_cluster = proportional_split(delta, cluster_masses);
    let mut flat = Vec::with_capacity(cluster_masses.len() * banks_per_cluster);
    let even = vec![1 as Mass; banks_per_cluster];
    for &cap in &per_cluster {
        flat.extend(proportional_split(cap, &even));
    }
    flat
}

/// Computes the bank capacities for comparing `p` against `q` under the
/// given geometry.
pub fn bank_capacities(p: &Histogram, q: &Histogram, geom: &StarGeometry) -> BankCapacities {
    let nb = geom.banks_per_cluster();
    let bank_total = geom.bank_count();
    let (tp, tq) = (p.total(), q.total());
    let mut caps = BankCapacities {
        p_banks: vec![0; bank_total],
        q_banks: vec![0; bank_total],
    };
    if tp == tq || nb == 0 {
        return caps;
    }
    let (lighter, lighter_banks) = if tp < tq {
        (p, &mut caps.p_banks)
    } else {
        (q, &mut caps.q_banks)
    };
    let delta = tp.abs_diff(tq);
    // Per-cluster mass of the lighter histogram.
    let mut cluster_mass = vec![0 as Mass; geom.cluster_count];
    for (i, &m) in lighter.masses().iter().enumerate() {
        cluster_mass[geom.labels[i] as usize] += m;
    }
    lighter_banks.copy_from_slice(&bank_capacities_from_cluster_masses(
        delta,
        &cluster_mass,
        nb,
    ));
    caps
}

/// Builds the extended ground distance `D̃` of Eq. 4 explicitly
/// (`(n + banks) × (n + banks)`). Used by the dense reference path; the
/// sparse path materializes only the rows it needs.
pub fn extended_ground(ground: &DenseCost, geom: &StarGeometry) -> DenseCost {
    let n = ground.rows();
    debug_assert_eq!(n, ground.cols());
    let banks = geom.bank_count();
    let nb = geom.banks_per_cluster();
    let total = n + banks;
    let mut d = DenseCost::filled(total, total, 0);
    for i in 0..n {
        for j in 0..n {
            *d.at_mut(i, j) = ground.at(i, j);
        }
    }
    for c in 0..geom.cluster_count {
        for b in 0..nb {
            let k = n + geom.bank_index(c, b);
            for i in 0..n {
                *d.at_mut(i, k) = geom.bin_to_bank(i, c, b);
                *d.at_mut(k, i) = geom.bank_to_bin(c, b, i);
            }
            for c2 in 0..geom.cluster_count {
                for b2 in 0..nb {
                    let k2 = n + geom.bank_index(c2, b2);
                    *d.at_mut(k, k2) = geom.bank_to_bank(c, b, c2, b2);
                }
            }
        }
    }
    d
}

/// EMD\* of Eq. 4: extends both histograms with cluster banks (capacities
/// from [`bank_capacities`]), solves the balanced extended problem exactly,
/// and returns the raw optimal cost (`EMD(P̃,Q̃,D̃)·max(ΣP,ΣQ)` — the EMD
/// normalization cancels against the factor because extended totals equal
/// `max(ΣP,ΣQ)`).
pub fn emd_star(
    p: &Histogram,
    q: &Histogram,
    ground: &DenseCost,
    geom: &StarGeometry,
    solver: Solver,
) -> f64 {
    let n = p.len();
    assert_eq!(q.len(), n, "histogram length mismatch");
    assert_eq!(p.scale(), q.scale(), "histogram scale mismatch");
    assert_eq!(geom.labels.len(), n, "geometry covers all bins");
    assert_eq!(ground.rows(), n, "ground distance shape");
    assert_eq!(ground.cols(), n, "ground distance shape");

    if p.total() == 0 && q.total() == 0 {
        return 0.0;
    }
    let caps = bank_capacities(p, q, geom);
    let mut supplies = p.masses().to_vec();
    supplies.extend_from_slice(&caps.p_banks);
    let mut demands = q.masses().to_vec();
    demands.extend_from_slice(&caps.q_banks);
    let d = extended_ground(ground, geom);
    let plan = solve_balanced(&supplies, &demands, &d, solver);
    plan.total_cost as f64 / p.scale() as f64
}

/// Convenience wrapper bundling geometry and solver choice.
#[derive(Clone, Debug)]
pub struct EmdStar {
    /// Bank geometry.
    pub geometry: StarGeometry,
    /// Transportation solver.
    pub solver: Solver,
}

impl EmdStar {
    /// Creates an EMD\* evaluator.
    pub fn new(geometry: StarGeometry, solver: Solver) -> Self {
        EmdStar { geometry, solver }
    }

    /// Computes EMD\*(p, q) over the given ground distance.
    pub fn distance(&self, p: &Histogram, q: &Histogram, ground: &DenseCost) -> f64 {
        emd_star(p, q, ground, &self.geometry, self.solver)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alpha::emd_alpha;
    use crate::histogram::DEFAULT_SCALE;

    fn line_metric(n: usize) -> DenseCost {
        let mut d = DenseCost::filled(n, n, 0);
        for i in 0..n {
            for j in 0..n {
                *d.at_mut(i, j) = (i as i64 - j as i64).unsigned_abs() as u32;
            }
        }
        d
    }

    /// Geometry splitting `0..n` into `k` contiguous clusters with exact
    /// min-pair inter-cluster distances for the line metric.
    fn line_clusters(n: usize, k: usize, gamma: u32) -> StarGeometry {
        let size = n / k;
        let labels: Vec<u32> = (0..n).map(|i| ((i / size).min(k - 1)) as u32).collect();
        let mut inter = DenseCost::filled(k, k, 0);
        for c in 0..k {
            for c2 in 0..k {
                if c != c2 {
                    // Closest pair between contiguous segments.
                    let gap = if c < c2 {
                        c2 * size - (c * size + size - 1)
                    } else {
                        c * size - (c2 * size + size - 1)
                    };
                    *inter.at_mut(c, c2) = gap as u32;
                }
            }
        }
        StarGeometry {
            labels,
            cluster_count: k,
            gammas: vec![vec![gamma]; k],
            inter_cluster: inter,
        }
    }

    fn two_cluster_line(n: usize, gamma: u32) -> StarGeometry {
        line_clusters(n, 2, gamma)
    }

    #[test]
    fn proportional_split_sums_to_delta() {
        assert_eq!(proportional_split(10, &[1, 1, 1]), vec![4, 3, 3]);
        assert_eq!(proportional_split(9, &[2, 1]), vec![6, 3]);
        assert_eq!(proportional_split(7, &[0, 0]), vec![4, 3]);
        assert_eq!(proportional_split(0, &[5, 5]), vec![0, 0]);
        let split = proportional_split(1_000_003, &[7, 11, 13]);
        assert_eq!(split.iter().sum::<u64>(), 1_000_003);
    }

    #[test]
    fn single_cluster_star_equals_alpha() {
        // With one cluster and one bank, EMD* degenerates to EMDα.
        let d = line_metric(4);
        let gamma = d.max_entry();
        let geom = StarGeometry::single_cluster(4, vec![gamma]);
        let p = Histogram::from_f64(&[2.0, 0.0, 1.0, 0.0], DEFAULT_SCALE);
        let q = Histogram::from_f64(&[0.0, 1.0, 0.0, 0.0], DEFAULT_SCALE);
        let star = emd_star(&p, &q, &d, &geom, Solver::Simplex);
        let alpha = emd_alpha(&p, &q, &d, gamma, Solver::Simplex);
        assert!((star - alpha).abs() < 1e-9, "{star} vs {alpha}");
    }

    #[test]
    fn equal_masses_ignore_banks() {
        let d = line_metric(6);
        let geom = two_cluster_line(6, 3);
        let p = Histogram::from_f64(&[1.0, 1.0, 0.0, 0.0, 0.0, 0.0], DEFAULT_SCALE);
        let q = Histogram::from_f64(&[0.0, 0.0, 1.0, 1.0, 0.0, 0.0], DEFAULT_SCALE);
        let star = emd_star(&p, &q, &d, &geom, Solver::Simplex);
        let plain = crate::classic::emd_total_cost(&p, &q, &d, Solver::Simplex);
        assert!((star - plain).abs() < 1e-9);
    }

    #[test]
    fn local_banks_prefer_mass_near_existing_mass() {
        // Fig. 5 intuition on a line: P has mass in the left region only.
        // Q_near adds extra mass adjacent to that region; Q_far adds it at
        // the far end. EMD* must rank Q_near closer, while EMDα sees no
        // difference. Note the clustering must be finer than the two
        // "pronounced" regions: bank distances are cluster-granular, so
        // position sensitivity comes from the inter-cluster distance matrix
        // (see the geometry-granularity note in DESIGN.md).
        let n = 8;
        let d = line_metric(n);
        let geom = line_clusters(n, 4, 1);
        let p = Histogram::from_f64(&[1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0], DEFAULT_SCALE);
        let q_near = Histogram::from_f64(&[1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.0, 0.0], DEFAULT_SCALE);
        let q_far = Histogram::from_f64(&[1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1.0], DEFAULT_SCALE);
        let near = emd_star(&p, &q_near, &d, &geom, Solver::Simplex);
        let far = emd_star(&p, &q_far, &d, &geom, Solver::Simplex);
        assert!(
            near < far,
            "EMD* should prefer propagated mass: near {near}, far {far}"
        );
        let gamma = d.max_entry();
        let a_near = emd_alpha(&p, &q_near, &d, gamma, Solver::Simplex);
        let a_far = emd_alpha(&p, &q_far, &d, gamma, Solver::Simplex);
        assert!(
            (a_near - a_far).abs() < 1e-9,
            "EMDα cannot tell them apart: {a_near} vs {a_far}"
        );
    }

    #[test]
    fn validate_rejects_small_gamma() {
        let d = line_metric(6);
        let good = two_cluster_line(6, 3);
        assert!(good.validate(&d).is_ok());
        let bad = two_cluster_line(6, 0);
        assert!(bad.validate(&d).is_err());
    }

    #[test]
    fn multiple_banks_per_cluster() {
        let d = line_metric(4);
        let geom = StarGeometry::single_cluster(4, vec![3, 5]);
        let p = Histogram::from_f64(&[3.0, 0.0, 0.0, 0.0], DEFAULT_SCALE);
        let q = Histogram::from_f64(&[1.0, 0.0, 0.0, 0.0], DEFAULT_SCALE);
        // Mismatch 2 splits 1+1 over the two banks; transporting surplus to
        // the banks costs 3 + 5 = 8... but routing both units through the
        // cheaper bank is impossible (capacity 1 each), so cost = 3 + 5.
        let star = emd_star(&p, &q, &d, &geom, Solver::Simplex);
        assert!((star - 8.0).abs() < 1e-9, "{star}");
    }

    #[test]
    fn symmetric_in_arguments() {
        let d = line_metric(6);
        let geom = two_cluster_line(6, 3);
        let p = Histogram::from_f64(&[2.0, 0.0, 1.0, 0.0, 0.0, 1.0], DEFAULT_SCALE);
        let q = Histogram::from_f64(&[0.0, 1.0, 0.0, 0.0, 0.0, 0.0], DEFAULT_SCALE);
        let ab = emd_star(&p, &q, &d, &geom, Solver::Simplex);
        let ba = emd_star(&q, &p, &d, &geom, Solver::Simplex);
        assert!((ab - ba).abs() < 1e-9);
    }
}
