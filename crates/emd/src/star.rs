//! EMD\* — EMD with *local* bank bins per bin cluster (paper §4, Eq. 4).
//!
//! EMDα's single global bank makes the mass-mismatch penalty depend only on
//! the mismatch magnitude. EMD\* instead attaches `Nb` banks to every
//! *cluster* of bins and splits the mismatch across clusters proportionally
//! to their mass, so newly appeared mass is penalized according to *where*
//! it appeared: mass that shows up next to existing mass is cheap, mass that
//! appears in a far-away empty region is expensive (Fig. 5 of the paper).
//!
//! The extended ground distance follows Eq. 4:
//!
//! * regular → regular: the original `D`;
//! * regular bin `i` → bank `b` of cluster `c`: `γ_c[b] + d(cluster(i), c)`;
//! * bank `b` of `c` → regular `j`: `γ_c[b] + d(c, cluster(j))`;
//! * bank `(c,b)` → bank `(c',b')`: `γ_c[b] + γ_{c'}[b'] + d(c, c')`, zero on
//!   the exact diagonal;
//!
//! where `d(c, c') = min_{p∈c, q∈c'} D(p, q)` is the inter-cluster distance
//! and `γ_c[b] ≥ ½·max_{p,q∈c} D(p,q)` is required for metricity
//! (Theorem 3).

use snd_transport::{solve_balanced, DenseCost, Mass, Solver};

use crate::histogram::Histogram;

/// Bank geometry for EMD\*: cluster assignment of bins, per-cluster bank
/// ground distances, and the inter-cluster distance matrix.
#[derive(Clone, Debug)]
pub struct StarGeometry {
    /// Cluster id per bin (contiguous ids `0..cluster_count`).
    pub labels: Vec<u32>,
    /// Number of clusters.
    pub cluster_count: usize,
    /// `gammas[c][b]`: ground distance to/from bank `b` of cluster `c`.
    pub gammas: Vec<Vec<u32>>,
    /// `inter_cluster.at(c, c')` = `min_{p∈c, q∈c'} D(p, q)`; zero diagonal.
    pub inter_cluster: DenseCost,
}

impl StarGeometry {
    /// Geometry with a single cluster covering all bins (EMD\* then behaves
    /// like EMDα with `banks` global banks).
    pub fn single_cluster(n: usize, gammas: Vec<u32>) -> Self {
        StarGeometry {
            labels: vec![0; n],
            cluster_count: 1,
            gammas: vec![gammas],
            inter_cluster: DenseCost::filled(1, 1, 0),
        }
    }

    /// Banks per cluster (must be uniform across clusters).
    pub fn banks_per_cluster(&self) -> usize {
        let nb = self.gammas.first().map_or(0, Vec::len);
        debug_assert!(self.gammas.iter().all(|g| g.len() == nb));
        nb
    }

    /// Total number of bank bins.
    pub fn bank_count(&self) -> usize {
        self.cluster_count * self.banks_per_cluster()
    }

    /// Flat index of bank `b` of cluster `c` among all banks.
    #[inline]
    pub fn bank_index(&self, c: usize, b: usize) -> usize {
        c * self.banks_per_cluster() + b
    }

    /// Ground distance from regular bin `i` to bank `(c, b)`:
    /// `γ_c[b] + d(cluster(i), c)`.
    ///
    /// On symmetric ground distances this matches the paper's Eq. 4
    /// exactly; on directed (semimetric) grounds the two directions use the
    /// corresponding directed inter-cluster distances.
    #[inline]
    pub fn bin_to_bank(&self, i: usize, c: usize, b: usize) -> u32 {
        let ci = self.labels[i] as usize;
        self.gammas[c][b].saturating_add(self.inter_cluster.at(ci, c))
    }

    /// Ground distance from bank `(c, b)` to regular bin `i`:
    /// `γ_c[b] + d(c, cluster(i))`.
    #[inline]
    pub fn bank_to_bin(&self, c: usize, b: usize, i: usize) -> u32 {
        let ci = self.labels[i] as usize;
        self.gammas[c][b].saturating_add(self.inter_cluster.at(c, ci))
    }

    /// Ground distance between banks `(c, b)` and `(c2, b2)`.
    #[inline]
    pub fn bank_to_bank(&self, c: usize, b: usize, c2: usize, b2: usize) -> u32 {
        if c == c2 && b == b2 {
            0
        } else {
            self.gammas[c][b]
                .saturating_add(self.gammas[c2][b2])
                .saturating_add(self.inter_cluster.at(c, c2))
        }
    }

    /// Checks the Theorem 3 metricity precondition
    /// `γ_c[b] ≥ ½·max_{p,q∈c} D(p,q)` against an explicit ground distance.
    pub fn validate(&self, ground: &DenseCost) -> Result<(), String> {
        if self.labels.len() != ground.rows() || ground.rows() != ground.cols() {
            return Err("geometry/ground shape mismatch".into());
        }
        let mut max_intra = vec![0u32; self.cluster_count];
        for i in 0..self.labels.len() {
            for j in 0..self.labels.len() {
                if self.labels[i] == self.labels[j] {
                    let c = self.labels[i] as usize;
                    max_intra[c] = max_intra[c].max(ground.at(i, j));
                }
            }
        }
        for (c, gammas) in self.gammas.iter().enumerate() {
            for (b, &g) in gammas.iter().enumerate() {
                // lint:allow(lossy-cast) gammas and diameters are u32; u32 → u64 is exact
                if (g as u64) * 2 < max_intra[c] as u64 {
                    return Err(format!(
                        "gamma[{c}][{b}] = {g} below half intra-cluster diameter {}",
                        max_intra[c]
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Bank capacities for one comparison: the lighter histogram's banks absorb
/// the mismatch `Δ = |ΣP − ΣQ|`, split across clusters proportionally to the
/// lighter histogram's per-cluster mass (uniformly when it is empty), and
/// evenly across the `Nb` banks of a cluster. Capacities sum to exactly `Δ`
/// so the extended problem is exactly balanced in integer arithmetic.
///
/// Note: the arXiv text prints the capacity as cluster-mass *divided by* the
/// mismatch, which cannot equalize totals; we implement the evidently
/// intended proportional allocation (see DESIGN.md).
#[derive(Clone, Debug, Default)]
pub struct BankCapacities {
    /// Per-bank capacities appended to `P` (flat `(cluster, bank)` order).
    pub p_banks: Vec<Mass>,
    /// Per-bank capacities appended to `Q`.
    pub q_banks: Vec<Mass>,
}

/// Splits `delta` proportionally to `weights` (uniformly if all zero),
/// summing to exactly `delta` via largest-remainder rounding.
pub fn proportional_split(delta: Mass, weights: &[Mass]) -> Vec<Mass> {
    let k = weights.len();
    debug_assert!(k > 0);
    let total: u128 = weights.iter().map(|&w| w as u128).sum();
    if delta == 0 {
        return vec![0; k];
    }
    if total == 0 {
        // lint:allow(lossy-cast) k is a slice length; usize → u64 is exact on supported targets
        let base = delta / k as u64;
        // lint:allow(lossy-cast) delta % k < k, a slice length, so it fits usize
        let rem = (delta % k as u64) as usize;
        return (0..k).map(|i| base + u64::from(i < rem)).collect();
    }
    let mut shares: Vec<Mass> = Vec::with_capacity(k);
    let mut remainders: Vec<(u128, usize)> = Vec::with_capacity(k);
    let mut assigned: u128 = 0;
    for (i, &w) in weights.iter().enumerate() {
        let exact_num = delta as u128 * w as u128;
        let floor = exact_num / total;
        shares.push(floor as Mass);
        assigned += floor;
        remainders.push((exact_num % total, i));
    }
    let mut leftover = delta as u128 - assigned;
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut idx = 0;
    while leftover > 0 {
        shares[remainders[idx].1] += 1;
        leftover -= 1;
        idx = (idx + 1) % k;
    }
    shares
}

/// Splits the mismatch `delta` into flat per-(cluster, bank) capacities
/// given the lighter histogram's per-cluster masses — the allocation rule of
/// [`bank_capacities`] exposed for callers (like SND's sparse path) that
/// track cluster masses directly instead of building dense histograms.
pub fn bank_capacities_from_cluster_masses(
    delta: Mass,
    cluster_masses: &[Mass],
    banks_per_cluster: usize,
) -> Vec<Mass> {
    let per_cluster = proportional_split(delta, cluster_masses);
    let mut flat = Vec::with_capacity(cluster_masses.len() * banks_per_cluster);
    let even = vec![1 as Mass; banks_per_cluster];
    for &cap in &per_cluster {
        flat.extend(proportional_split(cap, &even));
    }
    flat
}

/// Computes the bank capacities for comparing `p` against `q` under the
/// given geometry.
pub fn bank_capacities(p: &Histogram, q: &Histogram, geom: &StarGeometry) -> BankCapacities {
    let nb = geom.banks_per_cluster();
    let bank_total = geom.bank_count();
    let (tp, tq) = (p.total(), q.total());
    let mut caps = BankCapacities {
        p_banks: vec![0; bank_total],
        q_banks: vec![0; bank_total],
    };
    if tp == tq || nb == 0 {
        return caps;
    }
    let (lighter, lighter_banks) = if tp < tq {
        (p, &mut caps.p_banks)
    } else {
        (q, &mut caps.q_banks)
    };
    let delta = tp.abs_diff(tq);
    // Per-cluster mass of the lighter histogram.
    let mut cluster_mass = vec![0 as Mass; geom.cluster_count];
    for (i, &m) in lighter.masses().iter().enumerate() {
        cluster_mass[geom.labels[i] as usize] += m;
    }
    lighter_banks.copy_from_slice(&bank_capacities_from_cluster_masses(
        delta,
        &cluster_mass,
        nb,
    ));
    caps
}

/// Builds the extended ground distance `D̃` of Eq. 4 explicitly
/// (`(n + banks) × (n + banks)`). Used by the dense reference path; the
/// sparse path materializes only the rows it needs.
pub fn extended_ground(ground: &DenseCost, geom: &StarGeometry) -> DenseCost {
    let n = ground.rows();
    debug_assert_eq!(n, ground.cols());
    let banks = geom.bank_count();
    let nb = geom.banks_per_cluster();
    let total = n + banks;
    let mut d = DenseCost::filled(total, total, 0);
    for i in 0..n {
        for j in 0..n {
            *d.at_mut(i, j) = ground.at(i, j);
        }
    }
    for c in 0..geom.cluster_count {
        for b in 0..nb {
            let k = n + geom.bank_index(c, b);
            for i in 0..n {
                *d.at_mut(i, k) = geom.bin_to_bank(i, c, b);
                *d.at_mut(k, i) = geom.bank_to_bin(c, b, i);
            }
            for c2 in 0..geom.cluster_count {
                for b2 in 0..nb {
                    let k2 = n + geom.bank_index(c2, b2);
                    *d.at_mut(k, k2) = geom.bank_to_bank(c, b, c2, b2);
                }
            }
        }
    }
    d
}

/// EMD\* of Eq. 4: extends both histograms with cluster banks (capacities
/// from [`bank_capacities`]), solves the balanced extended problem exactly,
/// and returns the raw optimal cost (`EMD(P̃,Q̃,D̃)·max(ΣP,ΣQ)` — the EMD
/// normalization cancels against the factor because extended totals equal
/// `max(ΣP,ΣQ)`).
pub fn emd_star(
    p: &Histogram,
    q: &Histogram,
    ground: &DenseCost,
    geom: &StarGeometry,
    solver: Solver,
) -> f64 {
    let n = p.len();
    assert_eq!(q.len(), n, "histogram length mismatch");
    assert_eq!(p.scale(), q.scale(), "histogram scale mismatch");
    assert_eq!(geom.labels.len(), n, "geometry covers all bins");
    assert_eq!(ground.rows(), n, "ground distance shape");
    assert_eq!(ground.cols(), n, "ground distance shape");

    if p.total() == 0 && q.total() == 0 {
        return 0.0;
    }
    let caps = bank_capacities(p, q, geom);
    let mut supplies = p.masses().to_vec();
    supplies.extend_from_slice(&caps.p_banks);
    let mut demands = q.masses().to_vec();
    demands.extend_from_slice(&caps.q_banks);
    let d = extended_ground(ground, geom);
    let plan = solve_balanced(&supplies, &demands, &d, solver);
    plan.total_cost as f64 / p.scale() as f64
}

/// EMD\* over the **net** mass differences only: the reduced-instance
/// evaluation for nearly-identical histograms (consecutive snapshots of
/// an evolving network — the delta-series regime).
///
/// The full extended problem of [`emd_star`] is `(n + banks)²` even when
/// the two histograms agree almost everywhere. This variant shrinks the
/// instance to the churned mass before solving:
///
/// * **Matched bin mass ships to itself** — `min(pᵢ, qᵢ)` cancels at
///   every bin (the extended ground's diagonal is zero).
/// * **Matched bank capacity ships to itself** — when both sides carry
///   capacity at the same bank, the overlap cancels at zero cost
///   (`bank_to_bank` is zero on the exact diagonal).
/// * **Zero rows and columns are dropped** — neutral users and empty
///   banks never enter the solver.
///
/// What remains is one supply per bin/bank of net-positive `P` mass and
/// one demand per bin/bank of net-positive `Q` mass — `O(churn + banks)`
/// a side instead of `O(n)`.
///
/// **Precondition:** the *extended* ground distance (bins and banks)
/// must satisfy the directed triangle inequality. Under it, rerouting
/// any optimal plan to ship matched mass in place never raises the cost
/// (classic flow-rerouting argument through the matched node), so the
/// reduced optimum **equals the full optimum exactly** — the integer
/// costs are equal, hence the returned `f64` is bit-identical to
/// [`emd_star`]; the property tests assert this.
///
/// Which geometries qualify, given a triangle-satisfying `ground`:
///
/// * **Per-bin** (every bin its own singleton cluster, `inter_cluster =
///   ground` — SND's default mode): `D̃(i, bank_u) = γ + D(i, u)`
///   inherits the triangle inequality directly. ✔
/// * **Single cluster** (EMDα-style): bank distances are constant. ✔
/// * **Coarse multi-bin clusters**: the min-pair inter-cluster distance
///   lets bank traffic "teleport" through a cluster's best exit, which
///   can break the triangle inequality `D̃(i, bank) ≤ D̃(i, j) + D̃(j,
///   bank)` for a bin `j` far from its cluster's exit — an optimal plan
///   may then genuinely route mass *through* a matched bin, and the
///   reduction overestimates. Use [`emd_star`] there.
pub fn emd_star_reduced(
    p: &Histogram,
    q: &Histogram,
    ground: &DenseCost,
    geom: &StarGeometry,
    solver: Solver,
) -> f64 {
    let n = p.len();
    assert_eq!(q.len(), n, "histogram length mismatch");
    assert_eq!(p.scale(), q.scale(), "histogram scale mismatch");
    assert_eq!(geom.labels.len(), n, "geometry covers all bins");
    assert_eq!(ground.rows(), n, "ground distance shape");
    assert_eq!(ground.cols(), n, "ground distance shape");

    if p.total() == 0 && q.total() == 0 {
        return 0.0;
    }
    let caps = bank_capacities(p, q, geom);
    let nb = geom.banks_per_cluster();

    // Net extended masses: matched supply/demand at a bin or bank ships
    // to itself at zero cost and drops out.
    let mut supplies: Vec<Mass> = Vec::new();
    let mut supply_idx: Vec<usize> = Vec::new(); // extended index (< n: bin; >= n: bank)
    let mut demands: Vec<Mass> = Vec::new();
    let mut demand_idx: Vec<usize> = Vec::new();
    let mut push_net = |idx: usize, s: Mass, d: Mass| {
        let matched = s.min(d);
        let (s, d) = (s - matched, d - matched);
        if s > 0 {
            supplies.push(s);
            supply_idx.push(idx);
        }
        if d > 0 {
            demands.push(d);
            demand_idx.push(idx);
        }
    };
    for i in 0..n {
        push_net(i, p.masses()[i], q.masses()[i]);
    }
    for b in 0..geom.bank_count() {
        push_net(n + b, caps.p_banks[b], caps.q_banks[b]);
    }
    if supplies.is_empty() {
        debug_assert!(demands.is_empty(), "extended problem is balanced");
        return 0.0;
    }

    // Reduced extended ground, materialized only on the surviving
    // rows × columns.
    let ext_at = |i: usize, j: usize| -> u32 {
        match (i < n, j < n) {
            (true, true) => ground.at(i, j),
            (true, false) => {
                let k = j - n;
                geom.bin_to_bank(i, k / nb, k % nb)
            }
            (false, true) => {
                let k = i - n;
                geom.bank_to_bin(k / nb, k % nb, j)
            }
            (false, false) => {
                let (k, k2) = (i - n, j - n);
                geom.bank_to_bank(k / nb, k % nb, k2 / nb, k2 % nb)
            }
        }
    };
    let mut data = Vec::with_capacity(supplies.len() * demands.len());
    for &i in &supply_idx {
        for &j in &demand_idx {
            data.push(ext_at(i, j));
        }
    }
    let d = DenseCost::from_vec(supplies.len(), demands.len(), data);
    let plan = solve_balanced(&supplies, &demands, &d, solver);
    plan.total_cost as f64 / p.scale() as f64
}

/// Convenience wrapper bundling geometry and solver choice.
#[derive(Clone, Debug)]
pub struct EmdStar {
    /// Bank geometry.
    pub geometry: StarGeometry,
    /// Transportation solver.
    pub solver: Solver,
}

impl EmdStar {
    /// Creates an EMD\* evaluator.
    pub fn new(geometry: StarGeometry, solver: Solver) -> Self {
        EmdStar { geometry, solver }
    }

    /// Computes EMD\*(p, q) over the given ground distance.
    pub fn distance(&self, p: &Histogram, q: &Histogram, ground: &DenseCost) -> f64 {
        emd_star(p, q, ground, &self.geometry, self.solver)
    }

    /// [`distance`](Self::distance) through the net-mass-reduced instance
    /// ([`emd_star_reduced`]) — exact on triangle-inequality grounds.
    pub fn distance_reduced(&self, p: &Histogram, q: &Histogram, ground: &DenseCost) -> f64 {
        emd_star_reduced(p, q, ground, &self.geometry, self.solver)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alpha::emd_alpha;
    use crate::histogram::DEFAULT_SCALE;

    fn line_metric(n: usize) -> DenseCost {
        let mut d = DenseCost::filled(n, n, 0);
        for i in 0..n {
            for j in 0..n {
                *d.at_mut(i, j) = (i as i64 - j as i64).unsigned_abs() as u32;
            }
        }
        d
    }

    /// Geometry splitting `0..n` into `k` contiguous clusters with exact
    /// min-pair inter-cluster distances for the line metric.
    fn line_clusters(n: usize, k: usize, gamma: u32) -> StarGeometry {
        let size = n / k;
        let labels: Vec<u32> = (0..n).map(|i| ((i / size).min(k - 1)) as u32).collect();
        let mut inter = DenseCost::filled(k, k, 0);
        for c in 0..k {
            for c2 in 0..k {
                if c != c2 {
                    // Closest pair between contiguous segments.
                    let gap = if c < c2 {
                        c2 * size - (c * size + size - 1)
                    } else {
                        c * size - (c2 * size + size - 1)
                    };
                    *inter.at_mut(c, c2) = gap as u32;
                }
            }
        }
        StarGeometry {
            labels,
            cluster_count: k,
            gammas: vec![vec![gamma]; k],
            inter_cluster: inter,
        }
    }

    fn two_cluster_line(n: usize, gamma: u32) -> StarGeometry {
        line_clusters(n, 2, gamma)
    }

    #[test]
    fn proportional_split_sums_to_delta() {
        assert_eq!(proportional_split(10, &[1, 1, 1]), vec![4, 3, 3]);
        assert_eq!(proportional_split(9, &[2, 1]), vec![6, 3]);
        assert_eq!(proportional_split(7, &[0, 0]), vec![4, 3]);
        assert_eq!(proportional_split(0, &[5, 5]), vec![0, 0]);
        let split = proportional_split(1_000_003, &[7, 11, 13]);
        assert_eq!(split.iter().sum::<u64>(), 1_000_003);
    }

    #[test]
    fn single_cluster_star_equals_alpha() {
        // With one cluster and one bank, EMD* degenerates to EMDα.
        let d = line_metric(4);
        let gamma = d.max_entry();
        let geom = StarGeometry::single_cluster(4, vec![gamma]);
        let p = Histogram::from_f64(&[2.0, 0.0, 1.0, 0.0], DEFAULT_SCALE);
        let q = Histogram::from_f64(&[0.0, 1.0, 0.0, 0.0], DEFAULT_SCALE);
        let star = emd_star(&p, &q, &d, &geom, Solver::Simplex);
        let alpha = emd_alpha(&p, &q, &d, gamma, Solver::Simplex);
        assert!((star - alpha).abs() < 1e-9, "{star} vs {alpha}");
    }

    #[test]
    fn equal_masses_ignore_banks() {
        let d = line_metric(6);
        let geom = two_cluster_line(6, 3);
        let p = Histogram::from_f64(&[1.0, 1.0, 0.0, 0.0, 0.0, 0.0], DEFAULT_SCALE);
        let q = Histogram::from_f64(&[0.0, 0.0, 1.0, 1.0, 0.0, 0.0], DEFAULT_SCALE);
        let star = emd_star(&p, &q, &d, &geom, Solver::Simplex);
        let plain = crate::classic::emd_total_cost(&p, &q, &d, Solver::Simplex);
        assert!((star - plain).abs() < 1e-9);
    }

    #[test]
    fn local_banks_prefer_mass_near_existing_mass() {
        // Fig. 5 intuition on a line: P has mass in the left region only.
        // Q_near adds extra mass adjacent to that region; Q_far adds it at
        // the far end. EMD* must rank Q_near closer, while EMDα sees no
        // difference. Note the clustering must be finer than the two
        // "pronounced" regions: bank distances are cluster-granular, so
        // position sensitivity comes from the inter-cluster distance matrix
        // (see the geometry-granularity note in DESIGN.md).
        let n = 8;
        let d = line_metric(n);
        let geom = line_clusters(n, 4, 1);
        let p = Histogram::from_f64(&[1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0], DEFAULT_SCALE);
        let q_near = Histogram::from_f64(&[1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.0, 0.0], DEFAULT_SCALE);
        let q_far = Histogram::from_f64(&[1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1.0], DEFAULT_SCALE);
        let near = emd_star(&p, &q_near, &d, &geom, Solver::Simplex);
        let far = emd_star(&p, &q_far, &d, &geom, Solver::Simplex);
        assert!(
            near < far,
            "EMD* should prefer propagated mass: near {near}, far {far}"
        );
        let gamma = d.max_entry();
        let a_near = emd_alpha(&p, &q_near, &d, gamma, Solver::Simplex);
        let a_far = emd_alpha(&p, &q_far, &d, gamma, Solver::Simplex);
        assert!(
            (a_near - a_far).abs() < 1e-9,
            "EMDα cannot tell them apart: {a_near} vs {a_far}"
        );
    }

    #[test]
    fn validate_rejects_small_gamma() {
        let d = line_metric(6);
        let good = two_cluster_line(6, 3);
        assert!(good.validate(&d).is_ok());
        let bad = two_cluster_line(6, 0);
        assert!(bad.validate(&d).is_err());
    }

    #[test]
    fn multiple_banks_per_cluster() {
        let d = line_metric(4);
        let geom = StarGeometry::single_cluster(4, vec![3, 5]);
        let p = Histogram::from_f64(&[3.0, 0.0, 0.0, 0.0], DEFAULT_SCALE);
        let q = Histogram::from_f64(&[1.0, 0.0, 0.0, 0.0], DEFAULT_SCALE);
        // Mismatch 2 splits 1+1 over the two banks; transporting surplus to
        // the banks costs 3 + 5 = 8... but routing both units through the
        // cheaper bank is impossible (capacity 1 each), so cost = 3 + 5.
        let star = emd_star(&p, &q, &d, &geom, Solver::Simplex);
        assert!((star - 8.0).abs() < 1e-9, "{star}");
    }

    /// Per-bin geometry over a ground metric: every bin its own cluster,
    /// `inter_cluster = D` — the extended ground inherits the triangle
    /// inequality, the reduction's precondition.
    fn per_bin_geometry(d: &DenseCost, gamma: u32) -> StarGeometry {
        let n = d.rows();
        StarGeometry {
            labels: (0..n as u32).collect(),
            cluster_count: n,
            gammas: vec![vec![gamma]; n],
            inter_cluster: d.clone(),
        }
    }

    #[test]
    fn reduced_instance_matches_full_on_triangle_grounds() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(404);
        for trial in 0..60 {
            let n = 2 + trial % 7;
            let d = line_metric(n);
            // Per-bin and single-cluster geometries both keep the
            // extended ground triangle-satisfying.
            let geom = if trial % 2 == 0 {
                per_bin_geometry(&d, 1 + trial as u32 % 4)
            } else {
                StarGeometry::single_cluster(n, vec![d.max_entry().max(1)])
            };
            let p = Histogram::from_masses((0..n).map(|_| rng.gen_range(0..6)).collect(), 1);
            let q = Histogram::from_masses((0..n).map(|_| rng.gen_range(0..6)).collect(), 1);
            let full = emd_star(&p, &q, &d, &geom, Solver::Simplex);
            let reduced = emd_star_reduced(&p, &q, &d, &geom, Solver::Simplex);
            assert_eq!(full, reduced, "trial {trial}: exact equality");
        }
    }

    #[test]
    fn reduced_instance_shrinks_to_the_churn() {
        // Histograms agreeing on every bin but two: the reduced instance
        // must not touch the agreeing mass (equal distance, and the
        // degenerate all-matched case returns zero without solving).
        let n = 64;
        let d = line_metric(n);
        let geom = per_bin_geometry(&d, 2);
        let base: Vec<u64> = (0..n as u64).map(|i| 1 + i % 3).collect();
        let p = Histogram::from_masses(base.clone(), 1);
        let mut moved = base.clone();
        moved[3] += 2;
        moved[60] -= 1;
        let q = Histogram::from_masses(moved, 1);
        assert_eq!(
            emd_star(&p, &q, &d, &geom, Solver::Simplex),
            emd_star_reduced(&p, &q, &d, &geom, Solver::Simplex),
        );
        let same = Histogram::from_masses(base, 1);
        assert_eq!(emd_star_reduced(&p, &same, &d, &geom, Solver::Simplex), 0.0);
    }

    #[test]
    fn coarse_clusters_can_break_the_reduction_precondition() {
        // Documents why the precondition matters: with coarse min-pair
        // cluster distances an optimal plan may route mass *through* a
        // matched bin, so the reduced instance is only an upper bound.
        let n = 6;
        let d = line_metric(n);
        let geom = line_clusters(n, 3, d.max_entry());
        let p = Histogram::from_masses(vec![1, 0, 1, 0, 0, 0], 1);
        let q = Histogram::from_masses(vec![0, 0, 1, 0, 0, 0], 1);
        let full = emd_star(&p, &q, &d, &geom, Solver::Simplex);
        let reduced = emd_star_reduced(&p, &q, &d, &geom, Solver::Simplex);
        assert!(reduced >= full, "reduction is always an upper bound");
    }

    #[test]
    fn symmetric_in_arguments() {
        let d = line_metric(6);
        let geom = two_cluster_line(6, 3);
        let p = Histogram::from_f64(&[2.0, 0.0, 1.0, 0.0, 0.0, 1.0], DEFAULT_SCALE);
        let q = Histogram::from_f64(&[0.0, 1.0, 0.0, 0.0, 0.0, 0.0], DEFAULT_SCALE);
        let ab = emd_star(&p, &q, &d, &geom, Solver::Simplex);
        let ba = emd_star(&q, &p, &d, &geom, Solver::Simplex);
        assert!((ab - ba).abs() < 1e-9);
    }
}
