//! EMDα — EMD with one global bank bin per histogram (Ljosa et al.).

use snd_transport::{solve_balanced, DenseCost, Solver};

use crate::histogram::Histogram;

/// EMDα: each histogram is extended with a single bank bin (`P`'s bank holds
/// `ΣQ`, `Q`'s bank holds `ΣP`, equalizing totals), the ground distance is
/// extended with a uniform bank distance `γ = α·max(D)`, and the extended
/// problem is solved exactly. Per the paper's definition the result is
/// un-normalized (`EMD(P̃, Q̃, D̃)·(ΣP + ΣQ)` = the raw optimal cost).
pub fn emd_alpha(
    p: &Histogram,
    q: &Histogram,
    ground: &DenseCost,
    gamma: u32,
    solver: Solver,
) -> f64 {
    let n = p.len();
    assert_eq!(q.len(), n, "histogram length mismatch");
    assert_eq!(p.scale(), q.scale(), "histogram scale mismatch");
    assert_eq!(ground.rows(), n, "ground distance shape");
    assert_eq!(ground.cols(), n, "ground distance shape");

    let (total_p, total_q) = (p.total(), q.total());
    if total_p == 0 && total_q == 0 {
        return 0.0;
    }

    // Extended histograms: bank of P holds ΣQ, bank of Q holds ΣP.
    let mut supplies = p.masses().to_vec();
    supplies.push(total_q);
    let mut demands = q.masses().to_vec();
    demands.push(total_p);

    // Extended ground distance: uniform γ to/from the bank, 0 bank-to-bank.
    let mut d = ground.with_extra_col(gamma).with_extra_row(gamma);
    *d.at_mut(n, n) = 0;

    let plan = solve_balanced(&supplies, &demands, &d, solver);
    plan.total_cost as f64 / p.scale() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::DEFAULT_SCALE;

    fn line_metric(n: usize) -> DenseCost {
        let mut d = DenseCost::filled(n, n, 0);
        for i in 0..n {
            for j in 0..n {
                *d.at_mut(i, j) = (i as i64 - j as i64).unsigned_abs() as u32;
            }
        }
        d
    }

    #[test]
    fn mismatch_routes_through_bank() {
        let d = line_metric(2);
        let p = Histogram::from_f64(&[3.0, 0.0], DEFAULT_SCALE);
        let q = Histogram::from_f64(&[1.0, 0.0], DEFAULT_SCALE);
        // 1 unit matched at cost 0; 2 surplus units go to Q's bank at γ=5.
        assert!((emd_alpha(&p, &q, &d, 5, Solver::Simplex) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_histograms() {
        let d = line_metric(2);
        let z = Histogram::zeros(2, DEFAULT_SCALE);
        assert_eq!(emd_alpha(&z, &z, &d, 3, Solver::Simplex), 0.0);
    }

    #[test]
    fn symmetric_in_arguments() {
        let d = line_metric(4);
        let p = Histogram::from_f64(&[2.0, 0.0, 1.0, 0.0], DEFAULT_SCALE);
        let q = Histogram::from_f64(&[0.0, 1.0, 0.0, 0.0], DEFAULT_SCALE);
        let gamma = d.max_entry(); // α = 1
        let ab = emd_alpha(&p, &q, &d, gamma, Solver::Simplex);
        let ba = emd_alpha(&q, &p, &d, gamma, Solver::Simplex);
        assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn corollary_1_bank_capacity_excess_is_free() {
        // With equal total masses, adding equal bank capacity k to both
        // sides does not change the optimum (Corollary 1): the bank-to-bank
        // distance is 0.
        let d = line_metric(3);
        let p = Histogram::from_f64(&[1.0, 0.0, 1.0], DEFAULT_SCALE);
        let q = Histogram::from_f64(&[0.0, 2.0, 0.0], DEFAULT_SCALE);
        let gamma = d.max_entry();
        let with_banks = emd_alpha(&p, &q, &d, gamma, Solver::Simplex);
        let plain = crate::classic::emd_total_cost(&p, &q, &d, Solver::Simplex);
        assert!((with_banks - plain).abs() < 1e-9);
    }
}
