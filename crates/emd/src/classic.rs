//! Classic Earth Mover's Distance (Rubner et al., Eq. 1 of the paper).

use snd_transport::{solve_unbalanced, DenseCost, Solver};

use crate::histogram::Histogram;

/// Classic EMD: the mean per-unit cost of the optimal plan that moves
/// `min(ΣP, ΣQ)` mass from `P`'s bins to `Q`'s bins over ground distance
/// `D`. Total-mass mismatch is ignored (the motivation for the extended
/// variants). Returns 0 when either histogram is empty of mass.
pub fn emd(p: &Histogram, q: &Histogram, ground: &DenseCost, solver: Solver) -> f64 {
    assert_eq!(p.len(), ground.rows(), "P bins vs ground rows");
    assert_eq!(q.len(), ground.cols(), "Q bins vs ground cols");
    assert_eq!(p.scale(), q.scale(), "histogram scale mismatch");
    let plan = solve_unbalanced(p.masses(), q.masses(), ground, solver);
    plan.mean_cost()
}

/// Raw optimal transportation cost (`Σ f·D`, not normalized) in real mass
/// units, for callers that need the unnormalized objective.
pub fn emd_total_cost(p: &Histogram, q: &Histogram, ground: &DenseCost, solver: Solver) -> f64 {
    assert_eq!(p.scale(), q.scale(), "histogram scale mismatch");
    let plan = solve_unbalanced(p.masses(), q.masses(), ground, solver);
    plan.total_cost as f64 / p.scale() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::DEFAULT_SCALE;

    fn line_metric(n: usize) -> DenseCost {
        let mut d = DenseCost::filled(n, n, 0);
        for i in 0..n {
            for j in 0..n {
                *d.at_mut(i, j) = (i as i64 - j as i64).unsigned_abs() as u32;
            }
        }
        d
    }

    #[test]
    fn identical_histograms_have_zero_distance() {
        let d = line_metric(4);
        let p = Histogram::from_f64(&[1.0, 2.0, 0.0, 1.0], DEFAULT_SCALE);
        assert_eq!(emd(&p, &p, &d, Solver::Simplex), 0.0);
    }

    #[test]
    fn unit_shift_costs_one() {
        let d = line_metric(3);
        let p = Histogram::from_f64(&[1.0, 0.0, 0.0], DEFAULT_SCALE);
        let q = Histogram::from_f64(&[0.0, 1.0, 0.0], DEFAULT_SCALE);
        assert!((emd(&p, &q, &d, Solver::Simplex) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mass_mismatch_is_ignored() {
        // Heavy P, light Q at the same bin: classic EMD sees no cost.
        let d = line_metric(2);
        let p = Histogram::from_f64(&[10.0, 0.0], DEFAULT_SCALE);
        let q = Histogram::from_f64(&[1.0, 0.0], DEFAULT_SCALE);
        assert_eq!(emd(&p, &q, &d, Solver::Simplex), 0.0);
    }

    #[test]
    fn normalization_is_mean_cost() {
        let d = line_metric(3);
        // Two units: one moves distance 2, one distance 0 → mean 1.
        let p = Histogram::from_f64(&[1.0, 0.0, 1.0], DEFAULT_SCALE);
        let q = Histogram::from_f64(&[0.0, 0.0, 2.0], DEFAULT_SCALE);
        assert!((emd(&p, &q, &d, Solver::Simplex) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn total_cost_in_real_units() {
        let d = line_metric(3);
        let p = Histogram::from_f64(&[2.0, 0.0, 0.0], DEFAULT_SCALE);
        let q = Histogram::from_f64(&[0.0, 2.0, 0.0], DEFAULT_SCALE);
        assert!((emd_total_cost(&p, &q, &d, Solver::Simplex) - 2.0).abs() < 1e-9);
    }
}
