//! Histograms with fixed-point masses.
//!
//! Real-valued masses are quantized to integer units (`mass × scale`) so the
//! transportation solvers run in exact integer arithmetic. Network states in
//! SND produce unit masses per active user, so the default scale loses
//! nothing; fractional masses (e.g. confidence-weighted opinions) quantize
//! at `2^-20` resolution.

use snd_transport::Mass;

/// Default fixed-point scale: one mass unit = `2^20` integer units.
pub const DEFAULT_SCALE: u64 = 1 << 20;

/// A histogram over `n` bins with fixed-point masses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    masses: Vec<Mass>,
    scale: u64,
}

impl Histogram {
    /// Builds a histogram directly from integer masses at the given scale.
    pub fn from_masses(masses: Vec<Mass>, scale: u64) -> Self {
        assert!(scale > 0);
        Histogram { masses, scale }
    }

    /// Quantizes real-valued masses at the given scale (values must be
    /// non-negative and finite).
    pub fn from_f64(values: &[f64], scale: u64) -> Self {
        assert!(scale > 0);
        let masses = values
            .iter()
            .map(|&v| {
                assert!(v.is_finite() && v >= 0.0, "mass must be non-negative");
                (v * scale as f64).round() as Mass
            })
            .collect();
        Histogram { masses, scale }
    }

    /// An all-zero histogram.
    pub fn zeros(n: usize, scale: u64) -> Self {
        Histogram {
            masses: vec![0; n],
            scale,
        }
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.masses.len()
    }

    /// True if the histogram has no bins.
    pub fn is_empty(&self) -> bool {
        self.masses.is_empty()
    }

    /// Fixed-point scale.
    pub fn scale(&self) -> u64 {
        self.scale
    }

    /// Raw integer masses.
    pub fn masses(&self) -> &[Mass] {
        &self.masses
    }

    /// Mutable raw masses.
    pub fn masses_mut(&mut self) -> &mut [Mass] {
        &mut self.masses
    }

    /// Integer mass of bin `i`.
    #[inline]
    pub fn mass(&self, i: usize) -> Mass {
        self.masses[i]
    }

    /// Total integer mass.
    pub fn total(&self) -> Mass {
        self.masses.iter().sum()
    }

    /// Total mass in real units.
    pub fn total_f64(&self) -> f64 {
        self.total() as f64 / self.scale as f64
    }

    /// Real-valued mass of bin `i`.
    pub fn value(&self, i: usize) -> f64 {
        self.masses[i] as f64 / self.scale as f64
    }

    /// Indices of bins with positive mass.
    pub fn support(&self) -> Vec<usize> {
        (0..self.masses.len())
            .filter(|&i| self.masses[i] > 0)
            .collect()
    }

    /// Subtracts `min(P_i, Q_i)` from both histograms bin-wise — the Lemma 2
    /// reduction exposing redundant suppliers/consumers for removal.
    /// Returns the reduced pair.
    pub fn reduce_common(p: &Histogram, q: &Histogram) -> (Histogram, Histogram) {
        assert_eq!(p.len(), q.len(), "histogram length mismatch");
        assert_eq!(p.scale, q.scale, "histogram scale mismatch");
        let mut rp = p.clone();
        let mut rq = q.clone();
        for i in 0..p.len() {
            let m = p.masses[i].min(q.masses[i]);
            rp.masses[i] -= m;
            rq.masses[i] -= m;
        }
        (rp, rq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip() {
        let h = Histogram::from_f64(&[1.0, 0.5, 0.0], DEFAULT_SCALE);
        assert_eq!(h.mass(0), DEFAULT_SCALE);
        assert_eq!(h.mass(1), DEFAULT_SCALE / 2);
        assert_eq!(h.mass(2), 0);
        assert!((h.total_f64() - 1.5).abs() < 1e-9);
        assert!((h.value(1) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn support_lists_positive_bins() {
        let h = Histogram::from_masses(vec![0, 3, 0, 1], 1);
        assert_eq!(h.support(), vec![1, 3]);
    }

    #[test]
    fn reduce_common_subtracts_minimum() {
        let p = Histogram::from_masses(vec![5, 2, 0], 1);
        let q = Histogram::from_masses(vec![3, 2, 4], 1);
        let (rp, rq) = Histogram::reduce_common(&p, &q);
        assert_eq!(rp.masses(), &[2, 0, 0]);
        assert_eq!(rq.masses(), &[0, 0, 4]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_mass_rejected() {
        let _ = Histogram::from_f64(&[-1.0], 1);
    }
}
