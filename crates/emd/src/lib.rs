//! The Earth Mover's Distance family used by SND.
//!
//! Four distances over histograms (paper §2 and §4), all computed with the
//! exact integer transportation solvers of `snd-transport`:
//!
//! * [`emd`] — classic EMD (Rubner et al.): mean per-unit cost of the
//!   optimal plan moving `min(ΣP, ΣQ)` mass. Ignores total-mass mismatch.
//! * [`emd_hat`] — ÊMD (Pele–Werman): `EMD·min(ΣP,ΣQ) + γ·|ΣP−ΣQ|` with an
//!   additive mismatch penalty `γ = α·max(D)`.
//! * [`emd_alpha`] — EMDα (Ljosa et al.): one global "bank bin" per
//!   histogram absorbs the mismatch. Theorem 2 of the paper shows it equals
//!   ÊMD whenever both are metric; the test suite verifies that equality
//!   exactly.
//! * [`EmdStar`] — the paper's contribution: banks are *local*, one group of
//!   `Nb` banks per cluster of bins, with capacities proportional to the
//!   cluster's mass, so the mismatch penalty reflects *where* mass appeared
//!   rather than only how much.
//!
//! Masses are fixed-point integers (see [`Histogram`]); distances are
//! returned as `f64` in ground-cost units.
//!
//! Every distance takes a [`Solver`]; pass [`Solver::Auto`] to let the
//! transport layer size the choice per instance (the tests pin
//! `Solver::Simplex` so cross-solver disagreements surface as test
//! failures rather than silent selection changes).

pub mod alpha;
pub mod classic;
pub mod hat;
pub mod histogram;
pub mod metric;
pub mod star;

pub use alpha::emd_alpha;
pub use classic::{emd, emd_total_cost};
pub use hat::emd_hat;
pub use histogram::{Histogram, DEFAULT_SCALE};
pub use star::{
    bank_capacities, bank_capacities_from_cluster_masses, emd_star, emd_star_reduced,
    extended_ground, proportional_split, BankCapacities, EmdStar, StarGeometry,
};

pub use snd_transport::{DenseCost, Solver};

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Random metric cost matrix: distances between random points on a line,
    /// which is always a metric.
    fn random_line_metric(n: usize, rng: &mut SmallRng) -> DenseCost {
        let pts: Vec<u32> = (0..n).map(|_| rng.gen_range(0..100)).collect();
        let mut d = DenseCost::filled(n, n, 0);
        for i in 0..n {
            for j in 0..n {
                *d.at_mut(i, j) = pts[i].abs_diff(pts[j]);
            }
        }
        d
    }

    #[test]
    fn theorem_2_emd_alpha_equals_emd_hat() {
        let mut rng = SmallRng::seed_from_u64(2017);
        for trial in 0..40 {
            let n = rng.gen_range(2..7);
            let d = random_line_metric(n, &mut rng);
            let p = Histogram::from_masses((0..n).map(|_| rng.gen_range(0..20)).collect(), 1);
            let q = Histogram::from_masses((0..n).map(|_| rng.gen_range(0..20)).collect(), 1);
            if p.total() == 0 && q.total() == 0 {
                continue;
            }
            // γ = α·max(D) with α ≥ 0.5; use α = 1 (integral, metric-safe).
            let gamma = d.max_entry();
            let a = emd_alpha(&p, &q, &d, gamma, Solver::Simplex);
            let h = emd_hat(&p, &q, &d, gamma, Solver::Simplex);
            assert!((a - h).abs() < 1e-9, "trial {trial}: EMDα {a} vs ÊMD {h}");
        }
    }

    #[test]
    fn equal_mass_histograms_reduce_every_variant_to_plain_transport() {
        let d = DenseCost::from_rows(&[&[0u32, 2][..], &[2, 0][..]]);
        let p = Histogram::from_masses(vec![4, 0], 1);
        let q = Histogram::from_masses(vec![0, 4], 1);
        let base = emd(&p, &q, &d, Solver::Simplex); // mean cost = 2
        assert!((base - 2.0).abs() < 1e-12);
        // With equal masses the mismatch penalty vanishes.
        let h = emd_hat(&p, &q, &d, 2, Solver::Simplex);
        assert!((h - 8.0).abs() < 1e-12); // EMD·min-mass = 2·4
        let a = emd_alpha(&p, &q, &d, 2, Solver::Simplex);
        assert!((a - 8.0).abs() < 1e-12);
    }
}
