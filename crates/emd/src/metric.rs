//! Metric-axiom checkers for distance measures over histogram sets.
//!
//! Used by unit and property tests to validate Theorem 1 (classic EMD is
//! metric on equal-mass histograms over a metric ground distance) and
//! Theorem 3 (EMD\* is metric when every `γ` is at least half its cluster's
//! diameter).

use crate::histogram::Histogram;

/// Result of probing the metric axioms on a finite histogram set.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricReport {
    /// Violations of `d(x, x) = 0`.
    pub identity_failures: usize,
    /// Violations of `d(x, y) = d(y, x)` beyond tolerance.
    pub symmetry_failures: usize,
    /// Violations of `d(x, z) ≤ d(x, y) + d(y, z)` beyond tolerance.
    pub triangle_failures: usize,
}

impl MetricReport {
    /// True when no axiom was violated.
    pub fn is_metric(&self) -> bool {
        self.identity_failures == 0 && self.symmetry_failures == 0 && self.triangle_failures == 0
    }
}

/// Exhaustively checks the metric axioms for `dist` over `set`.
///
/// `tol` absorbs fixed-point rounding; distances are exact rationals, so a
/// tolerance of `1e-9` relative to typical magnitudes is ample.
pub fn check_metric_axioms<F>(set: &[Histogram], dist: F, tol: f64) -> MetricReport
where
    F: Fn(&Histogram, &Histogram) -> f64,
{
    let k = set.len();
    let mut d = vec![vec![0.0; k]; k];
    for i in 0..k {
        for j in 0..k {
            d[i][j] = dist(&set[i], &set[j]);
        }
    }
    let mut report = MetricReport::default();
    for i in 0..k {
        if d[i][i].abs() > tol {
            report.identity_failures += 1;
        }
        for j in 0..k {
            if (d[i][j] - d[j][i]).abs() > tol {
                report.symmetry_failures += 1;
            }
            for l in 0..k {
                if d[i][l] > d[i][j] + d[j][l] + tol {
                    report.triangle_failures += 1;
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classic::emd;
    use crate::histogram::DEFAULT_SCALE;
    use crate::star::{emd_star, StarGeometry};
    use snd_transport::{DenseCost, Solver};

    fn line_metric(n: usize) -> DenseCost {
        let mut d = DenseCost::filled(n, n, 0);
        for i in 0..n {
            for j in 0..n {
                *d.at_mut(i, j) = (i as i64 - j as i64).unsigned_abs() as u32;
            }
        }
        d
    }

    #[test]
    fn classic_emd_metric_on_equal_mass_set() {
        let d = line_metric(4);
        // All histograms share total mass 3.0 (Theorem 1 precondition).
        let set = vec![
            Histogram::from_f64(&[3.0, 0.0, 0.0, 0.0], DEFAULT_SCALE),
            Histogram::from_f64(&[0.0, 3.0, 0.0, 0.0], DEFAULT_SCALE),
            Histogram::from_f64(&[1.0, 1.0, 1.0, 0.0], DEFAULT_SCALE),
            Histogram::from_f64(&[0.0, 1.5, 0.0, 1.5], DEFAULT_SCALE),
        ];
        let report = check_metric_axioms(&set, |p, q| emd(p, q, &d, Solver::Simplex), 1e-9);
        assert!(report.is_metric(), "{report:?}");
    }

    #[test]
    fn emd_star_metric_with_valid_gammas() {
        let n = 4;
        let d = line_metric(n);
        // Single cluster, γ = maxD ≥ ½·diameter — Theorem 3 precondition.
        let geom = StarGeometry::single_cluster(n, vec![d.max_entry()]);
        let set = vec![
            Histogram::from_f64(&[1.0, 0.0, 0.0, 0.0], DEFAULT_SCALE),
            Histogram::from_f64(&[0.0, 2.0, 0.0, 0.0], DEFAULT_SCALE),
            Histogram::from_f64(&[1.0, 1.0, 1.0, 1.0], DEFAULT_SCALE),
            Histogram::from_f64(&[0.0, 0.0, 0.0, 0.5], DEFAULT_SCALE),
            Histogram::zeros(n, DEFAULT_SCALE),
        ];
        let report = check_metric_axioms(
            &set,
            |p, q| emd_star(p, q, &d, &geom, Solver::Simplex),
            1e-9,
        );
        assert!(report.is_metric(), "{report:?}");
    }

    #[test]
    fn report_detects_violations() {
        // A deliberately broken "distance".
        let set = vec![
            Histogram::from_masses(vec![1], 1),
            Histogram::from_masses(vec![2], 1),
        ];
        let report = check_metric_axioms(
            &set,
            |p, q| {
                if p.mass(0) == q.mass(0) {
                    1.0 // identity violation
                } else {
                    (p.mass(0) as f64) - (q.mass(0) as f64) // asymmetric
                }
            },
            1e-9,
        );
        assert!(!report.is_metric());
        assert!(report.identity_failures > 0);
        assert!(report.symmetry_failures > 0);
    }
}
