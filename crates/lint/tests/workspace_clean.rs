//! The self-hosting gate: the real workspace must lint clean.
//!
//! This is the same scan `cargo xtask lint` runs in CI; having it inside
//! `cargo test -p snd-lint` means a plain test run catches regressions
//! (deleting a `total_cmp` fix or a `// SAFETY:` comment turns this red)
//! without any extra tooling.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/lint → crates → workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf()
}

#[test]
fn workspace_is_clean() {
    let ws = snd_lint::Workspace::from_dir(&workspace_root()).expect("workspace readable");
    assert!(ws.files.len() > 50, "walker found the workspace sources");
    let report = ws.check();
    assert!(
        report.clean(),
        "lint findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_unsafe_site_is_inventoried_and_documented() {
    let ws = snd_lint::Workspace::from_dir(&workspace_root()).expect("workspace readable");
    let report = ws.check();
    assert!(
        !report.unsafe_sites.is_empty(),
        "the vendored pool and model checker hold unsafe code; an empty \
         inventory means the scanner is broken"
    );
    for site in &report.unsafe_sites {
        assert!(
            !site.safety.is_empty(),
            "{}:{} lacks a SAFETY argument",
            site.path.display(),
            site.line
        );
    }
}
