//! A hand-rolled, comment/string-aware Rust lexer.
//!
//! The rules in [`crate::rules`] operate on token streams, never raw text,
//! so `partial_cmp` inside a string literal or a comment can never trip a
//! finding. Comments are not discarded: they are collected separately with
//! their line spans, because two rule mechanisms live in comments — the
//! `// lint:allow(rule) reason` escape hatch and the `// SAFETY:`
//! obligation of unsafe code.
//!
//! The lexer is deliberately approximate where precision buys nothing for
//! the rules (numeric literals are one token regardless of suffix), and
//! precise where it matters: nested block comments, raw strings with
//! arbitrary `#` guards, byte strings, and the `'a'`-char versus
//! `'a`-lifetime ambiguity are all handled.

/// What a token is; rules mostly match on [`Tok::text`], the kind exists
/// to separate identifiers from literals that happen to spell the same.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `fn`, `partial_cmp`, …).
    Ident,
    /// Operator or delimiter; multi-char operators (`::`, `+=`) are one
    /// token.
    Punct,
    /// Numeric literal, suffix included.
    Num,
    /// String / raw string / byte-string literal (contents dropped).
    Str,
    /// Char or byte-char literal.
    Char,
    /// Lifetime (`'a`), including the quote.
    Lifetime,
}

/// One source token.
#[derive(Clone, Debug)]
pub struct Tok {
    /// 1-based source line the token starts on.
    pub line: u32,
    /// Token class.
    pub kind: TokKind,
    /// Token text (empty for string literals — contents are irrelevant to
    /// every rule and may contain misleading token-lookalikes).
    pub text: String,
}

/// One comment, with the line span it covers (block comments may span
/// many lines; line comments have `start_line == end_line`).
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line of the `//` or `/*`.
    pub start_line: u32,
    /// 1-based line the comment ends on.
    pub end_line: u32,
    /// Full comment text, delimiters included.
    pub text: String,
}

/// Lexer output: the token stream plus the comment side-channel.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub toks: Vec<Tok>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Tokenizes `src`. Invalid UTF-8 never reaches here (files are read as
/// strings); malformed constructs degrade to punct tokens rather than
/// failing, since a lint pass must not die on code rustc itself rejects.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut out = Lexed::default();

    // Longest-first so `<<=`-style prefixes do not shadow their extensions.
    const MULTI: [&str; 21] = [
        "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=", "&&",
        "||", "^=", "&=", "|=", "..", "<<",
    ];

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n && (b[i + 1] == '/' || b[i + 1] == '*') {
            let start_line = line;
            let mut text = String::new();
            if b[i + 1] == '/' {
                while i < n && b[i] != '\n' {
                    text.push(b[i]);
                    i += 1;
                }
            } else {
                // Block comment; Rust block comments nest.
                let mut depth = 0usize;
                while i < n {
                    if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        text.push_str("/*");
                        i += 2;
                        continue;
                    }
                    if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        text.push_str("*/");
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                        continue;
                    }
                    if b[i] == '\n' {
                        line += 1;
                    }
                    text.push(b[i]);
                    i += 1;
                }
            }
            out.comments.push(Comment {
                start_line,
                end_line: line,
                text,
            });
            continue;
        }
        // Raw / byte string prefixes: r", r#", b", br#", br".
        if (c == 'r' || c == 'b') && is_string_start(&b, i) {
            let start_line = line;
            i = skip_string(&b, i, &mut line);
            out.toks.push(Tok {
                line: start_line,
                kind: TokKind::Str,
                text: String::new(),
            });
            continue;
        }
        // Identifiers and keywords.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            out.toks.push(Tok {
                line,
                kind: TokKind::Ident,
                text: b[start..i].iter().collect(),
            });
            continue;
        }
        // Numbers (suffixes and float forms folded into one token).
        if c.is_ascii_digit() {
            let start = i;
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            // A float's fractional part: dot NOT followed by another dot
            // (`0..n` is a range) or an identifier start (`0.max(x)` is a
            // method call).
            if i < n
                && b[i] == '.'
                && i + 1 < n
                && b[i + 1] != '.'
                && !b[i + 1].is_alphabetic()
                && b[i + 1] != '_'
            {
                i += 1;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
            }
            out.toks.push(Tok {
                line,
                kind: TokKind::Num,
                text: b[start..i].iter().collect(),
            });
            continue;
        }
        // Plain strings.
        if c == '"' {
            let start_line = line;
            i = skip_plain_string(&b, i + 1, &mut line);
            out.toks.push(Tok {
                line: start_line,
                kind: TokKind::Str,
                text: String::new(),
            });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            if let Some(next) = b.get(i + 1) {
                let is_lifetime = (next.is_alphabetic() || *next == '_')
                    && b.get(i + 2) != Some(&'\'')
                    // `'static` etc: consume ident chars, no closing quote.
                    ;
                if is_lifetime && *next != '\\' {
                    let start = i;
                    i += 1;
                    while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                    out.toks.push(Tok {
                        line,
                        kind: TokKind::Lifetime,
                        text: b[start..i].iter().collect(),
                    });
                    continue;
                }
            }
            // Char literal: consume to the closing quote, honoring escapes.
            i += 1;
            while i < n {
                if b[i] == '\\' {
                    i += 2;
                    continue;
                }
                if b[i] == '\'' {
                    i += 1;
                    break;
                }
                if b[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            out.toks.push(Tok {
                line,
                kind: TokKind::Char,
                text: String::new(),
            });
            continue;
        }
        // Multi-char operators, longest match first.
        let rest: String = b[i..n.min(i + 3)].iter().collect();
        if let Some(op) = MULTI.iter().find(|op| rest.starts_with(**op)) {
            out.toks.push(Tok {
                line,
                kind: TokKind::Punct,
                text: (*op).to_string(),
            });
            i += op.len();
            continue;
        }
        out.toks.push(Tok {
            line,
            kind: TokKind::Punct,
            text: c.to_string(),
        });
        i += 1;
    }
    merge_line_comment_runs(&mut out.comments);
    out
}

/// Coalesces runs of `//` comments on consecutive lines into one logical
/// comment, so a `// SAFETY:` argument wrapped over several lines spans
/// down to the line directly above the code it documents.
fn merge_line_comment_runs(comments: &mut Vec<Comment>) {
    let mut merged: Vec<Comment> = Vec::with_capacity(comments.len());
    for c in comments.drain(..) {
        match merged.last_mut() {
            Some(prev)
                if prev.text.starts_with("//")
                    && c.text.starts_with("//")
                    && c.start_line == prev.end_line + 1 =>
            {
                prev.end_line = c.end_line;
                prev.text.push('\n');
                prev.text.push_str(&c.text);
            }
            _ => merged.push(c),
        }
    }
    *comments = merged;
}

/// Does position `i` (at `r` or `b`) start a raw/byte string or byte-char
/// literal?
fn is_string_start(b: &[char], i: usize) -> bool {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
        if b.get(j) == Some(&'\'') {
            return true; // b'x'
        }
    }
    if b.get(j) == Some(&'r') {
        j += 1;
        while b.get(j) == Some(&'#') {
            j += 1;
        }
    }
    b.get(j) == Some(&'"')
}

/// Skips a string starting at `i` (prefix included), returning the index
/// just past its closing delimiter.
fn skip_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    let mut raw = false;
    if b[i] == 'b' {
        i += 1;
        if b.get(i) == Some(&'\'') {
            // b'x' byte-char: escape-aware single-quote scan.
            i += 1;
            while i < b.len() {
                if b[i] == '\\' {
                    i += 2;
                    continue;
                }
                if b[i] == '\'' {
                    return i + 1;
                }
                i += 1;
            }
            return i;
        }
    }
    let mut guards = 0usize;
    if b.get(i) == Some(&'r') {
        raw = true;
        i += 1;
        while b.get(i) == Some(&'#') {
            guards += 1;
            i += 1;
        }
    }
    debug_assert_eq!(b.get(i), Some(&'"'));
    i += 1;
    skip_string_body(b, i, line, raw, guards)
}

/// Skips a non-raw string body starting just after the opening quote.
fn skip_plain_string(b: &[char], i: usize, line: &mut u32) -> usize {
    skip_string_body(b, i, line, false, 0)
}

fn skip_string_body(b: &[char], mut i: usize, line: &mut u32, raw: bool, guards: usize) -> usize {
    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if !raw && c == '\\' {
            i += 2;
            continue;
        }
        if c == '"' {
            if !raw {
                return i + 1;
            }
            // Raw string: the quote must be followed by `guards` hashes.
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < guards && b.get(j) == Some(&'#') {
                seen += 1;
                j += 1;
            }
            if seen == guards {
                return j;
            }
        }
        i += 1;
    }
    i
}

/// Marks the token index ranges that belong to test code: bodies of items
/// annotated `#[test]` or with any `#[cfg(…)]` attribute mentioning
/// `test`. Returns one bool per token: `true` = inside test code.
///
/// The match is conservative toward *more* test classification
/// (`#[cfg(any(test, feature = "x"))]` counts), which is the safe
/// direction for every rule that consumes this mask: rules *exempt* test
/// code, they never require it.
pub fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text != "#" {
            i += 1;
            continue;
        }
        // Parse one attribute `#[ … ]`, noting whether it mentions `test`.
        let Some(close) = matching(toks, i + 1, "[", "]") else {
            i += 1;
            continue;
        };
        let mentions_test = toks[i + 2..close]
            .iter()
            .any(|t| t.kind == TokKind::Ident && (t.text == "test" || t.text == "tests"));
        let mut j = close + 1;
        // Skip any further attributes on the same item.
        while j < toks.len() && toks[j].text == "#" {
            match matching(toks, j + 1, "[", "]") {
                Some(c) => j = c + 1,
                None => break,
            }
        }
        if !mentions_test {
            i = close + 1;
            continue;
        }
        // Find the item's body: the first `{` before a terminating `;`.
        let mut k = j;
        let mut body = None;
        while k < toks.len() {
            match toks[k].text.as_str() {
                "{" => {
                    body = Some(k);
                    break;
                }
                ";" => break, // `mod foo;` — body is another file
                _ => k += 1,
            }
        }
        if let Some(open) = body {
            if let Some(close_body) = matching(toks, open, "{", "}") {
                for m in mask.iter_mut().take(close_body + 1).skip(open) {
                    *m = true;
                }
                // Attributes themselves count as test code too.
                for m in mask.iter_mut().take(open).skip(i) {
                    *m = true;
                }
            }
        }
        i = close + 1;
    }
    mask
}

/// Index of the token closing the bracket opened at `open` (which must
/// hold the `open_sym` token), or `None` if unbalanced.
fn matching(toks: &[Tok], open: usize, open_sym: &str, close_sym: &str) -> Option<usize> {
    if toks.get(open)?.text != open_sym {
        return None;
    }
    let mut depth = 0isize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            if t.text == open_sym {
                depth += 1;
            } else if t.text == close_sym {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let src = r##"
            // partial_cmp in a comment
            /* unsafe in /* a nested */ block comment */
            let s = "partial_cmp .unwrap()";
            let r = r#"thread::spawn "quoted" inside raw"#;
            let c = 'u';
            let b = b"unwrap";
        "##;
        let lexed = lex(src);
        assert!(lexed.toks.iter().all(|t| t.text != "partial_cmp"));
        assert!(lexed.toks.iter().all(|t| t.text != "unsafe"));
        assert!(lexed.toks.iter().all(|t| t.text != "spawn"));
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[1].text.contains("nested"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let t = texts("fn f<'a>(x: &'a str) -> &'static str { 'l': loop {} }");
        assert!(t.contains(&"'a".to_string()));
        assert!(t.contains(&"'static".to_string()));
        // A real char literal lexes as one Char token.
        let lexed = lex("let c = 'x'; let esc = '\\'';");
        assert_eq!(
            lexed
                .toks
                .iter()
                .filter(|t| t.kind == TokKind::Char)
                .count(),
            2
        );
    }

    #[test]
    fn multi_char_operators_are_single_tokens() {
        let t = texts("a::b += c >= d .. e");
        assert_eq!(t, vec!["a", "::", "b", "+=", "c", ">=", "d", "..", "e"]);
    }

    #[test]
    fn ranges_do_not_eat_numbers() {
        let t = texts("(0..self.n) 1.5 2.min(x)");
        assert!(t.contains(&"0".to_string()));
        assert!(t.contains(&"..".to_string()));
        assert!(t.contains(&"1.5".to_string()));
        assert!(t.contains(&"2".to_string()));
    }

    #[test]
    fn comment_line_spans_track_newlines() {
        let src = "let a = 1;\n/* one\ntwo\nthree */\nlet b = 2;";
        let lexed = lex(src);
        assert_eq!(lexed.comments[0].start_line, 2);
        assert_eq!(lexed.comments[0].end_line, 4);
        let b_tok = lexed.toks.iter().find(|t| t.text == "b").expect("b");
        assert_eq!(b_tok.line, 5);
    }

    #[test]
    fn cfg_test_regions_are_masked() {
        let src = r#"
            pub fn lib_code() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn helper() { y.unwrap(); }
            }
        "#;
        let lexed = lex(src);
        let mask = test_mask(&lexed.toks);
        let unwraps: Vec<bool> = lexed
            .toks
            .iter()
            .zip(&mask)
            .filter(|(t, _)| t.text == "unwrap")
            .map(|(_, &m)| m)
            .collect();
        assert_eq!(unwraps, vec![false, true]);
    }

    #[test]
    fn test_attribute_masks_fn_body() {
        let src = r#"
            #[test]
            fn probe() { a.unwrap(); }
            fn real() { b.unwrap(); }
        "#;
        let lexed = lex(src);
        let mask = test_mask(&lexed.toks);
        let unwraps: Vec<bool> = lexed
            .toks
            .iter()
            .zip(&mask)
            .filter(|(t, _)| t.text == "unwrap")
            .map(|(_, &m)| m)
            .collect();
        assert_eq!(unwraps, vec![true, false]);
    }
}
