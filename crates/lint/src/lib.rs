//! `snd-lint` — the workspace-invariant lint driver.
//!
//! The repo's correctness story rests on invariants no off-the-shelf tool
//! checks: parallel paths must stay bit-identical to `*_seq` references,
//! float orderings must be NaN-total, all fan-out must route through the
//! vendored rayon pool, and every `unsafe` block must carry its safety
//! argument next to the code. This crate enforces those invariants
//! mechanically, over a hand-rolled comment/string-aware lexer — no
//! registry dependencies, no proc macros, no `syn`.
//!
//! # Rules
//!
//! | id | rule | scope |
//! |----|------|-------|
//! | L1 `float-cmp` | no `partial_cmp` — float orderings must be NaN-total (`total_cmp`) | workspace, vendor exempt |
//! | L2 `thread-spawn` | no `std::thread` spawns — all fan-out goes through the rayon pool | workspace except `vendor/rayon`, `vendor/interleave` |
//! | L3 `par-seq` | every exported `*_par` entry point has a `*_seq` counterpart, and every exported `*_seq` reference path is exercised by at least one test | library code, vendor exempt |
//! | L4 `no-unwrap` | no `unwrap()`/`expect()` in library code of `snd-{core,graph,transport,emd,analysis,orchestrate}` | those crates' `src/`, test regions exempt |
//! | L5 `lossy-cast` | no lossy `as` casts participating in mass/cost arithmetic | `snd-transport`/`snd-emd` `src/` |
//! | L6 `safety-comment` | every `unsafe` carries a `// SAFETY:` comment | workspace, vendor included |
//!
//! # Suppression
//!
//! A finding is suppressed by a comment on the same line or the line
//! directly above: `// lint:allow(rule-id) reason` — the reason is
//! mandatory and should state the invariant that makes the flagged code
//! sound. Suppressions are counted and reported, never silent.
//!
//! Run via `cargo xtask lint` (the CI gate) or `cargo test -p snd-lint`
//! (the `workspace_is_clean` integration test runs the same scan).

pub mod lexer;
pub mod rules;

use std::fmt;
use std::path::{Path, PathBuf};

use lexer::{lex, test_mask, Comment, Tok};

/// Which part of a crate a file belongs to — rules scope on this.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// Under a crate's `src/` — library (or binary) code.
    Lib,
    /// Under a `tests/` directory.
    Test,
    /// Under a `benches/` directory.
    Bench,
    /// Under an `examples/` directory.
    Example,
}

/// One lexed source file with its workspace classification.
pub struct SourceFile {
    /// Path relative to the workspace root.
    pub path: PathBuf,
    /// Owning crate (`snd-core`, `rayon`, `snd` for the root facade, …).
    pub crate_name: String,
    /// Library / test / bench / example.
    pub kind: FileKind,
    /// Whether the file lives under `vendor/`.
    pub vendor: bool,
    /// Token stream (comments and string contents excluded).
    pub toks: Vec<Tok>,
    /// Comment side-channel.
    pub comments: Vec<Comment>,
    /// Per-token flag: inside `#[test]` / `#[cfg(test)]` code.
    pub test_mask: Vec<bool>,
}

impl SourceFile {
    /// Lexes `src` into a classified file.
    pub fn new(path: impl Into<PathBuf>, crate_name: &str, kind: FileKind, src: &str) -> Self {
        let path = path.into();
        let vendor = path.starts_with("vendor");
        let lexed = lex(src);
        let mask = test_mask(&lexed.toks);
        SourceFile {
            path,
            crate_name: crate_name.to_string(),
            kind,
            vendor,
            toks: lexed.toks,
            comments: lexed.comments,
            test_mask: mask,
        }
    }

    /// True when the token at `idx` is test code (test file, bench,
    /// example, or a `#[cfg(test)]` region of a lib file).
    pub fn is_test_tok(&self, idx: usize) -> bool {
        self.kind != FileKind::Lib || self.test_mask[idx]
    }

    /// The comment-based suppression lookup: is a finding of `rule` on
    /// `line` covered by a `lint:allow(rule) reason` on the same line or
    /// the line directly above?
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.comments.iter().any(|c| {
            (c.end_line == line || c.end_line + 1 == line)
                && c.text.split("lint:allow(").nth(1).is_some_and(|rest| {
                    match rest.split_once(')') {
                        Some((id, reason)) => id.trim() == rule && !reason.trim().is_empty(),
                        None => false,
                    }
                })
        })
    }
}

/// The lexed workspace the rules run over.
pub struct Workspace {
    /// Every classified `.rs` file.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Loads and lexes every workspace `.rs` file under `root`
    /// (`crates/*/{src,tests,benches}`, `vendor/*/src`, the root facade's
    /// `src`/`tests`/`examples`, and `xtask/src`). `target/` and `.git/`
    /// are never entered.
    pub fn from_dir(root: &Path) -> std::io::Result<Workspace> {
        let mut files = Vec::new();
        for entry in ["crates", "vendor"] {
            let dir = root.join(entry);
            if !dir.is_dir() {
                continue;
            }
            for krate in read_dir_sorted(&dir)? {
                if !krate.is_dir() {
                    continue;
                }
                let crate_name =
                    manifest_crate_name(&krate).unwrap_or_else(|| file_name_string(&krate));
                for (sub, kind) in [
                    ("src", FileKind::Lib),
                    ("tests", FileKind::Test),
                    ("benches", FileKind::Bench),
                    ("examples", FileKind::Example),
                ] {
                    collect_rs(root, &krate.join(sub), &crate_name, kind, &mut files)?;
                }
            }
        }
        let root_name = manifest_crate_name(root).unwrap_or_else(|| "root".to_string());
        for (sub, kind) in [
            ("src", FileKind::Lib),
            ("tests", FileKind::Test),
            ("benches", FileKind::Bench),
            ("examples", FileKind::Example),
        ] {
            collect_rs(root, &root.join(sub), &root_name, kind, &mut files)?;
        }
        collect_rs(
            root,
            &root.join("xtask/src"),
            "xtask",
            FileKind::Lib,
            &mut files,
        )?;
        Ok(Workspace { files })
    }

    /// Builds a workspace from in-memory sources — the fixture entry point
    /// the rule tests use. Each tuple is `(path, crate_name, kind, src)`.
    pub fn from_sources(sources: &[(&str, &str, FileKind, &str)]) -> Workspace {
        Workspace {
            files: sources
                .iter()
                .map(|(p, c, k, s)| SourceFile::new(*p, c, *k, s))
                .collect(),
        }
    }

    /// Runs every rule, producing the full report.
    pub fn check(&self) -> Report {
        rules::run(self)
    }
}

fn file_name_string(p: &Path) -> String {
    p.file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default()
}

/// Reads the `name = "…"` out of a crate's `Cargo.toml` `[package]`
/// table, so lint crate names match cargo's.
fn manifest_crate_name(krate: &Path) -> Option<String> {
    let text = std::fs::read_to_string(krate.join("Cargo.toml")).ok()?;
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start().strip_prefix('=')?.trim();
                return Some(rest.trim_matches('"').to_string());
            }
        }
    }
    None
}

fn read_dir_sorted(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    Ok(entries)
}

/// Recursively collects `.rs` files under `dir` into `files`.
fn collect_rs(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    kind: FileKind,
    files: &mut Vec<SourceFile>,
) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for path in read_dir_sorted(dir)? {
        if path.is_dir() {
            let name = file_name_string(&path);
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs(root, &path, crate_name, kind, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let src = std::fs::read_to_string(&path)?;
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            files.push(SourceFile::new(rel, crate_name, kind, &src));
        }
    }
    Ok(())
}

/// One rule violation.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule id (`float-cmp`, `no-unwrap`, …).
    pub rule: &'static str,
    /// File (workspace-relative).
    pub path: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// One documented `unsafe` site — the L6 inventory entry.
#[derive(Clone, Debug)]
pub struct UnsafeSite {
    /// File (workspace-relative).
    pub path: PathBuf,
    /// 1-based line of the `unsafe` token.
    pub line: u32,
    /// First line of the `SAFETY:` argument (empty when missing —
    /// which is also a finding).
    pub safety: String,
}

/// The full lint report: findings, suppressions, and the unsafe
/// inventory.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed violations — a non-empty list fails the gate.
    pub findings: Vec<Finding>,
    /// Violations covered by a `lint:allow` with a reason.
    pub allowed: Vec<Finding>,
    /// Every `unsafe` site in the workspace with its safety argument.
    pub unsafe_sites: Vec<UnsafeSite>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the gate passes.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The unsafe inventory as markdown.
    pub fn unsafe_inventory(&self) -> String {
        let mut out = String::from("# Unsafe inventory\n\n");
        out.push_str(&format!(
            "{} `unsafe` site(s) in the workspace; every one must carry a \
             `// SAFETY:` argument (rule `safety-comment`).\n\n",
            self.unsafe_sites.len()
        ));
        for site in &self.unsafe_sites {
            out.push_str(&format!(
                "- `{}:{}` — {}\n",
                site.path.display(),
                site.line,
                if site.safety.is_empty() {
                    "**UNDOCUMENTED**"
                } else {
                    &site.safety
                }
            ));
        }
        out
    }
}
