//! The six workspace rules, L1–L6, over the lexed token streams.

use std::collections::{HashMap, HashSet};

use crate::lexer::{Tok, TokKind};
use crate::{FileKind, Finding, Report, SourceFile, UnsafeSite, Workspace};

/// L1 rule id.
pub const FLOAT_CMP: &str = "float-cmp";
/// L2 rule id.
pub const THREAD_SPAWN: &str = "thread-spawn";
/// L3 rule id.
pub const PAR_SEQ: &str = "par-seq";
/// L4 rule id.
pub const NO_UNWRAP: &str = "no-unwrap";
/// L5 rule id.
pub const LOSSY_CAST: &str = "lossy-cast";
/// L6 rule id.
pub const SAFETY_COMMENT: &str = "safety-comment";

/// Crates whose library code forbids `unwrap()`/`expect()` (L4): the
/// load-bearing numeric core plus the analysis layer (its prediction and
/// intervention entry points run on user-supplied CLI inputs, so
/// degenerate data must surface as `AnalysisError`, not panics) and the
/// orchestration layer (it parses wire bytes from arbitrary peers, so a
/// malformed line must come back as `OrchestrateError`, never a panic).
/// CLI, benches, and tests stay exempt.
const NO_UNWRAP_CRATES: [&str; 6] = [
    "snd-core",
    "snd-graph",
    "snd-transport",
    "snd-emd",
    "snd-analysis",
    "snd-orchestrate",
];

/// Crates whose mass-and-cost arithmetic is covered by L5.
const LOSSY_CAST_CRATES: [&str; 2] = ["snd-transport", "snd-emd"];

/// Crates allowed to touch `std::thread` directly: the pool itself and
/// the model checker that schedules it.
const SPAWN_EXEMPT_CRATES: [&str; 2] = ["rayon", "interleave"];

/// Cast targets L5 treats as value-preserving from every integer type
/// the transport/emd arithmetic uses (`u32` costs, `u64` masses,
/// `i64`/`i128` accumulators): only genuinely wider types qualify.
const WIDENING_TARGETS: [&str; 3] = ["i128", "u128", "f64"];

/// Integer-ish cast targets L5 inspects.
const NARROW_TARGETS: [&str; 11] = [
    "i8", "i16", "i32", "i64", "u8", "u16", "u32", "u64", "isize", "usize", "f32",
];

/// Runs every rule over the workspace.
pub fn run(ws: &Workspace) -> Report {
    let mut report = Report {
        files_scanned: ws.files.len(),
        ..Report::default()
    };
    for file in &ws.files {
        float_cmp(file, &mut report);
        thread_spawn(file, &mut report);
        no_unwrap(file, &mut report);
        lossy_cast(file, &mut report);
        safety_comment(file, &mut report);
    }
    par_seq(ws, &mut report);
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    report
}

/// Records `finding` as suppressed or live depending on the allowlist.
fn push(file: &SourceFile, report: &mut Report, finding: Finding) {
    if file.allowed(finding.rule, finding.line) {
        report.allowed.push(finding);
    } else {
        report.findings.push(finding);
    }
}

/// L1: float comparisons must be NaN-total. Any `partial_cmp` call in
/// non-vendor code is flagged — the workspace orders scores, distances,
/// and costs, all of which can be NaN after a degenerate run, and a
/// partial ordering either panics (`.unwrap()`) or silently reorders
/// (`unwrap_or(Equal)` makes the comparator non-transitive, which
/// `sort_by` may answer with an arbitrary permutation).
fn float_cmp(file: &SourceFile, report: &mut Report) {
    if file.vendor {
        return;
    }
    for (i, t) in file.toks.iter().enumerate() {
        if t.kind == TokKind::Ident && t.text == "partial_cmp" {
            push(
                file,
                report,
                Finding {
                    rule: FLOAT_CMP,
                    path: file.path.clone(),
                    line: t.line,
                    message: "partial_cmp on float keys; use f64::total_cmp \
                              (NaN-total, deterministic)"
                        .to_string(),
                },
            );
            let _ = i;
        }
    }
}

/// L2: all fan-out routes through the vendored rayon pool. Direct
/// `std::thread::spawn` / `std::thread::Builder` use outside the pool
/// (and the model checker that instruments it) bypasses the shared
/// worker accounting, `RAYON_NUM_THREADS`, and the panic-safety
/// protocol.
fn thread_spawn(file: &SourceFile, report: &mut Report) {
    if SPAWN_EXEMPT_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    let toks = &file.toks;
    for i in 2..toks.len() {
        let is_path = toks[i - 2].text == "thread" && toks[i - 1].text == "::";
        if is_path && (toks[i].text == "spawn" || toks[i].text == "Builder") {
            push(
                file,
                report,
                Finding {
                    rule: THREAD_SPAWN,
                    path: file.path.clone(),
                    line: toks[i].line,
                    message: format!(
                        "std::thread::{} outside the vendored rayon pool; \
                         route fan-out through rayon::join / par_iter",
                        toks[i].text
                    ),
                },
            );
        }
    }
}

/// L4: no `unwrap()`/`expect()` in the numeric core's library code.
/// Load-bearing fallibility must surface as structured errors; provably
/// unreachable panics carry a `// lint:allow(no-unwrap) <invariant>`.
fn no_unwrap(file: &SourceFile, report: &mut Report) {
    if file.vendor
        || file.kind != FileKind::Lib
        || !NO_UNWRAP_CRATES.contains(&file.crate_name.as_str())
    {
        return;
    }
    let toks = &file.toks;
    for i in 1..toks.len() {
        if file.test_mask[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && toks[i - 1].text == "."
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
        {
            push(
                file,
                report,
                Finding {
                    rule: NO_UNWRAP,
                    path: file.path.clone(),
                    line: t.line,
                    message: format!(
                        "{}() in library code; return a structured error or \
                         annotate the invariant with lint:allow(no-unwrap)",
                        t.text
                    ),
                },
            );
        }
    }
}

/// L5: lossy `as` casts in mass-and-cost arithmetic (the PR 2 overflow
/// class). A cast is flagged when its target is not provably widening
/// (`i128`/`u128`/`f64`) **and** the cast participates directly in
/// arithmetic or a value comparison — `d + rc as u64`, `acc -= x as
/// i64`. Index plumbing (`basis[cell_id as usize]`, `row: i as u32`)
/// carries ids, not masses, and is not flagged.
fn lossy_cast(file: &SourceFile, report: &mut Report) {
    if file.vendor
        || file.kind != FileKind::Lib
        || !LOSSY_CAST_CRATES.contains(&file.crate_name.as_str())
    {
        return;
    }
    const AFTER_OPS: [&str; 11] = ["+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!="];
    const BEFORE_OPS: [&str; 16] = [
        "+", "-", "*", "/", "%", "+=", "-=", "*=", "/=", "%=", "<", "<=", ">", ">=", "==", "!=",
    ];
    let toks = &file.toks;
    for i in 1..toks.len() {
        if file.test_mask[i] || toks[i].text != "as" || toks[i].kind != TokKind::Ident {
            continue;
        }
        let Some(target) = toks.get(i + 1) else {
            continue;
        };
        if !NARROW_TARGETS.contains(&target.text.as_str()) {
            continue;
        }
        debug_assert!(!WIDENING_TARGETS.contains(&target.text.as_str()));
        let after_arith = toks
            .get(i + 2)
            .is_some_and(|n| AFTER_OPS.contains(&n.text.as_str()));
        let before_arith = expr_start(toks, i - 1)
            .and_then(|s| s.checked_sub(1))
            .and_then(|p| toks.get(p))
            .is_some_and(|p| BEFORE_OPS.contains(&p.text.as_str()));
        if after_arith || before_arith {
            push(
                file,
                report,
                Finding {
                    rule: LOSSY_CAST,
                    path: file.path.clone(),
                    line: toks[i].line,
                    message: format!(
                        "possibly lossy `as {}` inside mass/cost arithmetic; \
                         widen (i128), use a checked conversion, or annotate \
                         the width invariant with lint:allow(lossy-cast)",
                        target.text
                    ),
                },
            );
        }
    }
}

/// Walks backward over one primary expression ending at token `end`,
/// returning the index of its first token. Handles `a.b`, `a::b`,
/// `f(x)`, `v[i]`, and parenthesized groups; returns `None` when `end`
/// does not terminate a recognizable primary.
fn expr_start(toks: &[Tok], end: usize) -> Option<usize> {
    let mut j = end;
    loop {
        // Reduce the current component to its first token.
        match toks.get(j)?.text.as_str() {
            ")" => j = match_back(toks, j, "(", ")")?,
            "]" => j = match_back(toks, j, "[", "]")?,
            _ if matches!(toks[j].kind, TokKind::Ident | TokKind::Num) => {}
            _ => return None,
        }
        if j == 0 {
            return Some(0);
        }
        let p = j - 1;
        let prev = &toks[p];
        // `f(…)` / `v[…]`: the callee/base ident belongs to the primary.
        if (toks[j].text == "(" || toks[j].text == "[")
            && matches!(prev.kind, TokKind::Ident | TokKind::Num)
        {
            j = p;
            if j == 0 {
                return Some(0);
            }
            let p2 = j - 1;
            if toks[p2].text == "." || toks[p2].text == "::" {
                if p2 == 0 {
                    return Some(0);
                }
                j = p2 - 1;
                continue;
            }
            return Some(j);
        }
        if prev.text == "." || prev.text == "::" {
            if p == 0 {
                return Some(0);
            }
            j = p - 1;
            continue;
        }
        return Some(j);
    }
}

/// Index of the token opening the bracket closed at `close`.
fn match_back(toks: &[Tok], close: usize, open_sym: &str, close_sym: &str) -> Option<usize> {
    let mut depth = 0isize;
    for k in (0..=close).rev() {
        let t = &toks[k];
        if t.kind == TokKind::Punct {
            if t.text == close_sym {
                depth += 1;
            } else if t.text == open_sym {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
        }
    }
    None
}

/// How far above an `unsafe` token its `// SAFETY:` comment may end
/// (attributes or a signature line may sit between them).
const SAFETY_WINDOW: u32 = 3;

/// L6: every `unsafe` carries its safety argument in a `// SAFETY:`
/// comment — trailing on the same line or ending within
/// [`SAFETY_WINDOW`] lines above. An `unsafe fn` declaration may instead
/// document its caller obligation in a `# Safety` doc section (the
/// standard idiom; its body still needs per-block `// SAFETY:`). Vendor
/// code included: the hand-rolled pool is exactly where the obligation
/// bites. Also builds the unsafe inventory.
fn safety_comment(file: &SourceFile, report: &mut Report) {
    for (idx, t) in file.toks.iter().enumerate() {
        if !(t.kind == TokKind::Ident && t.text == "unsafe") {
            continue;
        }
        let is_fn_decl = file.toks.get(idx + 1).is_some_and(|n| n.text == "fn");
        // `unsafe fn(...)` with no name is a fn-pointer *type*, not a
        // declaration — the obligation lives where such a pointer is
        // produced and called, so the type itself is not a site.
        if is_fn_decl && file.toks.get(idx + 2).is_some_and(|n| n.text == "(") {
            continue;
        }
        let safety = file.comments.iter().rev().find(|c| {
            (c.text.contains("SAFETY:") || (is_fn_decl && c.text.contains("# Safety")))
                && (c.start_line == t.line
                    || (c.end_line < t.line && t.line - c.end_line <= SAFETY_WINDOW))
        });
        let summary = safety
            .map(|c| {
                c.text
                    .split("SAFETY:")
                    .nth(1)
                    .or_else(|| c.text.split("# Safety").nth(1))
                    .unwrap_or("")
                    .lines()
                    .map(|l| l.trim().trim_start_matches(['/', '*', ' ']).trim())
                    .find(|l| !l.is_empty())
                    .unwrap_or("")
                    .to_string()
            })
            .unwrap_or_default();
        report.unsafe_sites.push(UnsafeSite {
            path: file.path.clone(),
            line: t.line,
            safety: summary,
        });
        if safety.is_none() {
            push(
                file,
                report,
                Finding {
                    rule: SAFETY_COMMENT,
                    path: file.path.clone(),
                    line: t.line,
                    message: "unsafe without a `// SAFETY:` comment directly above, \
                              trailing on the same line, or (for `unsafe fn`) a \
                              `# Safety` doc section"
                        .to_string(),
                },
            );
        }
    }
}

/// L3: the bit-identity contract. Every exported `*_par` entry point
/// must have an exported `*_seq` counterpart (`solve_par` ↔
/// `solve_seq`), and every exported `*_seq` reference must be exercised
/// by at least one test — otherwise nothing pins the parallel path to
/// its reference semantics.
fn par_seq(ws: &Workspace, report: &mut Report) {
    struct Decl {
        file: usize,
        line: u32,
    }
    let mut decls: HashMap<String, Decl> = HashMap::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if file.vendor || file.kind != FileKind::Lib {
            continue;
        }
        let toks = &file.toks;
        for i in 0..toks.len() {
            if toks[i].text != "fn" || file.test_mask[i] {
                continue;
            }
            // Exported? Walk back over fn qualifiers to a bare `pub`
            // (`pub(crate)` and friends are not part of the public API).
            let mut q = i;
            let exported = loop {
                if q == 0 {
                    break false;
                }
                q -= 1;
                match toks[q].text.as_str() {
                    "const" | "async" | "unsafe" | "extern" => continue,
                    "pub" => break toks[q + 1].text != "(",
                    _ => break false,
                }
            };
            if !exported {
                continue;
            }
            if let Some(name) = toks.get(i + 1) {
                if name.kind == TokKind::Ident {
                    decls.insert(
                        name.text.clone(),
                        Decl {
                            file: fi,
                            line: name.line,
                        },
                    );
                }
            }
        }
    }

    // Which `*_seq` names does test code reference?
    let mut test_refs: HashSet<&str> = HashSet::new();
    for file in &ws.files {
        for (i, t) in file.toks.iter().enumerate() {
            if t.kind == TokKind::Ident && t.text.ends_with("_seq") && file.is_test_tok(i) {
                test_refs.insert(t.text.as_str());
            }
        }
    }

    let mut names: Vec<&String> = decls.keys().collect();
    names.sort();
    for name in names {
        let decl = &decls[name];
        let file = &ws.files[decl.file];
        if let Some(base) = name.strip_suffix("_par") {
            let seq = format!("{base}_seq");
            if !decls.contains_key(&seq) {
                push(
                    file,
                    report,
                    Finding {
                        rule: PAR_SEQ,
                        path: file.path.clone(),
                        line: decl.line,
                        message: format!(
                            "exported parallel entry point `{name}` has no exported \
                             `{seq}` reference counterpart"
                        ),
                    },
                );
            }
        }
        if name.ends_with("_seq") && !test_refs.contains(name.as_str()) {
            push(
                file,
                report,
                Finding {
                    rule: PAR_SEQ,
                    path: file.path.clone(),
                    line: decl.line,
                    message: format!(
                        "sequential reference `{name}` is not exercised by any test; \
                         nothing pins the parallel path to it"
                    ),
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workspace;

    fn lib(src: &str) -> Workspace {
        Workspace::from_sources(&[("crates/core/src/x.rs", "snd-core", FileKind::Lib, src)])
    }

    fn rules_of(report: &Report) -> Vec<&'static str> {
        report.findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn l1_flags_partial_cmp_but_not_strings_or_comments() {
        let ws = lib("fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }");
        assert!(rules_of(&ws.check()).contains(&FLOAT_CMP));
        let ws = lib("// partial_cmp\nfn f() { let s = \"partial_cmp\"; }");
        assert!(!rules_of(&ws.check()).contains(&FLOAT_CMP));
    }

    #[test]
    fn l1_allow_suppresses_with_reason_only() {
        let ws = lib(
            "fn f(a: f64, b: f64) {\n// lint:allow(float-cmp) ordering on non-float newtype\n\
             a.partial_cmp(&b);\n}",
        );
        let report = ws.check();
        assert!(!rules_of(&report).contains(&FLOAT_CMP));
        assert_eq!(report.allowed.len(), 1);
        // Reason-less allow does not suppress.
        let ws = lib("fn f(a: f64, b: f64) {\n// lint:allow(float-cmp)\na.partial_cmp(&b);\n}");
        assert!(rules_of(&ws.check()).contains(&FLOAT_CMP));
    }

    #[test]
    fn l2_flags_spawn_outside_pool_crates() {
        let ws = lib("fn f() { std::thread::spawn(|| {}); }");
        assert!(rules_of(&ws.check()).contains(&THREAD_SPAWN));
        let ws = Workspace::from_sources(&[(
            "vendor/rayon/src/lib.rs",
            "rayon",
            FileKind::Lib,
            "fn f() { std::thread::Builder::new(); }",
        )]);
        assert!(ws.check().findings.is_empty());
    }

    #[test]
    fn l3_par_requires_seq_and_seq_requires_test_reference() {
        // _par with no _seq: finding.
        let ws = Workspace::from_sources(&[(
            "crates/transport/src/lib.rs",
            "snd-transport",
            FileKind::Lib,
            "pub fn solve_par() {}",
        )]);
        assert_eq!(rules_of(&ws.check()), vec![PAR_SEQ]);
        // _par + _seq + test reference: clean.
        let ws = Workspace::from_sources(&[
            (
                "crates/transport/src/lib.rs",
                "snd-transport",
                FileKind::Lib,
                "pub fn solve_par() {}\npub fn solve_seq() {}",
            ),
            (
                "crates/transport/tests/t.rs",
                "snd-transport",
                FileKind::Test,
                "fn t() { solve_seq(); }",
            ),
        ]);
        assert!(ws.check().findings.is_empty());
        // _seq referenced only from lib code: still a finding.
        let ws = Workspace::from_sources(&[(
            "crates/transport/src/lib.rs",
            "snd-transport",
            FileKind::Lib,
            "pub fn solve_par() {}\npub fn solve_seq() {}\nfn call() { solve_seq(); }",
        )]);
        assert_eq!(rules_of(&ws.check()), vec![PAR_SEQ]);
        // cfg(test) reference in the lib file counts as a test.
        let ws = Workspace::from_sources(&[(
            "crates/transport/src/lib.rs",
            "snd-transport",
            FileKind::Lib,
            "pub fn solve_par() {}\npub fn solve_seq() {}\n#[cfg(test)]\nmod tests { fn t() { solve_seq(); } }",
        )]);
        assert!(ws.check().findings.is_empty());
        // pub(crate) fns are not exported: no obligation.
        let ws = Workspace::from_sources(&[(
            "crates/transport/src/lib.rs",
            "snd-transport",
            FileKind::Lib,
            "pub(crate) fn helper_seq() {}",
        )]);
        assert!(ws.check().findings.is_empty());
    }

    #[test]
    fn l4_flags_unwrap_in_lib_but_not_tests_or_other_crates() {
        let ws = lib("fn f(x: Option<u32>) { x.unwrap(); }");
        assert!(rules_of(&ws.check()).contains(&NO_UNWRAP));
        let ws = lib("fn f(x: Option<u32>) { x.expect(\"m\"); }");
        assert!(rules_of(&ws.check()).contains(&NO_UNWRAP));
        // unwrap_or is not unwrap.
        let ws = lib("fn f(x: Option<u32>) { x.unwrap_or(0); }");
        assert!(!rules_of(&ws.check()).contains(&NO_UNWRAP));
        // Test regions exempt.
        let ws = lib("#[cfg(test)]\nmod tests { fn t() { None::<u32>.unwrap(); } }");
        assert!(!rules_of(&ws.check()).contains(&NO_UNWRAP));
        // CLI crate exempt.
        let ws = Workspace::from_sources(&[(
            "crates/cli/src/main.rs",
            "snd-cli",
            FileKind::Lib,
            "fn f(x: Option<u32>) { x.unwrap(); }",
        )]);
        assert!(!rules_of(&ws.check()).contains(&NO_UNWRAP));
    }

    #[test]
    fn l5_flags_arith_adjacent_narrow_casts_only() {
        let t = |src: &str| {
            Workspace::from_sources(&[(
                "crates/transport/src/ssp.rs",
                "snd-transport",
                FileKind::Lib,
                src,
            )])
            .check()
        };
        // The PR 2 class: mass arithmetic through a narrowing cast.
        assert!(
            rules_of(&t("fn f(d: u64, rc: i64) -> u64 { d + rc as u64 }")).contains(&LOSSY_CAST)
        );
        assert!(
            rules_of(&t("fn f(a: &mut i64, x: u64) { *a += x.min(3) as i64; }"))
                .contains(&LOSSY_CAST)
        );
        // Comparison on a cast mass counts as arithmetic.
        assert!(
            rules_of(&t("fn f(a: u64, b: i64) -> bool { a < b as u64 }")).contains(&LOSSY_CAST)
        );
        // Index plumbing is not arithmetic.
        assert!(
            !rules_of(&t("fn f(v: &[u32], i: u32) -> u32 { v[i as usize] }")).contains(&LOSSY_CAST)
        );
        assert!(!rules_of(&t(
            "fn f(i: usize) -> u32 { g(i as u32) } fn g(_: u32) -> u32 { 0 }"
        ))
        .contains(&LOSSY_CAST));
        // Parenthesized index math stays exempt.
        assert!(!rules_of(&t(
            "fn f(m: usize, j: usize) -> u32 { h((m + j) as u32) } fn h(x: u32) -> u32 { x }"
        ))
        .contains(&LOSSY_CAST));
        // Widening targets are exempt even in arithmetic.
        assert!(
            !rules_of(&t("fn f(a: i128, x: u64) -> i128 { a + x as i128 }")).contains(&LOSSY_CAST)
        );
        // Other crates out of scope.
        let ws = lib("fn f(d: u64, rc: i64) -> u64 { d + rc as u64 }");
        assert!(!rules_of(&ws.check()).contains(&LOSSY_CAST));
    }

    #[test]
    fn l6_requires_safety_comment_and_builds_inventory() {
        let ws = lib("fn f() { unsafe { core::hint::unreachable_unchecked() } }");
        let report = ws.check();
        assert!(rules_of(&report).contains(&SAFETY_COMMENT));
        assert_eq!(report.unsafe_sites.len(), 1);
        assert!(report.unsafe_sites[0].safety.is_empty());

        let ws =
            lib("// SAFETY: caller guarantees the index is in range.\nfn f() { unsafe { g() } }");
        let report = ws.check();
        assert!(!rules_of(&report).contains(&SAFETY_COMMENT));
        assert_eq!(
            report.unsafe_sites[0].safety,
            "caller guarantees the index is in range."
        );
        assert!(report.unsafe_inventory().contains("x.rs"));

        // Vendor code is NOT exempt from L6.
        let ws = Workspace::from_sources(&[(
            "vendor/rayon/src/lib.rs",
            "rayon",
            FileKind::Lib,
            "fn f() { unsafe { g() } }",
        )]);
        assert!(rules_of(&ws.check()).contains(&SAFETY_COMMENT));
    }

    #[test]
    fn l6_accepts_trailing_and_windowed_comments() {
        let ws = lib("unsafe impl Send for T {} // SAFETY: T owns no thread-bound state.");
        assert!(ws.check().findings.is_empty());
        // Comment more than SAFETY_WINDOW lines above does not count.
        let ws = lib("// SAFETY: stale\n\n\n\n\nfn f() { unsafe { g() } }");
        assert!(rules_of(&ws.check()).contains(&SAFETY_COMMENT));
    }
}
