//! The candidate-search workload behind the §6.3 predictor and the
//! intervention planner: price a batch of candidate states that each
//! differ from one anchor by a handful of flips.
//!
//! Two paths over the identical workload (bit-identity asserted in-bench
//! and property-tested in `tests/candidate_pricing.rs`):
//!
//! * `scratch` — the pre-refactor shape: materialize a full
//!   `NetworkState` clone per candidate and price it through
//!   `OrderedSnd::distances_to`, whose `emd_star_term` front half scans
//!   all `n` users per term to classify residuals and bank bins. Cost per
//!   candidate: `O(n)` clone + `O(n)` classification, regardless of how
//!   few users actually flipped.
//! * `delta` — `CandidateEvaluator::price_candidates` over flip-lists:
//!   classification is derived from precomputed anchor stats in
//!   `O(flips + active)` and funnels into the same reduced solve. No
//!   candidate state exists at any point.
//!
//! Both share the anchor's SSSP row cache (few distinct targets → few
//! distinct rows), so the measured gap is exactly the per-candidate
//! classification + materialization the refactor deletes. Results land in
//! `BENCH_predict.json` at the repo root.
//!
//! Scale knobs (env): `SND_BENCH_PREDICT_NODES` (default 120000),
//! `SND_BENCH_PREDICT_CANDIDATES` (default 256),
//! `SND_BENCH_PREDICT_TARGETS` (default 16),
//! `SND_BENCH_PREDICT_ACTIVE` (default 40 per side).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use snd_core::{CandidateEvaluator, OrderedSnd, SndConfig, SndEngine};
use snd_graph::generators::barabasi_albert;
use snd_graph::NodeId;
use snd_models::{apply_flips, NetworkState, Opinion};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn bench_predict_search(c: &mut Criterion) {
    let nodes = env_usize("SND_BENCH_PREDICT_NODES", 120_000).max(100);
    let candidates = env_usize("SND_BENCH_PREDICT_CANDIDATES", 256).max(1);
    let targets = env_usize("SND_BENCH_PREDICT_TARGETS", 16).max(1);
    let active = env_usize("SND_BENCH_PREDICT_ACTIVE", 40).max(1);

    let mut rng = SmallRng::seed_from_u64(63);
    let graph = barabasi_albert(nodes, 3, &mut rng);

    // Anchor: a sparse active population (the §6.3 regime — most users
    // neutral, two camps of early adopters).
    let mut values = vec![0i8; nodes];
    let mut picked = 0usize;
    while picked < 2 * active.min(nodes / 2) {
        let u = rng.gen_range(0..nodes);
        if values[u] == 0 {
            values[u] = if picked.is_multiple_of(2) { 1 } else { -1 };
            picked += 1;
        }
    }
    let anchor = NetworkState::from_values(&values);

    // A fixed target set (few distinct users → few distinct SSSP rows,
    // shared across the whole batch through the row cache) and a batch of
    // random assignments over it.
    let target_nodes: Vec<NodeId> = {
        let mut t = Vec::new();
        while t.len() < targets.min(nodes) {
            let u = rng.gen_range(0..nodes as NodeId);
            if !t.contains(&u) {
                t.push(u);
            }
        }
        t
    };
    let assignments: Vec<Vec<(NodeId, Opinion)>> = (0..candidates)
        .map(|_| {
            target_nodes
                .iter()
                .map(|&u| (u, Opinion::from_value(rng.gen_range(-1..=1))))
                .collect()
        })
        .collect();

    let engine = SndEngine::new(&graph, SndConfig::default());
    let ordered = OrderedSnd::new(&engine, anchor.clone());
    let evaluator = CandidateEvaluator::new(&engine, anchor.clone());

    // Bit-identity gate: the two paths must agree exactly before either
    // is timed (this also warms the shared row caches).
    let scratch_states: Vec<NetworkState> = assignments
        .iter()
        .map(|f| apply_flips(&anchor, f))
        .collect();
    let reference = ordered.distances_to(&scratch_states);
    let delta = evaluator.price_candidates(&assignments);
    assert_eq!(reference.len(), delta.len());
    for i in 0..reference.len() {
        assert_eq!(
            reference[i].to_bits(),
            delta[i].to_bits(),
            "scratch and delta paths disagree on candidate {i}"
        );
    }

    println!(
        "predict_search: |V|={nodes}, candidates={candidates}, targets={targets}, \
         active={}/side, threads={}",
        active,
        rayon::current_num_threads()
    );

    let label = format!("n{}_c{}", nodes, candidates);
    let mut group = c.benchmark_group("predict_search");
    group
        .sample_size(2)
        .warmup_time(Duration::from_millis(1))
        .measurement_time(Duration::from_secs(1));

    // The scratch path pays its per-candidate state materialization inside
    // the loop — that allocation is part of what the refactor removes.
    group.bench_with_input(BenchmarkId::new("scratch", &label), &(), |b, ()| {
        b.iter(|| {
            let states: Vec<NetworkState> = assignments
                .iter()
                .map(|f| apply_flips(&anchor, f))
                .collect();
            ordered.distances_to(&states)
        })
    });
    group.bench_with_input(BenchmarkId::new("delta", &label), &(), |b, ()| {
        b.iter(|| evaluator.price_candidates(&assignments))
    });
    group.finish();

    write_history(nodes, graph.edge_count(), candidates, targets, active);
}

/// Records the measurements as `BENCH_predict.json` at the repo root.
fn write_history(nodes: usize, edges: usize, candidates: usize, targets: usize, active: usize) {
    let measurements = criterion::take_measurements();
    let mean = |needle: &str| {
        measurements
            .iter()
            .find(|m| m.id.contains(needle))
            .map(|m| m.mean_s)
    };
    let (Some(scratch), Some(delta)) = (mean("scratch"), mean("delta")) else {
        return;
    };
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let json = format!(
        "{{\n  \"bench\": \"predict_search\",\n  \"unix_time\": {stamp},\n  \
         \"nodes\": {nodes},\n  \"edges\": {edges},\n  \
         \"candidates\": {candidates},\n  \"targets\": {targets},\n  \
         \"active_per_side\": {active},\n  \"threads\": {threads},\n  \
         \"scratch_s\": {scratch:.4},\n  \
         \"delta_s\": {delta:.4},\n  \
         \"speedup\": {sp:.2}\n}}\n",
        threads = rayon::current_num_threads(),
        sp = scratch / delta,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_predict.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}:\n{json}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_predict_search);
criterion_main!(benches);
