//! The T-snapshot all-pairs matrix: naive sequential loop vs the cached,
//! parallel batch pipeline (`SndEngine::pairwise_distances`).
//!
//! Three variants over the same snapshot set:
//!
//! * `sequential_naive` — `T·(T−1)/2` independent `distance_seq` calls:
//!   geometry recomputed per pair, every SSSP row recomputed per pair, no
//!   threads. The seed's only option, and the baseline the tentpole is
//!   measured against.
//! * `batch_cold` — `pairwise_distances`: geometry once per state, SSSP
//!   rows computed at most once per ground state into shared caches, all
//!   EMD\* terms fanned out over the thread pool. Caches start empty.
//! * `batch_warm` — `pairwise_distances_with` over pre-filled bundles:
//!   the re-pricing regime (same snapshots, new query) where every row is
//!   a cache hit and only the transportation solves remain.
//! * `sharded_2` — the scale-out configuration: the tile grid split
//!   round-robin across 2 shard plans (`SndEngine::pairwise_tiles`), both
//!   computed back-to-back on this machine, then merged and validated
//!   (`TileSet::merge` + `to_matrix`). Against `batch_cold` this prices
//!   the sharding overhead — per-shard geometry recomputation for states
//!   both shards touch, plus the merge — that distributing across
//!   machines pays for.
//!
//! After measuring, the bench writes `BENCH_pairwise.json` at the repo
//! root — the perf-trajectory artifact tracked across PRs.
//!
//! Scale knobs (env): `SND_BENCH_NODES` (default 10000),
//! `SND_BENCH_SNAPSHOTS` (default 32), `SND_BENCH_SHARDS` (default 2).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snd_core::{auto_tile, ShardPlan, SndConfig, SndEngine, StateGeometry, TileGrid, TileSet};
use snd_data::{generate_series, SyntheticSeriesConfig};
use snd_models::dynamics::VotingConfig;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn bench_pairwise_matrix(c: &mut Criterion) {
    let nodes = env_usize("SND_BENCH_NODES", 10_000).max(100);
    let snapshots = env_usize("SND_BENCH_SNAPSHOTS", 32).max(2);

    // A growing voting series: adjacent snapshots differ by a few dozen
    // users, endpoints by a few hundred — the anomaly-detection /
    // clustering regime the batch API targets.
    let series = generate_series(&SyntheticSeriesConfig {
        nodes,
        exponent: -2.3,
        initial_adopters: (nodes / 25).max(20),
        steps: snapshots - 1,
        normal: VotingConfig::new(0.12, 0.01).expect("valid voting parameters"),
        anomalous: VotingConfig::new(0.12, 0.01).expect("valid voting parameters"),
        anomalous_steps: vec![],
        chance_fraction: 0.02,
        burn_in: 0,
        seed: 2017,
    });
    let states = &series.states;
    let engine = SndEngine::new(&series.graph, SndConfig::default());
    let label = format!("n{}_t{}", nodes, snapshots);
    println!(
        "pairwise_matrix: |V|={nodes}, edges={}, T={snapshots}, threads={}",
        series.graph.edge_count(),
        rayon::current_num_threads()
    );

    let mut group = c.benchmark_group("pairwise_matrix");
    group
        .sample_size(2)
        .warmup_time(Duration::from_millis(1))
        .measurement_time(Duration::from_secs(1));

    group.bench_with_input(
        BenchmarkId::new("sequential_naive", &label),
        &(),
        |b, ()| b.iter(|| engine.pairwise_distances_seq(states)),
    );
    group.bench_with_input(BenchmarkId::new("batch_cold", &label), &(), |b, ()| {
        b.iter(|| engine.pairwise_distances(states))
    });
    let warm: Vec<StateGeometry> = states.iter().map(|s| engine.state_geometry(s)).collect();
    engine.pairwise_distances_with(states, &warm); // fill the caches
    group.bench_with_input(BenchmarkId::new("batch_warm", &label), &(), |b, ()| {
        b.iter(|| engine.pairwise_distances_with(states, &warm))
    });

    let shards = env_usize("SND_BENCH_SHARDS", 2).max(2);
    let tile = auto_tile(states.len(), nodes);
    let grid = TileGrid::new(states.len(), tile);
    group.bench_with_input(
        BenchmarkId::new(format!("sharded_{shards}"), &label),
        &(),
        |b, ()| {
            b.iter(|| {
                let parts: Vec<TileSet> = (0..shards)
                    .map(|s| {
                        let plan = ShardPlan::round_robin(grid, s, shards).expect("valid plan");
                        engine.pairwise_tiles(states, &plan)
                    })
                    .collect();
                TileSet::merge(parts)
                    .expect("disjoint shards merge")
                    .to_matrix()
                    .expect("round-robin plans cover the grid")
            })
        },
    );
    group.finish();

    write_history(nodes, snapshots, series.graph.edge_count(), shards, tile);
}

/// Records the measurements as `BENCH_pairwise.json` at the repo root.
fn write_history(nodes: usize, snapshots: usize, edges: usize, shards: usize, tile: usize) {
    let measurements = criterion::take_measurements();
    let mean = |needle: &str| {
        measurements
            .iter()
            .find(|m| m.id.contains(needle))
            .map(|m| m.mean_s)
    };
    let (Some(seq), Some(cold), Some(warm), Some(sharded)) = (
        mean("sequential_naive"),
        mean("batch_cold"),
        mean("batch_warm"),
        mean("sharded_"),
    ) else {
        return;
    };
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let json = format!(
        "{{\n  \"bench\": \"pairwise_matrix\",\n  \"unix_time\": {stamp},\n  \
         \"nodes\": {nodes},\n  \"snapshots\": {snapshots},\n  \"edges\": {edges},\n  \
         \"threads\": {threads},\n  \"sequential_naive_s\": {seq:.4},\n  \
         \"batch_cold_s\": {cold:.4},\n  \"batch_warm_s\": {warm:.4},\n  \
         \"sharded_shards\": {shards},\n  \"sharded_tile\": {tile},\n  \
         \"sharded_total_s\": {sharded:.4},\n  \
         \"sharded_overhead_vs_cold\": {so:.2},\n  \
         \"speedup_cold\": {sc:.2},\n  \"speedup_warm\": {sw:.2}\n}}\n",
        threads = rayon::current_num_threads(),
        so = sharded / cold,
        sc = seq / cold,
        sw = seq / warm,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pairwise.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}:\n{json}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_pairwise_matrix);
criterion_main!(benches);
