//! Forward-simulation throughput: steps/s of every `OpinionDynamics`
//! model family on a 10k-node graph.
//!
//! The scenario registry turns any model into an evaluation workload, so
//! model stepping is now a production path (dataset generation feeds every
//! `snd` subcommand). This bench builds one Barabási–Albert graph, seeds
//! adopters, and times a fixed number of transitions per model, recording
//! steps/s to `BENCH_sim.json` at the repo root — the artifact that keeps
//! per-model simulation cost visible across PRs.
//!
//! Scale knobs (env): `SND_BENCH_SIM_NODES` (default 10000),
//! `SND_BENCH_SIM_STEPS` (default 8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use snd_data::ModelSpec;
use snd_graph::generators::barabasi_albert;
use snd_models::dynamics::seed_initial_adopters;
use snd_models::simulate_series;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One spec per model family, at registry-like parameters.
fn specs() -> Vec<ModelSpec> {
    vec![
        ModelSpec::Voting {
            p_nbr: 0.12,
            p_ext: 0.01,
            chance_fraction: Some(0.12),
        },
        ModelSpec::Icc,
        ModelSpec::Ltc { threshold: 0.3 },
        ModelSpec::RandomActivation { fraction: 0.01 },
        ModelSpec::MajorityRule { update_prob: 0.25 },
        ModelSpec::StubbornVoter {
            copy_prob: 0.3,
            stubborn_fraction: 0.1,
        },
        ModelSpec::DeGroot {
            susceptibility: 0.55,
            threshold: 0.25,
        },
        ModelSpec::BoundedConfidence {
            confidence: 1,
            update_prob: 0.3,
            threshold: 0.25,
        },
    ]
}

fn bench_simulate(c: &mut Criterion) {
    let nodes = env_usize("SND_BENCH_SIM_NODES", 10_000).max(100);
    let steps = env_usize("SND_BENCH_SIM_STEPS", 8).max(1);

    let mut seed_rng = SmallRng::seed_from_u64(2017);
    let graph = barabasi_albert(nodes, 3, &mut seed_rng);
    let initial = seed_initial_adopters(nodes, nodes / 10, &mut seed_rng)
        .expect("a tenth of the population fits");
    println!(
        "simulate: |V|={nodes}, edges={}, {steps} steps per iteration",
        graph.edge_count()
    );

    let mut group = c.benchmark_group("simulate");
    group
        .sample_size(3)
        .warmup_time(std::time::Duration::from_millis(1))
        .measurement_time(std::time::Duration::from_secs(1));
    for spec in specs() {
        let model = spec
            .build(nodes, &graph)
            .expect("registry-valid parameters");
        group.bench_with_input(
            BenchmarkId::new(spec.family(), format!("n{nodes}")),
            &(),
            |b, ()| {
                b.iter(|| {
                    let mut rng = SmallRng::seed_from_u64(7);
                    simulate_series(&graph, model.as_ref(), initial.clone(), steps, &mut rng)
                })
            },
        );
    }
    group.finish();

    write_history(nodes, steps, graph.edge_count());
}

/// Records per-model steps/s as `BENCH_sim.json` at the repo root.
fn write_history(nodes: usize, steps: usize, edges: usize) {
    let measurements = criterion::take_measurements();
    if measurements.is_empty() {
        return;
    }
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut json = format!(
        "{{\n  \"bench\": \"simulate\",\n  \"unix_time\": {stamp},\n  \"nodes\": {nodes},\n  \
         \"edges\": {edges},\n  \"steps_per_iter\": {steps},\n  \"models\": {{\n"
    );
    for (i, spec) in specs().iter().enumerate() {
        let name = spec.family();
        let Some(m) = measurements.iter().find(|m| {
            m.id.split('/')
                .nth(1)
                .is_some_and(|benched| benched == name)
        }) else {
            continue;
        };
        let steps_per_s = steps as f64 / m.mean_s;
        if i > 0 {
            json.push_str(",\n");
        }
        json.push_str(&format!(
            "    \"{name}\": {{\"steps_per_s\": {steps_per_s:.2}}}"
        ));
    }
    json.push_str("\n  }\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}:\n{json}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_simulate);
criterion_main!(benches);
