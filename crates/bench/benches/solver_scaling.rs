//! Solver-selection calibration: the three exact transportation solvers
//! across instance sizes and cost magnitudes.
//!
//! This is the data `snd_transport::select_solver` (the `Solver::Auto`
//! heuristic) is calibrated against: square `s × s` instances at two cost
//! families — `small` (costs `1..50`, the tie-heavy regime reduced SND
//! problems produce after clamping) and `huge` (costs within 1000 of
//! `u32::MAX`, the cost-scaling widening regime) — plus column-heavy
//! `m × n` shapes (`n ≫ m`: few residual rows, bank columns on every
//! active bin), where cost-scaling overtakes the simplex. Mass magnitudes
//! don't move any solver's pivot/augmentation counts, so the grid doesn't
//! sweep them.
//!
//! After measuring, the bench writes `BENCH_solver.json` at the repo root
//! (skipped in `--test` smoke mode, which CI runs on every push).
//!
//! Scale knob (env): `SND_BENCH_SOLVER_MAX` caps the largest size
//! (default 128).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use snd_transport::{solve_balanced, DenseCost, Solver};

const SIZES: [usize; 5] = [4, 8, 16, 48, 128];
/// Column-heavy shapes straddling the `WIDE_ASPECT` selection threshold.
const WIDE_SHAPES: [(usize, usize); 3] = [(2, 256), (4, 1024), (8, 512)];

fn instance(
    m: usize,
    n: usize,
    costs: std::ops::Range<u32>,
    seed: u64,
) -> (Vec<u64>, Vec<u64>, DenseCost) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let cost = DenseCost::random(m, n, costs, &mut rng);
    let mut supplies: Vec<u64> = (0..m).map(|_| rng.gen_range(1..100)).collect();
    let mut demands: Vec<u64> = (0..n).map(|_| rng.gen_range(1..100)).collect();
    let (ts, td): (u64, u64) = (supplies.iter().sum(), demands.iter().sum());
    if ts > td {
        demands[n - 1] += ts - td;
    } else {
        supplies[m - 1] += td - ts;
    }
    (supplies, demands, cost)
}

const SOLVERS: [(&str, Solver); 4] = [
    ("simplex", Solver::Simplex),
    ("ssp", Solver::Ssp),
    ("cost_scaling", Solver::CostScaling),
    ("auto", Solver::Auto),
];

fn bench_solver_scaling(c: &mut Criterion) {
    let max_size: usize = std::env::var("SND_BENCH_SOLVER_MAX")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(128);
    let mut group = c.benchmark_group("solver_scaling");
    group
        .sample_size(3)
        .warmup_time(Duration::from_millis(40))
        .measurement_time(Duration::from_millis(400));

    for &size in SIZES.iter().filter(|&&s| s <= max_size) {
        for (family, lo, hi) in [("small", 1u32, 50u32), ("huge", u32::MAX - 1000, u32::MAX)] {
            let (s, d, cost) = instance(size, size, lo..hi, size as u64 ^ 0xca11b8);
            for (name, solver) in SOLVERS {
                group.bench_with_input(
                    BenchmarkId::new(format!("{name}_{family}"), size),
                    &size,
                    |b, _| b.iter(|| solve_balanced(&s, &d, &cost, solver)),
                );
            }
        }
    }
    for (m, n) in WIDE_SHAPES
        .iter()
        .filter(|(m, n)| m * n <= max_size * max_size)
    {
        let (s, d, cost) = instance(*m, *n, 1..5000, (m * n) as u64 ^ 0xca11b8);
        for (name, solver) in SOLVERS {
            if solver == Solver::Ssp {
                continue; // 30–100× off the pace here; skip the wait
            }
            group.bench_with_input(
                BenchmarkId::new(format!("{name}_wide"), format!("{m}x{n}")),
                &(m, n),
                |b, _| b.iter(|| solve_balanced(&s, &d, &cost, solver)),
            );
        }
    }
    group.finish();
    write_history();
}

/// Records the measurements as `BENCH_solver.json` at the repo root.
fn write_history() {
    let measurements = criterion::take_measurements();
    if measurements.is_empty() {
        return; // --test smoke mode
    }
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut rows = String::new();
    for (k, m) in measurements.iter().enumerate() {
        // id = "solver_scaling/<solver>_<family>/<size>"
        let mut parts = m.id.split('/').skip(1);
        let (Some(key), Some(size)) = (parts.next(), parts.next()) else {
            continue;
        };
        let (solver, family) = key.rsplit_once('_').unwrap_or((key, "?"));
        rows.push_str(&format!(
            "    {{ \"solver\": \"{solver}\", \"family\": \"{family}\", \
             \"shape\": \"{size}\", \"mean_s\": {:.6} }}{}\n",
            m.mean_s,
            if k + 1 == measurements.len() { "" } else { "," }
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"solver_scaling\",\n  \"unix_time\": {stamp},\n  \
         \"threads\": {},\n  \"results\": [\n{rows}  ]\n}}\n",
        rayon::current_num_threads(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_solver.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_solver_scaling);
criterion_main!(benches);
