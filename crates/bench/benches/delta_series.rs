//! The time-series workload: batch series evaluation vs the delta-aware
//! path (`SndEngine::series_distances`), on the regimes the paper's
//! anomaly/prediction experiments run — consecutive snapshots of one
//! evolving 10k-node network.
//!
//! Two churn regimes over the same graph size, both in the cluster-bank
//! configuration (the coarse mode for large graphs, where per-state
//! geometry — one multi-source SSSP per cluster plus two eccentricity
//! SSSPs per cluster per opinion — dominates the series cost):
//!
//! * `low_churn` — a sampled voting series: adjacent snapshots differ by
//!   a few dozen users out of 10k. The delta path re-derives edge costs
//!   on touched edges only and *repairs* the cluster SSSP rows
//!   (`snd_graph::repair_row`), so per-transition geometry cost collapses
//!   to the affected region.
//! * `high_churn` — random activation flipping a large user fraction per
//!   step: past the repair threshold
//!   (`snd_core::REPAIR_EDGE_FRACTION`) every transition falls back to a
//!   fresh rebuild, pricing the delta sweep as pure overhead. The bench
//!   records that overhead; it must stay within a few percent of the
//!   batch path.
//!
//! Both paths are property-tested bit-identical (`tests/delta_series.rs`);
//! this bench tracks the wall-clock side in `BENCH_series.json` at the
//! repo root.
//!
//! Scale knobs (env): `SND_BENCH_NODES` (default 10000),
//! `SND_BENCH_SNAPSHOTS` (default 12), `SND_BENCH_CLUSTERS` (default 64).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snd_core::{ClusterSpec, GammaPolicy, SndConfig, SndEngine};
use snd_data::{generate_series, GraphSpec, ModelSpec, Scenario, SyntheticSeriesConfig};
use snd_models::dynamics::VotingConfig;
use snd_models::NetworkState;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn mean_adjacent_flips(states: &[NetworkState]) -> usize {
    if states.len() < 2 {
        return 0;
    }
    let total: usize = (1..states.len())
        .map(|t| states[t - 1].diff_count(&states[t]))
        .sum();
    total / (states.len() - 1)
}

fn bench_delta_series(c: &mut Criterion) {
    let nodes = env_usize("SND_BENCH_NODES", 10_000).max(100);
    let snapshots = env_usize("SND_BENCH_SNAPSHOTS", 12).max(3);
    let clusters = env_usize("SND_BENCH_CLUSTERS", 64).max(2);

    // Low churn: sampled voting — a few dozen flips per step at n=10k.
    let low = generate_series(&SyntheticSeriesConfig {
        nodes,
        exponent: -2.3,
        initial_adopters: (nodes / 25).max(20),
        steps: snapshots - 1,
        normal: VotingConfig::new(0.12, 0.01).expect("valid voting parameters"),
        anomalous: VotingConfig::new(0.12, 0.01).expect("valid voting parameters"),
        anomalous_steps: vec![],
        chance_fraction: 0.02,
        burn_in: 0,
        seed: 2017,
    });
    // High churn: random activation flipping ~15% of users per step —
    // past the repair threshold, exercising the fallback.
    let high = Scenario {
        name: "bench-high-churn",
        description: "random activation at fallback-forcing churn",
        graph: GraphSpec::BarabasiAlbert { m: 4 },
        nodes,
        seed_fraction: 0.3,
        burn_in: 0,
        steps: snapshots - 1,
        model: ModelSpec::RandomActivation { fraction: 0.15 },
        anomaly: None,
    }
    .run(2017)
    .expect("bench scenario runs");

    let config = SndConfig {
        clusters: ClusterSpec::BfsPartition { clusters },
        gamma: GammaPolicy::Eccentricity,
        ..Default::default()
    };
    let low_engine = SndEngine::new(&low.graph, config.clone());
    let high_engine = SndEngine::new(&high.graph, config);
    let low_flips = mean_adjacent_flips(&low.states);
    let high_flips = mean_adjacent_flips(&high.states);
    println!(
        "delta_series: |V|={nodes}, T={snapshots}, clusters={clusters}, \
         low-churn flips/step={low_flips}, high-churn flips/step={high_flips}, threads={}",
        rayon::current_num_threads()
    );

    let label = format!("n{}_t{}", nodes, snapshots);
    let mut group = c.benchmark_group("delta_series");
    group
        .sample_size(2)
        .warmup_time(Duration::from_millis(1))
        .measurement_time(Duration::from_secs(1));

    group.bench_with_input(BenchmarkId::new("batch_low_churn", &label), &(), |b, ()| {
        b.iter(|| low_engine.series_distances_batch(&low.states))
    });
    group.bench_with_input(BenchmarkId::new("delta_low_churn", &label), &(), |b, ()| {
        b.iter(|| low_engine.series_distances(&low.states))
    });
    group.bench_with_input(
        BenchmarkId::new("batch_high_churn", &label),
        &(),
        |b, ()| b.iter(|| high_engine.series_distances_batch(&high.states)),
    );
    group.bench_with_input(
        BenchmarkId::new("delta_high_churn", &label),
        &(),
        |b, ()| b.iter(|| high_engine.series_distances(&high.states)),
    );
    group.finish();

    write_history(
        nodes,
        snapshots,
        low.graph.edge_count(),
        clusters,
        low_flips,
        high_flips,
    );
}

/// Records the measurements as `BENCH_series.json` at the repo root.
fn write_history(
    nodes: usize,
    snapshots: usize,
    edges: usize,
    clusters: usize,
    low_flips: usize,
    high_flips: usize,
) {
    let measurements = criterion::take_measurements();
    let mean = |needle: &str| {
        measurements
            .iter()
            .find(|m| m.id.contains(needle))
            .map(|m| m.mean_s)
    };
    let (Some(batch_low), Some(delta_low), Some(batch_high), Some(delta_high)) = (
        mean("batch_low_churn"),
        mean("delta_low_churn"),
        mean("batch_high_churn"),
        mean("delta_high_churn"),
    ) else {
        return;
    };
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let json = format!(
        "{{\n  \"bench\": \"delta_series\",\n  \"unix_time\": {stamp},\n  \
         \"nodes\": {nodes},\n  \"snapshots\": {snapshots},\n  \"edges\": {edges},\n  \
         \"clusters\": {clusters},\n  \"threads\": {threads},\n  \
         \"low_churn_flips_per_step\": {low_flips},\n  \
         \"high_churn_flips_per_step\": {high_flips},\n  \
         \"batch_low_churn_s\": {batch_low:.4},\n  \
         \"delta_low_churn_s\": {delta_low:.4},\n  \
         \"speedup_low_churn\": {sl:.2},\n  \
         \"batch_high_churn_s\": {batch_high:.4},\n  \
         \"delta_high_churn_s\": {delta_high:.4},\n  \
         \"fallback_overhead_high_churn\": {oh:.3}\n}}\n",
        threads = rayon::current_num_threads(),
        sl = batch_low / delta_low,
        oh = delta_high / batch_high,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_series.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}:\n{json}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_delta_series);
criterion_main!(benches);
