//! The approximate tier at scale: landmark-sketch + coarsening SND vs
//! the exact Theorem 4 path as the graph grows to 10⁶ nodes.
//!
//! Three measurements, recorded in `BENCH_scale.json` at the repo root:
//!
//! * **Crossover** — exact and approximate `distance` timed side by side
//!   on a ladder of graphs at fixed n∆ (spatial grid by default, see
//!   [`graph_kind`]); the crossover is the first size where the certified
//!   interval is cheaper than the exact answer.
//! * **Measured error** — on a subsampled instance small enough to price
//!   exactly, the interval must bracket the exact value and the midpoint's
//!   relative error must stay within the requested ε (the certificate
//!   guarantees ≤ ε/2·upper/lower ≤ ε for ε < 1; this records the
//!   *measured* slack).
//! * **The 10⁶-node run** — approximate only: at this size the exact
//!   tier's one-SSSP-per-differing-user sweep is the infeasible baseline
//!   the sketch replaces.
//!
//! Scale knobs (env): `SND_BENCH_DELTA` (differing users, default 1024),
//! `SND_BENCH_EPSILON` (default 0.2), `SND_BENCH_LANDMARKS` (default 8),
//! `SND_BENCH_GRAPH` (`grid`/`ba`), `SND_BENCH_LADDER` (comma-separated
//! rung sizes), `SND_BENCH_MILLION` (node count for the headline run).

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use snd_core::{ApproxConfig, SndConfig, SndEngine};
use snd_graph::generators::{barabasi_albert, grid_graph};
use snd_graph::CsrGraph;
use snd_models::NetworkState;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A state pair differing on `n_delta` users with *balanced* drift: for
/// each polar opinion, as many users adopt it as abandon it between the
/// two snapshots. Balanced drift keeps each EMD\* term's histogram masses
/// equal (no bank absorption), so the comparison exercises the
/// residual-to-residual transportation that dominates real consecutive
/// snapshots; the flip sites are spread across the graph, not one local
/// cluster.
fn state_pair(n: usize, n_delta: usize, rng: &mut SmallRng) -> (NetworkState, NetworkState) {
    let mut base = vec![0i8; n];
    for v in base.iter_mut() {
        if rng.gen::<f64>() < 0.05 {
            *v = if rng.gen::<bool>() { 1 } else { -1 };
        }
    }
    let (mut pos, mut neg, mut zero) = (Vec::new(), Vec::new(), Vec::new());
    for (i, &v) in base.iter().enumerate() {
        match v {
            1 => pos.push(i),
            -1 => neg.push(i),
            _ => zero.push(i),
        }
    }
    // Per opinion: q users abandon it (→ neutral) and q distinct neutral
    // users adopt it, keeping every histogram total unchanged.
    let q = (n_delta / 4).max(1).min(pos.len()).min(neg.len());
    assert!(
        zero.len() >= 2 * q,
        "graph too small for the requested n_delta"
    );
    let spread = |list: &[usize], k: usize| -> Vec<usize> {
        let stride = (list.len() / k).max(1);
        list.iter().step_by(stride).take(k).copied().collect()
    };
    let mut other = base.clone();
    for &i in &spread(&pos, q) {
        other[i] = 0;
    }
    for &i in &spread(&neg, q) {
        other[i] = 0;
    }
    for (k, &i) in spread(&zero, 2 * q).iter().enumerate() {
        other[i] = if k % 2 == 0 { 1 } else { -1 };
    }
    (
        NetworkState::from_values(&base),
        NetworkState::from_values(&other),
    )
}

fn approx_config(epsilon: f64, landmarks: usize) -> SndConfig {
    SndConfig {
        approx: Some(ApproxConfig {
            epsilon,
            max_landmarks: landmarks,
            min_nodes: 0,
            ..Default::default()
        }),
        ..SndConfig::default()
    }
}

struct SizedInstance {
    graph: CsrGraph,
    a: NetworkState,
    b: NetworkState,
}

/// Graph topology for the benchmark instances.
///
/// `grid` (the default) is a spatial lattice: distances have geometric
/// structure, so landmark triangle bounds are tight and the coarse tier
/// certifies most cells without exact SSSP rows. `ba` is a Barabási–Albert
/// hub graph: every shortest path routes through hubs, landmark *lower*
/// bounds degenerate (`|d(a,l) − d(l,b)| ≈ 0` when `l` is a hub near
/// both), and the certificate must buy exact rows instead — the
/// adversarial topology for certified approximation.
fn graph_kind() -> String {
    std::env::var("SND_BENCH_GRAPH").unwrap_or_else(|_| "grid".into())
}

fn build_graph(nodes: usize, rng: &mut SmallRng) -> CsrGraph {
    match graph_kind().as_str() {
        "ba" => barabasi_albert(nodes, 3, rng),
        "grid" => {
            let side = (nodes as f64).sqrt().round() as usize;
            grid_graph(side, side)
        }
        other => panic!("SND_BENCH_GRAPH must be 'grid' or 'ba', got {other:?}"),
    }
}

fn instance(nodes: usize, n_delta: usize, seed: u64) -> SizedInstance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let graph = build_graph(nodes, &mut rng);
    let n = graph.node_count();
    let (a, b) = state_pair(n, n_delta, &mut rng);
    SizedInstance { graph, a, b }
}

fn bench_scale_approx(c: &mut Criterion) {
    // --test mode shrinks every size so the CI smoke finishes in seconds;
    // the recorded history comes from a full run.
    let test = criterion::is_test_mode();
    let n_delta = env_usize("SND_BENCH_DELTA", if test { 64 } else { 1024 });
    let epsilon = env_f64("SND_BENCH_EPSILON", 0.2);
    let landmarks = env_usize("SND_BENCH_LANDMARKS", 8);
    let ladder: Vec<usize> = std::env::var("SND_BENCH_LADDER")
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .unwrap_or_else(|| {
            if test {
                vec![800, 2_000]
            } else {
                vec![2_000, 10_000, 50_000, 100_000]
            }
        });
    let ladder = ladder.as_slice();
    let million = env_usize("SND_BENCH_MILLION", if test { 10_000 } else { 1_000_000 });
    let error_nodes = if test { 1_000 } else { 10_000 };

    let mut group = c.benchmark_group("scale_approx");
    group
        .sample_size(2)
        .warmup_time(Duration::from_millis(1))
        .measurement_time(Duration::from_secs(1));

    // Crossover ladder: exact vs approximate at each rung.
    let mut ladder_edges = Vec::new();
    for &nodes in ladder {
        let inst = instance(nodes, n_delta, 2017);
        println!(
            "scale_approx: ladder rung n={nodes} ({} edges) built",
            inst.graph.edge_count()
        );
        ladder_edges.push(inst.graph.edge_count());
        let exact_engine = SndEngine::new(&inst.graph, SndConfig::default());
        let approx_engine = SndEngine::new(&inst.graph, approx_config(epsilon, landmarks));
        group.bench_with_input(BenchmarkId::new("exact", nodes), &(), |b, ()| {
            b.iter(|| exact_engine.distance(&inst.a, &inst.b))
        });
        group.bench_with_input(BenchmarkId::new("approx", nodes), &(), |b, ()| {
            b.iter(|| approx_engine.distance_interval(&inst.a, &inst.b).unwrap())
        });
    }
    group.finish();

    // Measured error on an instance small enough to price exactly.
    let err_inst = instance(error_nodes, n_delta, 4242);
    let exact_engine = SndEngine::new(&err_inst.graph, SndConfig::default());
    let approx_engine = SndEngine::new(&err_inst.graph, approx_config(epsilon, landmarks));
    let mut max_rel_error = 0.0f64;
    let mut bracketed = true;
    let mut rng = SmallRng::seed_from_u64(99);
    for trial in 0..3 {
        let (a, b) = if trial == 0 {
            (err_inst.a.clone(), err_inst.b.clone())
        } else {
            state_pair(error_nodes, n_delta, &mut rng)
        };
        let exact = exact_engine.distance(&a, &b);
        let iv = approx_engine.distance_interval(&a, &b).unwrap();
        bracketed &= iv.contains(exact);
        if exact > 0.0 {
            max_rel_error = max_rel_error.max((iv.midpoint() - exact).abs() / exact);
        }
    }
    println!(
        "scale_approx: error check at n={error_nodes}: max relative error {max_rel_error:.5} \
         (ε = {epsilon}), intervals bracket exact: {bracketed}"
    );

    // The 10⁶-node run: approximate tier only.
    let big = instance(million, n_delta, 7);
    println!(
        "scale_approx: headline instance n={million} ({} edges) built, pricing…",
        big.graph.edge_count()
    );
    let big_engine = SndEngine::new(&big.graph, approx_config(epsilon, landmarks));
    let t0 = Instant::now();
    let big_iv = big_engine.distance_interval(&big.a, &big.b).unwrap();
    let million_s = t0.elapsed().as_secs_f64();
    println!(
        "scale_approx: n={million} ({} edges): SND in [{:.4}, {:.4}] (width {:.4}) in {million_s:.2}s",
        big.graph.edge_count(),
        big_iv.lower,
        big_iv.upper,
        big_iv.width()
    );

    write_history(
        ladder,
        &ladder_edges,
        n_delta,
        epsilon,
        landmarks,
        error_nodes,
        max_rel_error,
        bracketed,
        million,
        big.graph.edge_count(),
        million_s,
        (big_iv.lower, big_iv.upper),
    );
}

/// Records the measurements as `BENCH_scale.json` at the repo root.
#[allow(clippy::too_many_arguments)]
fn write_history(
    ladder: &[usize],
    ladder_edges: &[usize],
    n_delta: usize,
    epsilon: f64,
    landmarks: usize,
    error_nodes: usize,
    max_rel_error: f64,
    bracketed: bool,
    million: usize,
    million_edges: usize,
    million_s: f64,
    million_interval: (f64, f64),
) {
    let measurements = criterion::take_measurements();
    let mean = |needle: &str| {
        measurements
            .iter()
            .find(|m| m.id.contains(needle))
            .map(|m| m.mean_s)
    };
    let mut rungs = String::new();
    let mut crossover: Option<usize> = None;
    for (&nodes, &edges) in ladder.iter().zip(ladder_edges) {
        let (Some(exact_s), Some(approx_s)) = (
            mean(&format!("exact/{nodes}")),
            mean(&format!("approx/{nodes}")),
        ) else {
            return;
        };
        if approx_s < exact_s && crossover.is_none() {
            crossover = Some(nodes);
        }
        if !rungs.is_empty() {
            rungs.push_str(",\n");
        }
        rungs.push_str(&format!(
            "    {{\"nodes\": {nodes}, \"edges\": {edges}, \"exact_s\": {exact_s:.4}, \
             \"approx_s\": {approx_s:.4}, \"speedup\": {:.2}}}",
            exact_s / approx_s
        ));
    }
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let json = format!(
        "{{\n  \"bench\": \"scale_approx\",\n  \"unix_time\": {stamp},\n  \
         \"graph\": \"{kind}\",\n  \
         \"n_delta\": {n_delta},\n  \"epsilon\": {epsilon},\n  \
         \"landmarks\": {landmarks},\n  \"threads\": {threads},\n  \
         \"ladder\": [\n{rungs}\n  ],\n  \
         \"crossover_nodes\": {crossover},\n  \
         \"error_check_nodes\": {error_nodes},\n  \
         \"max_relative_error\": {max_rel_error:.5},\n  \
         \"intervals_bracket_exact\": {bracketed},\n  \
         \"million\": {{\"nodes\": {million}, \"edges\": {million_edges}, \
         \"approx_s\": {million_s:.2}, \"lower\": {lo:.4}, \"upper\": {hi:.4}}}\n}}\n",
        kind = graph_kind(),
        threads = rayon::current_num_threads(),
        crossover = crossover.map_or("null".to_string(), |c| c.to_string()),
        lo = million_interval.0,
        hi = million_interval.1,
    );
    let path = snd_bench::scale_record::scale_json_path();
    // The `"series"` member belongs to the scale_series bench — keep it
    // when rewriting the ladder half of the file.
    let json = match std::fs::read_to_string(path)
        .ok()
        .and_then(|old| snd_bench::scale_record::extract_series(&old))
    {
        Some(block) => snd_bench::scale_record::splice_series(&json, &block),
        None => json,
    };
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}:\n{json}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_scale_approx);
criterion_main!(benches);
