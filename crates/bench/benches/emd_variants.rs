//! Micro-benchmark: the EMD family on random histograms over a line
//! metric — classic, ÊMD, EMDα, and EMD\* (the latter also serving as the
//! bank-allocation ablation: 1 vs 4 vs 16 clusters), plus the
//! net-mass-reduced EMD\* on the nearly-identical-histogram regime it
//! targets (consecutive snapshots: a handful of bins moved).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use snd_emd::{
    emd, emd_alpha, emd_hat, emd_star, emd_star_reduced, DenseCost, Histogram, Solver, StarGeometry,
};

fn line_metric(n: usize) -> DenseCost {
    let mut d = DenseCost::filled(n, n, 0);
    for i in 0..n {
        for j in 0..n {
            *d.at_mut(i, j) = (i as i64 - j as i64).unsigned_abs() as u32;
        }
    }
    d
}

fn line_geometry(n: usize, clusters: usize, gamma: u32) -> StarGeometry {
    let size = n / clusters;
    let labels: Vec<u32> = (0..n)
        .map(|i| ((i / size).min(clusters - 1)) as u32)
        .collect();
    let mut inter = DenseCost::filled(clusters, clusters, 0);
    for c in 0..clusters {
        for c2 in 0..clusters {
            if c != c2 {
                let gap = c.abs_diff(c2) * size - size + 1;
                *inter.at_mut(c, c2) = gap as u32;
            }
        }
    }
    StarGeometry {
        labels,
        cluster_count: clusters,
        gammas: vec![vec![gamma]; clusters],
        inter_cluster: inter,
    }
}

fn bench_variants(c: &mut Criterion) {
    let n = 256;
    let mut rng = SmallRng::seed_from_u64(7);
    let d = line_metric(n);
    let p = Histogram::from_masses((0..n).map(|_| rng.gen_range(0..50)).collect(), 1);
    let q = Histogram::from_masses((0..n).map(|_| rng.gen_range(0..50)).collect(), 1);
    let gamma = d.max_entry();

    let mut group = c.benchmark_group("emd_variants");
    group.bench_function("classic", |b| b.iter(|| emd(&p, &q, &d, Solver::Simplex)));
    group.bench_function("hat", |b| {
        b.iter(|| emd_hat(&p, &q, &d, gamma, Solver::Simplex))
    });
    group.bench_function("alpha", |b| {
        b.iter(|| emd_alpha(&p, &q, &d, gamma, Solver::Simplex))
    });
    for &clusters in &[1usize, 4, 16] {
        let geom = line_geometry(n, clusters, gamma);
        group.bench_with_input(BenchmarkId::new("star", clusters), &clusters, |b, _| {
            b.iter(|| emd_star(&p, &q, &d, &geom, Solver::Simplex))
        });
    }

    // The delta regime: q_near differs from p in a handful of bins. The
    // reduced instance cancels the matched mass (exact — per-bin geometry
    // keeps the extended ground triangle-satisfying) and solves
    // O(churn)², vs the full (n + banks)² extended problem.
    let mut moved = p.masses().to_vec();
    moved[3] += 7;
    moved[200] = moved[200].saturating_sub(4);
    let q_near = Histogram::from_masses(moved, 1);
    let per_bin = StarGeometry {
        labels: (0..n as u32).collect(),
        cluster_count: n,
        gammas: vec![vec![gamma]; n],
        inter_cluster: d.clone(),
    };
    group.bench_function("star_full_low_churn", |b| {
        b.iter(|| emd_star(&p, &q_near, &d, &per_bin, Solver::Simplex))
    });
    group.bench_function("star_reduced_low_churn", |b| {
        b.iter(|| emd_star_reduced(&p, &q_near, &d, &per_bin, Solver::Simplex))
    });
    assert_eq!(
        emd_star(&p, &q_near, &d, &per_bin, Solver::Simplex),
        emd_star_reduced(&p, &q_near, &d, &per_bin, Solver::Simplex),
        "reduced instance must price identically"
    );
    group.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
