//! Certified series pricing at scale: one delta-repaired sketch bundle
//! carried along the series vs re-sketching every snapshot from scratch.
//!
//! The workload is the low-churn regime the sketch-repair path is built
//! for: a ~10⁵-node graph whose snapshots differ by a few hundred
//! balanced flips around one cascade epicenter.
//! `SndEngine::series_intervals` advances a single sketch bundle through
//! each transition (landmark rows repaired through the touched edges,
//! landmarks adapted from term feedback); the baseline
//! `SndEngine::series_intervals_fresh` rebuilds geometry and sketches per
//! snapshot. Both return the same kind of certified intervals, and a
//! subsampled instance small enough to price exactly checks that the
//! delta path's intervals still bracket the exact SND.
//!
//! Results are spliced into `BENCH_scale.json` (repo root) as the
//! `"series"` member, preserving the `scale_approx` ladder around it.
//!
//! Scale knobs (env): `SND_BENCH_SERIES_NODES` (default ~10⁵),
//! `SND_BENCH_SERIES_STEPS` (snapshots − 1, default 24),
//! `SND_BENCH_DELTA` (flips per step, default 256),
//! `SND_BENCH_EPSILON` (default 0.5), `SND_BENCH_LANDMARKS` (default 24),
//! `SND_BENCH_GRAPH` (`ba`/`grid`, default `ba`).
//!
//! Default geometry: Barabási–Albert with 24 landmarks — enough rows
//! that the re-sketch baseline's per-snapshot bill dominates, while the
//! delta path's feedback-driven repair budget keeps only the handful of
//! pairs the pricing leans on current. 24 transitions amortize the one
//! shared initial sketch build.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use snd_core::{ApproxConfig, SndConfig, SndEngine};
use snd_graph::generators::{barabasi_albert, grid_graph};
use snd_graph::CsrGraph;
use snd_models::NetworkState;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn graph_kind() -> String {
    std::env::var("SND_BENCH_GRAPH").unwrap_or_else(|_| "ba".into())
}

fn build_graph(nodes: usize, rng: &mut SmallRng) -> CsrGraph {
    match graph_kind().as_str() {
        "ba" => barabasi_albert(nodes, 3, rng),
        "grid" => {
            let side = (nodes as f64).sqrt().round() as usize;
            grid_graph(side, side)
        }
        other => panic!("SND_BENCH_GRAPH must be 'grid' or 'ba', got {other:?}"),
    }
}

/// The candidate holders of one drift step, classified by opinion: nodes
/// in BFS order around `center`, grown until every class can supply its
/// quota. An opinion cascade perturbs a graph *neighbourhood* — this is
/// what makes the workload low-churn in the structural sense (each
/// transition's touched edges, residual suppliers, and residual
/// demanders all share one region) rather than a uniform sprinkle whose
/// perturbation shadows the whole graph.
fn bfs_region(
    g: &CsrGraph,
    center: u32,
    vals: &[i8],
    q: usize,
) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    // Only rank-and-file users flip: cascades churn the periphery while
    // high-degree nodes hold their positions (the standard stubborn-
    // celebrity assumption). This also keeps the perturbation structural
    // noise small — a hub flip would touch edges sitting on shortest
    // paths across the whole graph.
    let degree_cap = 4 * (g.edge_count() / g.node_count()).max(1);
    let mut seen = vec![false; vals.len()];
    let mut queue = std::collections::VecDeque::from([center]);
    seen[center as usize] = true;
    let (mut pos, mut neg, mut zero) = (Vec::new(), Vec::new(), Vec::new());
    while let Some(u) = queue.pop_front() {
        if g.out_neighbors(u).len() <= degree_cap {
            match vals[u as usize] {
                1 => pos.push(u as usize),
                -1 => neg.push(u as usize),
                _ => zero.push(u as usize),
            }
        }
        if pos.len() >= q && neg.len() >= q && zero.len() >= 2 * q {
            break;
        }
        for &v in g.out_neighbors(u) {
            if !seen[v as usize] {
                seen[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    (pos, neg, zero)
}

/// One balanced drift step: per polar opinion, `q` holders release it and
/// `q` distinct neutral users adopt it, so every histogram total is
/// preserved (no bank absorption) and each transition stays in the
/// residual-to-residual regime of real consecutive snapshots. Flips come
/// from the [`bfs_region`] around a persistent epicenter — the cascade
/// churns one neighbourhood across the series — with a random-phase
/// stride choosing among its candidates so successive steps vary.
fn drift(g: &CsrGraph, vals: &mut [i8], n_delta: usize, center: u32, rng: &mut SmallRng) {
    let q_want = (n_delta / 4).max(1);
    let (pos, neg, zero) = bfs_region(g, center, vals, q_want);
    let q = q_want.min(pos.len()).min(neg.len()).min(zero.len() / 2);
    assert!(q >= 1, "graph too small for the requested n_delta");
    let pick = |list: &[usize], k: usize, rng: &mut SmallRng| -> Vec<usize> {
        let stride = (list.len() / k).max(1);
        let phase = rng.gen_range(0..stride);
        list.iter()
            .skip(phase)
            .step_by(stride)
            .take(k)
            .copied()
            .collect()
    };
    for &i in &pick(&pos, q, rng) {
        vals[i] = 0;
    }
    for &i in &pick(&neg, q, rng) {
        vals[i] = 0;
    }
    for (k, &i) in pick(&zero, 2 * q, rng).iter().enumerate() {
        vals[i] = if k % 2 == 0 { 1 } else { -1 };
    }
}

/// A low-churn series: a sparse polar seeding followed by `steps`
/// balanced cascade drifts of ~`n_delta` users each around one epicenter.
fn series_states(
    g: &CsrGraph,
    steps: usize,
    n_delta: usize,
    rng: &mut SmallRng,
) -> Vec<NetworkState> {
    let n = g.node_count();
    let mut vals = vec![0i8; n];
    for v in vals.iter_mut() {
        if rng.gen::<f64>() < 0.05 {
            *v = if rng.gen::<bool>() { 1 } else { -1 };
        }
    }
    let center = rng.gen_range(0..n) as u32;
    let mut out = vec![NetworkState::from_values(&vals)];
    for _ in 0..steps {
        drift(g, &mut vals, n_delta, center, rng);
        out.push(NetworkState::from_values(&vals));
    }
    out
}

fn approx_config(epsilon: f64, landmarks: usize) -> SndConfig {
    SndConfig {
        approx: Some(ApproxConfig {
            epsilon,
            max_landmarks: landmarks,
            min_nodes: 0,
            ..Default::default()
        }),
        ..SndConfig::default()
    }
}

fn bench_scale_series(c: &mut Criterion) {
    let test = criterion::is_test_mode();
    let nodes = env_usize("SND_BENCH_SERIES_NODES", if test { 2_500 } else { 99_856 });
    let steps = env_usize("SND_BENCH_SERIES_STEPS", if test { 3 } else { 24 });
    let n_delta = env_usize("SND_BENCH_DELTA", if test { 64 } else { 256 });
    let epsilon = env_f64("SND_BENCH_EPSILON", 0.5);
    let landmarks = env_usize("SND_BENCH_LANDMARKS", 24);

    let mut rng = SmallRng::seed_from_u64(2017);
    let graph = build_graph(nodes, &mut rng);
    let n = graph.node_count();
    let states = series_states(&graph, steps, n_delta, &mut rng);
    println!(
        "scale_series: n={n} ({} edges), {} snapshots, ~{n_delta} flips/step",
        graph.edge_count(),
        states.len()
    );
    let engine = SndEngine::new(&graph, approx_config(epsilon, landmarks));

    let mut group = c.benchmark_group("scale_series");
    group
        .sample_size(2)
        .warmup_time(Duration::from_millis(1))
        .measurement_time(Duration::from_secs(1));
    group.bench_function("fresh", |b| {
        b.iter(|| engine.series_intervals_fresh(&states).unwrap())
    });
    group.bench_function("delta", |b| {
        b.iter(|| engine.series_intervals(&states).unwrap())
    });
    group.finish();

    // Certification spot-check on an instance small enough to price
    // exactly: delta-path intervals must bracket the exact series.
    let check_nodes = if test { 900 } else { 10_000 };
    let mut rng = SmallRng::seed_from_u64(4242);
    let small_graph = build_graph(check_nodes, &mut rng);
    let small_states = series_states(&small_graph, steps.min(4), n_delta, &mut rng);
    let exact = SndEngine::new(&small_graph, SndConfig::default()).series_distances(&small_states);
    let intervals = SndEngine::new(&small_graph, approx_config(epsilon, landmarks))
        .series_intervals(&small_states)
        .unwrap();
    let bracketed = exact
        .iter()
        .zip(&intervals)
        .all(|(d, iv)| iv.lower <= d + 1e-9 && *d <= iv.upper + 1e-9);
    println!(
        "scale_series: bracket check at n={}: intervals bracket exact: {bracketed}",
        small_graph.node_count()
    );

    write_history(
        n,
        graph.edge_count(),
        states.len(),
        n_delta,
        epsilon,
        landmarks,
        check_nodes,
        bracketed,
    );
}

/// Splices the measurements into `BENCH_scale.json` as the `"series"`
/// member, leaving the `scale_approx` ladder in place.
#[allow(clippy::too_many_arguments)]
fn write_history(
    nodes: usize,
    edges: usize,
    snapshots: usize,
    n_delta: usize,
    epsilon: f64,
    landmarks: usize,
    check_nodes: usize,
    bracketed: bool,
) {
    let measurements = criterion::take_measurements();
    let mean = |needle: &str| {
        measurements
            .iter()
            .find(|m| m.id.contains(needle))
            .map(|m| m.mean_s)
    };
    let (Some(fresh_s), Some(delta_s)) = (mean("fresh"), mean("delta")) else {
        return;
    };
    let speedup = fresh_s / delta_s;
    if speedup < 3.0 {
        println!("scale_series: WARNING speedup {speedup:.2}× below the 3× target");
    }
    let block = format!(
        "{{\"graph\": \"{kind}\", \"nodes\": {nodes}, \"edges\": {edges}, \
         \"snapshots\": {snapshots}, \"n_delta_per_step\": {n_delta}, \
         \"epsilon\": {epsilon}, \"landmarks\": {landmarks}, \
         \"threads\": {threads}, \"fresh_s\": {fresh_s:.4}, \
         \"delta_s\": {delta_s:.4}, \"speedup\": {speedup:.2}, \
         \"bracket_check_nodes\": {check_nodes}, \
         \"intervals_bracket_exact\": {bracketed}}}",
        kind = graph_kind(),
        threads = rayon::current_num_threads(),
    );
    let path = snd_bench::scale_record::scale_json_path();
    let text = std::fs::read_to_string(path).unwrap_or_default();
    let json = snd_bench::scale_record::splice_series(&text, &block);
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote series block to {path}:\n  \"series\": {block}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_scale_series);
criterion_main!(benches);
