//! Criterion versions of the Fig. 11 / Fig. 12 scalability measurements:
//! sparse SND vs the dense reference across `n`, and sparse SND across
//! `n∆`. Also the geometry-cost ablation (cluster count).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use snd_core::{ClusterSpec, SndConfig, SndEngine};
use snd_graph::generators::scale_free_configuration;
use snd_graph::CsrGraph;
use snd_models::dynamics::seed_initial_adopters;
use snd_models::{NetworkState, Opinion};

fn states_with_ndelta(n: usize, ndelta: usize, rng: &mut SmallRng) -> (NetworkState, NetworkState) {
    let a = seed_initial_adopters(n, 2 * ndelta, rng).expect("seed count within population");
    let mut b = a.clone();
    let mut changed = 0usize;
    while changed < ndelta {
        let u = rng.gen_range(0..n as u32);
        if b.opinion(u) == a.opinion(u) {
            let new = match a.opinion(u) {
                Opinion::Neutral => Opinion::Positive,
                other => other.opposite(),
            };
            b.set(u, new);
            changed += 1;
        }
    }
    (a, b)
}

fn graph_of(n: usize) -> (CsrGraph, SmallRng) {
    let mut rng = SmallRng::seed_from_u64(n as u64);
    let g = scale_free_configuration(n, -2.3, 2, (n / 50).clamp(8, 500), &mut rng);
    (g, rng)
}

/// Fig. 11 shape: sparse vs dense across n at fixed n∆.
fn bench_scaling_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_scaling_n");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    for &n in &[1_000usize, 2_000, 4_000] {
        let (g, mut rng) = graph_of(n);
        let (a, b) = states_with_ndelta(n, 200, &mut rng);
        let engine = SndEngine::new(&g, SndConfig::default());
        group.bench_with_input(BenchmarkId::new("sparse", n), &n, |bench, _| {
            bench.iter(|| engine.distance(&a, &b))
        });
        if n <= 1_000 {
            group.bench_with_input(BenchmarkId::new("dense", n), &n, |bench, _| {
                bench.iter(|| engine.distance_dense(&a, &b))
            });
        }
    }
    group.finish();
}

/// Fig. 12 shape: sparse across n∆ at fixed n.
fn bench_scaling_ndelta(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_scaling_ndelta");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    let n = 8_000;
    let (g, mut rng) = graph_of(n);
    let engine = SndEngine::new(&g, SndConfig::default());
    for &nd in &[100usize, 400, 800] {
        let (a, b) = states_with_ndelta(n, nd, &mut rng);
        group.bench_with_input(BenchmarkId::new("sparse", nd), &nd, |bench, _| {
            bench.iter(|| engine.distance(&a, &b))
        });
    }
    group.finish();
}

/// Ablation: bank-cluster count trades geometry cost vs penalty resolution.
fn bench_cluster_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_cluster_count");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    let n = 4_000;
    let (g, mut rng) = graph_of(n);
    let (a, b) = states_with_ndelta(n, 200, &mut rng);
    for &clusters in &[1usize, 16, 64] {
        let config = SndConfig {
            clusters: ClusterSpec::BfsPartition { clusters },
            ..Default::default()
        };
        let engine = SndEngine::new(&g, config);
        group.bench_with_input(
            BenchmarkId::new("clusters", clusters),
            &clusters,
            |bench, _| bench.iter(|| engine.distance(&a, &b)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_scaling_n,
    bench_scaling_ndelta,
    bench_cluster_count
);
criterion_main!(benches);
