//! Micro-benchmark: the three exact transportation solvers on random
//! balanced instances (the reduced problems SND produces).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use snd_transport::{solve_balanced, DenseCost, Solver};

fn instance(size: usize, seed: u64) -> (Vec<u64>, Vec<u64>, DenseCost) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let cost = DenseCost::random(size, size, 1..5000, &mut rng);
    let mut supplies: Vec<u64> = (0..size).map(|_| rng.gen_range(1..100)).collect();
    let mut demands: Vec<u64> = (0..size).map(|_| rng.gen_range(1..100)).collect();
    let (ts, td): (u64, u64) = (supplies.iter().sum(), demands.iter().sum());
    if ts > td {
        demands[size - 1] += ts - td;
    } else {
        supplies[size - 1] += td - ts;
    }
    (supplies, demands, cost)
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("mincost_flow");
    for &size in &[50usize, 150, 400] {
        let (s, d, cost) = instance(size, size as u64);
        for (name, solver) in [
            ("simplex", Solver::Simplex),
            ("ssp", Solver::Ssp),
            ("cost_scaling", Solver::CostScaling),
        ] {
            // SSP and cost-scaling are superlinear; skip the biggest size.
            if size > 150 && solver != Solver::Simplex {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(name, size), &size, |b, _| {
                b.iter(|| solve_balanced(&s, &d, &cost, solver))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
