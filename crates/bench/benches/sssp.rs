//! Micro-benchmark: the three bounded-cost SSSP engines on scale-free
//! graphs (the inner loop of Theorem 4's sparse path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use snd_graph::{dial, dijkstra, generators, radix_dijkstra};

fn bench_sssp(c: &mut Criterion) {
    let mut group = c.benchmark_group("sssp");
    for &n in &[5_000usize, 20_000] {
        let mut rng = SmallRng::seed_from_u64(n as u64);
        let g = generators::scale_free_configuration(n, -2.3, 2, n / 50, &mut rng);
        let w: Vec<u32> = (0..g.edge_count()).map(|_| rng.gen_range(1..=60)).collect();
        group.bench_with_input(BenchmarkId::new("binary_heap", n), &n, |b, _| {
            b.iter(|| dijkstra(&g, &w, &[0]))
        });
        group.bench_with_input(BenchmarkId::new("dial_buckets", n), &n, |b, _| {
            b.iter(|| dial(&g, &w, &[0], 60))
        });
        group.bench_with_input(BenchmarkId::new("radix_heap", n), &n, |b, _| {
            b.iter(|| radix_dijkstra(&g, &w, &[0]))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sssp);
criterion_main!(benches);
