//! Shared helpers for the experiment binaries; see `src/bin/` for the
//! per-figure regenerators and `benches/` for criterion micro-benchmarks.
pub mod harness;
pub mod scale_record;
