//! Fig. 7 — anomaly detection on synthetic data, qualitative series.
//!
//! Paper setup: |V| = 20k scale-free (γ = −2.3), 40 states; normal steps
//! P_nbr = 0.12 / P_ext = 0.01, anomalous steps 0.08 / 0.05 (sum
//! preserved). Expected shape: SND spikes on the planted anomalies; the
//! coordinate-wise measures stay flat.
//!
//! `cargo run -p snd-bench --release --bin fig7 [--paper | --nodes N --steps S]`

use snd_analysis::series::processed_series;
use snd_analysis::{anomaly_scores, top_k_anomalies};
use snd_baselines::{Hamming, QuadForm, StateDistance, WalkDist};
use snd_bench::harness::{banner, timed, Args};
use snd_core::{SndConfig, SndEngine};
use snd_data::{generate_series, SyntheticSeries, SyntheticSeriesConfig};
use snd_models::dynamics::VotingConfig;

fn main() {
    let args = Args::from_env();
    let nodes = if args.flag("--paper") {
        20_000
    } else {
        args.get("--nodes", 5_000)
    };
    let steps = args.get("--steps", 40usize);
    banner(
        "Fig. 7",
        "distance series between adjacent synthetic states with mechanism anomalies",
        "|V|=20k, gamma=-2.3, 40 states, normal (.12,.01) vs anomalous (.08,.05)",
        &format!("|V|={nodes}, {steps} states"),
    );

    let config = SyntheticSeriesConfig {
        nodes,
        exponent: -2.3,
        initial_adopters: nodes / 50,
        steps,
        normal: VotingConfig::new(0.12, 0.01).expect("valid voting parameters"),
        anomalous: VotingConfig::new(0.08, 0.05).expect("valid voting parameters"),
        anomalous_steps: vec![steps / 5, (2 * steps) / 5, (3 * steps) / 5],
        chance_fraction: 1.0,
        burn_in: 0,
        seed: 7,
    };
    let series = generate_series(&config);

    let engine = SndEngine::new(&series.graph, SndConfig::default());
    let (snd_raw, secs) = timed(|| engine.series_distances(&series.states));
    println!("(SND over {} transitions in {:.1}s)\n", snd_raw.len(), secs);

    let snd = processed_series(&snd_raw, &series.states);
    let ham = baseline(&Hamming, &series);
    let quad = baseline(&QuadForm::new(&series.graph), &series);
    let walk = baseline(&WalkDist::new(&series.graph), &series);

    println!(
        "{:>4} {:>8} {:>8} {:>8} {:>8}  planted",
        "t", "SND", "hamming", "quad", "walk"
    );
    for t in 0..series.labels.len() {
        println!(
            "{:>4} {:>8.3} {:>8.3} {:>8.3} {:>8.3}  {}",
            t,
            snd[t],
            ham[t],
            quad[t],
            walk[t],
            if series.labels[t] { "<== anomaly" } else { "" }
        );
    }

    let k = series.labels.iter().filter(|&&l| l).count();
    println!("\ntop-{k} transitions by anomaly score (S_t spikes):");
    for (name, processed) in [
        ("SND", &snd),
        ("hamming", &ham),
        ("quad-form", &quad),
        ("walk-dist", &walk),
    ] {
        let top = top_k_anomalies(&anomaly_scores(processed), k);
        let hits = top.iter().filter(|&&t| series.labels[t]).count();
        println!("  {name:<10} flags {top:?}  ({hits}/{k} planted anomalies found)");
    }
}

fn baseline<D: StateDistance>(dist: &D, series: &SyntheticSeries) -> Vec<f64> {
    processed_series(&dist.series(&series.states), &series.states)
}
