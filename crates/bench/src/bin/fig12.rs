//! Fig. 12 — scalability in the number of changed users n∆ at fixed n.
//!
//! Paper setup: n = 20k fixed, n∆ up to 10k; time grows superlinearly in
//! n∆ (the reduced transportation problem dominates once n∆ is large).
//!
//! `cargo run -p snd-bench --release --bin fig12 [--paper | --nodes N --max-ndelta K]`

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use snd_bench::harness::{banner, timed, Args};
use snd_core::{SndConfig, SndEngine};
use snd_graph::generators::scale_free_configuration;
use snd_models::dynamics::seed_initial_adopters;
use snd_models::{NetworkState, Opinion};

fn main() {
    let args = Args::from_env();
    let nodes = if args.flag("--paper") {
        20_000
    } else {
        args.get("--nodes", 10_000)
    };
    let max_ndelta = if args.flag("--paper") {
        10_000
    } else {
        args.get("--max-ndelta", 4_000)
    };
    banner(
        "Fig. 12",
        "time to compute SND vs number of changed users (fixed n)",
        "n=20k fixed, n_delta up to 10k",
        &format!("n={nodes}, n_delta up to {max_ndelta}"),
    );

    let mut rng = SmallRng::seed_from_u64(12);
    let graph = scale_free_configuration(nodes, -2.3, 2, (nodes / 50).clamp(8, 1000), &mut rng);
    let engine = SndEngine::new(&graph, SndConfig::default());

    let mut ndeltas = vec![250usize, 500, 1_000, 2_000];
    let mut next = 4_000;
    while next <= max_ndelta {
        ndeltas.push(next);
        next *= 2;
    }
    println!("{:>8} {:>14}", "n_delta", "time (s)");
    for &nd in ndeltas.iter().filter(|&&nd| nd <= nodes / 2) {
        let (a, b) = states_with_ndelta(nodes, nd, &mut rng);
        let (_, secs) = timed(|| engine.distance(&a, &b));
        println!("{nd:>8} {secs:>14.2}");
    }
}

fn states_with_ndelta(n: usize, ndelta: usize, rng: &mut SmallRng) -> (NetworkState, NetworkState) {
    let a = seed_initial_adopters(n, 2 * ndelta, rng).expect("seed count within population");
    let mut b = a.clone();
    let mut changed = 0usize;
    while changed < ndelta {
        let u = rng.gen_range(0..n as u32);
        if b.opinion(u) == a.opinion(u) {
            let new = match a.opinion(u) {
                Opinion::Neutral => {
                    if rng.gen_bool(0.5) {
                        Opinion::Positive
                    } else {
                        Opinion::Negative
                    }
                }
                other => other.opposite(),
            };
            b.set(u, new);
            changed += 1;
        }
    }
    (a, b)
}
