//! Table 1 — user opinion prediction accuracy (mean ± std over
//! repetitions) for six methods on synthetic and (simulated) Twitter data.
//!
//! Paper setup: synthetic n = 10k (γ = −2.5), 800 initial adopters, 3 most
//! recent states for extrapolation, 20 hidden targets, 100 random
//! assignments, 10 repetitions. Reported accuracies: SND 74.33/75.63,
//! hamming 68.44/68.13, quad-form 66.67/67.50, walk-dist 56.22/31.88,
//! nhood-voting 62.11/61.25, community-lp 65.25/56.87.
//!
//! `cargo run -p snd-bench --release --bin table1 [--paper | --nodes N --reps R]`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use snd_analysis::{
    accuracy, distance_based_prediction, distance_based_prediction_batch, extrapolate_linear,
    select_targets, SummaryStats,
};
use snd_baselines::predict::{community_lp, detect_communities, nhood_voting};
use snd_baselines::{Hamming, QuadForm, StateDistance, WalkDist};
use snd_bench::harness::{banner, Args};
use snd_core::{CandidateEvaluator, OrderedSnd, SndConfig, SndEngine};
use snd_data::{generate_series, simulate_twitter, SyntheticSeriesConfig, TwitterSimConfig};
use snd_graph::{CsrGraph, NodeId};
use snd_models::dynamics::VotingConfig;
use snd_models::{flips_between, NetworkState, Opinion};

const TARGETS: usize = 20;
const CANDIDATES: usize = 100;

fn main() {
    let args = Args::from_env();
    let nodes = if args.flag("--paper") {
        10_000
    } else {
        args.get("--nodes", 3_000)
    };
    let reps = args.get("--reps", 10usize);
    banner(
        "Table 1",
        "user opinion prediction accuracy, mean/std over repetitions",
        "n=10k synthetic + Twitter; 20 targets, 100 candidates, 10 reps",
        &format!("n={nodes}, {TARGETS} targets, {CANDIDATES} candidates, {reps} reps"),
    );

    // --- Synthetic dataset (γ = −2.5 per §6.3) ---
    let synth = generate_series(&SyntheticSeriesConfig {
        nodes,
        exponent: -2.5,
        initial_adopters: (nodes / 12).max(50),
        steps: 5,
        normal: VotingConfig::new(0.10, 0.02).expect("valid voting parameters"),
        anomalous: VotingConfig::new(0.10, 0.02).expect("valid voting parameters"),
        anomalous_steps: vec![],
        chance_fraction: 0.10,
        burn_in: 4,
        seed: 63,
    });
    println!("\n--- synthetic data (n={nodes}) ---");
    let synth_rows = run_dataset(&synth.graph, &synth.states, reps, 1063);

    // --- Simulated Twitter dataset ---
    let twitter = simulate_twitter(&TwitterSimConfig {
        users: nodes,
        avg_degree: if args.flag("--paper") { 130 } else { 50 },
        ..Default::default()
    });
    println!("\n--- (simulated) Twitter data (n={nodes}) ---");
    let twitter_rows = run_dataset(&twitter.graph, &twitter.states, reps, 2063);

    println!("\nTable 1: User Opinion Prediction Accuracy, %");
    println!(
        "{:<15} {:>9} {:>7}   {:>9} {:>7}",
        "Method", "synth mu", "sigma", "twit mu", "sigma"
    );
    for (name, s) in synth_rows.iter() {
        let t = twitter_rows
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| *t)
            .unwrap();
        println!(
            "{:<15} {:>9.2} {:>7.2}   {:>9.2} {:>7.2}",
            name,
            100.0 * s.mean,
            100.0 * s.std,
            100.0 * t.mean,
            100.0 * t.std
        );
    }
}

fn run_dataset(
    graph: &CsrGraph,
    states: &[NetworkState],
    reps: usize,
    seed: u64,
) -> Vec<(String, SummaryStats)> {
    let t = states.len() - 1;
    assert!(t >= 3, "need at least 4 states");
    let truth = &states[t];
    let engine = SndEngine::new(graph, SndConfig::default());

    // Ordered-SND history distances (3 most recent complete states).
    let ord1 = OrderedSnd::new(&engine, states[t - 3].clone());
    let snd_d1 = ord1.distance_to(&states[t - 2]);
    let ord2 = OrderedSnd::new(&engine, states[t - 2].clone());
    let snd_d2 = ord2.distance_to(&states[t - 1]);
    let snd_dstar = extrapolate_linear(&[snd_d1, snd_d2]).expect("two-point series");
    let anchored = CandidateEvaluator::new(&engine, states[t - 1].clone());

    // Baseline distance measures extrapolate their own series.
    let ham = Hamming;
    let quad = QuadForm::new(graph);
    let walk = WalkDist::new(graph);
    let dstar_of = |d: &dyn StateDistance| {
        extrapolate_linear(&[
            d.distance(&states[t - 3], &states[t - 2]),
            d.distance(&states[t - 2], &states[t - 1]),
        ])
        .expect("two-point series")
    };
    let (ham_dstar, quad_dstar, walk_dstar) = (dstar_of(&ham), dstar_of(&quad), dstar_of(&walk));

    let mut rng = SmallRng::seed_from_u64(seed);
    let communities = detect_communities(graph, &mut rng);

    let mut acc: std::collections::BTreeMap<&str, Vec<f64>> = Default::default();
    for _ in 0..reps {
        let targets = select_targets(truth, TARGETS, &mut rng);
        let mut known = truth.clone();
        for &u in &targets {
            known.set(u, Opinion::Neutral);
        }

        // Batch search: the whole candidate set is priced as flip-lists in
        // parallel against the anchored delta geometry; same result as the
        // sequential search under the same RNG stream.
        let base = flips_between(anchored.anchor(), &known);
        let snd_pred = distance_based_prediction_batch(
            |cands| {
                let full: Vec<Vec<(NodeId, Opinion)>> = cands
                    .iter()
                    .map(|c| base.iter().copied().chain(c.iter().copied()).collect())
                    .collect();
                anchored.price_candidates(&full)
            },
            snd_dstar,
            &targets,
            CANDIDATES,
            &mut rng,
        )
        .expect("candidates > 0");
        acc.entry("SND")
            .or_default()
            .push(accuracy(&snd_pred, truth, &targets).expect("one prediction per target"));

        let mut run_baseline = |name: &'static str, d: &dyn StateDistance, dstar: f64| {
            // Baseline measures need a full state: flips land in one
            // reused buffer (every candidate assigns every target, so no
            // reset between candidates is needed).
            let mut buf = known.clone();
            let pred = distance_based_prediction(
                |flips: &[(NodeId, Opinion)]| {
                    for &(u, op) in flips {
                        buf.set(u, op);
                    }
                    d.distance(&states[t - 1], &buf)
                },
                dstar,
                &targets,
                CANDIDATES,
                &mut rng,
            )
            .expect("candidates > 0");
            acc.entry(name)
                .or_default()
                .push(accuracy(&pred, truth, &targets).expect("one prediction per target"));
        };
        run_baseline("hamming", &ham, ham_dstar);
        run_baseline("quad-form", &quad, quad_dstar);
        run_baseline("walk-dist", &walk, walk_dstar);

        let nv = nhood_voting(graph, &known, &targets, &mut rng);
        acc.entry("nhood-voting")
            .or_default()
            .push(accuracy(&nv, truth, &targets).expect("one prediction per target"));
        let lp = community_lp(&communities, &known, &targets, &mut rng);
        acc.entry("community-lp")
            .or_default()
            .push(accuracy(&lp, truth, &targets).expect("one prediction per target"));
    }

    let order = [
        "SND",
        "hamming",
        "quad-form",
        "walk-dist",
        "nhood-voting",
        "community-lp",
    ];
    let mut rows = Vec::new();
    for name in order {
        let stats = SummaryStats::from_samples(&acc[name]).expect("reps >= 1");
        println!(
            "  {:<15} mu {:>6.2}%  sigma {:>5.2}",
            name,
            100.0 * stats.mean,
            100.0 * stats.std
        );
        rows.push((name.to_string(), stats));
    }
    rows
}
