//! Fig. 9 — anomaly detection on the (simulated) Twitter dataset, topic
//! "Obama".
//!
//! Paper setup: 10k users, ≈130 follower edges each, quarterly states
//! May'08–Aug'11; ground truth from Google Trends + a political-events log.
//! Expected shape: all measures spike together on consensus events
//! (election, bin-Laden); SND alone spikes on polarized events (stimulus
//! bill, "Obama-Care"). This run uses the simulated dataset documented in
//! DESIGN.md.
//!
//! `cargo run -p snd-bench --release --bin fig9 [--paper | --users N]`

use snd_analysis::series::processed_series;
use snd_analysis::{anomaly_scores, top_k_anomalies};
use snd_baselines::{Hamming, QuadForm, StateDistance, WalkDist};
use snd_bench::harness::{banner, timed, Args};
use snd_core::{SndConfig, SndEngine};
use snd_data::{simulate_twitter, EventKind, TwitterSim, TwitterSimConfig};

fn main() {
    let args = Args::from_env();
    let (users, avg_degree) = if args.flag("--paper") {
        (10_000, 130)
    } else {
        (args.get("--users", 4_000), args.get("--avg-degree", 50))
    };
    banner(
        "Fig. 9",
        "quarterly anomaly timeline on (simulated) Twitter, topic 'Obama'",
        "10k users, ~130 edges/user, 13 quarters May'08-Aug'11",
        &format!("{users} users, ~{avg_degree} edges/user, 13 quarters (simulated)"),
    );

    let config = TwitterSimConfig {
        users,
        avg_degree,
        ..Default::default()
    };
    let sim = simulate_twitter(&config);

    let engine = SndEngine::new(&sim.graph, SndConfig::default());
    let (snd_raw, secs) = timed(|| engine.series_distances(&sim.states));
    println!("(SND over {} transitions in {:.1}s)\n", snd_raw.len(), secs);

    let snd = processed_series(&snd_raw, &sim.states);
    let ham = baseline(&Hamming, &sim);
    let quad = baseline(&QuadForm::new(&sim.graph), &sim);
    let walk = baseline(&WalkDist::new(&sim.graph), &sim);

    println!(
        "{:>3} {:>7} {:>7} {:>7} {:>7}  event",
        "t", "SND", "hamming", "quad", "walk"
    );
    for t in 0..sim.labels.len() {
        let annotation = sim
            .events
            .iter()
            .find(|e| e.quarter == t + 1)
            .map(|e| match e.kind {
                EventKind::Consensus { .. } => format!("{} (consensus)", e.name),
                EventKind::Polarized { .. } => format!("{} (POLARIZED)", e.name),
            })
            .unwrap_or_default();
        println!(
            "{:>3} {:>7.3} {:>7.3} {:>7.3} {:>7.3}  {annotation}",
            t, snd[t], ham[t], quad[t], walk[t]
        );
    }

    // Agreement analysis: consensus events should be flagged by every
    // measure; polarized events by SND alone.
    let k = sim.labels.iter().filter(|&&l| l).count();
    println!("\npolarized-event recovery (top-{k} anomaly scores):");
    for (name, processed) in [
        ("SND", &snd),
        ("hamming", &ham),
        ("quad-form", &quad),
        ("walk-dist", &walk),
    ] {
        let top = top_k_anomalies(&anomaly_scores(processed), k);
        let hits = top.iter().filter(|&&t| sim.labels[t]).count();
        println!("  {name:<10} flags {top:?}  ({hits}/{k} polarized events)");
    }
}

fn baseline<D: StateDistance>(dist: &D, sim: &TwitterSim) -> Vec<f64> {
    processed_series(&dist.series(&sim.states), &sim.states)
}
