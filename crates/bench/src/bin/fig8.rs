//! Fig. 8 — ROC curves for anomaly detection over a long synthetic series.
//!
//! Paper setup: |V| = 30k (γ = −2.3), 300 network states; normal steps
//! (0.08, 0.001), anomalous (0.07, 0.011). Reported result: SND reaches TPR
//! 0.83 within FPR ≤ 0.3 while the next best measure reaches only 0.4.
//!
//! The monotone voting process saturates a network long before 300 steps,
//! so this harness accumulates the 300 transitions from several independent
//! series (each kept in the pre-saturation regime) rather than one long
//! one; every series contributes its transitions to a single pooled ROC.
//!
//! `cargo run -p snd-bench --release --bin fig8 [--paper | --nodes N --steps S --series K]`

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use snd_analysis::series::processed_series;
use snd_analysis::{anomaly_scores, auc, roc_curve, tpr_at_fpr};
use snd_baselines::{Hamming, QuadForm, StateDistance, WalkDist};
use snd_bench::harness::{banner, timed, Args};
use snd_core::{SndConfig, SndEngine};
use snd_data::{generate_series, SyntheticSeries, SyntheticSeriesConfig};
use snd_models::dynamics::VotingConfig;

fn main() {
    let args = Args::from_env();
    let (nodes, steps, n_series): (usize, usize, usize) = if args.flag("--paper") {
        (30_000, 30, 10)
    } else {
        (
            args.get("--nodes", 5_000),
            args.get("--steps", 30),
            args.get("--series", 5),
        )
    };
    banner(
        "Fig. 8",
        "pooled ROC: which measure ranks the anomalous transitions highest",
        "|V|=30k, gamma=-2.3, 300 states, normal (.08,.001) vs anomalous (.07,.011)",
        &format!(
            "|V|={nodes}, {n_series} series x {steps} states = {} transitions",
            n_series * steps
        ),
    );

    let mut all_labels: Vec<bool> = Vec::new();
    let mut all_scores: Vec<Vec<f64>> = vec![Vec::new(); 4]; // SND, ham, quad, walk
    let names = ["SND", "hamming", "quad-form", "walk-dist"];

    let (_, secs) = timed(|| {
        for series_idx in 0..n_series {
            let mut rng = SmallRng::seed_from_u64(88 + series_idx as u64);
            let mut anomalous_steps: Vec<usize> = Vec::new();
            for t in 2..steps.saturating_sub(2) {
                if rng.gen_bool(0.15) {
                    anomalous_steps.push(t);
                }
            }
            let config = SyntheticSeriesConfig {
                nodes,
                exponent: -2.3,
                initial_adopters: nodes / 50,
                steps,
                normal: VotingConfig::new(0.08, 0.001).expect("valid voting parameters"),
                anomalous: VotingConfig::new(0.07, 0.011).expect("valid voting parameters"),
                anomalous_steps,
                chance_fraction: 1.0,
                burn_in: 0,
                seed: 1000 + series_idx as u64,
            };
            let series = generate_series(&config);
            let engine = SndEngine::new(&series.graph, SndConfig::default());
            let snd_raw = engine.series_distances(&series.states);
            let processed: [Vec<f64>; 4] = [
                processed_series(&snd_raw, &series.states),
                baseline(&Hamming, &series),
                baseline(&QuadForm::new(&series.graph), &series),
                baseline(&WalkDist::new(&series.graph), &series),
            ];
            for (k, p) in processed.iter().enumerate() {
                all_scores[k].extend(anomaly_scores(p));
            }
            all_labels.extend_from_slice(&series.labels);
        }
    });
    let positives = all_labels.iter().filter(|&&l| l).count();
    println!(
        "{} pooled transitions, {} anomalous ({secs:.1}s)\n",
        all_labels.len(),
        positives
    );

    println!(
        "{:<10} {:>8} {:>14} {:>14}",
        "measure", "AUC", "TPR@FPR<=0.1", "TPR@FPR<=0.3"
    );
    let mut curves = Vec::new();
    for (name, scores) in names.iter().zip(&all_scores) {
        let curve = roc_curve(scores, &all_labels);
        println!(
            "{:<10} {:>8.3} {:>14.3} {:>14.3}",
            name,
            auc(&curve),
            tpr_at_fpr(&curve, 0.1),
            tpr_at_fpr(&curve, 0.3)
        );
        curves.push((name.to_string(), curve));
    }

    println!("\nROC points (fpr, tpr) per measure:");
    for (name, curve) in &curves {
        let pts: Vec<String> = curve
            .iter()
            .step_by((curve.len() / 12).max(1))
            .map(|p| format!("({:.2},{:.2})", p.fpr, p.tpr))
            .collect();
        println!("  {name:<10} {}", pts.join(" "));
    }
}

fn baseline<D: StateDistance>(dist: &D, series: &SyntheticSeries) -> Vec<f64> {
    processed_series(&dist.series(&series.states), &series.states)
}
