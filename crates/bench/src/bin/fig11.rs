//! Fig. 11 — scalability in the number of users `n` at fixed n∆.
//!
//! Paper setup: n from 1k to 200k, n∆ = 1000; the Theorem 4 method scales
//! near-linearly while the direct LP computation (CPLEX there, our dense
//! reference path here) blows up and is only feasible to a few thousand
//! users. Expected shape: dense ≫ sparse, with the gap widening in n.
//!
//! `cargo run -p snd-bench --release --bin fig11 [--paper] [--ndelta K]`

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use snd_bench::harness::{banner, timed, Args};
use snd_core::{SndConfig, SndEngine};
use snd_graph::generators::scale_free_configuration;
use snd_models::dynamics::seed_initial_adopters;
use snd_models::{NetworkState, Opinion};

fn main() {
    let args = Args::from_env();
    let ndelta = args.get("--ndelta", 1000usize);
    let sizes: Vec<usize> = if args.flag("--paper") {
        vec![
            1_000, 2_000, 3_000, 4_000, 5_000, 10_000, 30_000, 50_000, 70_000, 90_000, 200_000,
        ]
    } else {
        vec![1_000, 2_000, 3_000, 5_000, 10_000, 20_000, 50_000]
    };
    // The dense path is O(n^2) memory; cap it like the paper capped CPLEX.
    let dense_cap = args.get("--dense-cap", 3_000usize);
    banner(
        "Fig. 11",
        "time to compute SND vs number of users (fixed n_delta)",
        "n in 1k..200k, n_delta=1000; our method vs CPLEX direct solve",
        &format!(
            "n in {:?}, n_delta={ndelta}; sparse (Theorem 4) vs dense reference (<= {dense_cap})",
            sizes
        ),
    );

    println!(
        "{:>8} {:>10} {:>14} {:>14}",
        "n", "edges", "sparse (s)", "dense (s)"
    );
    for &n in &sizes {
        let mut rng = SmallRng::seed_from_u64(n as u64);
        let graph = scale_free_configuration(n, -2.3, 2, (n / 50).clamp(8, 1000), &mut rng);
        let (a, b) = states_with_ndelta(n, ndelta.min(n / 2), &mut rng);
        let engine = SndEngine::new(&graph, SndConfig::default());
        let (_, sparse_secs) = timed(|| engine.distance(&a, &b));
        let dense_secs = if n <= dense_cap {
            let (_, secs) = timed(|| engine.distance_dense(&a, &b));
            format!("{secs:>14.2}")
        } else {
            format!("{:>14}", "-")
        };
        println!(
            "{n:>8} {:>10} {sparse_secs:>14.2} {dense_secs}",
            graph.edge_count()
        );
    }
}

/// Builds a state pair differing in exactly `ndelta` users.
fn states_with_ndelta(n: usize, ndelta: usize, rng: &mut SmallRng) -> (NetworkState, NetworkState) {
    let a = seed_initial_adopters(n, 2 * ndelta, rng).expect("seed count within population");
    let mut b = a.clone();
    let mut changed = 0usize;
    while changed < ndelta {
        let u = rng.gen_range(0..n as u32);
        let old = b.opinion(u);
        // Cycle each touched user to a different opinion so every touch
        // counts exactly once.
        if b.opinion(u) == a.opinion(u) {
            let new = match old {
                Opinion::Neutral => {
                    if rng.gen_bool(0.5) {
                        Opinion::Positive
                    } else {
                        Opinion::Negative
                    }
                }
                other => other.opposite(),
            };
            b.set(u, new);
            changed += 1;
        }
    }
    (a, b)
}
