//! Fig. 10 — sensitivity to the opinion dynamics model: SND (under the ICC
//! ground distance) vs ℓ1 on normal (ICC) and anomalous (random)
//! transitions, as a function of n∆.
//!
//! Expected shape: SND separates the two transition kinds at every n∆
//! (anomalous transitions sit strictly above normal ones); ℓ1 is a
//! function of n∆ alone and cannot separate them.
//!
//! `cargo run -p snd-bench --release --bin fig10 [--nodes N --pairs K]`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use snd_baselines::{StateDistance, L1};
use snd_bench::harness::{banner, Args};
use snd_core::{SndConfig, SndEngine};
use snd_graph::generators::barabasi_albert;
use snd_models::dynamics::{icc_step, random_activation_step, seed_initial_adopters};
use snd_models::{GroundCostConfig, IccParams, SpreadingModel};

fn main() {
    let args = Args::from_env();
    let nodes = args.get("--nodes", 3_000usize);
    let pairs = args.get("--pairs", 10usize);
    banner(
        "Fig. 10",
        "SND and l1 on normal (ICC) vs anomalous (random) transitions",
        "scale-free network, transition pairs with n_delta in [60, 180]",
        &format!("|V|={nodes} (Barabasi-Albert), {pairs} pairs per kind"),
    );

    let mut rng = SmallRng::seed_from_u64(1010);
    let graph = barabasi_albert(nodes, 4, &mut rng);
    let params = IccParams::default();
    let config = SndConfig::with_ground(GroundCostConfig::with_model(SpreadingModel::Icc(
        params.clone(),
    )));
    let engine = SndEngine::new(&graph, config);

    println!("{:>8} {:>12} {:>8}   kind", "n_delta", "SND", "l1");
    let mut normal_points = Vec::new();
    let mut anomalous_points = Vec::new();
    for trial in 0..pairs {
        let seeds = nodes / 30 + trial * (nodes / 120).max(1);
        let start =
            seed_initial_adopters(nodes, seeds, &mut rng).expect("seed count within population");
        let normal = icc_step(&graph, &start, &params, &mut rng);
        let nd = start.diff_count(&normal);
        let snd_n = engine.distance(&start, &normal);
        let l1_n = L1.distance(&start, &normal);
        println!("{nd:>8} {snd_n:>12.1} {l1_n:>8.0}   ICC (normal)");
        normal_points.push((nd, snd_n, l1_n));

        // Same activation volume, structure-oblivious placement.
        let anomalous = random_activation_step(&graph, &start, nd, &mut rng);
        let nd_a = start.diff_count(&anomalous);
        let snd_a = engine.distance(&start, &anomalous);
        let l1_a = L1.distance(&start, &anomalous);
        println!("{nd_a:>8} {snd_a:>12.1} {l1_a:>8.0}   random (anomalous)");
        anomalous_points.push((nd_a, snd_a, l1_a));
    }

    // Separation check: does a single SND threshold split the kinds?
    let max_normal = normal_points.iter().map(|p| p.1).fold(0.0, f64::max);
    let min_anom = anomalous_points
        .iter()
        .map(|p| p.1)
        .fold(f64::INFINITY, f64::min);
    println!("\nSND: max normal = {max_normal:.1}, min anomalous = {min_anom:.1}");
    println!(
        "SND separates the transition kinds: {}",
        if min_anom > max_normal { "YES" } else { "NO" }
    );
    let mean = |pts: &[(usize, f64, f64)], f: fn(&(usize, f64, f64)) -> f64| {
        pts.iter().map(f).sum::<f64>() / pts.len() as f64
    };
    println!(
        "l1 per changed user: normal {:.2}, anomalous {:.2} (same by construction)",
        mean(&normal_points, |p| p.2 / p.0 as f64),
        mean(&anomalous_points, |p| p.2 / p.0 as f64),
    );
}
