//! Shared surgery on `BENCH_scale.json`.
//!
//! Two benches record into the same file: `scale_approx` owns the
//! crossover ladder and the 10⁶-node headline, `scale_series` owns the
//! `"series"` member (delta-repaired sketch series vs per-snapshot
//! re-sketch). Either bench may run alone, so each preserves the other's
//! half: `scale_approx` rewrites the whole file but re-splices an
//! existing `"series"` block, and `scale_series` splices its block into
//! whatever ladder file is present.

/// Byte span of the `"series"` member — from the comma (or whitespace)
/// preceding the key through the value object's closing brace.
fn member_span(text: &str) -> Option<(usize, usize)> {
    let key = text.find("\"series\"")?;
    let mut start = key;
    while start > 0 && text.as_bytes()[start - 1].is_ascii_whitespace() {
        start -= 1;
    }
    if start > 0 && text.as_bytes()[start - 1] == b',' {
        start -= 1;
    }
    let open = key + text[key..].find('{')?;
    let mut depth = 0usize;
    for (i, c) in text[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((start, open + i + 1));
                }
            }
            _ => {}
        }
    }
    None
}

/// The `"series"` member's value object (`{...}`), if the text has one.
pub fn extract_series(text: &str) -> Option<String> {
    let (start, end) = member_span(text)?;
    let member = &text[start..end];
    Some(member[member.find('{')?..].to_string())
}

/// The text with its `"series"` member removed (identity when absent).
pub fn strip_series(text: &str) -> String {
    match member_span(text) {
        Some((start, end)) => format!("{}{}", &text[..start], &text[end..]),
        None => text.to_string(),
    }
}

/// Splices `"series": block` in as the last member of the top-level JSON
/// object, replacing any existing `"series"` member.
pub fn splice_series(text: &str, block: &str) -> String {
    let base = strip_series(text);
    let trimmed = base.trim_end();
    let Some(body) = trimmed.strip_suffix('}') else {
        return format!("{{\n  \"series\": {block}\n}}\n");
    };
    let body = body.trim_end();
    let sep = if body.ends_with('{') { "" } else { "," };
    format!("{body}{sep}\n  \"series\": {block}\n}}\n")
}

/// `BENCH_scale.json` at the repo root.
pub fn scale_json_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    const LADDER: &str =
        "{\n  \"bench\": \"scale_approx\",\n  \"million\": {\"nodes\": 5, \"approx_s\": 1.00}\n}\n";

    #[test]
    fn splice_adds_replaces_and_strips() {
        let block = "{\"speedup\": 3.10, \"detail\": {\"inner\": 1}}";
        let spliced = splice_series(LADDER, block);
        assert!(spliced.contains("\"series\": {\"speedup\": 3.10"));
        assert_eq!(extract_series(&spliced).as_deref(), Some(block));
        // Replacing goes through the same path: one series member only.
        let replaced = splice_series(&spliced, "{\"speedup\": 4.00}");
        assert_eq!(replaced.matches("\"series\"").count(), 1);
        assert!(extract_series(&replaced).unwrap().contains("4.00"));
        // Stripping restores the ladder-only text.
        assert_eq!(strip_series(&replaced), LADDER);
        assert_eq!(strip_series(LADDER), LADDER);
    }

    #[test]
    fn splice_into_missing_or_empty_files_still_yields_json() {
        let out = splice_series("", "{\"speedup\": 1.0}");
        assert!(out.starts_with('{') && out.trim_end().ends_with('}'));
        assert!(extract_series(&out).is_some());
        let out = splice_series("{}\n", "{\"speedup\": 1.0}");
        assert_eq!(out.matches("\"series\"").count(), 1);
    }
}
