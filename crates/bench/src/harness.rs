//! Shared plumbing for the experiment binaries: flag parsing, timing, and
//! table formatting.

use std::time::Instant;

/// Minimal `--flag value` / `--paper` argument parser for the experiment
/// binaries.
#[derive(Clone, Debug, Default)]
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Parses the process arguments.
    pub fn from_env() -> Self {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// True if the boolean flag is present (e.g. `--paper`).
    pub fn flag(&self, name: &str) -> bool {
        self.raw.iter().any(|a| a == name)
    }

    /// Value of `--name value`, parsed, or the default.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.raw
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

/// Times a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Prints a standard experiment header.
pub fn banner(id: &str, description: &str, paper_setup: &str, this_setup: &str) {
    println!("================================================================");
    println!("{id}: {description}");
    println!("  paper setup: {paper_setup}");
    println!("  this run:    {this_setup}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_lookup() {
        let args = Args {
            raw: vec!["--nodes".into(), "500".into(), "--paper".into()],
        };
        assert_eq!(args.get("--nodes", 10usize), 500);
        assert_eq!(args.get("--steps", 40usize), 40);
        assert!(args.flag("--paper"));
        assert!(!args.flag("--quick"));
    }

    #[test]
    fn timed_returns_value() {
        let (v, secs) = timed(|| 2 + 2);
        assert_eq!(v, 4);
        assert!(secs >= 0.0);
    }
}
