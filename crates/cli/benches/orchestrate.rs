//! Orchestrated-run benchmark: wall-clock for 1/2/4 local workers plus
//! the streaming-overlap ablation, gated on bit-identity with the
//! single-process shard path.
//!
//! Not a criterion harness: each point is one full multi-process run of
//! the real `snd` binary (coordinator + worker fleet over a Unix
//! socket), so the interesting number is the end-to-end wall time and
//! the per-phase worker seconds parsed from its report lines. Results
//! land in `BENCH_orchestrate.json` at the repo root. The container is
//! 1-core, so worker counts measure scheduling overhead and overlap
//! behaviour, not parallel speedup.
//!
//! `--test` (used by CI and `cargo test`-adjacent smoke) shrinks the
//! dataset and skips nothing — the bit-identity gate always runs.
//!
//! Scale knobs (env): `SND_BENCH_NODES` (default 1500),
//! `SND_BENCH_SNAPSHOTS` (default 8).

use std::path::Path;
use std::process::Command;
use std::time::Instant;

const SND: &str = env!("CARGO_BIN_EXE_snd");

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Runs `snd` with `args`, asserting success; returns (stdout, seconds).
fn snd(args: &[&str]) -> (String, f64) {
    let started = Instant::now();
    let out = Command::new(SND)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("spawning {SND}: {e}"));
    let wall = started.elapsed().as_secs_f64();
    assert!(
        out.status.success(),
        "snd {args:?} failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (String::from_utf8_lossy(&out.stdout).into_owned(), wall)
}

/// Sums `label {value}s` occurrences over every worker report line.
fn sum_worker_seconds(stdout: &str, label: &str) -> f64 {
    stdout
        .lines()
        .filter(|l| l.starts_with("work:"))
        .filter_map(|l| {
            let rest = l.split(label).nth(1)?;
            rest.split('s').next()?.trim().parse::<f64>().ok()
        })
        .sum()
}

/// Pulls `key: N` style counters out of the coordinator report line.
fn report_counter(stdout: &str, key: &str) -> usize {
    stdout
        .lines()
        .find(|l| l.starts_with("orchestrate: complete"))
        .and_then(|l| l.split(key).nth(1))
        .and_then(|rest| {
            rest.trim_start_matches(": ")
                .split(|c: char| !c.is_ascii_digit())
                .next()?
                .parse()
                .ok()
        })
        .unwrap_or(0)
}

struct Run {
    workers: usize,
    overlap: bool,
    wall_s: f64,
    compute_s: f64,
    flush_wait_s: f64,
    redispatched: usize,
    duplicates: usize,
}

fn orchestrated_run(
    data: &Path,
    ckpt: &Path,
    out_json: &Path,
    tile: usize,
    workers: usize,
    overlap: bool,
) -> Run {
    let _ = std::fs::remove_file(ckpt);
    let tile_s = tile.to_string();
    let workers_s = workers.to_string();
    let mut args = vec![
        "orchestrate",
        "--data",
        data.to_str().unwrap(),
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--workers",
        &workers_s,
        "--tile",
        &tile_s,
        "--out",
        out_json.to_str().unwrap(),
    ];
    if !overlap {
        args.push("--no-overlap");
    }
    let (stdout, wall_s) = snd(&args);
    Run {
        workers,
        overlap,
        wall_s,
        compute_s: sum_worker_seconds(&stdout, "compute "),
        flush_wait_s: sum_worker_seconds(&stdout, "flush-wait "),
        redispatched: report_counter(&stdout, "re-dispatched"),
        duplicates: report_counter(&stdout, "duplicates"),
    }
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let (nodes, snapshots) = if test_mode {
        (120, 5)
    } else {
        (
            env_usize("SND_BENCH_NODES", 1_500).max(50),
            env_usize("SND_BENCH_SNAPSHOTS", 8).max(3),
        )
    };
    let tile = 2usize;
    let dir = std::env::temp_dir().join(format!("snd_bench_orch_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench workdir");
    let data = dir.join("data.json");
    let steps = (snapshots - 1).to_string();
    let nodes_s = nodes.to_string();
    snd(&[
        "generate",
        "--nodes",
        &nodes_s,
        "--steps",
        &steps,
        "--seed",
        "11",
        "--out",
        data.to_str().unwrap(),
    ]);

    // Reference: the single-process shard path on the same explicit grid.
    let ref_ckpt = dir.join("ref.snd");
    let tile_s = tile.to_string();
    let (_, ref_wall) = snd(&[
        "shard",
        "--data",
        data.to_str().unwrap(),
        "--shard",
        "0/1",
        "--checkpoint",
        ref_ckpt.to_str().unwrap(),
        "--tile",
        &tile_s,
    ]);
    let ref_json = dir.join("ref.json");
    snd(&[
        "shard",
        "merge",
        "--out",
        ref_json.to_str().unwrap(),
        ref_ckpt.to_str().unwrap(),
    ]);
    let reference = std::fs::read(&ref_json).expect("reference matrix");

    // Worker-count curve plus the overlap ablation at 2 workers.
    let points: &[(usize, bool)] = &[(1, true), (2, true), (4, true), (2, false)];
    let mut runs = Vec::new();
    for &(workers, overlap) in points {
        let tag = format!("w{workers}{}", if overlap { "" } else { "_noovl" });
        let ckpt = dir.join(format!("orch_{tag}.snd"));
        let out_json = dir.join(format!("orch_{tag}.json"));
        let run = orchestrated_run(&data, &ckpt, &out_json, tile, workers, overlap);
        // The gate: every orchestrated matrix is byte-identical to the
        // single-process artifact (which is itself bit-exact f64 JSON).
        let merged = std::fs::read(&out_json).expect("orchestrated matrix");
        assert_eq!(
            merged, reference,
            "{tag}: orchestrated matrix differs from the sequential shard path"
        );
        println!(
            "orchestrate bench {tag}: wall {:.2}s (reference {ref_wall:.2}s), compute {:.2}s, \
             flush-wait {:.3}s, redispatched {}, duplicates {}",
            run.wall_s, run.compute_s, run.flush_wait_s, run.redispatched, run.duplicates
        );
        runs.push(run);
    }

    write_results(nodes, snapshots, tile, ref_wall, &runs);
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "orchestrate bench: bit-identity gate passed for all {} runs",
        runs.len()
    );
}

/// Records the measurements as `BENCH_orchestrate.json` at the repo root
/// (skipped in `--test` mode: CI numbers would overwrite real ones).
fn write_results(nodes: usize, snapshots: usize, tile: usize, ref_wall: f64, runs: &[Run]) {
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"orchestrate\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"nodes\": {nodes}, \"snapshots\": {snapshots}, \"tile\": {tile}, \
         \"cores\": 1}},\n"
    ));
    json.push_str(&format!(
        "  \"reference\": {{\"mode\": \"shard 0/1 single process\", \"wall_s\": {ref_wall:.3}}},\n"
    ));
    json.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workers\": {}, \"overlap\": {}, \"wall_s\": {:.3}, \"compute_s\": {:.3}, \
             \"flush_wait_s\": {:.4}, \"redispatched\": {}, \"duplicates\": {}, \
             \"bit_identical\": true}}{}\n",
            r.workers,
            r.overlap,
            r.wall_s,
            r.compute_s,
            r.flush_wait_s,
            r.redispatched,
            r.duplicates,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_orchestrate.json");
    std::fs::write(path, json).expect("writing BENCH_orchestrate.json");
    println!("wrote {path}");
}
