//! `snd orchestrate` / `snd work`: the distributed shard orchestrator.
//!
//! The coordinator (`orchestrate`) owns the tile grid and the checkpoint;
//! workers (`work`) — spawned locally with `--workers N` or started by
//! hand on other machines against `--listen host:port` — lease tiles,
//! compute them, and stream checkpoint-format result lines back. The
//! merged matrix is bit-identical to the sequential path regardless of
//! worker count, kills, restarts, or duplicated work.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use snd_core::{SndEngine, TileGrid, TileSet};
use snd_orchestrate::{
    orchestrate_tile, report_line, run_worker, Coordinator, CoordinatorOpts, Endpoint, WorkerOpts,
};

use crate::commands::{engine_config, flag, opt_raw, write_matrix_json};
use crate::dataset::Dataset;

/// Validated `snd orchestrate` flags.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct OrchestrateFlags {
    pub data: String,
    pub checkpoint: String,
    /// Explicit listen address; when absent a private Unix socket under
    /// the temp dir is used (requires `--workers`).
    pub listen: Option<String>,
    /// Local worker processes to spawn (0 = external workers only).
    pub workers: usize,
    pub tile: Option<usize>,
    pub lease_timeout: f64,
    pub target_lease: f64,
    /// Write the merged matrix JSON here once complete.
    pub out: Option<String>,
    /// Forwarded to spawned workers: disable compute/stream overlap.
    pub no_overlap: bool,
}

/// Validated `snd work` flags.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct WorkFlags {
    pub data: String,
    pub addr: String,
    pub no_overlap: bool,
    pub connect_retry: f64,
    pub read_timeout: f64,
    /// Artificial per-tile seconds (from `SND_WORK_THROTTLE_MS`), the
    /// deterministic-straggler hook for tests and benches.
    pub throttle: f64,
}

/// Parses a `--flag SECONDS` duration: explicit, finite, non-negative —
/// a malformed value is a structured error, never a silent default.
fn seconds_flag(args: &[String], name: &str, default: f64) -> Result<f64, String> {
    if !flag(args, name) {
        return Ok(default);
    }
    let raw = opt_raw(args, name).ok_or(format!("{name} needs a value"))?;
    let secs: f64 = raw
        .parse()
        .map_err(|_| format!("bad {name} '{raw}' (want seconds, a finite number >= 0)"))?;
    if !secs.is_finite() || secs < 0.0 {
        return Err(format!(
            "bad {name} '{raw}' (want seconds, a finite number >= 0)"
        ));
    }
    Ok(secs)
}

/// Validates `snd orchestrate` arguments (the tier flags — `--ground`,
/// `--approx`, … — are validated separately by [`engine_config`] once the
/// dataset is loaded).
pub(crate) fn orchestrate_flags(args: &[String]) -> Result<OrchestrateFlags, String> {
    let data: String = opt_raw(args, "--data")
        .ok_or("missing --data FILE")?
        .to_string();
    let checkpoint: String = opt_raw(args, "--checkpoint")
        .ok_or("missing --checkpoint FILE")?
        .to_string();
    let listen = match flag(args, "--listen") {
        true => Some(
            opt_raw(args, "--listen")
                .ok_or("--listen needs an address (host:port or a socket path)")?
                .to_string(),
        ),
        false => None,
    };
    if let Some(addr) = &listen {
        // Fail on a bad address before touching the dataset.
        Endpoint::parse(addr).map_err(|e| e.to_string())?;
    }
    let workers = match flag(args, "--workers") {
        true => {
            let raw = opt_raw(args, "--workers").ok_or("--workers needs a value")?;
            raw.parse::<usize>()
                .map_err(|_| format!("bad --workers '{raw}' (want an integer >= 0)"))?
        }
        false => 0,
    };
    if listen.is_none() && workers == 0 {
        return Err(
            "need --workers N (local fleet) and/or --listen ADDR (external workers)".into(),
        );
    }
    let tile = match flag(args, "--tile") {
        true => {
            let raw = opt_raw(args, "--tile").ok_or("--tile needs a value")?;
            let t: usize = raw
                .parse()
                .map_err(|_| format!("bad --tile '{raw}' (want a positive integer)"))?;
            if t == 0 {
                return Err("--tile must be at least 1".into());
            }
            Some(t)
        }
        false => None,
    };
    let lease_timeout = seconds_flag(args, "--lease-timeout", 30.0)?;
    let target_lease = seconds_flag(args, "--target-lease", 2.0)?;
    if target_lease <= 0.0 {
        return Err("--target-lease must be positive".into());
    }
    let out = opt_raw(args, "--out").map(str::to_string);
    if flag(args, "--out") && out.is_none() {
        return Err("--out needs a value".into());
    }
    Ok(OrchestrateFlags {
        data,
        checkpoint,
        listen,
        workers,
        tile,
        lease_timeout,
        target_lease,
        out,
        no_overlap: flag(args, "--no-overlap"),
    })
}

/// Validates `snd work` arguments.
pub(crate) fn work_flags(args: &[String]) -> Result<WorkFlags, String> {
    let data: String = opt_raw(args, "--data")
        .ok_or("missing --data FILE")?
        .to_string();
    let addr: String = opt_raw(args, "--addr")
        .ok_or("missing --addr ADDR (the coordinator's address)")?
        .to_string();
    Endpoint::parse(&addr).map_err(|e| e.to_string())?;
    let throttle = match std::env::var("SND_WORK_THROTTLE_MS") {
        Ok(raw) => {
            let ms: u64 = raw.parse().map_err(|_| {
                format!("bad SND_WORK_THROTTLE_MS '{raw}' (want integer milliseconds)")
            })?;
            ms as f64 / 1_000.0
        }
        Err(_) => 0.0,
    };
    Ok(WorkFlags {
        data,
        addr,
        no_overlap: flag(args, "--no-overlap"),
        connect_retry: seconds_flag(args, "--connect-retry", 10.0)?,
        read_timeout: seconds_flag(args, "--read-timeout", 120.0)?,
        throttle,
    })
}

/// The tier flags a coordinator forwards verbatim to the workers it
/// spawns — both sides must build the same engine config or the
/// fingerprint handshake refuses the pairing.
fn forwarded_tier_flags(args: &[String]) -> Vec<String> {
    let mut fwd = Vec::new();
    for name in [
        "--ground",
        "--clusters",
        "--epsilon",
        "--landmarks",
        "--budget",
    ] {
        if let Some(v) = opt_raw(args, name) {
            fwd.push(name.to_string());
            fwd.push(v.to_string());
        }
    }
    if flag(args, "--approx") {
        fwd.push("--approx".into());
    }
    fwd
}

/// `snd orchestrate`: coordinate a distributed all-pairs run.
pub fn orchestrate(args: &[String]) -> Result<(), String> {
    let flags = orchestrate_flags(args)?;
    let dataset = Dataset::load(&flags.data)?;
    let graph = dataset.graph();
    let states = dataset.network_states();
    let config = engine_config(args, &graph, dataset.model.as_ref())?;
    let engine = SndEngine::new(&graph, config);
    let fingerprint = engine.shard_fingerprint(&states);

    // Tile size: explicit flag > resuming checkpoint's grid > the
    // orchestrated heuristic (finer than the static auto_tile, giving the
    // autotuner scheduling atoms to split and coalesce).
    let ckpt_path = PathBuf::from(&flags.checkpoint);
    let tile = match flags.tile {
        Some(t) => t,
        None => match TileSet::load(&ckpt_path) {
            Ok(existing) => existing.grid().tile_size(),
            Err(_) => orchestrate_tile(states.len(), graph.node_count()),
        },
    };
    let grid = TileGrid::new(states.len(), tile);

    let private_sock;
    let endpoint = match &flags.listen {
        Some(addr) => Endpoint::parse(addr).map_err(|e| e.to_string())?,
        None => {
            private_sock =
                std::env::temp_dir().join(format!("snd-orchestrate-{}.sock", std::process::id()));
            Endpoint::Unix(private_sock)
        }
    };
    let opts = CoordinatorOpts {
        lease_timeout: Duration::from_secs_f64(flags.lease_timeout),
        target_lease: Duration::from_secs_f64(flags.target_lease),
        ..CoordinatorOpts::default()
    };
    let mut coord = Coordinator::new(&endpoint, &ckpt_path, grid, fingerprint, opts)
        .map_err(|e| e.to_string())?;
    let addr = coord.local_addr();
    println!(
        "orchestrate: {} states, {} tile(s) (tile {tile}), listening on {addr}",
        states.len(),
        grid.tile_count()
    );

    let mut children = spawn_local_workers(&flags, args, &addr)?;
    let spawned = children.len();

    while !coord.is_complete() {
        let progress = coord.poll_once().map_err(|e| e.to_string())?;
        reap(&mut children)?;
        if spawned > 0 && children.is_empty() && !coord.is_complete() {
            return Err(format!(
                "all {spawned} spawned worker(s) exited with {} tile(s) still missing",
                grid.tile_count() - coord.report().resumed - coord.report().computed
            ));
        }
        if !progress {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    // Keep answering the spawned fleet until every child has collected
    // its DONE and exited (a resumed-complete run reaches here before
    // the workers have even handshaken); stragglers are killed after the
    // deadline rather than wedging the run.
    let fleet_deadline = std::time::Instant::now() + Duration::from_secs(30);
    while !children.is_empty() && std::time::Instant::now() < fleet_deadline {
        let progress = coord.poll_once().map_err(|e| e.to_string())?;
        reap(&mut children)?;
        if !progress {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    for mut child in children {
        let _ = child.kill();
        let _ = child.wait();
    }
    coord.finish().map_err(|e| e.to_string())?;

    let report = coord.report();
    println!("{}", report_line(&report));
    let tiles = coord.into_tiles();
    if tiles.certified_tile_count() > 0 && tiles.certified_tile_count() < tiles.tile_count() {
        println!(
            "note: {} of {} tile(s) lack certified intervals (midpoint-only)",
            tiles.tile_count() - tiles.certified_tile_count(),
            tiles.tile_count()
        );
    }
    if let Some(out) = &flags.out {
        let matrix = tiles.to_matrix().map_err(|e| e.to_string())?;
        write_matrix_json(&matrix, out)?;
        println!("wrote merged matrix -> {out}");
    }
    Ok(())
}

/// Spawns the `--workers N` local fleet: child `snd work` processes
/// against this coordinator, tier flags forwarded so their fingerprints
/// match.
fn spawn_local_workers(
    flags: &OrchestrateFlags,
    args: &[String],
    addr: &str,
) -> Result<Vec<Child>, String> {
    let mut children = Vec::new();
    if flags.workers == 0 {
        return Ok(children);
    }
    let exe = std::env::current_exe().map_err(|e| format!("locating snd binary: {e}"))?;
    let fwd = forwarded_tier_flags(args);
    for _ in 0..flags.workers {
        let mut cmd = Command::new(&exe);
        cmd.arg("work")
            .arg("--data")
            .arg(&flags.data)
            .arg("--addr")
            .arg(addr)
            .args(&fwd)
            .stdin(Stdio::null());
        if flags.no_overlap {
            cmd.arg("--no-overlap");
        }
        children.push(cmd.spawn().map_err(|e| format!("spawning worker: {e}"))?);
    }
    Ok(children)
}

/// Drops finished children; a non-zero exit is an error.
fn reap(children: &mut Vec<Child>) -> Result<(), String> {
    let mut failed = None;
    children.retain_mut(|c| match c.try_wait() {
        Ok(Some(status)) => {
            if !status.success() && failed.is_none() {
                failed = Some(format!("a worker exited with {status}"));
            }
            false
        }
        Ok(None) => true,
        Err(e) => {
            failed = Some(format!("waiting on worker: {e}"));
            false
        }
    });
    match failed {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// `snd work`: one worker process against a coordinator.
pub fn work(args: &[String]) -> Result<(), String> {
    let flags = work_flags(args)?;
    let dataset = Dataset::load(&flags.data)?;
    let graph = dataset.graph();
    let states = dataset.network_states();
    let config = engine_config(args, &graph, dataset.model.as_ref())?;
    let engine = SndEngine::new(&graph, config);
    let opts = WorkerOpts {
        overlap: !flags.no_overlap,
        connect_retry: Duration::from_secs_f64(flags.connect_retry),
        read_timeout: Duration::from_secs_f64(flags.read_timeout),
        throttle: Duration::from_secs_f64(flags.throttle),
    };
    let report = run_worker(&engine, &states, &flags.addr, &opts).map_err(|e| e.to_string())?;
    println!(
        "work: {} lease(s), {} tile(s), compute {:.3}s, flush-wait {:.3}s",
        report.leases, report.tiles, report.compute_s, report.flush_wait_s
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    const FULL_ORCH: &[&str] = &[
        "--data",
        "data.json",
        "--checkpoint",
        "run.snd",
        "--listen",
        "127.0.0.1:7070",
        "--workers",
        "2",
        "--tile",
        "4",
        "--lease-timeout",
        "15",
        "--target-lease",
        "1.5",
        "--out",
        "matrix.json",
        "--no-overlap",
    ];

    const FULL_WORK: &[&str] = &[
        "--data",
        "data.json",
        "--addr",
        "127.0.0.1:7070",
        "--connect-retry",
        "3",
        "--read-timeout",
        "60",
        "--no-overlap",
    ];

    #[test]
    fn orchestrate_flags_parse_the_full_invocation() {
        let f = orchestrate_flags(&argv(FULL_ORCH)).unwrap();
        assert_eq!(
            f,
            OrchestrateFlags {
                data: "data.json".into(),
                checkpoint: "run.snd".into(),
                listen: Some("127.0.0.1:7070".into()),
                workers: 2,
                tile: Some(4),
                lease_timeout: 15.0,
                target_lease: 1.5,
                out: Some("matrix.json".into()),
                no_overlap: true,
            }
        );
        // A local-fleet run needs no --listen: a private socket is used.
        let f = orchestrate_flags(&argv(&[
            "--data",
            "d.json",
            "--checkpoint",
            "c.snd",
            "--workers",
            "1",
        ]))
        .unwrap();
        assert_eq!(f.listen, None);
        assert_eq!(f.workers, 1);
        assert_eq!(f.lease_timeout, 30.0);
    }

    #[test]
    fn work_flags_parse_the_full_invocation() {
        let f = work_flags(&argv(FULL_WORK)).unwrap();
        assert_eq!(f.data, "data.json");
        assert_eq!(f.addr, "127.0.0.1:7070");
        assert!(f.no_overlap);
        assert_eq!(f.connect_retry, 3.0);
        assert_eq!(f.read_timeout, 60.0);
        assert_eq!(f.throttle, 0.0);
    }

    /// Every malformed invocation must come back as a structured `Err` —
    /// never a panic, never a silent default (the PR 6 approx-flag fuzz
    /// pattern applied to the orchestrator commands).
    #[test]
    fn malformed_orchestrate_flags_surface_structured_errors_not_panics() {
        let bad: &[&[&str]] = &[
            &[],                                                         // nothing
            &["--checkpoint", "c.snd", "--workers", "2"],                // no --data
            &["--data", "d.json", "--workers", "2"],                     // no --checkpoint
            &["--data", "d.json", "--checkpoint", "c.snd"],              // no fleet, no listen
            &["--data", "d.json", "--checkpoint", "c.snd", "--workers"], // dangling value
            &[
                "--data",
                "d.json",
                "--checkpoint",
                "c.snd",
                "--workers",
                "two",
            ],
            &[
                "--data",
                "d.json",
                "--checkpoint",
                "c.snd",
                "--workers",
                "-1",
            ],
            &[
                "--data",
                "d.json",
                "--checkpoint",
                "c.snd",
                "--workers",
                "1.5",
            ],
            &["--data", "d.json", "--checkpoint", "c.snd", "--listen"],
            &[
                "--data",
                "d.json",
                "--checkpoint",
                "c.snd",
                "--listen",
                "nonsense",
            ],
            &[
                "--data",
                "d.json",
                "--checkpoint",
                "c.snd",
                "--listen",
                "host:notaport",
            ],
            &[
                "--data",
                "d.json",
                "--checkpoint",
                "c.snd",
                "--listen",
                "host:99999",
            ],
            &[
                "--data",
                "d.json",
                "--checkpoint",
                "c.snd",
                "--workers",
                "1",
                "--tile",
            ],
            &[
                "--data",
                "d.json",
                "--checkpoint",
                "c.snd",
                "--workers",
                "1",
                "--tile",
                "0",
            ],
            &[
                "--data",
                "d.json",
                "--checkpoint",
                "c.snd",
                "--workers",
                "1",
                "--tile",
                "big",
            ],
            &[
                "--data",
                "d.json",
                "--checkpoint",
                "c.snd",
                "--workers",
                "1",
                "--lease-timeout",
            ],
            &[
                "--data",
                "d.json",
                "--checkpoint",
                "c.snd",
                "--workers",
                "1",
                "--lease-timeout",
                "NaN",
            ],
            &[
                "--data",
                "d.json",
                "--checkpoint",
                "c.snd",
                "--workers",
                "1",
                "--lease-timeout",
                "-5",
            ],
            &[
                "--data",
                "d.json",
                "--checkpoint",
                "c.snd",
                "--workers",
                "1",
                "--lease-timeout",
                "soon",
            ],
            &[
                "--data",
                "d.json",
                "--checkpoint",
                "c.snd",
                "--workers",
                "1",
                "--target-lease",
                "0",
            ],
            &[
                "--data",
                "d.json",
                "--checkpoint",
                "c.snd",
                "--workers",
                "1",
                "--target-lease",
                "inf",
            ],
            &[
                "--data",
                "d.json",
                "--checkpoint",
                "c.snd",
                "--workers",
                "1",
                "--out",
            ],
        ];
        for case in bad {
            let err = orchestrate_flags(&argv(case));
            assert!(err.is_err(), "{case:?} must be rejected, got {err:?}");
            assert!(!err.unwrap_err().is_empty());
        }
        // Every prefix truncation of the full valid invocation either
        // parses or errors cleanly — no index panics on dangling flags.
        let full = argv(FULL_ORCH);
        for len in 0..=full.len() {
            let _ = orchestrate_flags(&full[..len]);
        }
    }

    #[test]
    fn malformed_work_flags_surface_structured_errors_not_panics() {
        let bad: &[&[&str]] = &[
            &[],
            &["--addr", "127.0.0.1:7070"],                // no --data
            &["--data", "d.json"],                        // no --addr
            &["--data", "d.json", "--addr"],              // dangling value
            &["--data", "d.json", "--addr", "nonsense"],  // not host:port or path
            &["--data", "d.json", "--addr", ":7070"],     // empty host
            &["--data", "d.json", "--addr", "host:port"], // non-numeric port
            &["--data", "d.json", "--addr", "127.0.0.1:70000"], // port overflow
            &[
                "--data",
                "d.json",
                "--addr",
                "127.0.0.1:7070",
                "--connect-retry",
            ],
            &[
                "--data",
                "d.json",
                "--addr",
                "127.0.0.1:7070",
                "--connect-retry",
                "-1",
            ],
            &[
                "--data",
                "d.json",
                "--addr",
                "127.0.0.1:7070",
                "--read-timeout",
                "long",
            ],
            &[
                "--data",
                "d.json",
                "--addr",
                "127.0.0.1:7070",
                "--read-timeout",
                "NaN",
            ],
        ];
        for case in bad {
            let err = work_flags(&argv(case));
            assert!(err.is_err(), "{case:?} must be rejected, got {err:?}");
            assert!(!err.unwrap_err().is_empty());
        }
        let full = argv(FULL_WORK);
        for len in 0..=full.len() {
            let _ = work_flags(&full[..len]);
        }
        // A Unix socket path is a valid --addr too.
        let f = work_flags(&argv(&["--data", "d.json", "--addr", "/tmp/coord.sock"])).unwrap();
        assert_eq!(f.addr, "/tmp/coord.sock");
    }

    #[test]
    fn tier_flags_are_forwarded_to_spawned_workers_verbatim() {
        let args = argv(&[
            "--data",
            "d.json",
            "--checkpoint",
            "c.snd",
            "--workers",
            "2",
            "--approx",
            "--epsilon",
            "0.05",
            "--landmarks",
            "8",
            "--ground",
            "icc",
        ]);
        let fwd = forwarded_tier_flags(&args);
        assert_eq!(
            fwd,
            argv(&[
                "--ground",
                "icc",
                "--epsilon",
                "0.05",
                "--landmarks",
                "8",
                "--approx"
            ])
        );
        // No tier flags, nothing forwarded.
        assert!(forwarded_tier_flags(&argv(&["--data", "d.json"])).is_empty());
    }
}
