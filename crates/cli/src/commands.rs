//! CLI subcommand implementations.

use std::path::Path;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use snd_analysis::series::processed_series;
use snd_analysis::{
    accuracy, anomaly_scores, distance_based_prediction_batch, evaluate_detection,
    extrapolate_linear, search_interventions, select_targets, InterventionConfig,
};
use snd_baselines::{Hamming, QuadForm, StateDistance, WalkDist};
use snd_core::{
    auto_tile, ApproxConfig, CandidateEvaluator, ClusterSpec, OrderedSnd, ShardPlan, SndConfig,
    SndEngine, TileGrid, TileSet,
};
use snd_data::{
    find_scenario, generate_series, registry, simulate_twitter, SyntheticSeries,
    SyntheticSeriesConfig, TwitterSimConfig,
};
use snd_graph::NodeId;
use snd_models::dynamics::VotingConfig;
use snd_models::{flips_between, GroundCostConfig, NetworkState, Opinion};

use crate::dataset::{Dataset, ModelRecord};

/// `--flag value` lookup over raw arguments.
pub(crate) fn opt<T: std::str::FromStr>(args: &[String], name: &str) -> Option<T> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

pub(crate) fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Raw `--flag value` lookup (no parsing). [`opt`] silently falls back to
/// the default on a malformed value; flags where that would mask a user
/// error (the approximate-tier knobs) go through this and parse explicitly
/// so `--epsilon abc` is a structured error, not a silent default.
pub(crate) fn opt_raw<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

/// Parses the approximate-tier flags: `--approx` opts in (forcing the
/// sketch tier regardless of graph size), `--epsilon E` sets the certified
/// relative gap, `--landmarks L` and `--budget B` bound the sketch.
/// Returns `Ok(None)` when `--approx` is absent — and rejects the
/// dependent flags in that case, so a typo'd invocation cannot silently
/// run exact while the user believes an ε is in force.
fn approx_config(args: &[String]) -> Result<Option<ApproxConfig>, String> {
    if !flag(args, "--approx") {
        for name in ["--epsilon", "--landmarks", "--budget"] {
            if flag(args, name) {
                return Err(format!("{name} requires --approx"));
            }
        }
        return Ok(None);
    }
    let mut approx = ApproxConfig {
        min_nodes: 0,
        ..Default::default()
    };
    if flag(args, "--epsilon") {
        let raw = opt_raw(args, "--epsilon").ok_or("--epsilon needs a value")?;
        approx.epsilon = raw
            .parse::<f64>()
            .map_err(|_| format!("bad --epsilon '{raw}' (want a finite number >= 0)"))?;
    }
    if flag(args, "--landmarks") {
        let raw = opt_raw(args, "--landmarks").ok_or("--landmarks needs a value")?;
        approx.max_landmarks = raw
            .parse()
            .map_err(|_| format!("bad --landmarks '{raw}' (want a positive integer)"))?;
    }
    if flag(args, "--budget") {
        let raw = opt_raw(args, "--budget").ok_or("--budget needs a value")?;
        approx.budget = raw
            .parse()
            .map_err(|_| format!("bad --budget '{raw}' (want an integer)"))?;
    }
    // Library-level validation (NaN / infinite / negative ε, zero
    // landmarks) surfaces as the same structured error the API returns.
    approx.validate().map_err(|e| e.to_string())?;
    Ok(Some(approx))
}

/// `snd generate`: writes a synthetic or simulated-Twitter dataset.
pub fn generate(args: &[String]) -> Result<(), String> {
    let out: String = opt(args, "--out").ok_or("missing --out FILE")?;
    let seed = opt(args, "--seed").unwrap_or(7u64);
    let dataset = if flag(args, "--twitter") {
        let sim = simulate_twitter(&TwitterSimConfig {
            users: opt(args, "--nodes").unwrap_or(4000),
            avg_degree: opt(args, "--avg-degree").unwrap_or(50),
            seed,
            ..Default::default()
        });
        Dataset {
            nodes: sim.graph.node_count(),
            edges: sim.graph.edges().collect(),
            states: sim.states.iter().map(|s| s.values()).collect(),
            labels: sim.labels,
            // The Twitter sim mixes per-event dynamics; no single
            // parameter set describes the series.
            model: None,
        }
    } else {
        let steps = opt(args, "--steps").unwrap_or(20usize);
        let p_nbr = opt(args, "--p-nbr").unwrap_or(0.12);
        let p_ext = opt(args, "--p-ext").unwrap_or(0.01);
        // Structured validation: a bad --p-nbr/--p-ext split comes back as
        // a printable CLI error, not a library panic.
        let normal = VotingConfig::new(p_nbr, p_ext).map_err(|e| e.to_string())?;
        let anomalous = VotingConfig::new(
            opt(args, "--p-nbr-anomalous").unwrap_or(0.08),
            opt(args, "--p-ext-anomalous").unwrap_or(0.05),
        )
        .map_err(|e| e.to_string())?;
        let series = generate_series(&SyntheticSeriesConfig {
            nodes: opt(args, "--nodes").unwrap_or(2000),
            steps,
            initial_adopters: opt(args, "--seeds").unwrap_or(100),
            normal,
            anomalous,
            anomalous_steps: vec![steps / 3, (2 * steps) / 3],
            seed,
            ..Default::default()
        });
        dataset_from_series(
            &series,
            Some(ModelRecord {
                family: "voting".into(),
                params: vec![("p_nbr".into(), p_nbr), ("p_ext".into(), p_ext)],
            }),
        )
    };
    dataset.save(&out)?;
    println!(
        "wrote {}: {} users, {} edges, {} states",
        out,
        dataset.nodes,
        dataset.edges.len(),
        dataset.states.len()
    );
    Ok(())
}

/// A dataset in the wire format from any simulated series, carrying the
/// generating model's parameters when the caller knows them.
fn dataset_from_series(series: &SyntheticSeries, model: Option<ModelRecord>) -> Dataset {
    Dataset {
        nodes: series.graph.node_count(),
        edges: series.graph.edges().collect(),
        states: series.states.iter().map(|s| s.values()).collect(),
        labels: series.labels.clone(),
        model,
    }
}

/// `snd simulate`: runs a named scenario from the registry and writes the
/// resulting series in the dataset format, so `snd
/// distance/anomaly/predict/shard` consume it directly.
///
/// ```text
/// snd simulate --list
/// snd simulate --scenario NAME [--nodes N] [--steps T] [--seed S] --out FILE
/// ```
pub fn simulate(args: &[String]) -> Result<(), String> {
    if flag(args, "--list") {
        println!("{:<22} {:<20} description", "scenario", "model");
        for sc in registry() {
            println!(
                "{:<22} {:<20} {}",
                sc.name,
                sc.model.family(),
                sc.description
            );
        }
        return Ok(());
    }
    let name: String =
        opt(args, "--scenario").ok_or("missing --scenario NAME (see snd simulate --list)")?;
    let mut scenario = find_scenario(&name)
        .ok_or_else(|| format!("unknown scenario '{name}' (see snd simulate --list)"))?;
    if let Some(nodes) = opt(args, "--nodes") {
        scenario.nodes = nodes;
    }
    if let Some(steps) = opt(args, "--steps") {
        scenario.steps = steps;
    }
    let seed = opt(args, "--seed").unwrap_or(7u64);
    let out: String = opt(args, "--out").ok_or("missing --out FILE")?;

    let series = scenario.run(seed).map_err(|e| e.to_string())?;
    // Record the simulated model so later `--ground icc|ltc` runs reprice
    // with these exact parameters instead of the family defaults.
    let record = ModelRecord {
        family: scenario.model.family().to_string(),
        params: scenario
            .model
            .params()
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    };
    let dataset = dataset_from_series(&series, Some(record));
    dataset.save(&out)?;
    println!(
        "scenario '{}' (model {}, graph {}, seed {seed}): wrote {out}: {} users, {} edges, {} \
         states, {} labelled anomalies",
        scenario.name,
        scenario.model.family(),
        scenario.graph.label(),
        dataset.nodes,
        dataset.edges.len(),
        dataset.states.len(),
        dataset.labels.iter().filter(|&&l| l).count(),
    );
    Ok(())
}

/// Resolves a `--ground` argument into the matching ground-distance
/// configuration, closing the "CLI always prices with the default ground
/// config" gap: SND's edge costs are model-dependent (Eq. 2), so a series
/// simulated under ICC or LTC should be priced under that model's
/// spreading probabilities. Accepts the three ground models of §3
/// (`agnostic` — the default, `icc`, `ltc`) and, as a convenience, any
/// registry model family name (`snd simulate --list`), mapped to the
/// nearest ground model: the cascade families to their own ground,
/// everything else to the model-agnostic penalties.
///
/// When the dataset records its simulated model (`snd simulate` writes a
/// `"model"` field), the matching ground model is instantiated with the
/// *recorded* parameters — e.g. an LTC series simulated at threshold 0.35
/// reprices at 0.35, not the 0.5 default. Datasets without the field (or
/// simulated under a different family than `--ground` asks for) fall back
/// to the family defaults (weighted-cascade / degree-normalized edges,
/// 0.5 thresholds).
fn ground_config_for(
    name: &str,
    graph: &snd_graph::CsrGraph,
    recorded: Option<&ModelRecord>,
) -> Result<GroundCostConfig, String> {
    use snd_models::{icc::EdgeActivation, ltc::EdgeWeights, IccParams, LtcParams, SpreadingModel};
    let recorded_for = |family: &str| recorded.filter(|m| m.family == family);
    match name {
        "agnostic" | "default" | "voting" | "voting-sampled" | "random-activation"
        | "majority-rule" | "stubborn-voter" | "degroot-threshold" | "bounded-confidence" => {
            Ok(GroundCostConfig::default())
        }
        // ICC's spreading probabilities are fully determined by the graph
        // (weighted-cascade edges, no free parameters), so recorded and
        // default parameters coincide.
        "icc" => Ok(GroundCostConfig::with_model(SpreadingModel::Icc(
            IccParams::for_graph(graph, EdgeActivation::WeightedCascade, None, 1e-6)
                .map_err(|e| e.to_string())?,
        ))),
        "ltc" => {
            let thresholds = recorded_for("ltc")
                .and_then(|m| m.param("threshold"))
                .map(|t| vec![t; graph.node_count()]);
            Ok(GroundCostConfig::with_model(SpreadingModel::Ltc(
                LtcParams::for_graph(graph, EdgeWeights::DegreeNormalized, thresholds, 1e-6)
                    .map_err(|e| e.to_string())?,
            )))
        }
        other => Err(format!(
            "unknown ground model '{other}' (want agnostic, icc, ltc, or a model family \
             from `snd simulate --list`)"
        )),
    }
}

/// The engine config for a dataset run, honoring an optional `--ground`,
/// an optional `--clusters N` (cluster-bank mode instead of the per-bin
/// default), and the approximate-tier flags (`--approx --epsilon E`).
pub(crate) fn engine_config(
    args: &[String],
    graph: &snd_graph::CsrGraph,
    recorded: Option<&ModelRecord>,
) -> Result<SndConfig, String> {
    let mut config = match opt::<String>(args, "--ground") {
        Some(name) => SndConfig::with_ground(ground_config_for(&name, graph, recorded)?),
        None => SndConfig::default(),
    };
    if flag(args, "--clusters") {
        let raw = opt_raw(args, "--clusters").ok_or("--clusters needs a value")?;
        let clusters: usize = raw
            .parse()
            .map_err(|_| format!("bad --clusters '{raw}' (want a positive integer)"))?;
        if clusters == 0 {
            return Err("--clusters must be at least 1".into());
        }
        config.clusters = ClusterSpec::BfsPartition { clusters };
    }
    config.approx = approx_config(args)?;
    if config.approx.is_some() && !matches!(config.clusters, ClusterSpec::PerBin) {
        // Mirror snd_core::ApproxError::UnsupportedBankMode up front, so
        // the run fails before any geometry is built rather than silently
        // staying exact.
        return Err(
            "the approximate tier requires per-bin banks; drop --clusters or --approx".into(),
        );
    }
    Ok(config)
}

/// `snd distance`: all measures between two states of a dataset, or —
/// with `--series` — every adjacent transition of the series.
pub fn distance(args: &[String]) -> Result<(), String> {
    let path: String = opt(args, "--data").ok_or("missing --data FILE")?;
    if flag(args, "--series") {
        return distance_series(args, &path);
    }
    let t1 = opt(args, "--t1").unwrap_or(0usize);
    let t2 = opt(args, "--t2").unwrap_or(1usize);
    let dataset = Dataset::load(&path)?;
    let graph = dataset.graph();
    let states = dataset.network_states();
    let a = states.get(t1).ok_or(format!("state {t1} out of range"))?;
    let b = states.get(t2).ok_or(format!("state {t2} out of range"))?;

    let config = engine_config(args, &graph, dataset.model.as_ref())?;
    let approx_on = config.approx.is_some();
    let engine = SndEngine::new(&graph, config);
    println!("n_delta = {}", a.diff_count(b));
    if approx_on {
        let iv = engine.distance_interval(a, b).map_err(|e| e.to_string())?;
        println!(
            "SND        = {:.4} certified in [{:.4}, {:.4}] (width {:.4})",
            iv.midpoint(),
            iv.lower,
            iv.upper,
            iv.width()
        );
    } else {
        println!("SND        = {:.4}", engine.distance(a, b));
    }
    println!("hamming    = {:.4}", Hamming.distance(a, b));
    println!("quad-form  = {:.4}", QuadForm::new(&graph).distance(a, b));
    println!("walk-dist  = {:.4}", WalkDist::new(&graph).distance(a, b));
    Ok(())
}

/// `snd distance --series`: SND for every adjacent transition. Under
/// `--approx` this runs the delta-sketched certified series path
/// (`SndEngine::series_intervals`) — one sketch bundle repaired along the
/// series — and prints each transition's `[lower, upper]`; without it,
/// the exact delta series.
fn distance_series(args: &[String], path: &str) -> Result<(), String> {
    let dataset = Dataset::load(path)?;
    let graph = dataset.graph();
    let states = dataset.network_states();
    if states.len() < 2 {
        return Err("need at least 2 states for --series".into());
    }
    let config = engine_config(args, &graph, dataset.model.as_ref())?;
    let approx_on = config.approx.is_some();
    let engine = SndEngine::new(&graph, config);
    if approx_on {
        let ivs = engine
            .series_intervals(&states)
            .map_err(|e| e.to_string())?;
        println!(
            "{:>4} {:>10} {:>10} {:>10} {:>10}",
            "t", "SND", "lower", "upper", "width"
        );
        for (t, iv) in ivs.iter().enumerate() {
            println!(
                "{:>4} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
                t + 1,
                iv.midpoint(),
                iv.lower,
                iv.upper,
                iv.width()
            );
        }
    } else {
        let series = engine.series_distances(&states);
        println!("{:>4} {:>10}", "t", "SND");
        for (t, d) in series.iter().enumerate() {
            println!("{:>4} {:>10.4}", t + 1, d);
        }
    }
    Ok(())
}

/// `snd anomaly`: score every transition of the dataset's series.
pub fn anomaly(args: &[String]) -> Result<(), String> {
    let path: String = opt(args, "--data").ok_or("missing --data FILE")?;
    let dataset = Dataset::load(&path)?;
    let graph = dataset.graph();
    let states = dataset.network_states();
    if states.len() < 3 {
        return Err("need at least 3 states".into());
    }
    // The series below runs through the engine's delta-aware path:
    // consecutive snapshots are priced incrementally (touched-edge costs,
    // repaired geometry, zero-cost identical transitions). Under --approx
    // the interval-carrying series path runs instead: each transition is
    // scored at its certified-interval midpoint and the interval is shown.
    let config = engine_config(args, &graph, dataset.model.as_ref())?;
    let approx_on = config.approx.is_some();
    let engine = SndEngine::new(&graph, config);
    let (raw, intervals) = if approx_on {
        let ivs = engine
            .series_intervals(&states)
            .map_err(|e| e.to_string())?;
        let mids = ivs.iter().map(|iv| iv.midpoint()).collect();
        (mids, Some(ivs))
    } else {
        (engine.series_distances(&states), None)
    };
    let processed = processed_series(&raw, &states);
    let scores = anomaly_scores(&processed);
    let k =
        opt(args, "--top").unwrap_or_else(|| dataset.labels.iter().filter(|&&l| l).count().max(1));
    println!("{:>4} {:>10} {:>10}  label", "t", "SND", "score");
    for t in 0..processed.len() {
        let label = dataset.labels.get(t).copied().unwrap_or(false);
        let certified = intervals
            .as_ref()
            .map(|ivs| format!(" in [{:.4}, {:.4}]", ivs[t].lower, ivs[t].upper))
            .unwrap_or_default();
        println!(
            "{:>4} {:>10.4} {:>10.4}  {}{certified}",
            t,
            processed[t],
            scores[t],
            if label { "anomalous" } else { "" }
        );
    }
    let report = evaluate_detection(&scores, &dataset.labels, k);
    println!(
        "\ntop-{} flagged transitions: {:?}",
        report.k, report.flagged
    );
    if !dataset.labels.is_empty() {
        println!("matches ground truth: {}/{}", report.hits, report.k);
        if let Some(auc) = report.auc {
            println!("ranking AUC: {auc:.3}");
        }
    }
    Ok(())
}

/// `snd shard`: compute one shard of the all-pairs SND matrix with
/// checkpoint/resume, or merge shard artifacts into the full matrix.
///
/// ```text
/// snd shard --data FILE --shard I/N --checkpoint FILE [--tile T]
/// snd shard merge --out FILE PART...
/// ```
pub fn shard(args: &[String]) -> Result<(), String> {
    if args.first().is_some_and(|a| a == "merge") {
        return shard_merge(&args[1..]);
    }
    let path: String = opt(args, "--data").ok_or("missing --data FILE")?;
    let checkpoint: String = opt(args, "--checkpoint").ok_or("missing --checkpoint FILE")?;
    let spec: String = opt(args, "--shard").unwrap_or_else(|| "0/1".to_string());
    let (index, count) = parse_shard_spec(&spec)?;
    if opt::<usize>(args, "--tile") == Some(0) {
        return Err("--tile must be at least 1".into());
    }

    let dataset = Dataset::load(&path)?;
    let graph = dataset.graph();
    let states = dataset.network_states();
    // --ground/--approx feed the shard fingerprint (it hashes the full
    // config), so shards priced under different tiers can never merge.
    let config = engine_config(args, &graph, dataset.model.as_ref())?;
    let approx_on = config.approx.is_some();
    let engine = SndEngine::new(&graph, config);
    // Default tile follows the workload shape; every shard of a run
    // derives the same grid as long as all pass the same (or no) --tile.
    // A pre-existing checkpoint wins over the heuristic: resuming a run
    // started under a different default must not invalidate its tiles.
    let tile: usize = match opt(args, "--tile") {
        Some(t) => t,
        None => match TileSet::load(Path::new(&checkpoint)) {
            Ok(existing) => existing.grid().tile_size(),
            Err(_) => auto_tile(states.len(), graph.node_count()),
        },
    };
    let grid = TileGrid::new(states.len(), tile);
    let plan = ShardPlan::round_robin(grid, index, count).map_err(|e| e.to_string())?;

    let run = engine
        .pairwise_tiles_checkpointed(&states, &plan, Path::new(&checkpoint))
        .map_err(|e| e.to_string())?;
    println!(
        "shard {index}/{count}: {} tile(s) of {} ({} resumed, {} computed) -> {}{}",
        run.tiles.tile_count(),
        grid.tile_count(),
        run.resumed,
        run.computed,
        checkpoint,
        if approx_on {
            " (approximate tier: entries are certified-interval midpoints)"
        } else {
            ""
        }
    );
    Ok(())
}

/// `snd shard merge`: reassemble shard artifacts, validate overlap/holes,
/// and write the full matrix as JSON.
fn shard_merge(args: &[String]) -> Result<(), String> {
    let out: String = opt(args, "--out").ok_or("missing --out FILE")?;
    let mut parts: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--out" {
            i += 2;
        } else {
            parts.push(&args[i]);
            i += 1;
        }
    }
    if parts.is_empty() {
        return Err("merge needs at least one shard artifact".into());
    }
    let sets = parts
        .iter()
        .map(|p| TileSet::load(Path::new(p.as_str())).map_err(|e| format!("{p}: {e}")))
        .collect::<Result<Vec<_>, _>>()?;
    let merged = TileSet::merge(sets).map_err(|e| e.to_string())?;
    let matrix = merged.to_matrix().map_err(|e| e.to_string())?;
    write_matrix_json(&matrix, &out)?;
    if merged.certified_tile_count() > 0 && merged.certified_tile_count() < merged.tile_count() {
        println!(
            "note: {} of {} tile(s) lack certified intervals; the merged matrix is \
             midpoint-only (downgraded, no interval guarantees)",
            merged.tile_count() - merged.certified_tile_count(),
            merged.tile_count()
        );
    }

    let adjacent = matrix.adjacent();
    let mean = if adjacent.is_empty() {
        0.0
    } else {
        adjacent.iter().sum::<f64>() / adjacent.len() as f64
    };
    println!(
        "merged {} artifact(s): {} states, {} tile(s), mean adjacent SND {mean:.4} -> {out}",
        parts.len(),
        matrix.size(),
        merged.tile_count()
    );
    Ok(())
}

/// Writes a distance matrix as the `{"size":K,"rows":[[..]]}` JSON both
/// `snd shard merge` and `snd orchestrate --out` emit.
pub(crate) fn write_matrix_json(
    matrix: &snd_core::DistanceMatrix,
    out: &str,
) -> Result<(), String> {
    let k = matrix.size();
    let mut json = String::with_capacity(k * k * 8 + 32);
    json.push_str(&format!("{{\"size\":{k},\"rows\":["));
    for i in 0..k {
        if i > 0 {
            json.push(',');
        }
        json.push('[');
        for (j, v) in matrix.row(i).iter().enumerate() {
            if j > 0 {
                json.push(',');
            }
            json.push_str(&format!("{v:?}"));
        }
        json.push(']');
    }
    json.push_str("]}");
    std::fs::write(out, json).map_err(|e| format!("writing {out}: {e}"))
}

/// Parses `--shard I/N`.
fn parse_shard_spec(spec: &str) -> Result<(usize, usize), String> {
    let bad = || format!("bad --shard spec '{spec}' (want I/N, e.g. 0/2)");
    let (i, n) = spec.split_once('/').ok_or_else(bad)?;
    let index: usize = i.trim().parse().map_err(|_| bad())?;
    let count: usize = n.trim().parse().map_err(|_| bad())?;
    if count == 0 || index >= count {
        return Err(format!(
            "shard index {index} out of range for {count} shard(s)"
        ));
    }
    Ok((index, count))
}

/// `snd predict`: hide random active users in the final state and recover
/// their opinions with SND.
pub fn predict(args: &[String]) -> Result<(), String> {
    let path: String = opt(args, "--data").ok_or("missing --data FILE")?;
    let n_targets = opt(args, "--targets").unwrap_or(20usize);
    let candidates = opt(args, "--candidates").unwrap_or(100usize);
    let dataset = Dataset::load(&path)?;
    let graph = dataset.graph();
    let states = dataset.network_states();
    // Checked before indexing: an empty series must error, not underflow.
    if states.len() < 4 {
        return Err("need at least 4 states".into());
    }
    let t = states.len() - 1;
    let truth: &NetworkState = &states[t];
    let mut rng = SmallRng::seed_from_u64(opt(args, "--seed").unwrap_or(5u64));
    let targets = select_targets(truth, n_targets, &mut rng);
    let mut known = truth.clone();
    for &u in &targets {
        known.set(u, Opinion::Neutral);
    }

    let engine = SndEngine::new(&graph, SndConfig::default());
    let d1 = OrderedSnd::new(&engine, states[t - 3].clone()).distance_to(&states[t - 2]);
    let d2 = OrderedSnd::new(&engine, states[t - 2].clone()).distance_to(&states[t - 1]);
    let d_star = extrapolate_linear(&[d1, d2]).map_err(|e| e.to_string())?;
    println!("history: {d1:.2}, {d2:.2} -> d* = {d_star:.2}");

    // Delta-priced candidate search: one anchored geometry, candidates as
    // flip-lists (anchor→known base flips + the drawn target assignment;
    // last-wins normalization lets the assignment override the blanked
    // targets). Same RNG stream and selection rule as the sequential
    // search, so the chosen assignment is identical.
    let evaluator = CandidateEvaluator::new(&engine, states[t - 1].clone());
    let base = flips_between(&states[t - 1], &known);
    let predicted = distance_based_prediction_batch(
        |cands| {
            let full: Vec<Vec<(NodeId, Opinion)>> = cands
                .iter()
                .map(|c| base.iter().copied().chain(c.iter().copied()).collect())
                .collect();
            evaluator.price_candidates(&full)
        },
        d_star,
        &targets,
        candidates,
        &mut rng,
    )
    .map_err(|e| e.to_string())?;
    let acc = accuracy(&predicted, truth, &targets).map_err(|e| e.to_string())?;
    println!(
        "predicted {} targets with {:.1}% accuracy ({} candidates, {} cached rows)",
        targets.len(),
        100.0 * acc,
        candidates,
        evaluator.cached_rows()
    );
    Ok(())
}

/// `snd intervene`: plan a budget of network edits (edge edits, stubborn
/// placements) minimizing expected delta-SND drift on a registry scenario.
pub fn intervene(args: &[String]) -> Result<(), String> {
    let name: String =
        opt(args, "--scenario").ok_or("missing --scenario NAME (see snd simulate --list)")?;
    let mut scenario = find_scenario(&name)
        .ok_or_else(|| format!("unknown scenario '{name}' (see snd simulate --list)"))?;
    if let Some(nodes) = opt(args, "--nodes") {
        scenario.nodes = nodes;
    }
    if let Some(steps) = opt(args, "--steps") {
        scenario.steps = steps;
    }
    let seed = opt(args, "--seed").unwrap_or(7u64);
    let defaults = InterventionConfig::default();
    let cfg = InterventionConfig {
        budget: opt(args, "--budget").unwrap_or(defaults.budget),
        beam: opt(args, "--beam").unwrap_or(defaults.beam),
        rollouts: opt(args, "--rollouts").unwrap_or(defaults.rollouts),
        horizon: opt(args, "--horizon").unwrap_or(defaults.horizon),
        seed,
        ..defaults
    };

    // The scenario supplies the topology, the dynamics, and — by running
    // it — a realistic current state to intervene on.
    let series = scenario.run(seed).map_err(|e| e.to_string())?;
    let graph = series.graph;
    let current = series
        .states
        .last()
        .cloned()
        .ok_or("scenario produced no states")?;
    let model = scenario
        .model
        .build(graph.node_count(), &graph)
        .map_err(|e| e.to_string())?;
    println!(
        "scenario '{}': {} nodes, intervening on the state after {} step(s)",
        scenario.name,
        graph.node_count(),
        series.states.len() - 1
    );

    let plan = search_interventions(
        &graph,
        model.as_ref(),
        &current,
        &SndConfig::default(),
        &cfg,
    )
    .map_err(|e| e.to_string())?;
    println!("baseline drift: {:.4}", plan.baseline_drift);
    for (i, p) in plan.actions.iter().enumerate() {
        println!("  {}. {} -> drift {:.4}", i + 1, p.action, p.drift);
    }
    let pct = if plan.baseline_drift > 0.0 {
        100.0 * plan.final_drift / plan.baseline_drift
    } else {
        100.0
    };
    println!(
        "plan: {} action(s), final drift {:.4} ({pct:.1}% of baseline)",
        plan.actions.len(),
        plan.final_drift
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn approx_flags_parse_and_validate() {
        assert_eq!(approx_config(&argv(&[])).unwrap(), None);
        let a = approx_config(&argv(&["--approx"])).unwrap().unwrap();
        assert_eq!(a.epsilon, ApproxConfig::default().epsilon);
        assert_eq!(a.min_nodes, 0, "explicit --approx forces the sketch tier");
        let a = approx_config(&argv(&[
            "--approx",
            "--epsilon",
            "0.1",
            "--landmarks",
            "4",
            "--budget",
            "9",
        ]))
        .unwrap()
        .unwrap();
        assert_eq!(a.epsilon, 0.1);
        assert_eq!(a.max_landmarks, 4);
        assert_eq!(a.budget, 9);
        // ε = 0 is legal: refine to exact.
        assert!(approx_config(&argv(&["--approx", "--epsilon", "0"])).is_ok());
    }

    /// Fuzz the approximate-tier flag parser the way `dataset.rs` fuzzes
    /// `from_json`: every malformed invocation must come back as a
    /// structured `Err`, never a panic and never a silent default.
    #[test]
    fn malformed_approx_flags_surface_structured_errors_not_panics() {
        let bad: &[&[&str]] = &[
            &["--approx", "--epsilon"],           // missing value
            &["--approx", "--epsilon", "abc"],    // non-numeric
            &["--approx", "--epsilon", "NaN"],    // NaN
            &["--approx", "--epsilon", "nan"],    // NaN (lowercase)
            &["--approx", "--epsilon", "inf"],    // infinite
            &["--approx", "--epsilon", "-0.5"],   // negative
            &["--approx", "--epsilon", "-1e308"], // large negative
            &["--approx", "--epsilon", ""],       // empty value
            &["--approx", "--epsilon", "0.5.5"],  // double dot
            &["--approx", "--epsilon", "0,5"],    // locale comma
            &["--approx", "--landmarks"],         // missing value
            &["--approx", "--landmarks", "0"],    // zero landmarks
            &["--approx", "--landmarks", "-3"],   // negative
            &["--approx", "--landmarks", "4.5"],  // fractional
            &["--approx", "--landmarks", "many"], // non-numeric
            &["--approx", "--budget"],            // missing value
            &["--approx", "--budget", "-1"],      // negative
            &["--approx", "--budget", "1e3"],     // float syntax
            &["--epsilon", "0.1"],                // --epsilon without --approx
            &["--landmarks", "4"],                // --landmarks without --approx
            &["--budget", "2"],                   // --budget without --approx
        ];
        for case in bad {
            let args = argv(case);
            let err = approx_config(&args);
            assert!(err.is_err(), "{case:?} must be rejected, got {err:?}");
            // The error is printable and self-descriptive.
            assert!(!err.unwrap_err().is_empty());
        }
        // Every prefix truncation of a valid invocation either parses or
        // errors cleanly — no index panics on dangling flags.
        let full = argv(&[
            "--approx",
            "--epsilon",
            "0.05",
            "--landmarks",
            "8",
            "--budget",
            "3",
        ]);
        for len in 0..=full.len() {
            let _ = approx_config(&full[..len]);
        }
    }

    #[test]
    fn recorded_ltc_parameters_change_the_ground_pricing() {
        let g = snd_graph::generators::path_graph(6);
        let recorded = ModelRecord {
            family: "ltc".into(),
            params: vec![("threshold".into(), 0.9)],
        };
        let default = ground_config_for("ltc", &g, None).unwrap();
        let exact = ground_config_for("ltc", &g, Some(&recorded)).unwrap();
        // The recorded threshold must actually land in the LTC params (the
        // configs differ), while a record from a *different* family leaves
        // the requested ground model at its defaults.
        assert_ne!(format!("{default:?}"), format!("{exact:?}"));
        assert!(format!("{exact:?}").contains("0.9"), "{exact:?}");
        let other_family = ModelRecord {
            family: "icc".into(),
            params: vec![("threshold".into(), 0.9)],
        };
        let fallback = ground_config_for("ltc", &g, Some(&other_family)).unwrap();
        assert_eq!(format!("{default:?}"), format!("{fallback:?}"));
        // Family-name grounds stay parameter-free, with or without record.
        let agn = ground_config_for("agnostic", &g, Some(&recorded)).unwrap();
        assert_eq!(
            format!("{agn:?}"),
            format!("{:?}", GroundCostConfig::default())
        );
    }

    #[test]
    fn approx_rejects_cluster_bank_modes() {
        let g = snd_graph::generators::path_graph(6);
        // --clusters alone is fine (cluster-bank exact mode)...
        let ok = engine_config(&argv(&["--clusters", "2"]), &g, None).unwrap();
        assert!(matches!(
            ok.clusters,
            ClusterSpec::BfsPartition { clusters: 2 }
        ));
        // ...but combining it with --approx is a structured error.
        let err = engine_config(&argv(&["--approx", "--clusters", "2"]), &g, None).unwrap_err();
        assert!(err.contains("per-bin"), "{err}");
        // Malformed cluster counts error out too.
        assert!(engine_config(&argv(&["--clusters", "0"]), &g, None).is_err());
        assert!(engine_config(&argv(&["--clusters", "two"]), &g, None).is_err());
        assert!(engine_config(&argv(&["--clusters"]), &g, None).is_err());
    }
}
