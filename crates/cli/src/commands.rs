//! CLI subcommand implementations.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use snd_analysis::series::processed_series;
use snd_analysis::{
    accuracy, anomaly_scores, distance_based_prediction, extrapolate_linear, select_targets,
    top_k_anomalies,
};
use snd_baselines::{Hamming, QuadForm, StateDistance, WalkDist};
use snd_core::{OrderedSnd, SndConfig, SndEngine};
use snd_data::{generate_series, simulate_twitter, SyntheticSeriesConfig, TwitterSimConfig};
use snd_models::dynamics::VotingConfig;
use snd_models::{NetworkState, Opinion};

use crate::dataset::Dataset;

/// `--flag value` lookup over raw arguments.
fn opt<T: std::str::FromStr>(args: &[String], name: &str) -> Option<T> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// `snd generate`: writes a synthetic or simulated-Twitter dataset.
pub fn generate(args: &[String]) -> Result<(), String> {
    let out: String = opt(args, "--out").ok_or("missing --out FILE")?;
    let seed = opt(args, "--seed").unwrap_or(7u64);
    let dataset = if flag(args, "--twitter") {
        let sim = simulate_twitter(&TwitterSimConfig {
            users: opt(args, "--nodes").unwrap_or(4000),
            avg_degree: opt(args, "--avg-degree").unwrap_or(50),
            seed,
            ..Default::default()
        });
        Dataset {
            nodes: sim.graph.node_count(),
            edges: sim.graph.edges().collect(),
            states: sim.states.iter().map(|s| s.values()).collect(),
            labels: sim.labels,
        }
    } else {
        let steps = opt(args, "--steps").unwrap_or(20usize);
        let series = generate_series(&SyntheticSeriesConfig {
            nodes: opt(args, "--nodes").unwrap_or(2000),
            steps,
            initial_adopters: opt(args, "--seeds").unwrap_or(100),
            normal: VotingConfig::new(0.12, 0.01),
            anomalous: VotingConfig::new(0.08, 0.05),
            anomalous_steps: vec![steps / 3, (2 * steps) / 3],
            seed,
            ..Default::default()
        });
        Dataset {
            nodes: series.graph.node_count(),
            edges: series.graph.edges().collect(),
            states: series.states.iter().map(|s| s.values()).collect(),
            labels: series.labels,
        }
    };
    dataset.save(&out)?;
    println!(
        "wrote {}: {} users, {} edges, {} states",
        out,
        dataset.nodes,
        dataset.edges.len(),
        dataset.states.len()
    );
    Ok(())
}

/// `snd distance`: all measures between two states of a dataset.
pub fn distance(args: &[String]) -> Result<(), String> {
    let path: String = opt(args, "--data").ok_or("missing --data FILE")?;
    let t1 = opt(args, "--t1").unwrap_or(0usize);
    let t2 = opt(args, "--t2").unwrap_or(1usize);
    let dataset = Dataset::load(&path)?;
    let graph = dataset.graph();
    let states = dataset.network_states();
    let a = states.get(t1).ok_or(format!("state {t1} out of range"))?;
    let b = states.get(t2).ok_or(format!("state {t2} out of range"))?;

    let engine = SndEngine::new(&graph, SndConfig::default());
    println!("n_delta = {}", a.diff_count(b));
    println!("SND        = {:.4}", engine.distance(a, b));
    println!("hamming    = {:.4}", Hamming.distance(a, b));
    println!("quad-form  = {:.4}", QuadForm::new(&graph).distance(a, b));
    println!("walk-dist  = {:.4}", WalkDist::new(&graph).distance(a, b));
    Ok(())
}

/// `snd anomaly`: score every transition of the dataset's series.
pub fn anomaly(args: &[String]) -> Result<(), String> {
    let path: String = opt(args, "--data").ok_or("missing --data FILE")?;
    let dataset = Dataset::load(&path)?;
    let graph = dataset.graph();
    let states = dataset.network_states();
    if states.len() < 3 {
        return Err("need at least 3 states".into());
    }
    let engine = SndEngine::new(&graph, SndConfig::default());
    let processed = processed_series(&engine.series_distances(&states), &states);
    let scores = anomaly_scores(&processed);
    let k =
        opt(args, "--top").unwrap_or_else(|| dataset.labels.iter().filter(|&&l| l).count().max(1));
    println!("{:>4} {:>10} {:>10}  label", "t", "SND", "score");
    for t in 0..processed.len() {
        let label = dataset.labels.get(t).copied().unwrap_or(false);
        println!(
            "{:>4} {:>10.4} {:>10.4}  {}",
            t,
            processed[t],
            scores[t],
            if label { "anomalous" } else { "" }
        );
    }
    let top = top_k_anomalies(&scores, k);
    println!("\ntop-{k} flagged transitions: {top:?}");
    if !dataset.labels.is_empty() {
        let hits = top
            .iter()
            .filter(|&&t| dataset.labels.get(t).copied().unwrap_or(false))
            .count();
        println!("matches ground truth: {hits}/{k}");
    }
    Ok(())
}

/// `snd predict`: hide random active users in the final state and recover
/// their opinions with SND.
pub fn predict(args: &[String]) -> Result<(), String> {
    let path: String = opt(args, "--data").ok_or("missing --data FILE")?;
    let n_targets = opt(args, "--targets").unwrap_or(20usize);
    let candidates = opt(args, "--candidates").unwrap_or(100usize);
    let dataset = Dataset::load(&path)?;
    let graph = dataset.graph();
    let states = dataset.network_states();
    let t = states.len() - 1;
    if t < 3 {
        return Err("need at least 4 states".into());
    }
    let truth: &NetworkState = &states[t];
    let mut rng = SmallRng::seed_from_u64(opt(args, "--seed").unwrap_or(5u64));
    let targets = select_targets(truth, n_targets, &mut rng);
    let mut known = truth.clone();
    for &u in &targets {
        known.set(u, Opinion::Neutral);
    }

    let engine = SndEngine::new(&graph, SndConfig::default());
    let d1 = OrderedSnd::new(&engine, states[t - 3].clone()).distance_to(&states[t - 2]);
    let d2 = OrderedSnd::new(&engine, states[t - 2].clone()).distance_to(&states[t - 1]);
    let d_star = extrapolate_linear(&[d1, d2]);
    println!("history: {d1:.2}, {d2:.2} -> d* = {d_star:.2}");

    let anchored = OrderedSnd::new(&engine, states[t - 1].clone());
    let predicted = distance_based_prediction(
        |c| anchored.distance_to(c),
        d_star,
        &known,
        &targets,
        candidates,
        &mut rng,
    );
    let acc = accuracy(&predicted, truth, &targets);
    println!(
        "predicted {} targets with {:.1}% accuracy ({} candidates)",
        targets.len(),
        100.0 * acc,
        candidates
    );
    Ok(())
}
