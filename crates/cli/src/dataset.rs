//! On-disk dataset format: a network plus a series of states, as JSON.
//!
//! The encoder/decoder is hand-rolled (the build environment has no serde):
//! the format is plain JSON — `{"nodes": N, "edges": [[u, v], ...],
//! "states": [[1, 0, -1, ...], ...], "labels": [true, ...], "model":
//! {"family": "ltc", "params": {"threshold": 0.35}}}` — and the parser
//! accepts arbitrary whitespace and field order, so files written by
//! serde-based tools remain readable. The `model` field is optional
//! (datasets predating it still load): `snd simulate` records the
//! simulated model's family and free parameters so `--ground icc|ltc`
//! reprices with the *simulated* parameters instead of family defaults.

use snd_graph::CsrGraph;
use snd_models::NetworkState;

/// The opinion-dynamics model a dataset was simulated under: the family
/// name (matching `snd simulate --list`) plus its free parameters as
/// named finite numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelRecord {
    /// Model family, e.g. `"voting"`, `"icc"`, `"ltc"`.
    pub family: String,
    /// Named free parameters, e.g. `("threshold", 0.35)`.
    pub params: Vec<(String, f64)>,
}

impl ModelRecord {
    /// Looks up one named parameter.
    pub fn param(&self, name: &str) -> Option<f64> {
        self.params.iter().find(|(k, _)| k == name).map(|&(_, v)| v)
    }
}

/// Serialized dataset: a graph, a state series, and optional anomaly
/// labels.
#[derive(Debug)]
pub struct Dataset {
    /// Number of users.
    pub nodes: usize,
    /// Directed edges (ties).
    pub edges: Vec<(u32, u32)>,
    /// Opinion series in ±1/0 encoding, one vector per state.
    pub states: Vec<Vec<i8>>,
    /// Per-transition anomaly labels (may be empty).
    pub labels: Vec<bool>,
    /// The dynamics model the series was simulated under, if recorded.
    pub model: Option<ModelRecord>,
}

impl Dataset {
    /// Builds the in-memory graph.
    pub fn graph(&self) -> CsrGraph {
        CsrGraph::from_edges(self.nodes, &self.edges)
    }

    /// Builds the in-memory state series.
    pub fn network_states(&self) -> Vec<NetworkState> {
        self.states
            .iter()
            .map(|v| NetworkState::from_values(v))
            .collect()
    }

    /// Reads a dataset from a JSON file.
    pub fn load(path: &str) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        Self::from_json(&text).map_err(|e| format!("parsing {path}: {e}"))
    }

    /// Writes the dataset to a JSON file.
    pub fn save(&self, path: &str) -> Result<(), String> {
        std::fs::write(path, self.to_json()).map_err(|e| format!("writing {path}: {e}"))
    }

    /// Encodes to the JSON wire format.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.edges.len() * 10);
        out.push_str("{\"nodes\":");
        out.push_str(&self.nodes.to_string());
        out.push_str(",\"edges\":[");
        for (i, (u, v)) in self.edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{u},{v}]"));
        }
        out.push_str("],\"states\":[");
        for (i, state) in self.states.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            for (j, v) in state.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&v.to_string());
            }
            out.push(']');
        }
        out.push_str("],\"labels\":[");
        for (i, l) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(if *l { "true" } else { "false" });
        }
        out.push(']');
        if let Some(model) = &self.model {
            out.push_str(",\"model\":{\"family\":\"");
            out.push_str(&model.family);
            out.push_str("\",\"params\":{");
            for (i, (k, v)) in model.params.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                // `{}` on a finite f64 is the shortest decimal that parses
                // back to the same bits, so parameters round-trip exactly.
                out.push_str(&format!("\"{k}\":{v}"));
            }
            out.push_str("}}");
        }
        out.push('}');
        out
    }

    /// Decodes the JSON wire format.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let mut p = Parser::new(text);
        let mut nodes: Option<usize> = None;
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let mut states: Vec<Vec<i8>> = Vec::new();
        let mut labels: Vec<bool> = Vec::new();
        let mut model: Option<ModelRecord> = None;

        p.expect('{')?;
        if !p.peek_is('}') {
            loop {
                let key = p.string()?;
                p.expect(':')?;
                match key.as_str() {
                    "nodes" => {
                        let v = p.integer()?;
                        nodes =
                            Some(usize::try_from(v).map_err(|_| format!("bad node count {v}"))?);
                    }
                    "edges" => {
                        edges = p.array(|p| {
                            p.expect('[')?;
                            let u = p.integer()?;
                            p.expect(',')?;
                            let v = p.integer()?;
                            p.expect(']')?;
                            let as_node = |x: i64| -> Result<u32, String> {
                                u32::try_from(x).map_err(|_| format!("bad node id {x}"))
                            };
                            Ok((as_node(u)?, as_node(v)?))
                        })?;
                    }
                    "states" => {
                        states = p.array(|p| {
                            p.array(|p| {
                                let v = p.integer()?;
                                // Strict ±1/0 encoding: a stray 2 or -7 is a
                                // corrupt file, not an opinion (downstream
                                // decoding by signum would mask it).
                                match i8::try_from(v) {
                                    Ok(o @ -1..=1) => Ok(o),
                                    _ => Err(format!("bad opinion value {v} (want -1, 0, or 1)")),
                                }
                            })
                        })?;
                    }
                    "labels" => labels = p.array(|p| p.boolean())?,
                    "model" => model = Some(p.model_record()?),
                    other => return Err(format!("unknown field {other:?}")),
                }
                if p.peek_is(',') {
                    p.expect(',')?;
                } else {
                    break;
                }
            }
        }
        p.expect('}')?;
        p.end()?;

        let nodes = nodes.ok_or("missing field \"nodes\"")?;
        for &(u, v) in &edges {
            if u as usize >= nodes || v as usize >= nodes {
                return Err(format!("edge ({u}, {v}) out of range for {nodes} nodes"));
            }
        }
        for s in &states {
            if s.len() != nodes {
                return Err(format!("state of length {} for {nodes} nodes", s.len()));
            }
        }
        Ok(Dataset {
            nodes,
            edges,
            states,
            labels,
            model,
        })
    }
}

/// Minimal recursive-descent JSON reader for the dataset's fixed shape.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek_is(&mut self, c: char) -> bool {
        self.skip_ws();
        self.bytes.get(self.pos) == Some(&(c as u8))
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(&b) if b == c as u8 => {
                self.pos += 1;
                Ok(())
            }
            got => Err(format!(
                "expected {c:?} at byte {}, found {:?}",
                self.pos,
                got.map(|&b| b as char)
            )),
        }
    }

    fn end(&mut self) -> Result<(), String> {
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!("trailing data at byte {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' {
                let s =
                    std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
                if s.contains('\\') {
                    return Err("escaped strings are not supported".into());
                }
                self.pos += 1;
                return Ok(s.to_string());
            }
            self.pos += 1;
        }
        Err("unterminated string".into())
    }

    fn integer(&mut self) -> Result<i64, String> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse()
            .map_err(|_| format!("expected integer at byte {start}"))
    }

    /// JSON number as a finite `f64` (integer, fraction, or exponent
    /// form). Rejects non-finite results — `1e999` overflows to infinity
    /// under `str::parse`, and a non-finite model parameter is a corrupt
    /// file, not a value any dynamics model accepts.
    fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(v),
            _ => Err(format!("expected finite number at byte {start}")),
        }
    }

    /// The `"model"` object: `{"family": NAME, "params": {KEY: NUM, ...}}`.
    fn model_record(&mut self) -> Result<ModelRecord, String> {
        let mut family: Option<String> = None;
        let mut params: Vec<(String, f64)> = Vec::new();
        self.expect('{')?;
        if !self.peek_is('}') {
            loop {
                let key = self.string()?;
                self.expect(':')?;
                match key.as_str() {
                    "family" => family = Some(self.string()?),
                    "params" => {
                        self.expect('{')?;
                        if !self.peek_is('}') {
                            loop {
                                let name = self.string()?;
                                self.expect(':')?;
                                let value = self.number()?;
                                params.push((name, value));
                                if self.peek_is(',') {
                                    self.expect(',')?;
                                } else {
                                    break;
                                }
                            }
                        }
                        self.expect('}')?;
                    }
                    other => return Err(format!("unknown model field {other:?}")),
                }
                if self.peek_is(',') {
                    self.expect(',')?;
                } else {
                    break;
                }
            }
        }
        self.expect('}')?;
        let family = family.ok_or("model record missing field \"family\"")?;
        Ok(ModelRecord { family, params })
    }

    fn boolean(&mut self) -> Result<bool, String> {
        self.skip_ws();
        for (lit, value) in [("true", true), ("false", false)] {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                return Ok(value);
            }
        }
        Err(format!("expected boolean at byte {}", self.pos))
    }

    fn array<T>(
        &mut self,
        mut element: impl FnMut(&mut Self) -> Result<T, String>,
    ) -> Result<Vec<T>, String> {
        self.expect('[')?;
        let mut out = Vec::new();
        if self.peek_is(']') {
            self.expect(']')?;
            return Ok(out);
        }
        loop {
            out.push(element(self)?);
            if self.peek_is(',') {
                self.expect(',')?;
            } else {
                break;
            }
        }
        self.expect(']')?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset {
            nodes: 3,
            edges: vec![(0, 1), (1, 2)],
            states: vec![vec![1, 0, -1], vec![0, 0, 1]],
            labels: vec![true],
            model: Some(ModelRecord {
                family: "ltc".into(),
                params: vec![("threshold".into(), 0.35)],
            }),
        }
    }

    #[test]
    fn json_roundtrip() {
        let d = sample();
        let back = Dataset::from_json(&d.to_json()).unwrap();
        assert_eq!(back.nodes, d.nodes);
        assert_eq!(back.edges, d.edges);
        assert_eq!(back.states, d.states);
        assert_eq!(back.labels, d.labels);
        assert_eq!(back.model, d.model);
    }

    #[test]
    fn model_params_roundtrip_exactly() {
        // Awkward but legal f64s survive the decimal round-trip bit-exactly
        // (`{}` prints the shortest representation that parses back to the
        // same value), and exponent notation is accepted on input.
        let mut d = sample();
        d.model = Some(ModelRecord {
            family: "degroot-threshold".into(),
            params: vec![
                ("susceptibility".into(), 0.1 + 0.2),
                ("threshold".into(), 1.0 / 3.0),
                ("tiny".into(), 5e-324),
            ],
        });
        let back = Dataset::from_json(&d.to_json()).unwrap();
        assert_eq!(back.model, d.model);
        let exp = Dataset::from_json(
            r#"{"nodes":1,"model":{"family":"icc","params":{"eps":1e-6,"big":2.5E+2}}}"#,
        )
        .unwrap();
        let m = exp.model.unwrap();
        assert_eq!(m.param("eps"), Some(1e-6));
        assert_eq!(m.param("big"), Some(250.0));
        assert_eq!(m.param("absent"), None);
    }

    #[test]
    fn datasets_without_a_model_field_still_load() {
        let text = r#"{"nodes":2,"edges":[[0,1]],"states":[[1,-1]]}"#;
        let d = Dataset::from_json(text).unwrap();
        assert!(d.model.is_none(), "model defaults to unrecorded");
    }

    #[test]
    fn whitespace_and_field_order_are_flexible() {
        let text = r#" { "states" : [ [ 1 , -1 ] ] ,
                        "edges" : [ [ 0 , 1 ] ] , "nodes" : 2 } "#;
        let d = Dataset::from_json(text).unwrap();
        assert_eq!(d.nodes, 2);
        assert_eq!(d.states, vec![vec![1, -1]]);
        assert!(d.labels.is_empty(), "labels default to empty");
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(Dataset::from_json("{").is_err());
        assert!(Dataset::from_json(r#"{"nodes":2,"edges":[[0,5]]}"#).is_err());
        assert!(Dataset::from_json(r#"{"nodes":2,"states":[[1]]}"#).is_err());
        assert!(Dataset::from_json(r#"{"mystery":1}"#).is_err());
    }

    #[test]
    fn malformed_input_surfaces_structured_errors_not_panics() {
        // Every bad input must come back as Err with a message, never a
        // panic. Truncations of a valid document exercise every parser
        // state (mid-key, mid-number, mid-array, mid-literal).
        let valid = sample().to_json();
        for cut in 0..valid.len() {
            let truncated = &valid[..cut];
            assert!(
                Dataset::from_json(truncated).is_err(),
                "truncation at byte {cut} must be rejected: {truncated:?}"
            );
        }
        for (name, text) in [
            ("trailing garbage", r#"{"nodes":1} tail"#),
            ("negative node count", r#"{"nodes":-4}"#),
            (
                "overflowing node count",
                r#"{"nodes":99999999999999999999999}"#,
            ),
            ("non-integer nodes", r#"{"nodes":"two"}"#),
            ("opinion out of range", r#"{"nodes":1,"states":[[7]]}"#),
            ("opinion overflows i8", r#"{"nodes":1,"states":[[400]]}"#),
            ("bad boolean literal", r#"{"nodes":1,"labels":[maybe]}"#),
            ("edge missing endpoint", r#"{"nodes":2,"edges":[[0]]}"#),
            ("negative edge endpoint", r#"{"nodes":2,"edges":[[0,-1]]}"#),
            (
                "model missing family",
                r#"{"nodes":1,"model":{"params":{}}}"#,
            ),
            (
                "unknown model field",
                r#"{"nodes":1,"model":{"family":"ltc","mystery":1}}"#,
            ),
            (
                "non-numeric model param",
                r#"{"nodes":1,"model":{"family":"ltc","params":{"threshold":"high"}}}"#,
            ),
            (
                "NaN model param",
                r#"{"nodes":1,"model":{"family":"ltc","params":{"threshold":NaN}}}"#,
            ),
            (
                "overflowing model param",
                r#"{"nodes":1,"model":{"family":"ltc","params":{"threshold":1e999}}}"#,
            ),
            (
                "model params not an object",
                r#"{"nodes":1,"model":{"family":"ltc","params":[0.5]}}"#,
            ),
        ] {
            let err = Dataset::from_json(text).expect_err(name);
            assert!(!err.is_empty(), "{name}: error message must not be empty");
        }
    }

    #[test]
    fn graph_and_states_materialize() {
        let d = sample();
        let g = d.graph();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(d.network_states().len(), 2);
    }
}
