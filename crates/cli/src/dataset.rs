//! On-disk dataset format: a network plus a series of states, as JSON.

use serde::{Deserialize, Serialize};
use snd_graph::CsrGraph;
use snd_models::NetworkState;

/// Serialized dataset: a graph, a state series, and optional anomaly
/// labels.
#[derive(Serialize, Deserialize)]
pub struct Dataset {
    /// Number of users.
    pub nodes: usize,
    /// Directed edges (ties).
    pub edges: Vec<(u32, u32)>,
    /// Opinion series in ±1/0 encoding, one vector per state.
    pub states: Vec<Vec<i8>>,
    /// Per-transition anomaly labels (may be empty).
    #[serde(default)]
    pub labels: Vec<bool>,
}

impl Dataset {
    /// Builds the in-memory graph.
    pub fn graph(&self) -> CsrGraph {
        CsrGraph::from_edges(self.nodes, &self.edges)
    }

    /// Builds the in-memory state series.
    pub fn network_states(&self) -> Vec<NetworkState> {
        self.states
            .iter()
            .map(|v| NetworkState::from_values(v))
            .collect()
    }

    /// Reads a dataset from a JSON file.
    pub fn load(path: &str) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))
    }

    /// Writes the dataset to a JSON file.
    pub fn save(&self, path: &str) -> Result<(), String> {
        let text = serde_json::to_string(self).map_err(|e| e.to_string())?;
        std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))
    }
}
