//! `snd` — command-line interface to the Social Network Distance library.
//!
//! ```text
//! snd generate --nodes 2000 --steps 20 --out data.json   # synthetic series
//! snd generate --twitter --out data.json                 # simulated Twitter
//! snd simulate --list                                    # scenario registry
//! snd simulate --scenario majority-consensus \
//!              --seed 3 --out data.json                  # any dynamics model
//! snd distance --data data.json --t1 0 --t2 1            # all measures
//! snd distance --data data.json --ground icc             # ICC ground costs
//! snd distance --data data.json --approx --epsilon 0.05  # certified interval
//! snd distance --data data.json --approx --series        # certified series
//! snd anomaly --data data.json                           # score the series
//! snd predict --data data.json                           # hide & recover opinions
//! snd intervene --scenario voting --budget 2             # plan calming edits
//! snd shard --data data.json --shard 0/2 \
//!           --checkpoint part0.snd                       # one resumable shard
//! snd shard merge --out matrix.json part0.snd part1.snd  # reassemble
//! snd orchestrate --data data.json --checkpoint run.snd \
//!                 --workers 4                            # distributed all-pairs
//! snd work --data data.json --addr host:7070            # one remote worker
//! ```

use std::process::ExitCode;

mod commands;
mod dataset;
mod orchestrate;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        print_usage();
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "generate" => commands::generate(rest),
        "simulate" => commands::simulate(rest),
        "distance" => commands::distance(rest),
        "anomaly" => commands::anomaly(rest),
        "predict" => commands::predict(rest),
        "intervene" => commands::intervene(rest),
        "shard" => commands::shard(rest),
        "orchestrate" => orchestrate::orchestrate(rest),
        "work" => orchestrate::work(rest),
        "--help" | "-h" | "help" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "snd — Social Network Distance (ICDE 2017 reproduction)\n\
         \n\
         USAGE:\n\
         \u{20}  snd generate [--nodes N] [--steps S] [--twitter] [--seed K] --out FILE\n\
         \u{20}  snd simulate --scenario NAME [--nodes N] [--steps T] [--seed S] --out FILE\n\
         \u{20}  snd simulate --list\n\
         \u{20}  snd distance --data FILE [--t1 I] [--t2 J] [--ground MODEL] [APPROX]\n\
         \u{20}  snd distance --data FILE --series [--ground MODEL] [APPROX]\n\
         \u{20}  snd anomaly  --data FILE [--top K] [--ground MODEL] [APPROX]\n\
         \u{20}      (--ground: agnostic | icc | ltc | a model family from --list)\n\
         \u{20}  snd predict  --data FILE [--targets K] [--candidates C]\n\
         \u{20}  snd intervene --scenario NAME [--budget K] [--beam B] [--nodes N]\n\
         \u{20}      [--steps T] [--rollouts R] [--horizon H] [--seed S]\n\
         \u{20}  snd shard    --data FILE --shard I/N --checkpoint FILE [--tile T] [APPROX]\n\
         \u{20}  snd shard merge --out FILE PART...\n\
         \u{20}  snd orchestrate --data FILE --checkpoint FILE [--workers N] [--listen ADDR]\n\
         \u{20}      [--tile T] [--lease-timeout S] [--target-lease S] [--out FILE]\n\
         \u{20}      [--no-overlap] [--ground MODEL] [APPROX]\n\
         \u{20}  snd work --data FILE --addr ADDR [--no-overlap] [--connect-retry S]\n\
         \u{20}      [--read-timeout S] [--ground MODEL] [APPROX]\n\
         \n\
         APPROX (certified [lower, upper] intervals instead of exact SND):\n\
         \u{20}  --approx [--epsilon E] [--landmarks L] [--budget B]\n"
    );
}
