//! End-to-end orchestrator tests over the real `snd` binary: a
//! coordinator and worker *processes* on a Unix socket, including the
//! kill-a-worker property — a straggler holding a lease is killed
//! mid-run, its tiles are re-dispatched, and the final matrix is
//! byte-identical to the single-process shard path.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SND: &str = env!("CARGO_BIN_EXE_snd");

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("snd_e2e_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("workdir");
    dir
}

/// Runs `snd` to completion, asserting success; returns stdout.
fn snd_ok(args: &[&str]) -> String {
    let out = Command::new(SND).args(args).output().expect("spawn snd");
    assert!(
        out.status.success(),
        "snd {args:?} failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Writes the dataset + the single-process reference matrix for it.
fn dataset_and_reference(dir: &Path, tile: usize) -> (PathBuf, Vec<u8>) {
    let data = dir.join("data.json");
    snd_ok(&[
        "generate",
        "--nodes",
        "80",
        "--steps",
        "4",
        "--seed",
        "13",
        "--out",
        data.to_str().unwrap(),
    ]);
    let ref_ckpt = dir.join("ref.snd");
    let tile_s = tile.to_string();
    snd_ok(&[
        "shard",
        "--data",
        data.to_str().unwrap(),
        "--shard",
        "0/1",
        "--checkpoint",
        ref_ckpt.to_str().unwrap(),
        "--tile",
        &tile_s,
    ]);
    let ref_json = dir.join("ref.json");
    snd_ok(&[
        "shard",
        "merge",
        "--out",
        ref_json.to_str().unwrap(),
        ref_ckpt.to_str().unwrap(),
    ]);
    (data, std::fs::read(&ref_json).expect("reference matrix"))
}

/// Waits for a child with a deadline, killing it on timeout.
fn wait_with_deadline(child: &mut Child, secs: u64, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => {
                assert!(status.success(), "{what} exited with {status}");
                return;
            }
            None if Instant::now() >= deadline => {
                let _ = child.kill();
                panic!("{what} did not finish within {secs}s");
            }
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

#[test]
fn killed_worker_is_redispatched_and_matrix_stays_bit_identical() {
    let dir = workdir("kill");
    let tile = 2;
    let (data, reference) = dataset_and_reference(&dir, tile);
    let sock = dir.join("coord.sock");
    let ckpt = dir.join("orch.snd");
    let merged = dir.join("orch.json");

    let mut coord = Command::new(SND)
        .args([
            "orchestrate",
            "--data",
            data.to_str().unwrap(),
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--listen",
            sock.to_str().unwrap(),
            "--tile",
            &tile.to_string(),
            "--lease-timeout",
            "2",
            "--target-lease",
            "0.2",
            "--out",
            merged.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn coordinator");

    // The straggler: throttled so hard it never delivers its leased tile.
    let mut straggler = Command::new(SND)
        .args([
            "work",
            "--data",
            data.to_str().unwrap(),
            "--addr",
            sock.to_str().unwrap(),
        ])
        .env("SND_WORK_THROTTLE_MS", "60000")
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn straggler");
    // Give it time to handshake, win a lease, and get stuck in it.
    std::thread::sleep(Duration::from_secs(2));
    straggler.kill().expect("kill straggler");
    let _ = straggler.wait();

    // A healthy worker finishes the run, re-dispatched tiles included.
    let mut healthy = Command::new(SND)
        .args([
            "work",
            "--data",
            data.to_str().unwrap(),
            "--addr",
            sock.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn healthy worker");

    wait_with_deadline(&mut coord, 120, "coordinator");
    wait_with_deadline(&mut healthy, 60, "healthy worker");

    let mut stdout = String::new();
    std::io::Read::read_to_string(coord.stdout.as_mut().expect("stdout"), &mut stdout)
        .expect("read coordinator stdout");
    let redispatched: usize = stdout
        .lines()
        .find_map(|l| l.split("re-dispatched: ").nth(1))
        .and_then(|rest| rest.split(' ').next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("no re-dispatch count in:\n{stdout}"));
    assert!(
        redispatched >= 1,
        "straggler's lease must re-dispatch:\n{stdout}"
    );

    let merged_bytes = std::fs::read(&merged).expect("orchestrated matrix");
    assert_eq!(
        merged_bytes, reference,
        "orchestrated matrix differs from the single-process shard path"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn spawned_worker_fleet_completes_and_matches_the_reference() {
    let dir = workdir("fleet");
    let tile = 2;
    let (data, reference) = dataset_and_reference(&dir, tile);
    let ckpt = dir.join("orch.snd");
    let merged = dir.join("orch.json");

    let stdout = snd_ok(&[
        "orchestrate",
        "--data",
        data.to_str().unwrap(),
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--workers",
        "2",
        "--tile",
        &tile.to_string(),
        "--out",
        merged.to_str().unwrap(),
    ]);
    assert!(stdout.contains("orchestrate: complete"), "{stdout}");
    // Both spawned workers print their reports through the shared stdout.
    assert!(
        stdout.lines().filter(|l| l.starts_with("work:")).count() >= 1,
        "{stdout}"
    );
    let merged_bytes = std::fs::read(&merged).expect("orchestrated matrix");
    assert_eq!(merged_bytes, reference);

    // Resuming the complete checkpoint is a no-op run: 0 computed.
    let resumed = snd_ok(&[
        "orchestrate",
        "--data",
        data.to_str().unwrap(),
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--workers",
        "1",
        "--tile",
        &tile.to_string(),
    ]);
    assert!(resumed.contains("0 computed"), "{resumed}");
    let _ = std::fs::remove_dir_all(&dir);
}
