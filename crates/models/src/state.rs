//! Network states: one polar opinion per user.

use snd_graph::NodeId;

/// A user's opinion: one of two competing polar opinions, or neutral.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Opinion {
    /// The "−" opinion.
    Negative,
    /// No (or unknown) opinion; the user is inactive.
    #[default]
    Neutral,
    /// The "+" opinion.
    Positive,
}

impl Opinion {
    /// Numeric encoding used by the paper: +1 / 0 / −1.
    #[inline]
    pub fn value(self) -> i8 {
        match self {
            Opinion::Negative => -1,
            Opinion::Neutral => 0,
            Opinion::Positive => 1,
        }
    }

    /// Decodes the paper's numeric encoding (sign of the value).
    pub fn from_value(v: i8) -> Self {
        match v.signum() {
            -1 => Opinion::Negative,
            0 => Opinion::Neutral,
            _ => Opinion::Positive,
        }
    }

    /// True for non-neutral opinions.
    #[inline]
    pub fn is_active(self) -> bool {
        self != Opinion::Neutral
    }

    /// The competing polar opinion (neutral maps to itself).
    #[inline]
    pub fn opposite(self) -> Self {
        match self {
            Opinion::Negative => Opinion::Positive,
            Opinion::Neutral => Opinion::Neutral,
            Opinion::Positive => Opinion::Negative,
        }
    }
}

/// The opinions of all users at one time instant (a network *state*).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetworkState {
    opinions: Vec<Opinion>,
}

impl NetworkState {
    /// All-neutral state over `n` users.
    pub fn new_neutral(n: usize) -> Self {
        NetworkState {
            opinions: vec![Opinion::Neutral; n],
        }
    }

    /// State from the paper's ±1/0 encoding.
    pub fn from_values(values: &[i8]) -> Self {
        NetworkState {
            opinions: values.iter().map(|&v| Opinion::from_value(v)).collect(),
        }
    }

    /// State from explicit opinions.
    pub fn from_opinions(opinions: Vec<Opinion>) -> Self {
        NetworkState { opinions }
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.opinions.len()
    }

    /// True if the state covers no users.
    pub fn is_empty(&self) -> bool {
        self.opinions.is_empty()
    }

    /// Opinion of user `u`.
    #[inline]
    pub fn opinion(&self, u: NodeId) -> Opinion {
        self.opinions[u as usize]
    }

    /// Sets the opinion of user `u`.
    #[inline]
    pub fn set(&mut self, u: NodeId, op: Opinion) {
        self.opinions[u as usize] = op;
    }

    /// All opinions.
    pub fn opinions(&self) -> &[Opinion] {
        &self.opinions
    }

    /// The paper's ±1/0 encoding.
    pub fn values(&self) -> Vec<i8> {
        self.opinions.iter().map(|o| o.value()).collect()
    }

    /// Users holding the given (active) opinion.
    pub fn users_with(&self, op: Opinion) -> Vec<NodeId> {
        (0..self.opinions.len() as NodeId)
            .filter(|&u| self.opinions[u as usize] == op)
            .collect()
    }

    /// All active (non-neutral) users.
    pub fn active_users(&self) -> Vec<NodeId> {
        (0..self.opinions.len() as NodeId)
            .filter(|&u| self.opinions[u as usize].is_active())
            .collect()
    }

    /// Number of active users.
    pub fn active_count(&self) -> usize {
        self.opinions.iter().filter(|o| o.is_active()).count()
    }

    /// Number of users holding `op`.
    pub fn count(&self, op: Opinion) -> usize {
        self.opinions.iter().filter(|&&o| o == op).count()
    }

    /// Number of users whose opinion differs between `self` and `other` —
    /// the paper's `n∆`.
    pub fn diff_count(&self, other: &NetworkState) -> usize {
        assert_eq!(self.len(), other.len(), "state length mismatch");
        self.opinions
            .iter()
            .zip(&other.opinions)
            .filter(|(a, b)| a != b)
            .count()
    }

    /// The single-opinion projection `G^op` of §3: users holding the
    /// *other* active opinion are treated as neutral; returns unit masses
    /// (1.0 for users with `op`, 0.0 otherwise).
    pub fn projection(&self, op: Opinion) -> Vec<f64> {
        assert!(op.is_active(), "projection requires a polar opinion");
        self.opinions
            .iter()
            .map(|&o| if o == op { 1.0 } else { 0.0 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opinion_encoding_roundtrip() {
        for op in [Opinion::Negative, Opinion::Neutral, Opinion::Positive] {
            assert_eq!(Opinion::from_value(op.value()), op);
        }
        assert_eq!(Opinion::from_value(7), Opinion::Positive);
        assert_eq!(Opinion::from_value(-3), Opinion::Negative);
    }

    #[test]
    fn opposite_flips_polarity() {
        assert_eq!(Opinion::Positive.opposite(), Opinion::Negative);
        assert_eq!(Opinion::Negative.opposite(), Opinion::Positive);
        assert_eq!(Opinion::Neutral.opposite(), Opinion::Neutral);
    }

    #[test]
    fn counts_and_projections() {
        let s = NetworkState::from_values(&[1, -1, 0, 1]);
        assert_eq!(s.active_count(), 3);
        assert_eq!(s.count(Opinion::Positive), 2);
        assert_eq!(s.count(Opinion::Negative), 1);
        assert_eq!(s.users_with(Opinion::Positive), vec![0, 3]);
        assert_eq!(s.projection(Opinion::Positive), vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(s.projection(Opinion::Negative), vec![0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn diff_count_is_hamming_on_opinions() {
        let a = NetworkState::from_values(&[1, -1, 0, 0]);
        let b = NetworkState::from_values(&[1, 1, 0, -1]);
        assert_eq!(a.diff_count(&b), 2);
    }

    #[test]
    fn values_roundtrip() {
        let s = NetworkState::from_values(&[1, 0, -1]);
        let back = NetworkState::from_values(&s.values());
        assert_eq!(s, back);
    }
}
